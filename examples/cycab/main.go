// Cycab models the experimental platform of the paper's conclusion: the
// CyCAB electric autonomous vehicle, a 5-processor distributed architecture
// on a CAN bus. A sampled control loop (sensor fusion, a control law with
// state held in a mem, actuators) is scheduled with FT1 and driven through
// the loss of the vision processor mid-mission.
//
//	go run ./examples/cycab
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	// Algorithm: wheel odometry, a laser range finder, and a vision stage
	// are fused; the control law reads the fused estimate and the previous
	// state (a mem, i.e. a register between iterations), updates the state,
	// and drives traction and steering.
	g := ftsched.NewGraph("cycab_control")
	must(g.AddExtIO("odometry"))
	must(g.AddExtIO("laser"))
	must(g.AddExtIO("camera"))
	must(g.AddComp("vision"))
	must(g.AddComp("fusion"))
	must(g.AddMem("state"))
	must(g.AddComp("control"))
	must(g.AddExtIO("traction"))
	must(g.AddExtIO("steering"))
	for _, e := range [][2]string{
		{"camera", "vision"},
		{"odometry", "fusion"}, {"laser", "fusion"}, {"vision", "fusion"},
		{"fusion", "control"}, {"state", "control"}, {"control", "state"},
		{"control", "traction"}, {"control", "steering"},
	} {
		must(g.Connect(e[0], e[1]))
	}

	// Architecture: five processors on the CAN bus (Section 8).
	a := ftsched.NewArchitecture("cycab")
	procs := []string{"front", "rear", "steer", "visionCPU", "super"}
	for _, p := range procs {
		must(a.AddProcessor(p))
	}
	must(a.AddBus("can", procs...))

	// Constraints: the sensors and actuators are wired to their processors;
	// computations may run anywhere, slower on the small wheel controllers.
	sp := ftsched.NewSpec()
	allow := func(op string, allowed map[string]float64) {
		for _, p := range procs {
			d, ok := allowed[p]
			if !ok {
				d = ftsched.Inf
			}
			must(sp.SetExec(op, p, d))
		}
	}
	allow("odometry", map[string]float64{"front": 0.3, "rear": 0.3})
	allow("laser", map[string]float64{"super": 0.4, "visionCPU": 0.4})
	allow("camera", map[string]float64{"visionCPU": 0.5, "super": 0.5})
	allow("vision", map[string]float64{"visionCPU": 2.0, "super": 2.6, "front": 4.0, "rear": 4.0, "steer": 4.0})
	allow("fusion", map[string]float64{"super": 1.0, "visionCPU": 1.2, "front": 1.8, "rear": 1.8, "steer": 1.8})
	allow("state", map[string]float64{"super": 0.1, "visionCPU": 0.1, "front": 0.1, "rear": 0.1, "steer": 0.1})
	allow("control", map[string]float64{"super": 1.2, "visionCPU": 1.4, "front": 2.0, "rear": 2.0, "steer": 2.0})
	allow("traction", map[string]float64{"front": 0.3, "rear": 0.3})
	allow("steering", map[string]float64{"steer": 0.3, "super": 0.3})
	for _, e := range g.Edges() {
		must(sp.SetComm(e.Key(), "can", 0.25))
	}

	base, err := ftsched.ScheduleTuned(ftsched.Basic, g, a, sp, 0, 20, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ftsched.ScheduleTuned(ftsched.FT1, g, a, sp, 1, 20, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Schedule.Gantt())
	fmt.Printf("baseline makespan %.2f, FT1 makespan %.2f, overhead %.2f\n\n",
		base.Schedule.Makespan(), res.Schedule.Makespan(), res.Schedule.Overhead(base.Schedule))

	// The vision processor dies during iteration 1: the control loop keeps
	// driving the actuators on every iteration.
	sr, err := ftsched.Simulate(res.Schedule, g, a, sp,
		ftsched.SingleFailure("visionCPU", 1, 0.8), ftsched.SimConfig{Iterations: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, ir := range sr.Iterations {
		fmt.Printf("iteration %d: response=%.2f traction=%v steering=%v timeouts=%d\n",
			ir.Index, ir.ResponseTime, ir.Outputs["traction"], ir.Outputs["steering"], ir.TimeoutsFired)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
