// Busfailover reproduces the paper's first worked example end to end: the
// 7-operation algorithm of Fig. 13 on three processors sharing a bus,
// scheduled with the first fault-tolerant heuristic (FT1, Section 6), then
// simulated through a crash of processor P2 — the scenario of Fig. 18.
//
//	go run ./examples/busfailover
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	g, a, sp := buildPaperExample()

	res, err := ftsched.ScheduleFT1(g, a, sp, 1, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("static schedule (paper Fig. 17 reports makespan 9.4):")
	fmt.Println(res.Schedule.Gantt())

	// Fig. 18: P2 crashes at the start of iteration 1. Iteration 1 is the
	// transient iteration (it pays the detection timeouts); iteration 2 runs
	// with P2 marked faulty.
	sr, err := ftsched.Simulate(res.Schedule, g, a, sp,
		ftsched.SingleFailure("P2", 1, 0), ftsched.SimConfig{Iterations: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, ir := range sr.Iterations {
		kind := "steady"
		if ir.Transient {
			kind = "transient"
		}
		fmt.Printf("iteration %d (%s): response=%.2f outputs-delivered=%v timeouts=%d messages=%d\n",
			ir.Index, kind, ir.ResponseTime, ir.Completed, ir.TimeoutsFired, ir.MessagesSent)
	}
	fmt.Printf("failed processors: %v, detected by failover machinery: %v\n",
		sr.FailedProcs, sr.DetectedProcs)
}

// buildPaperExample assembles the instance of Sections 5.4/6.5 through the
// public API.
func buildPaperExample() (*ftsched.Graph, *ftsched.Architecture, *ftsched.Spec) {
	g := ftsched.NewGraph("paper")
	must(g.AddExtIO("I"))
	for _, c := range []string{"A", "B", "C", "D", "E"} {
		must(g.AddComp(c))
	}
	must(g.AddExtIO("O"))
	for _, e := range [][2]string{
		{"I", "A"}, {"A", "B"}, {"A", "C"}, {"A", "D"},
		{"B", "E"}, {"C", "E"}, {"D", "E"}, {"E", "O"},
	} {
		must(g.Connect(e[0], e[1]))
	}

	a := ftsched.NewArchitecture("bus3")
	for _, p := range []string{"P1", "P2", "P3"} {
		must(a.AddProcessor(p))
	}
	must(a.AddBus("bus", "P1", "P2", "P3"))

	sp := ftsched.NewSpec()
	exec := map[string][3]float64{
		"I": {1, 1, ftsched.Inf},
		"A": {2, 2, 2},
		"B": {3, 1.5, 1.5},
		"C": {2, 3, 1},
		"D": {3, 1, 1},
		"E": {1, 1, 1},
		"O": {1.5, 1.5, ftsched.Inf},
	}
	for op, durs := range exec {
		for i, p := range []string{"P1", "P2", "P3"} {
			must(sp.SetExec(op, p, durs[i]))
		}
	}
	comm := map[ftsched.EdgeKey]float64{
		{Src: "I", Dst: "A"}: 1.25,
		{Src: "A", Dst: "B"}: 0.5,
		{Src: "A", Dst: "C"}: 0.5,
		{Src: "A", Dst: "D"}: 0.5,
		{Src: "B", Dst: "E"}: 0.6,
		{Src: "C", Dst: "E"}: 0.8,
		{Src: "D", Dst: "E"}: 1,
		{Src: "E", Dst: "O"}: 1,
	}
	for e, d := range comm {
		must(sp.SetComm(e, "bus", d))
	}
	return g, a, sp
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
