// Executive runs a schedule as a real concurrent distributed program: one
// goroutine per processor computes actual values (a PI cruise controller
// with integral state), and a processor is crashed mid-run to show the
// replicas taking over without losing the control state — the second step
// of the AAA method (generation of the distributed executive) made
// executable.
//
//	go run ./examples/executive
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	// Algorithm: speed sensor -> error computation; an accumulator comp
	// integrates the error using the previous integral held in a mem; the
	// PI law combines error and integral and drives the throttle actuator.
	g := ftsched.NewGraph("cruise")
	must(g.AddExtIO("speed"))
	must(g.AddComp("err"))
	must(g.AddMem("integral"))
	must(g.AddComp("acc"))
	must(g.AddComp("pi"))
	must(g.AddExtIO("throttle"))
	for _, e := range [][2]string{
		{"speed", "err"},
		{"err", "acc"}, {"integral", "acc"}, {"acc", "integral"},
		{"err", "pi"}, {"acc", "pi"},
		{"pi", "throttle"},
	} {
		must(g.Connect(e[0], e[1]))
	}

	a := ftsched.NewArchitecture("ecu")
	for _, p := range []string{"ecu1", "ecu2", "ecu3"} {
		must(a.AddProcessor(p))
	}
	must(a.AddBus("can", "ecu1", "ecu2", "ecu3"))

	sp := ftsched.NewSpec()
	for _, op := range g.OpNames() {
		for _, p := range []string{"ecu1", "ecu2", "ecu3"} {
			must(sp.SetExec(op, p, 1))
		}
	}
	for _, e := range g.Edges() {
		must(sp.SetComm(e.Key(), "can", 0.3))
	}

	res, err := ftsched.ScheduleFT1(g, a, sp, 1, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Schedule.Gantt())

	const target = 100.0
	measured := []float64{80, 86, 91, 95, 97, 99}
	prog := ftsched.NewProgram().
		Bind("speed", func(it int, _ map[string]ftsched.Value) ftsched.Value {
			return measured[it%len(measured)]
		}).
		Bind("err", func(_ int, in map[string]ftsched.Value) ftsched.Value {
			return target - in["speed"].(float64)
		}).
		Bind("acc", func(_ int, in map[string]ftsched.Value) ftsched.Value {
			return in["integral"].(float64) + in["err"].(float64)
		}).
		Bind("pi", func(_ int, in map[string]ftsched.Value) ftsched.Value {
			return 0.5*in["err"].(float64) + 0.1*in["acc"].(float64)
		}).
		Bind("throttle", func(_ int, in map[string]ftsched.Value) ftsched.Value {
			return in["pi"]
		}).
		InitMem("integral", 0.0)

	// Crash the processor holding the main replica of the PI law right
	// before it would run in iteration 2.
	victim := res.Schedule.MainReplica("pi").Proc
	run, err := ftsched.Run(res.Schedule, g, prog, ftsched.RunConfig{
		Iterations: 6,
		Kills:      []ftsched.KillSpec{{Proc: victim, Iteration: 2, Op: "pi"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashing %s before 'pi' in iteration 2\n", victim)
	for it, io := range run.Iterations {
		fmt.Printf("iteration %d: throttle=%.2f delivered=%v\n",
			it, io.Values["throttle"], io.Completed)
	}
	fmt.Printf("crashed processors: %v\n", run.CrashedProcs)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
