// Quickstart: build a tiny sensing pipeline, schedule it with each of the
// three heuristics, and print the resulting static schedules.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	// Algorithm: one sensor feeds two parallel filters whose results are
	// merged and sent to an actuator.
	g := ftsched.NewGraph("quickstart")
	must(g.AddExtIO("sensor"))
	must(g.AddComp("filterA"))
	must(g.AddComp("filterB"))
	must(g.AddComp("merge"))
	must(g.AddExtIO("actuator"))
	for _, e := range [][2]string{
		{"sensor", "filterA"}, {"sensor", "filterB"},
		{"filterA", "merge"}, {"filterB", "merge"}, {"merge", "actuator"},
	} {
		must(g.Connect(e[0], e[1]))
	}

	// Architecture: three processors on one CAN-like bus.
	a := ftsched.NewArchitecture("board")
	for _, p := range []string{"P1", "P2", "P3"} {
		must(a.AddProcessor(p))
	}
	must(a.AddBus("can", "P1", "P2", "P3"))

	// Distribution constraints: worst-case durations in abstract time
	// units. The sensor and actuator are wired to P1 and P2 only.
	sp := ftsched.NewSpec()
	exec := map[string][3]float64{
		"sensor":   {0.5, 0.5, ftsched.Inf},
		"filterA":  {2, 2.5, 2},
		"filterB":  {2.5, 2, 2},
		"merge":    {1, 1, 1.5},
		"actuator": {0.5, 0.5, ftsched.Inf},
	}
	for op, durs := range exec {
		for i, p := range []string{"P1", "P2", "P3"} {
			must(sp.SetExec(op, p, durs[i]))
		}
	}
	for _, e := range g.Edges() {
		must(sp.SetComm(e.Key(), "can", 0.4))
	}

	// Schedule with the baseline and both fault-tolerant heuristics.
	base, err := ftsched.ScheduleBasic(g, a, sp, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(base.Schedule.Gantt())

	ft1, err := ftsched.ScheduleFT1(g, a, sp, 1, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ft1.Schedule.Gantt())
	fmt.Printf("fault-tolerance overhead: %.2f time units\n\n", ft1.Schedule.Overhead(base.Schedule))

	ft2, err := ftsched.ScheduleFT2(g, a, sp, 1, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ft2.Schedule.Gantt())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
