// Pointtopoint demonstrates the second fault-tolerant heuristic (FT2,
// Section 7) on a fully connected point-to-point architecture: a Gaussian
// elimination task graph scheduled with K=1 and K=2, then driven through two
// simultaneous processor crashes — the regime the paper says only FT2
// handles gracefully, because consumers take the first arriving replica
// instead of waiting for timeouts.
//
//	go run ./examples/pointtopoint
package main

import (
	"fmt"
	"log"

	"ftsched"
)

func main() {
	g := buildGaussian(5)

	// Four processors, fully connected by point-to-point links.
	a := ftsched.NewArchitecture("mesh4")
	procs := []string{"P1", "P2", "P3", "P4"}
	for _, p := range procs {
		must(a.AddProcessor(p))
	}
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			must(a.AddLink(fmt.Sprintf("L%d%d", i+1, j+1), procs[i], procs[j]))
		}
	}

	sp := ftsched.NewSpec()
	for _, op := range g.OpNames() {
		for _, p := range procs {
			must(sp.SetExec(op, p, 1))
		}
	}
	for _, e := range g.Edges() {
		for _, l := range a.LinkNames() {
			must(sp.SetComm(e.Key(), l, 0.3))
		}
	}

	base, err := ftsched.ScheduleBasic(g, a, sp, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline makespan: %.2f\n", base.Schedule.Makespan())

	for k := 1; k <= 2; k++ {
		res, err := ftsched.ScheduleFT2(g, a, sp, k, ftsched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FT2 K=%d makespan: %.2f (overhead %.2f), active comms: %d\n",
			k, res.Schedule.Makespan(), res.Schedule.Overhead(base.Schedule),
			res.Schedule.NumActiveComms())
	}

	// Two processors crash at the same instant; the K=2 schedule still
	// delivers every output with no timeout waits.
	res, err := ftsched.ScheduleFT2(g, a, sp, 2, ftsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sc := ftsched.Scenario{Failures: []ftsched.Failure{
		{Proc: "P1", Iteration: 0, At: 1.5},
		{Proc: "P3", Iteration: 0, At: 1.5},
	}}
	sr, err := ftsched.Simulate(res.Schedule, g, a, sp, sc, ftsched.SimConfig{Iterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, ir := range sr.Iterations {
		fmt.Printf("iteration %d under double failure: response=%.2f outputs-delivered=%v timeouts=%d\n",
			ir.Index, ir.ResponseTime, ir.Completed, ir.TimeoutsFired)
	}
}

// buildGaussian builds the elimination-phase task graph on an n x n system,
// bracketed by an input and an output extio.
func buildGaussian(n int) *ftsched.Graph {
	g := ftsched.NewGraph(fmt.Sprintf("gauss_%d", n))
	must(g.AddExtIO("in"))
	must(g.AddExtIO("out"))
	name := func(k, i int) string { return fmt.Sprintf("upd%d_%d", k, i) }
	for k := 0; k < n-1; k++ {
		piv := fmt.Sprintf("piv%d", k)
		must(g.AddComp(piv))
		if k == 0 {
			must(g.Connect("in", piv))
		} else {
			must(g.Connect(name(k-1, k), piv))
		}
		for i := k + 1; i < n; i++ {
			must(g.AddComp(name(k, i)))
			must(g.Connect(piv, name(k, i)))
			if k > 0 {
				must(g.Connect(name(k-1, i), name(k, i)))
			}
		}
	}
	must(g.Connect(name(n-2, n-1), "out"))
	return g
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
