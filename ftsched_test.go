package ftsched_test

import (
	"strings"
	"testing"

	"ftsched"
)

// buildProblem assembles a small problem through the public API only.
func buildProblem(t *testing.T) (*ftsched.Graph, *ftsched.Architecture, *ftsched.Spec) {
	t.Helper()
	g := ftsched.NewGraph("app")
	for _, step := range []struct {
		kind string
		name string
	}{
		{"extio", "in"}, {"comp", "f"}, {"comp", "g"}, {"extio", "out"},
	} {
		var err error
		switch step.kind {
		case "extio":
			err = g.AddExtIO(step.name)
		default:
			err = g.AddComp(step.name)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"in", "f"}, {"f", "g"}, {"g", "out"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	a := ftsched.NewArchitecture("board")
	for _, p := range []string{"P1", "P2"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddBus("can", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	sp := ftsched.NewSpec()
	for _, op := range g.OpNames() {
		for _, p := range []string{"P1", "P2"} {
			if err := sp.SetExec(op, p, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range g.Edges() {
		if err := sp.SetComm(e.Key(), "can", 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return g, a, sp
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g, a, sp := buildProblem(t)
	res, err := ftsched.ScheduleFT1(g, a, sp, 1, ftsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g, a, sp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Schedule.Gantt(), "ft1 schedule") {
		t.Error("Gantt rendering")
	}
	sr, err := ftsched.Simulate(res.Schedule, g, a, sp,
		ftsched.SingleFailure("P1", 0, 0), ftsched.SimConfig{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range sr.Iterations {
		if !ir.Completed {
			t.Errorf("iteration %d lost outputs", ir.Index)
		}
	}
}

func TestPublicAPIAllHeuristics(t *testing.T) {
	g, a, sp := buildProblem(t)
	for _, h := range []ftsched.Heuristic{ftsched.Basic, ftsched.FT1, ftsched.FT2} {
		res, err := ftsched.ScheduleWith(h, g, a, sp, 1, ftsched.Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if res.Schedule.Makespan() <= 0 {
			t.Errorf("%v: empty schedule", h)
		}
	}
	tuned, err := ftsched.ScheduleTuned(ftsched.Basic, g, a, sp, 0, 5, ftsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	det, err := ftsched.ScheduleBasic(g, a, sp, ftsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Schedule.Makespan() > det.Schedule.Makespan() {
		t.Error("tuned schedule must be at least as short as the deterministic one")
	}
}

func TestPublicAPIInfeasible(t *testing.T) {
	g, a, sp := buildProblem(t)
	if _, err := ftsched.ScheduleFT1(g, a, sp, 5, ftsched.Options{}); err == nil {
		t.Fatal("want infeasibility error")
	}
	_ = ftsched.Inf
	_ = ftsched.ErrInfeasible
}
