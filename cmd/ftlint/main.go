// Command ftlint is the multichecker for ftsched's domain-specific static
// analyzers: mapiter, nondet, infwcet, obssafe, and errprop (see DESIGN.md
// §10). It runs in two modes:
//
// Standalone, over package patterns:
//
//	ftlint ./...
//
// As a go vet tool:
//
//	go vet -vettool=$(which ftlint) ./...
//
// Both modes check only shipped sources: the invariants bind the scheduler,
// not its tests, so _test.go files are exempt.
//
// Exit status: 0 with no findings, 1 when diagnostics were reported, 2 on
// operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/load"
	"ftsched/internal/analysis/passes"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ftlint", flag.ContinueOnError)
	version := fs.String("V", "", "print version and exit (go vet protocol)")
	flagsJSON := fs.Bool("flags", false, "print the tool's analyzer flags as JSON and exit (go vet protocol)")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ftlint [-C dir] [packages]\n       go vet -vettool=$(which ftlint) [packages]\n\nAnalyzers:\n")
		for _, a := range passes.All() {
			fmt.Fprintf(fs.Output(), "  %-8s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The go command identifies vet tools by this line and caches on it;
		// bump the version when analyzer behavior changes.
		fmt.Printf("ftlint version devel v1 buildID=ftlint-v1\n")
		return 0
	}
	if *flagsJSON {
		// The go command asks for the tool's flag schema before driving it;
		// the suite exposes no per-analyzer flags.
		fmt.Println("[]")
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0])
	}
	units, err := load.Packages(*dir, rest...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	diags, err := analysis.Check(units, passes.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
