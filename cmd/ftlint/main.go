// Command ftlint is the multichecker for ftsched's domain-specific static
// analyzers (see DESIGN.md §10, §12, and §15): the directive-aware suite of
// mapiter, nondet, infwcet, obssafe, errprop, the CFG-based passes
// goroutinecapture, sharedmut, indexbound, determorder, and the
// interprocedural contract passes epochpurity, cancelpoll, and hotalloc,
// which ride the package-local call graph and function-summary facts
// engine. It runs in two modes:
//
// Standalone, over package patterns:
//
//	ftlint ./...
//
// As a go vet tool (function summaries cross package boundaries through the
// vet facts files):
//
//	go vet -vettool=$(which ftlint) ./...
//
// Both modes check only shipped sources: the invariants bind the scheduler,
// not its tests, so _test.go files are exempt.
//
// Standalone mode also supports:
//
//	-fix             apply suggested fixes (gofmt-clean, atomic per fix)
//	-sarif file      write a SARIF 2.1.0 report ("-" for stdout)
//	-baseline file   report and gate only on findings absent from the baseline
//	-baseline-write file   record the current findings as the new baseline
//	-list            print the analyzer names and one-line docs
//	-analyzers a,b   run only the named analyzers; stale-directive checks
//	                 follow the selection
//
// Exit status: 0 with no findings, 1 when diagnostics were reported, 2 on
// operational errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/load"
	"ftsched/internal/analysis/passes"
	"ftsched/internal/analysis/summary"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// checkFlagCombos rejects contradictory flag combinations and unknown
// analyzer names up front, before any packages are loaded. It returns the
// selected analyzer set (the full suite when analyzers is empty).
func checkFlagCombos(fix bool, sarif, baseline, baselineWrite, analyzers string) ([]*analysis.Analyzer, error) {
	if fix && sarif == "-" {
		return nil, errors.New("-fix rewrites the tree the SARIF report describes; write the report to a file, or run the two modes separately")
	}
	if baseline != "" && baselineWrite != "" {
		return nil, errors.New("-baseline and -baseline-write are mutually exclusive: gate against the old baseline or record a new one, not both")
	}
	selected, err := passes.Select(analyzers)
	if err != nil {
		return nil, err
	}
	return selected, nil
}

func run(args []string) int {
	fs := flag.NewFlagSet("ftlint", flag.ContinueOnError)
	version := fs.String("V", "", "print version and exit (go vet protocol)")
	flagsJSON := fs.Bool("flags", false, "print the tool's analyzer flags as JSON and exit (go vet protocol)")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files")
	sarif := fs.String("sarif", "", "write a SARIF 2.1.0 report to `file` (\"-\" for stdout)")
	baseline := fs.String("baseline", "", "suppress findings recorded in baseline `file`; gate on the rest")
	baselineWrite := fs.String("baseline-write", "", "record the current findings as baseline `file` and exit 0")
	list := fs.Bool("list", false, "print the analyzer names and one-line docs, then exit")
	analyzers := fs.String("analyzers", "", "run only the named analyzers (comma-separated); stale-directive checks follow the selection")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ftlint [-C dir] [-fix] [-list] [-analyzers a,b] [-sarif file] [-baseline file | -baseline-write file] [packages]\n       go vet -vettool=$(which ftlint) [packages]\n\nAnalyzers:\n")
		for _, a := range passes.All() {
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The go command identifies vet tools by this line and caches on it;
		// bump the version when analyzer behavior changes.
		fmt.Printf("ftlint version devel v3 buildID=ftlint-v3\n")
		return 0
	}
	if *flagsJSON {
		// The go command asks for the tool's flag schema before driving it;
		// the suite exposes no per-analyzer flags.
		fmt.Println("[]")
		return 0
	}
	if *list {
		for _, a := range passes.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := checkFlagCombos(*fix, *sarif, *baseline, *baselineWrite, *analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0])
	}
	units, err := load.Packages(*dir, rest...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	// Interprocedural facts: compute summaries for every loaded unit in
	// dependency order, mirroring what the vet facts protocol provides.
	summary.AttachAll(units)
	diags, err := analysis.Check(units, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}

	if *baselineWrite != "" {
		if err := analysis.WriteBaseline(*baselineWrite, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ftlint: recorded %d finding(s) in %s\n", len(diags), *baselineWrite)
		return 0
	}
	if *baseline != "" {
		b, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
		fresh, stale := b.Filter(diags)
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "ftlint: %d baseline entr%s matched nothing (fixed findings?); regenerate with -baseline-write\n",
				stale, plural(stale, "y", "ies"))
		}
		diags = fresh
	}

	if *sarif != "" {
		var w io.Writer = os.Stdout
		if *sarif != "-" {
			f, err := os.Create(*sarif)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftlint:", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := analysis.WriteSARIF(w, diags, selected); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
	}

	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if *fix {
		res, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ftlint: applied %d fix(es) to %d file(s), skipped %d overlapping\n",
			res.Applied, len(res.Changed), res.Skipped)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
