package main

// In-process tests of the CLI entry points. The black-box tests in
// main_test.go exec the built binary and drive go vet for real; these call
// run and vetUnit directly so the protocol corners (bad flags, malformed
// vet.cfg, typecheck failures) are exercised without a subprocess.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVersionAndFlagsProbes(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Errorf("run(-V=full) = %d, want 0", got)
	}
	if got := run([]string{"-flags"}); got != 0 {
		t.Errorf("run(-flags) = %d, want 0", got)
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}); got != 2 {
		t.Errorf("run with an unknown flag = %d, want 2", got)
	}
}

func TestRunStandaloneExitCodes(t *testing.T) {
	if got := run([]string{"-C", "testdata/badmod", "./..."}); got != 1 {
		t.Errorf("run over the bad module = %d, want 1", got)
	}
	if got := run([]string{"-C", "testdata/badmod", "./util"}); got != 0 {
		t.Errorf("run over the clean package = %d, want 0", got)
	}
	if got := run([]string{"-C", "testdata/badmod", "./does-not-exist"}); got != 2 {
		t.Errorf("run over a missing pattern = %d, want 2", got)
	}
}

func TestRunRejectsContradictoryFlags(t *testing.T) {
	if got := run([]string{"-fix", "-sarif", "-", "./..."}); got != 2 {
		t.Errorf("run(-fix -sarif -) = %d, want 2", got)
	}
	if got := run([]string{"-baseline", "a.json", "-baseline-write", "b.json", "./..."}); got != 2 {
		t.Errorf("run(-baseline -baseline-write) = %d, want 2", got)
	}
	// -fix with SARIF to a file is fine; only stdout streaming conflicts.
	if _, err := checkFlagCombos(true, "report.sarif", "", "", ""); err != nil {
		t.Errorf("checkFlagCombos(-fix -sarif report.sarif) = %v, want nil", err)
	}
}

func TestRunSarifReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.sarif")
	if got := run([]string{"-C", "testdata/badmod", "-sarif", path, "./..."}); got != 1 {
		t.Fatalf("run(-sarif) over the bad module = %d, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"2.1.0"`, `"ftlint"`, `"mapiter"`, `"nondet"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SARIF report missing %s", want)
		}
	}
}

func TestRunBaselineGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if got := run([]string{"-C", "testdata/badmod", "-baseline-write", path, "./..."}); got != 0 {
		t.Fatalf("run(-baseline-write) = %d, want 0", got)
	}
	if got := run([]string{"-C", "testdata/badmod", "-baseline", path, "./..."}); got != 0 {
		t.Errorf("run(-baseline) with a fresh baseline = %d, want 0 (all findings absorbed)", got)
	}
	if got := run([]string{"-C", "testdata/badmod", "-baseline", filepath.Join(t.TempDir(), "absent.json"), "./..."}); got != 2 {
		t.Errorf("run(-baseline) with a missing file = %d, want 2", got)
	}
}

// writeVetCfg marshals cfg into dir and returns the path, dispatching through
// run's .cfg argument detection like the go command does.
func writeVetCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeSrc(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVetUnitMissingConfig(t *testing.T) {
	if got := vetUnit(filepath.Join(t.TempDir(), "absent.cfg")); got != 2 {
		t.Errorf("vetUnit on a missing config = %d, want 2", got)
	}
}

func TestVetUnitMalformedConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	if got := vetUnit(path); got != 2 {
		t.Errorf("vetUnit on malformed JSON = %d, want 2", got)
	}
}

func TestVetUnitVetxOnlyWritesFacts(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeVetCfg(t, dir, vetConfig{ID: "p", ImportPath: "p", VetxOnly: true, VetxOutput: vetx})
	if got := run([]string{cfg}); got != 0 {
		t.Fatalf("vetx-only unit = %d, want 0", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestVetUnitFlagsCriticalPackage(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "core.go",
		"package core\n\nfunc f(m map[string]int) string {\n\tfor k := range m {\n\t\treturn k\n\t}\n\treturn \"\"\n}\n")
	cfg := writeVetCfg(t, dir, vetConfig{ImportPath: "badmod/core", GoFiles: []string{src}})
	if got := vetUnit(cfg); got != 1 {
		t.Errorf("unit with a mapiter violation = %d, want 1", got)
	}
}

func TestVetUnitCleanPackage(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "util.go", "package util\n\nfunc Add(a, b int) int { return a + b }\n")
	cfg := writeVetCfg(t, dir, vetConfig{ImportPath: "badmod/util", GoFiles: []string{src}})
	if got := vetUnit(cfg); got != 0 {
		t.Errorf("clean unit = %d, want 0", got)
	}
}

func TestVetUnitParseFailure(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "broken.go", "package p\nfunc {\n")
	if got := vetUnit(writeVetCfg(t, dir, vetConfig{ImportPath: "p", GoFiles: []string{src}})); got != 2 {
		t.Errorf("unparseable unit = %d, want 2", got)
	}
	lenient := vetConfig{ImportPath: "p", GoFiles: []string{src}, SucceedOnTypecheckFailure: true}
	if got := vetUnit(writeVetCfg(t, dir, lenient)); got != 0 {
		t.Errorf("unparseable unit with SucceedOnTypecheckFailure = %d, want 0", got)
	}
}

func TestVetUnitTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "bad.go", "package p\n\nvar x undefinedType\n")
	if got := vetUnit(writeVetCfg(t, dir, vetConfig{ImportPath: "p", GoFiles: []string{src}})); got != 2 {
		t.Errorf("ill-typed unit = %d, want 2", got)
	}
	lenient := vetConfig{ImportPath: "p", GoFiles: []string{src}, SucceedOnTypecheckFailure: true}
	if got := vetUnit(writeVetCfg(t, dir, lenient)); got != 0 {
		t.Errorf("ill-typed unit with SucceedOnTypecheckFailure = %d, want 0", got)
	}
}

func TestVetUnitMissingExportData(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "imp.go", "package p\n\nimport \"q\"\n\nvar _ = q.X\n")
	cfg := writeVetCfg(t, dir, vetConfig{
		ImportPath: "p",
		GoFiles:    []string{src},
		ImportMap:  map[string]string{"q": "example.com/q"},
	})
	if got := vetUnit(cfg); got != 2 {
		t.Errorf("unit with unresolvable import = %d, want 2", got)
	}
}
