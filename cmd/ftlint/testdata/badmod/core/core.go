// Package core seeds known violations for the ftlint CLI test: its path
// base makes it determinism-critical, an engine package, and home to the
// epochpurity and hotalloc roots.
package core

import (
	"fmt"
	"time"

	"badmod/util"
)

// Stamp reads the wall clock inside a critical package.
func Stamp() time.Time {
	return time.Now()
}

// First leaks map iteration order through an early return.
func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// schedState mirrors the scheduler's epoch-guarded commit state.
type schedState struct {
	mutEpoch int
	deliv    int
}

type builder struct {
	state schedState
	queue []int
}

// evaluateStep is the epochpurity root; bump mutates epoch-guarded state one
// call below it.
func (b *builder) evaluateStep() int {
	b.bump()
	return b.state.deliv
}

func (b *builder) bump() {
	b.state.deliv++
}

// drain is an input-dependent loop that never reaches a Cancel poll.
func (b *builder) drain() {
	for len(b.queue) > 0 {
		b.bump()
		b.queue = b.queue[1:]
	}
}

// evaluateOne is the hotalloc root: tag allocates one call below it, and the
// util.Pad call site demonstrates allocation facts crossing the package
// boundary.
func evaluateOne(id int) string {
	return tag(id) + util.Pad(id)
}

func tag(id int) string {
	return fmt.Sprintf("op-%d", id)
}