// Package core seeds known violations for the ftlint CLI test: its path
// base makes it determinism-critical.
package core

import "time"

// Stamp reads the wall clock inside a critical package.
func Stamp() time.Time {
	return time.Now()
}

// First leaks map iteration order through an early return.
func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
