// Package util is clean on its own; the CLI test asserts a zero exit over
// it. Pad allocates, and the summary facts engine carries that fact into
// importing packages, where hotalloc flags hot-path call sites.
package util

import "fmt"

// Add is trivially deterministic.
func Add(a, b int) int {
	return a + b
}

// Pad renders a right-aligned id; each call allocates.
func Pad(id int) string {
	return fmt.Sprintf("%4d", id)
}
