// Package util is clean; the CLI test asserts a zero exit over it.
package util

// Add is trivially deterministic.
func Add(a, b int) int {
	return a + b
}
