package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// builtTool is the ftlint binary compiled once in TestMain.
var builtTool string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ftlint-test-")
	if err != nil {
		panic(err)
	}
	builtTool = filepath.Join(dir, "ftlint")
	if out, err := exec.Command("go", "build", "-o", builtTool, ".").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("building ftlint: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestStandaloneFlagsBadModule(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "./...")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	for _, want := range []string{
		"core/core.go",
		"[nondet] wall-clock read time.Now",
		"[mapiter] iteration over map m",
		"early return publishes",
		"[epochpurity] evaluation path from (*builder).evaluateStep reaches a mutation of epoch-guarded state: writes schedState.deliv via (*builder).bump",
		"[cancelpoll] input-dependent loop never reaches a cancellation poll",
		"[hotalloc] allocation on a hot path (reachable from the per-step entry points): fmt.Sprintf call",
		"[hotalloc] hot-path call to badmod/util.Pad, which allocates (util.go:15: fmt.Sprintf call)",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStandaloneCleanPackageExitsZero(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "./util")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ftlint over a clean package failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("expected no output, got:\n%s", out)
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := exec.Command(builtTool, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "ftlint version devel v3 buildID=ftlint-v3" {
		t.Errorf("version line = %q", got)
	}
}

func TestGoVetMode(t *testing.T) {
	cmd := exec.Command("go", "vet", "-vettool="+builtTool, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet over the bad module succeeded; output:\n%s", out)
	}
	for _, want := range []string{
		"[nondet] wall-clock read time.Now",
		"[mapiter] iteration over map m",
		"[epochpurity] evaluation path from (*builder).evaluateStep reaches a mutation of epoch-guarded state",
		"[cancelpoll] input-dependent loop never reaches a cancellation poll",
		// The cross-package finding proves allocation facts ride the vetx
		// files go vet hands the tool for imported packages.
		"[hotalloc] hot-path call to badmod/util.Pad, which allocates",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

func TestListFlag(t *testing.T) {
	out, err := exec.Command(builtTool, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, want := range []string{
		"cancelpoll", "determorder", "epochpurity", "errprop", "goroutinecapture",
		"hotalloc", "indexbound", "infwcet", "mapiter", "nondet", "obssafe", "sharedmut",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("-list output missing analyzer %q:\n%s", want, out)
		}
	}
}

func TestAnalyzersSelection(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "-analyzers", "cancelpoll,epochpurity", "./...")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"[cancelpoll]", "[epochpurity]"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("selected analyzer %s missing from output:\n%s", want, out)
		}
	}
	for _, absent := range []string{"[nondet]", "[mapiter]", "[hotalloc]"} {
		if strings.Contains(string(out), absent) {
			t.Errorf("deselected analyzer %s reported:\n%s", absent, out)
		}
	}
}

func TestAnalyzersUnknownNameExitsTwo(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "-analyzers", "nope", "./...")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Fatalf("exit code %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "unknown analyzer") || !strings.Contains(string(out), "cancelpoll") {
		t.Errorf("error should name the unknown analyzer and list valid ones:\n%s", out)
	}
}

// TestAnalyzersFilterKeepsForeignDirectivesFresh is the regression test for
// stale-directive detection under -analyzers: a directive belonging to a
// deselected pass must not be reported stale, because the pass that would
// have matched it never ran.
func TestAnalyzersFilterKeepsForeignDirectivesFresh(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Dir(filepath.Join(dir, rel)), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, rel), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module stalemod\n\ngo 1.22\n")
	write("core/core.go", `// Package core carries one sanctioned nondet finding.
package core

import "time"

// Stamp is sanctioned: the timestamp is for logging, not scheduling.
func Stamp() time.Time {
	return time.Now() //ftlint:allow-nondet wall time feeds a log line, never the schedule
}
`)

	// Full suite: the directive suppresses the nondet finding; exit 0.
	cmd := exec.Command(builtTool, "-C", dir, "./...")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("full-suite exit code %d, want 0\n%s", code, out)
	}

	// nondet deselected: its directive must not be reported stale.
	cmd = exec.Command(builtTool, "-C", dir, "-analyzers", "mapiter", "./...")
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("filtered exit code %d, want 0\n%s", code, out)
	}
	if strings.Contains(string(out), "stale") {
		t.Errorf("directive for deselected pass reported stale:\n%s", out)
	}

	// Control: with nondet selected and the finding gone, the directive IS
	// stale — prove the detector still fires when its pass runs.
	write("core/core.go", `// Package core no longer needs its directive.
package core

// Stamp is a fixed epoch now.
func Stamp() int64 {
	return 0 //ftlint:allow-nondet wall time feeds a log line, never the schedule
}
`)
	cmd = exec.Command(builtTool, "-C", dir, "-analyzers", "nondet", "./...")
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("stale-control exit code %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "stale") {
		t.Errorf("expected a stale-directive report with nondet selected:\n%s", out)
	}
}

func TestUnknownPatternExitsTwo(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "./does-not-exist")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Fatalf("exit code %d, want 2\n%s", code, out)
	}
}

// fixableModule writes a throwaway module whose every finding carries a
// suggested fix: an unsorted key accumulator (mapiter sort fix) and an
// unguarded externally-tainted index (indexbound bounds-guard fix).
func fixableModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "core"), 0o777); err != nil {
		t.Fatal(err)
	}
	write := func(rel, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, rel), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixmod\n\ngo 1.22\n")
	write("core/core.go", `// Package core carries fixable findings only.
package core

import "sort"

// Keys accumulates map keys without sorting before publication.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Lookup indexes with an externally tainted index and no bounds check.
func Lookup(tbl []string, i int) string {
	return tbl[i]
}

var _ = sort.Strings
`)
	return dir
}

func TestFixRoundTrip(t *testing.T) {
	dir := fixableModule(t)

	// First pass: findings exist and the fixes land.
	cmd := exec.Command(builtTool, "-C", dir, "-fix", "./...")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("ftlint -fix exit code %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "applied 2 fix(es)") {
		t.Fatalf("expected two applied fixes:\n%s", out)
	}

	// The rewritten file is gofmt-clean.
	gofmt := exec.Command("gofmt", "-l", dir)
	fmtOut, err := gofmt.CombinedOutput()
	if err != nil {
		t.Fatalf("gofmt -l: %v\n%s", err, fmtOut)
	}
	if strings.TrimSpace(string(fmtOut)) != "" {
		t.Errorf("fixed tree is not gofmt-clean:\n%s", fmtOut)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "core", "core.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sort.Strings(keys)", "i < 0 || i >= len(tbl)"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q:\n%s", want, fixed)
		}
	}

	// Second pass: the fixed tree re-lints to zero.
	cmd = exec.Command(builtTool, "-C", dir, "./...")
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("re-lint exit code %d, want 0\n%s", code, out)
	}

	// Third pass with -fix again: idempotent, nothing left to rewrite.
	before := string(fixed)
	cmd = exec.Command(builtTool, "-C", dir, "-fix", "./...")
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("idempotent -fix exit code %d, want 0\n%s", code, out)
	}
	after, err := os.ReadFile(filepath.Join(dir, "core", "core.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != before {
		t.Errorf("second -fix run changed the file:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}
