package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// builtTool is the ftlint binary compiled once in TestMain.
var builtTool string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ftlint-test-")
	if err != nil {
		panic(err)
	}
	builtTool = filepath.Join(dir, "ftlint")
	if out, err := exec.Command("go", "build", "-o", builtTool, ".").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("building ftlint: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestStandaloneFlagsBadModule(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "./...")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	for _, want := range []string{
		"core/core.go",
		"[nondet] wall-clock read time.Now",
		"[mapiter] iteration over map m",
		"early return publishes",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStandaloneCleanPackageExitsZero(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "./util")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ftlint over a clean package failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("expected no output, got:\n%s", out)
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := exec.Command(builtTool, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "ftlint version devel v1 buildID=ftlint-v1" {
		t.Errorf("version line = %q", got)
	}
}

func TestGoVetMode(t *testing.T) {
	cmd := exec.Command("go", "vet", "-vettool="+builtTool, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet over the bad module succeeded; output:\n%s", out)
	}
	for _, want := range []string{"[nondet] wall-clock read time.Now", "[mapiter] iteration over map m"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownPatternExitsTwo(t *testing.T) {
	cmd := exec.Command(builtTool, "-C", "testdata/badmod", "./does-not-exist")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Fatalf("exit code %d, want 2\n%s", code, out)
	}
}
