package main

// go vet -vettool support: the go command invokes the tool once per package
// with a JSON config file describing the unit — source files, the import
// map, and compiler export data for every dependency. This file implements
// that unit-checker protocol on the standard library: types come from the gc
// export data the go command already built, so no re-typechecking of
// dependencies happens.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/passes"
)

// vetConfig mirrors the fields of the go command's vet.cfg this tool needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit described by cfgPath and returns the
// process exit code.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The facts file must exist for the go command to cache the run; the
	// suite exchanges no facts between packages, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
		files = append(files, f)
	}

	// Resolve imports through the export data the go command supplied,
	// translating vendored/module paths through ImportMap first.
	lookup := func(path string) (io.ReadCloser, error) {
		if real, ok := cfg.ImportMap[path]; ok {
			path = real
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}

	unit := &analysis.Unit{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags, err := analysis.Check([]*analysis.Unit{unit}, passes.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
