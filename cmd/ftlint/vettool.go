package main

// go vet -vettool support: the go command invokes the tool once per package
// with a JSON config file describing the unit — source files, the import
// map, compiler export data for every dependency, and (since v3) the facts
// files of already-analyzed dependencies. This file implements that
// unit-checker protocol on the standard library: types come from the gc
// export data the go command already built, and the interprocedural
// summaries of internal/analysis/summary ride the facts (.vetx) files, so
// taint crosses package boundaries exactly as it does in standalone mode.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/passes"
	"ftsched/internal/analysis/summary"
)

// vetConfig mirrors the fields of the go command's vet.cfg this tool needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit described by cfgPath and returns the
// process exit code.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	unit, info := loadVetUnit(&cfg)
	// The facts file must exist for the go command to cache the run. Facts
	// are an optimization, never a correctness dependency: a package that
	// failed to load (or a GOROOT dependency, whose summaries no analyzer
	// consults) publishes an empty fact set.
	if cfg.VetxOutput != "" {
		payload := []byte{}
		if info != nil {
			if enc, err := summary.EncodeFacts(info.Export()); err == nil {
				payload = enc
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if unit == nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return 2
	}

	diags, err := analysis.Check([]*analysis.Unit{unit}, passes.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadVetUnit parses and type-checks the unit and computes its summary
// facts. Returns (nil, nil) when the unit cannot be loaded — the caller
// decides whether that is fatal (a GOROOT or broken package prints its own
// error only in non-VetxOnly mode).
func loadVetUnit(cfg *vetConfig) (*analysis.Unit, *summary.Info) {
	if underGOROOT(cfg.Dir) {
		// Standard-library dependency: the go command asks for its facts,
		// but no ftlint analyzer consults stdlib summaries. Skip the
		// re-typecheck entirely.
		return nil, nil
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if !cfg.VetxOnly && !cfg.SucceedOnTypecheckFailure {
				fmt.Fprintln(os.Stderr, "ftlint:", err)
			}
			return nil, nil
		}
		files = append(files, f)
	}

	// Resolve imports through the export data the go command supplied,
	// translating vendored/module paths through ImportMap first.
	lookup := func(path string) (io.ReadCloser, error) {
		if real, ok := cfg.ImportMap[path]; ok {
			path = real
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	typesInfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, typesInfo)
	if err != nil {
		if !cfg.VetxOnly && !cfg.SucceedOnTypecheckFailure {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
		}
		return nil, nil
	}

	// Fold in the facts of every dependency the go command already ran the
	// tool over. Dependency facts are cumulative (each package re-exports
	// its imports' summaries), so one level of files carries the transitive
	// closure.
	imported := map[string]*summary.Summary{}
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		facts, err := summary.DecodeFacts(data)
		if err != nil {
			continue
		}
		for name, s := range facts {
			imported[name] = s
		}
	}
	shipped := analysis.NonTestFiles(fset, files)
	info := summary.Compute(fset, shipped, pkg, typesInfo, imported)

	unit := &analysis.Unit{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: typesInfo, Facts: info}
	return unit, info
}

// underGOROOT reports whether dir lies inside the standard library source
// tree.
func underGOROOT(dir string) bool {
	groot := build.Default.GOROOT
	return groot != "" && dir != "" && strings.HasPrefix(dir, groot)
}
