package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bootDaemon starts run() on a free port and returns the base URL and the
// channel its exit error lands on.
func bootDaemon(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	ready := make(chan string, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	go func() { done <- run(args, io.Discard, ready) }()
	select {
	case addr := <-ready:
		// The addr-file must agree with the bound address.
		data, err := os.ReadFile(addrFile)
		if err != nil {
			t.Fatalf("addr-file: %v", err)
		}
		if got := strings.TrimSpace(string(data)); got != addr {
			t.Fatalf("addr-file %q != bound address %q", got, addr)
		}
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil
	}
}

// TestDaemonEndToEnd boots the daemon in-process and drives the same
// round-trip the CI e2e smoke job performs: healthz, schedule against the
// golden fixture, certify, metrics, then a graceful SIGTERM drain.
func TestDaemonEndToEnd(t *testing.T) {
	base, done := bootDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	reqBody, err := os.ReadFile("testdata/schedule_request.json")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/schedule_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	post := func(url string) (int, []byte) {
		resp, err := http.Post(url, "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	status, out := post(base + "/v1/schedule?format=cli")
	if status != http.StatusOK {
		t.Fatalf("schedule: %d %s", status, out)
	}
	if !bytes.Equal(out, golden) {
		t.Errorf("schedule response differs from the golden CLI fixture:\n got: %s\nwant: %s", out, golden)
	}

	status, out = post(base + "/v1/certify")
	if status != http.StatusOK {
		t.Fatalf("certify: %d %s", status, out)
	}
	if !bytes.Contains(out, []byte(`"Certified": true`)) {
		t.Errorf("certify response does not certify: %s", out)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("ftsched_serve_requests")) {
		t.Errorf("metrics output lacks serve counters:\n%s", metrics)
	}

	// Graceful drain: SIGTERM is caught by the daemon's handler (the test
	// process survives because signal.Notify overrides the default action).
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s")
	}
}

// TestDaemonFlagErrors: bad invocations fail fast.
func TestDaemonFlagErrors(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address"}, io.Discard, nil); err == nil {
		t.Error("bad -addr did not fail")
	}
	if err := run([]string{"positional"}, io.Discard, nil); err == nil {
		t.Error("positional arguments did not fail")
	}
}
