// Command ftschedd serves the deterministic scheduling, certification, and
// simulation engines over HTTP/JSON — scheduling as a service.
//
//	ftschedd -addr 127.0.0.1:8080 -workers 8
//
// Endpoints:
//
//	GET  /healthz                 liveness (503 while draining)
//	GET  /metrics                 Prometheus text format (internal/obs counters)
//	POST /v1/schedule[?format=cli]
//	POST /v1/certify
//	POST /v1/simulate
//	POST /v1/{schedule,certify,simulate}/batch
//
// With ?format=cli the schedule response body is byte-identical to what
// `ftsched -format json` prints for the same inputs. On SIGINT/SIGTERM the
// daemon flips /healthz to 503 and drains in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"

	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftsched/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ftschedd:", err)
		os.Exit(1)
	}
}

// run boots the daemon. A non-nil ready channel receives the bound address
// once the listener is up (used by tests).
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("ftschedd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address; port 0 picks a free port")
		addrFile     = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		workers      = fs.Int("workers", 0, "global engine-worker budget shared by all requests; 0 uses GOMAXPROCS")
		cacheEntries = fs.Int("cache", 0, "response cache capacity in outcomes; 0 uses 4096, negative disables")
		timeout      = fs.Duration("timeout", 0, "default per-request timeout, queue wait included; 0 uses 60s, negative disables")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
		maxBody      = fs.Int64("max-body", 0, "request body cap in bytes; 0 uses 16 MiB")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write addr-file: %w", err)
		}
	}
	fmt.Fprintf(out, "ftschedd: listening on %s\n", bound)
	if ready != nil {
		ready <- bound
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "ftschedd: %v, draining\n", sig)
	}

	// Graceful drain: advertise unreadiness first so load balancers stop
	// sending traffic, then let in-flight requests finish.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(out, "ftschedd: drained")
	return nil
}
