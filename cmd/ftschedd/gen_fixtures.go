//go:build ignore

// gen_fixtures regenerates the e2e smoke fixtures in testdata/:
//
//	go run gen_fixtures.go
//
// schedule_request.json is the POST /v1/schedule body for the paper's bus
// example (FT1, k=1); schedule_golden.json is the byte-exact response the
// server must return with ?format=cli — the same bytes the ftsched CLI
// prints with `ftsched -demo -heuristic ft1 -k 1 -format json`.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gen_fixtures:", err)
		os.Exit(1)
	}
}

func run() error {
	inst := paperex.BusInstance()
	g, err := inst.Graph.MarshalJSON()
	if err != nil {
		return err
	}
	a, err := inst.Arch.MarshalJSON()
	if err != nil {
		return err
	}
	sp, err := inst.Spec.MarshalJSON()
	if err != nil {
		return err
	}
	req := map[string]any{
		"graph":     json.RawMessage(g),
		"arch":      json.RawMessage(a),
		"spec":      json.RawMessage(sp),
		"heuristic": "ft1",
		"k":         inst.K,
	}
	reqJSON, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return err
	}
	reqJSON = append(reqJSON, '\n')

	res, err := core.ScheduleTuned(core.FT1, inst.Graph, inst.Arch, inst.Spec, inst.K, 0, core.Options{})
	if err != nil {
		return err
	}
	compact, err := res.Schedule.MarshalJSON()
	if err != nil {
		return err
	}
	var golden bytes.Buffer
	if err := json.Indent(&golden, compact, "", "  "); err != nil {
		return err
	}
	golden.WriteByte('\n')

	if err := os.MkdirAll("testdata", 0o755); err != nil {
		return err
	}
	if err := os.WriteFile("testdata/schedule_request.json", reqJSON, 0o644); err != nil {
		return err
	}
	return os.WriteFile("testdata/schedule_golden.json", golden.Bytes(), 0o644)
}
