// Command ftsim schedules a problem and simulates its distributed executive
// under fail-stop processor failures:
//
//	ftsim -demo -heuristic ft1 -k 1 -fail P2@1:0 -iterations 3
//
// Failures are given as proc@iteration:time and may repeat for multiple
// simultaneous or staggered failures.
//
// With -campaign N it instead runs a Monte-Carlo fault campaign of N
// seed-derived scenarios against the compiled schedule and prints the
// deterministic report:
//
//	ftsim -demo -heuristic ft1 -k 1 -campaign 100000 -campaign-mix failstop=0.7,burst=0.3
//
// With -replay it re-executes a worst-offender record retained by a prior
// campaign, with a full per-iteration trace:
//
//	ftsim -demo -heuristic ft1 -k 1 -replay offender.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/report"
	"ftsched/internal/rt"
	"ftsched/internal/sim"
	"ftsched/internal/spec"
)

// failList collects repeated -fail flags.
type failList []sim.Failure

func (f *failList) String() string { return fmt.Sprint(*f) }

// Set parses proc@iteration:time for a permanent failure, or
// proc@iteration:time~iteration:time for an intermittent fail-silent outage
// with a recovery point.
func (f *failList) Set(v string) error {
	at := strings.Split(v, "@")
	if len(at) != 2 {
		return fmt.Errorf("failure %q: want proc@iteration:time[~iteration:time]", v)
	}
	spans := strings.Split(at[1], "~")
	if len(spans) > 2 {
		return fmt.Errorf("failure %q: at most one recovery point", v)
	}
	iter, t, err := parsePoint(spans[0])
	if err != nil {
		return fmt.Errorf("failure %q: %w", v, err)
	}
	fail := sim.Failure{Proc: at[0], Iteration: iter, At: t}
	if len(spans) == 2 {
		rIter, rT, err := parsePoint(spans[1])
		if err != nil {
			return fmt.Errorf("failure %q: recovery: %w", v, err)
		}
		fail.RecoverIteration, fail.RecoverAt = rIter, rT
	}
	*f = append(*f, fail)
	return nil
}

// parsePoint parses "iteration:time".
func parsePoint(s string) (int, float64, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want iteration:time, got %q", s)
	}
	iter, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad iteration: %w", err)
	}
	t, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad time: %w", err)
	}
	return iter, t, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftsim", flag.ContinueOnError)
	var fails failList
	var (
		graphPath  = fs.String("graph", "", "algorithm graph JSON file")
		archPath   = fs.String("arch", "", "architecture JSON file")
		specPath   = fs.String("spec", "", "distribution constraints JSON file")
		heuristic  = fs.String("heuristic", "ft1", "scheduler: basic, ft1, or ft2")
		k          = fs.Int("k", 1, "number of failures to tolerate")
		seeds      = fs.Int("seeds", 0, "extra randomized tie-breaking runs")
		iterations = fs.Int("iterations", 3, "iterations of the reactive loop to simulate")
		demo       = fs.Bool("demo", false, "use the paper's worked example")
		gantt      = fs.Bool("gantt", false, "also print the static schedule")
		trace      = fs.Bool("trace", false, "print each iteration's executed activities")
		deadline   = fs.Float64("deadline", 0, "real-time constraint checked per iteration (0 = none)")
		worst      = fs.Bool("worstcase", false, "exhaustively bound the response time over every tolerated failure instead of simulating -fail")
		replayPath = fs.String("replay", "", "re-execute a campaign worst-offender record (JSON file) with a full trace")
	)
	var cf campaignFlags
	fs.Int64Var(&cf.n, "campaign", 0, "run a Monte-Carlo fault campaign of this many scenarios instead of simulating -fail")
	fs.Int64Var(&cf.seed, "campaign-seed", 1, "campaign base seed; scenario i depends only on (seed, i)")
	fs.IntVar(&cf.workers, "campaign-workers", 0, "campaign worker pool size (0 = GOMAXPROCS; the report is identical at any value)")
	fs.StringVar(&cf.mix, "campaign-mix", "", "scenario class weights, e.g. failstop=0.7,burst=0.3 (default pure failstop)")
	fs.IntVar(&cf.maxFaults, "campaign-maxfaults", 1, "maximum failures per scenario")
	fs.IntVar(&cf.retain, "campaign-retain", 3, "worst-offender replay records to retain")
	fs.BoolVar(&cf.jsonOut, "campaign-json", false, "emit the campaign report as canonical JSON instead of text")
	fs.StringVar(&cf.outPath, "campaign-out", "", "write the campaign JSON report to this file")
	fs.Var(&fails, "fail", "failure as proc@iteration:time (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.n > 0 && *replayPath != "" {
		return fmt.Errorf("-campaign and -replay are mutually exclusive")
	}
	if (cf.n > 0 || *replayPath != "") && (len(fails) > 0 || *worst) {
		return fmt.Errorf("-campaign/-replay cannot be combined with -fail or -worstcase")
	}

	var h core.Heuristic
	switch *heuristic {
	case "basic":
		h = core.Basic
	case "ft1":
		h = core.FT1
	case "ft2":
		h = core.FT2
	default:
		return fmt.Errorf("unknown heuristic %q", *heuristic)
	}

	var (
		g  *graph.Graph
		a  *arch.Architecture
		sp *spec.Spec
	)
	if *demo {
		in := paperex.BusInstance()
		if h == core.FT2 {
			in = paperex.TriangleInstance()
		}
		g, a, sp = in.Graph, in.Arch, in.Spec
	} else {
		if *graphPath == "" || *archPath == "" || *specPath == "" {
			return fmt.Errorf("need -graph, -arch, and -spec (or -demo)")
		}
		g, a, sp = new(graph.Graph), new(arch.Architecture), spec.New()
		for _, l := range []struct {
			path string
			v    json.Unmarshaler
		}{{*graphPath, g}, {*archPath, a}, {*specPath, sp}} {
			data, err := os.ReadFile(l.path)
			if err != nil {
				return err
			}
			if err := l.v.UnmarshalJSON(data); err != nil {
				return fmt.Errorf("%s: %w", l.path, err)
			}
		}
	}

	res, err := core.ScheduleTuned(h, g, a, sp, *k, *seeds, core.Options{})
	if err != nil {
		return err
	}
	if *gantt {
		fmt.Fprint(out, res.Schedule.Gantt())
	}
	if cf.n > 0 || *replayPath != "" {
		m, err := sim.Compile(res.Schedule, g, a, sp)
		if err != nil {
			return err
		}
		if cf.n > 0 {
			return runCampaign(m, cf, *iterations, *k, *deadline, out)
		}
		return runReplay(m, *replayPath, out)
	}
	if *worst {
		an, err := rt.Analyze(res.Schedule, g, a, sp, *k)
		if err != nil {
			return err
		}
		tb := report.NewTable(fmt.Sprintf("worst-case analysis, %s schedule, K=%d", h, *k),
			"quantity", "value")
		tb.AddRow("failure-free response", an.FailureFree)
		tb.AddRow("worst transient response", an.WorstTransient)
		tb.AddRow("worst permanent response", an.WorstPermanent)
		tb.AddRow("scenarios checked", an.ScenariosChecked)
		tb.AddRow("all outputs delivered", an.AllDelivered)
		if *deadline > 0 {
			tb.AddRow(fmt.Sprintf("meets deadline %g", *deadline), an.MeetsDeadline(*deadline))
		}
		fmt.Fprint(out, tb.String())
		return nil
	}
	sr, err := sim.Simulate(res.Schedule, g, a, sp, sim.Scenario{Failures: fails},
		sim.Config{Iterations: *iterations, Deadline: *deadline, Trace: *trace})
	if err != nil {
		return err
	}
	headers := []string{"iteration", "transient", "response", "end", "outputs ok", "messages", "timeouts", "false detections"}
	if *deadline > 0 {
		headers = append(headers, "deadline met")
	}
	tb := report.NewTable(fmt.Sprintf("%s schedule, K=%d, %d failure(s) injected", h, *k, len(fails)), headers...)
	for _, ir := range sr.Iterations {
		row := []any{ir.Index, ir.Transient, ir.ResponseTime, ir.End, ir.Completed,
			ir.MessagesSent, ir.TimeoutsFired, ir.FalseDetections}
		if *deadline > 0 {
			row = append(row, ir.DeadlineMet)
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(out, tb.String())
	if *trace {
		for _, ir := range sr.Iterations {
			fmt.Fprintf(out, "--- iteration %d trace ---\n%s", ir.Index, sim.RenderTrace(ir.Trace))
		}
	}
	if len(sr.FailedProcs) > 0 {
		fmt.Fprintf(out, "failed processors: %s; detected: %s",
			strings.Join(sr.FailedProcs, " "), strings.Join(sr.DetectedProcs, " "))
		if len(sr.RecoveredProcs) > 0 {
			fmt.Fprintf(out, "; recovered: %s", strings.Join(sr.RecoveredProcs, " "))
		}
		fmt.Fprintln(out)
	}
	return nil
}
