package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftsched/internal/campaign"
)

func TestCampaignTextReport(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1",
		"-campaign", "2000", "-campaign-seed", "9",
		"-campaign-mix", "failstop=0.7,burst=0.3", "-campaign-maxfaults", "2",
		"-iterations", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"campaign: 2000 scenarios x 3 iterations, seed 9",
		"class failstop",
		"class burst",
		"fault-bound cross-check (k=1)",
		"CONSISTENT",
		"offender 1:",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q:\n%s", frag, s)
		}
	}
}

func TestCampaignJSONFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1",
		"-campaign", "600", "-campaign-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep campaign.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if rep.Version != campaign.ReportVersion || rep.Scenarios != 600 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestCampaignReplayRoundTrip drives the full loop: campaign writes a JSON
// report, a retained record is extracted, and -replay re-executes it with a
// trace.
func TestCampaignReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "report.json")
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1",
		"-campaign", "1500", "-campaign-seed", "4", "-campaign-maxfaults", "2",
		"-campaign-mix", "failstop=0.6,burst=0.4", "-iterations", "3",
		"-campaign-out", repPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "campaign report written to") {
		t.Fatalf("output:\n%s", out.String())
	}
	data, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep campaign.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.WorstOffenders) == 0 {
		t.Fatal("no offenders retained")
	}
	recPath := filepath.Join(dir, "offender.json")
	b, err := json.Marshal(rep.WorstOffenders[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var rout strings.Builder
	err = run([]string{"-demo", "-heuristic", "ft1", "-k", "1", "-replay", recPath}, &rout)
	if err != nil {
		t.Fatal(err)
	}
	s := rout.String()
	for _, frag := range []string{
		"replaying scenario",
		"replay of scenario",
		"iteration 0 trace",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q:\n%s", frag, s)
		}
	}
}

func TestCampaignFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-demo", "-campaign", "10", "-replay", "x.json"},
		{"-demo", "-campaign", "10", "-fail", "P2@0:0"},
		{"-demo", "-campaign", "10", "-worstcase"},
		{"-demo", "-replay", "x.json", "-fail", "P2@0:0"},
		{"-demo", "-campaign", "10", "-campaign-mix", "bogus=1"},
		{"-demo", "-replay", "/nonexistent/record.json"},
	}
	for i, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestReplayRejectsWrongVersion(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(recPath, []byte(`{"version":"bogus/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1", "-replay", recPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "record version") {
		t.Fatalf("err = %v", err)
	}
}
