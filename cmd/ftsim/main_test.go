package main

import (
	"strings"
	"testing"

	"ftsched/internal/sim"
)

func TestFailFlagParsing(t *testing.T) {
	var f failList
	if err := f.Set("P2@1:3.5"); err != nil {
		t.Fatal(err)
	}
	want := sim.Failure{Proc: "P2", Iteration: 1, At: 3.5}
	if len(f) != 1 || f[0] != want {
		t.Errorf("parsed %+v, want %+v", f, want)
	}
	for _, bad := range []string{"P2", "P2@1", "P2@x:1", "P2@1:x", "P2@1:2:3@4", "P2@1:2~", "P2@1:2~3", "P2@1:2~3:4~5:6"} {
		var g failList
		if err := g.Set(bad); err == nil {
			t.Errorf("Set(%q) should fail", bad)
		}
	}
	if f.String() == "" {
		t.Error("String should render")
	}
}

func TestIntermittentFailFlag(t *testing.T) {
	var f failList
	if err := f.Set("P2@1:0~1:4"); err != nil {
		t.Fatal(err)
	}
	want := sim.Failure{Proc: "P2", Iteration: 1, At: 0, RecoverIteration: 1, RecoverAt: 4}
	if len(f) != 1 || f[0] != want {
		t.Errorf("parsed %+v, want %+v", f, want)
	}
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1",
		"-fail", "P2@1:0~1:4", "-iterations", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recovered: P2") {
		t.Errorf("output should mention recovery:\n%s", out.String())
	}
}

func TestDemoSimulation(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1",
		"-fail", "P2@1:0", "-iterations", "3", "-gantt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"ft1 schedule, K=1", // gantt header
		"1 failure(s) injected",
		"failed processors: P2; detected: P2",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
	// The transient iteration row shows a fired timeout.
	if !strings.Contains(s, "true       10.5") {
		t.Errorf("transient response not visible:\n%s", s)
	}
}

func TestFileSimulation(t *testing.T) {
	const testdata = "../../examples/testdata/"
	var out strings.Builder
	err := run([]string{
		"-graph", testdata + "paper_graph.json",
		"-arch", testdata + "triangle_arch.json",
		"-spec", testdata + "triangle_spec.json",
		"-heuristic", "ft2", "-k", "1",
		"-fail", "P1@0:2", "-iterations", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "failed processors: P1") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestWorstCaseFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1", "-worstcase", "-deadline", "11"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"worst transient response  10.5", "all outputs delivered     true", "meets deadline 11         true"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("missing %q:\n%s", frag, out.String())
		}
	}
}

func TestTraceAndDeadlineFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1",
		"-fail", "P2@0:3", "-iterations", "1", "-trace", "-deadline", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"deadline met", "iteration 0 trace", "failover"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q:\n%s", frag, s)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-demo", "-heuristic", "warp"},
		{},
		{"-demo", "-fail", "PX@0:0"},
	}
	for i, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
