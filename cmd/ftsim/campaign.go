package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"ftsched/internal/campaign"
	"ftsched/internal/report"
	"ftsched/internal/sim"
)

// campaignFlags collects the -campaign-* knobs.
type campaignFlags struct {
	n         int64
	seed      int64
	workers   int
	mix       string
	maxFaults int
	retain    int
	jsonOut   bool
	outPath   string
}

// runCampaign executes a Monte-Carlo fault campaign against the compiled
// model and writes the report (text by default, canonical JSON with
// -campaign-json) to out or -campaign-out.
func runCampaign(m *sim.Model, cf campaignFlags, iterations, k int, deadline float64, out io.Writer) error {
	mix, err := campaign.ParseMix(cf.mix)
	if err != nil {
		return err
	}
	rep, err := campaign.Run(m, campaign.Config{
		N:          cf.n,
		Seed:       cf.seed,
		Workers:    cf.workers,
		Iterations: iterations,
		Deadline:   deadline,
		MaxFaults:  cf.maxFaults,
		K:          k,
		Mix:        mix,
		Retain:     cf.retain,
	})
	if err != nil {
		return err
	}
	if cf.outPath != "" {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(cf.outPath, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "campaign report written to %s\n", cf.outPath)
		return nil
	}
	if cf.jsonOut {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		_, err = out.Write(b)
		return err
	}
	fmt.Fprint(out, rep.Text())
	return nil
}

// runReplay re-executes a retained worst-offender record against the
// compiled model and prints the per-iteration outcome with a full trace.
func runReplay(m *sim.Model, path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec campaign.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := campaign.Replay(m, &rec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replaying scenario %d (seed %d, class %s, %d fault(s))\n",
		rec.Index, rec.Seed, rec.Class, rec.Faults)
	for _, f := range rec.Scenario.Failures {
		if f.Permanent() {
			fmt.Fprintf(out, "  fail-stop %s at iteration %d, t=%.4g\n", f.Proc, f.Iteration, f.At)
		} else {
			fmt.Fprintf(out, "  outage %s at iteration %d, t=%.4g until iteration %d, t=%.4g\n",
				f.Proc, f.Iteration, f.At, f.RecoverIteration, f.RecoverAt)
		}
	}
	for _, f := range rec.Scenario.Links {
		if f.Permanent() {
			fmt.Fprintf(out, "  link failure %s at iteration %d, t=%.4g\n", f.Link, f.Iteration, f.At)
		} else {
			fmt.Fprintf(out, "  link outage %s at iteration %d, t=%.4g until iteration %d, t=%.4g\n",
				f.Link, f.Iteration, f.At, f.RecoverIteration, f.RecoverAt)
		}
	}
	headers := []string{"iteration", "transient", "response", "end", "outputs ok", "messages", "timeouts", "false detections"}
	if rec.Deadline > 0 {
		headers = append(headers, "deadline met")
	}
	tb := report.NewTable(fmt.Sprintf("replay of scenario %d (recorded worst %.4g at iteration %d)",
		rec.Index, rec.WorstResponse, rec.WorstIteration), headers...)
	for _, ir := range res.Iterations {
		row := []any{ir.Index, ir.Transient, ir.ResponseTime, ir.End, ir.Completed,
			ir.MessagesSent, ir.TimeoutsFired, ir.FalseDetections}
		if rec.Deadline > 0 {
			row = append(row, ir.DeadlineMet)
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(out, tb.String())
	for _, ir := range res.Iterations {
		fmt.Fprintf(out, "--- iteration %d trace ---\n%s", ir.Index, sim.RenderTrace(ir.Trace))
	}
	if len(res.FailedProcs) > 0 {
		fmt.Fprintf(out, "failed processors: %s; detected: %s\n",
			strings.Join(res.FailedProcs, " "), strings.Join(res.DetectedProcs, " "))
	}
	if len(res.FailedLinks) > 0 {
		fmt.Fprintf(out, "failed links: %s\n", strings.Join(res.FailedLinks, " "))
	}
	return nil
}
