package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"ftsched/internal/serve"
)

// TestLoadGenAgainstInProcessServer runs the load generator against an
// in-process serve.Server and checks the gates the nightly load-smoke leg
// asserts: zero non-200s, at least one cache hit, and a parseable report.
func TestLoadGenAgainstInProcessServer(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 4}).Handler())
	defer ts.Close()

	outPath := filepath.Join(t.TempDir(), "report.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-url", ts.URL,
		"-requests", "12",
		"-concurrency", "4",
		"-problems", "2",
		"-ops", "8",
		"-seed", "7",
		"-out", outPath,
		"-check",
	}, &stdout)
	if err != nil {
		t.Fatalf("ftloadgen failed: %v\n%s", err, stdout.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Requests != 12 || rep.Non200 != 0 || rep.CacheHits == 0 {
		t.Errorf("report gates: requests=%d non200=%d hits=%d", rep.Requests, rep.Non200, rep.CacheHits)
	}
	if rep.LatencyMS.Max <= 0 || rep.LatencyMS.P99 > rep.LatencyMS.Max {
		t.Errorf("implausible latency summary: %+v", rep.LatencyMS)
	}
	for _, kind := range []string{"schedule", "certify", "simulate"} {
		if rep.ByKind[kind] == 0 {
			t.Errorf("no %s requests in the mix: %v", kind, rep.ByKind)
		}
	}
}

func TestLoadGenFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -url did not fail")
	}
	if err := run([]string{"-url", "http://x", "extra"}, &out); err == nil {
		t.Error("positional arguments did not fail")
	}
}
