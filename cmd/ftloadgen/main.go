// Command ftloadgen drives a running ftschedd with concurrent mixed
// schedule/certify/simulate traffic and reports the latency distribution —
// the in-repo load generator behind the nightly load-smoke CI leg.
//
//	ftloadgen -url http://127.0.0.1:8080 -requests 64 -concurrency 8
//
// The report is JSON on stdout (or -out). With -check, the run fails unless
// every request returned 200 and at least one response was a cache hit —
// the load-smoke gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ftsched/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftloadgen", flag.ContinueOnError)
	var (
		url         = fs.String("url", "", "base URL of a running ftschedd (required)")
		requests    = fs.Int("requests", 64, "total request count")
		concurrency = fs.Int("concurrency", 8, "concurrent client workers")
		problems    = fs.Int("problems", 4, "distinct generated problems; requests cycle through them")
		seed        = fs.Int64("seed", 1, "problem-generator seed")
		ops         = fs.Int("ops", 12, "operations per generated problem")
		procs       = fs.Int("procs", 3, "processors per generated problem")
		timeout     = fs.Duration("timeout", 5*time.Minute, "overall run timeout")
		outPath     = fs.String("out", "", "write the JSON report to this file instead of stdout")
		check       = fs.Bool("check", false, "exit non-zero unless all requests returned 200 and the cache hit at least once")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:     *url,
		Requests:    *requests,
		Concurrency: *concurrency,
		Problems:    *problems,
		Seed:        *seed,
		Ops:         *ops,
		Procs:       *procs,
	})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "ftloadgen: report written to %s\n", *outPath)
	} else {
		out.Write(data)
	}

	if *check {
		if rep.Non200 > 0 {
			return fmt.Errorf("check failed: %d non-200 responses (errors: %v)", rep.Non200, rep.Errors)
		}
		if rep.CacheHits == 0 {
			return fmt.Errorf("check failed: zero cache hits across %d requests", rep.Requests)
		}
		fmt.Fprintf(out, "ftloadgen: check passed (%d requests, %d cache hits, p99 %.1fms)\n",
			rep.Requests, rep.CacheHits, rep.LatencyMS.P99)
	}
	return nil
}
