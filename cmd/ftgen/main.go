// Command ftgen generates a standalone Go program implementing a schedule's
// distributed executive (the AAA method's second step):
//
//	ftgen -demo -heuristic ft1 -k 1 > executive.go
//	go run executive.go -iterations 3 -kill P2:1:B
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftgen", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "algorithm graph JSON file")
		archPath  = fs.String("arch", "", "architecture JSON file")
		specPath  = fs.String("spec", "", "distribution constraints JSON file")
		heuristic = fs.String("heuristic", "ft1", "scheduler: basic, ft1, or ft2")
		k         = fs.Int("k", 1, "number of failures to tolerate")
		seeds     = fs.Int("seeds", 0, "extra randomized tie-breaking runs")
		pkg       = fs.String("package", "main", "generated package name")
		demo      = fs.Bool("demo", false, "use the paper's worked example")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var h core.Heuristic
	switch *heuristic {
	case "basic":
		h = core.Basic
	case "ft1":
		h = core.FT1
	case "ft2":
		h = core.FT2
	default:
		return fmt.Errorf("unknown heuristic %q", *heuristic)
	}
	var (
		g  *graph.Graph
		a  *arch.Architecture
		sp *spec.Spec
	)
	if *demo {
		in := paperex.BusInstance()
		if h == core.FT2 {
			in = paperex.TriangleInstance()
		}
		g, a, sp = in.Graph, in.Arch, in.Spec
	} else {
		if *graphPath == "" || *archPath == "" || *specPath == "" {
			return fmt.Errorf("need -graph, -arch, and -spec (or -demo)")
		}
		g, a, sp = new(graph.Graph), new(arch.Architecture), spec.New()
		for _, l := range []struct {
			path string
			v    json.Unmarshaler
		}{{*graphPath, g}, {*archPath, a}, {*specPath, sp}} {
			data, err := os.ReadFile(l.path)
			if err != nil {
				return err
			}
			if err := l.v.UnmarshalJSON(data); err != nil {
				return fmt.Errorf("%s: %w", l.path, err)
			}
		}
	}
	res, err := core.ScheduleTuned(h, g, a, sp, *k, *seeds, core.Options{})
	if err != nil {
		return err
	}
	src, err := gen.Generate(res.Schedule, g, gen.Options{Package: *pkg})
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, src)
	return err
}
