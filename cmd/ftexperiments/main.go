// Command ftexperiments regenerates the paper's evaluation: every figure of
// Sections 6 and 7, the analytic claims, and the extended sweeps indexed in
// DESIGN.md §4.
//
//	ftexperiments             # run everything
//	ftexperiments -list       # list experiment IDs
//	ftexperiments -run E03    # run one experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ftsched/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftexperiments", flag.ContinueOnError)
	var (
		list = fs.Bool("list", false, "list experiments and exit")
		only = fs.String("run", "", "run a single experiment by ID (e.g. E03)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%s  %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *only != "" {
		for _, e := range experiments.All() {
			if e.ID == *only {
				res, err := e.Run()
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "=== %s: %s ===\n%s", e.ID, e.Title, res)
				return nil
			}
		}
		return fmt.Errorf("unknown experiment %q (use -list)", *only)
	}
	res, err := experiments.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprint(out, res)
	return nil
}
