package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E01", "E17"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingle(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E03"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "9.4") {
		t.Errorf("E03 output should show the 9.4 makespan:\n%s", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E99"}, &out); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunAllViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run is slow")
	}
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E01", "E11", "E23"} {
		if !strings.Contains(out.String(), "=== "+id+":") {
			t.Errorf("missing %s section", id)
		}
	}
}
