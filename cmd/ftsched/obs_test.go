package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var build, sched bool
	for _, e := range doc.TraceEvents {
		switch e.Pid {
		case 1:
			build = true
		case 2:
			sched = true
		}
	}
	if !build || !sched {
		t.Errorf("trace should carry both build spans (pid 1) and the schedule Gantt (pid 2): build=%v sched=%v", build, sched)
	}
	// The normal report still goes to stdout.
	if !strings.Contains(out.String(), "makespan: 9.4") {
		t.Errorf("summary missing from output:\n%s", out.String())
	}
}

func TestStatsFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1", "-certify", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"counters:", "core.steps", "certify.patterns.checked", "timers:", "evaluate"} {
		if !strings.Contains(s, frag) {
			t.Errorf("stats output missing %q:\n%s", frag, s)
		}
	}
	// Stats print after the human-readable report, not instead of it.
	if !strings.Contains(s, "makespan: 9.4") {
		t.Errorf("summary missing from output:\n%s", s)
	}
}

func TestStatsWithoutCertifySkipsCertifyCounters(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "certify.") {
		t.Errorf("no -certify: certify counters should be absent:\n%s", out.String())
	}
}

func TestFlagComboErrors(t *testing.T) {
	cases := []struct {
		args []string
		frag string // expected fragment of the usage error
	}{
		{[]string{"-bench", "small", "-trace", "x.json"}, "contradicts -bench"},
		{[]string{"-bench", "small", "-stats"}, "contradicts -bench"},
		{[]string{"-bench", "small", "-demo"}, "contradicts -bench"},
		{[]string{"-bench", "small", "-heuristic", "ft2"}, "contradicts -bench"},
		{[]string{"-bench", "small", "-k", "2"}, "contradicts -bench"},
		{[]string{"-bench-out", "x.json"}, "requires -bench"},
		{[]string{"-bench-baseline", "x.json"}, "requires -bench"},
		{[]string{"-certify-workers", "4"}, "requires -certify or -bench"},
		{[]string{"-demo", "-certify-workers", "4"}, "requires -certify or -bench"},
		{[]string{"-demo", "-graph", "g.json"}, "contradicts -demo"},
		{[]string{"-demo", "-stats", "-format", "json"}, "corrupt"},
		{[]string{"-demo", "-stats", "-format", "svg"}, "corrupt"},
	}
	for _, c := range cases {
		var out strings.Builder
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%v: expected a usage error", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%v: error %q does not mention %q", c.args, err, c.frag)
		}
	}
}

// TestFlagCombosAllowValid guards against over-eager rejection: explicit
// defaults and meaningful combinations must keep working.
func TestFlagCombosAllowValid(t *testing.T) {
	cases := [][]string{
		{"-demo", "-heuristic", "ft1", "-stats", "-format", "table"},
		{"-demo", "-heuristic", "ft1", "-k", "1", "-certify", "-stats"},
		{"-demo", "-heuristic", "ft1", "-k", "1", "-certify", "-certify-workers", "3"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Errorf("%v: unexpected error: %v", args, err)
		}
	}
}

// TestTraceWithJSONFormat checks -trace composes with machine-readable
// formats: the trace goes to its file, the schedule JSON stays clean.
func TestTraceWithJSONFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-format", "json", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(out.String()), &v); err != nil {
		t.Fatalf("-trace corrupted the JSON stream: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
}
