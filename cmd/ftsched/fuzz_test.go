package main

import (
	"os"
	"path/filepath"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// FuzzLoadJSON feeds arbitrary bytes through the command's input path for
// each of the three input kinds: loading must reject or accept, never panic,
// and never accept an input its own package round-trip would refuse.
func FuzzLoadJSON(f *testing.F) {
	for _, file := range []string{"paper_graph.json", "bus_arch.json", "bus_spec.json", "triangle_arch.json", "triangle_spec.json"} {
		data, err := os.ReadFile(filepath.Join(testdata, file))
		if err != nil {
			f.Fatalf("read seed %s: %v", file, err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "in.json")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := loadJSON(path, new(graph.Graph)); err == nil {
			var g graph.Graph
			if err := g.UnmarshalJSON(data); err != nil {
				t.Fatalf("loadJSON accepted a graph UnmarshalJSON rejects: %v", err)
			}
		}
		_ = loadJSON(path, new(arch.Architecture))
		_ = loadJSON(path, spec.New())
	})
}
