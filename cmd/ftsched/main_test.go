package main

import (
	"strings"
	"testing"
)

const testdata = "../../examples/testdata/"

// TestBenchOutPath pins the tier-dependent report-file convention.
func TestBenchOutPath(t *testing.T) {
	cases := []struct{ tier, explicit, want string }{
		{"small", "", "BENCH_sched.json"},
		{"full", "", "BENCH_sched.json"},
		{"certify", "", "BENCH_certify.json"},
		{"certify", "custom.json", "custom.json"},
		{"full", "custom.json", "custom.json"},
	}
	for _, c := range cases {
		if got := benchOutPath(c.tier, c.explicit); got != c.want {
			t.Errorf("benchOutPath(%q, %q) = %q, want %q", c.tier, c.explicit, got, c.want)
		}
	}
}

func TestDemoFT1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"ft1 schedule", "makespan: 9.4", "min replication: 2"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestDemoFT2UsesTriangle(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft2", "-k", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "L12") {
		t.Errorf("ft2 demo should run on the triangle:\n%s", out.String())
	}
}

func TestFileInputs(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", testdata + "paper_graph.json",
		"-arch", testdata + "bus_arch.json",
		"-spec", testdata + "bus_spec.json",
		"-heuristic", "basic", "-format", "table",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "op I replica 0 (main)") {
		t.Errorf("table output:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `"mode": "ft1"`) || !strings.Contains(s, `"broadcast": true`) {
		t.Errorf("json output:\n%s", s)
	}
	if strings.Contains(s, "makespan:") {
		t.Error("json output must not mix in the summary line")
	}
}

func TestChainOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-format", "chain"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"(source)", "(sequence)", "(data)", "op   O"} {
		if !strings.Contains(s, frag) {
			t.Errorf("chain output missing %q:\n%s", frag, s)
		}
	}
}

func TestDotOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-format", "dot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Errorf("dot output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-demo", "-heuristic", "warp"},
		{"-demo", "-format", "warp"},
		{"-heuristic", "ft1"}, // no inputs, no -demo
		{"-graph", "nope.json", "-arch", "nope.json", "-spec", "nope.json"},
		{"-demo", "-heuristic", "ft1", "-k", "2"}, // infeasible (extios on 2 procs)
	}
	for i, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestDegradedFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-k", "2", "-degraded"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "min replication: 2") {
		t.Errorf("degraded run output:\n%s", out.String())
	}
}

func TestSeedsFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "basic", "-seeds", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "makespan: 8,") {
		t.Errorf("tuned basic should reach 8.0:\n%s", out.String())
	}
}

func TestSVGOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-format", "svg"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "<svg") || strings.Contains(s, "makespan:") {
		t.Errorf("svg output malformed or mixed with summary:\n%.200s", s)
	}
}

func TestStepsFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-steps"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"step 1: candidates I -> I", "step 3: candidates B C D"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q:\n%s", frag, s)
		}
	}
}

func TestCertifyFlagAccepts(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1", "-certify"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"CERTIFIED for K=1", "frontier analyzed", "failure-free 8"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q:\n%s", frag, s)
		}
	}
}

func TestCertifyFlagRejectsBasic(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-heuristic", "basic", "-k", "1", "-certify"}, &out)
	if err == nil {
		t.Fatal("certifying a non-replicated schedule for K=1 should fail")
	}
	s := out.String()
	for _, frag := range []string{"REJECTED for K=1", "minimal counterexample: fail {", "broken data path:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q:\n%s", frag, s)
		}
	}
}

func TestCertifyFlagFileInputs(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", testdata + "paper_graph.json",
		"-arch", testdata + "triangle_arch.json",
		"-spec", testdata + "triangle_spec.json",
		"-heuristic", "ft2", "-k", "1", "-certify", "-format", "table",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CERTIFIED for K=1") {
		t.Errorf("ft2 triangle certification:\n%s", out.String())
	}
}

func TestCertifyFlagKeepsJSONStreamClean(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-heuristic", "ft1", "-k", "1", "-certify", "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "certification") {
		t.Errorf("certification report corrupts the JSON stream:\n%s", out.String())
	}
}
