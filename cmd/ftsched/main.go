// Command ftsched produces a fault-tolerant static distributed schedule for
// an algorithm graph on an architecture, in the style of the SynDEx tool.
//
// Inputs are JSON files (see the examples/ directory for the format):
//
//	ftsched -graph g.json -arch a.json -spec s.json -heuristic ft1 -k 1
//
// Without input files, -demo schedules the paper's worked example.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ftsched/internal/arch"
	"ftsched/internal/benchrun"
	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/paperex"
	"ftsched/internal/report"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftsched", flag.ContinueOnError)
	var (
		graphPath   = fs.String("graph", "", "algorithm graph JSON file")
		archPath    = fs.String("arch", "", "architecture JSON file")
		specPath    = fs.String("spec", "", "distribution constraints JSON file")
		heuristic   = fs.String("heuristic", "ft1", "scheduler: basic, ft1, or ft2")
		k           = fs.Int("k", 1, "number of fail-stop processor failures to tolerate")
		seeds       = fs.Int("seeds", 0, "extra randomized tie-breaking runs; the best schedule wins")
		format      = fs.String("format", "gantt", "output: gantt, table, json, chain, svg, or dot")
		demo        = fs.Bool("demo", false, "schedule the paper's worked example (bus for basic/ft1, triangle for ft2)")
		degraded    = fs.Bool("degraded", false, "allow fewer than K+1 replicas where constraints forbid them")
		steps       = fs.Bool("steps", false, "print the heuristic's greedy steps (the paper's Figs. 14-16)")
		doCertify   = fs.Bool("certify", false, "statically certify the schedule against K failures; exit non-zero on rejection")
		certWorkers = fs.Int("certify-workers", 0, "certifier worker-pool bound; <=1 is sequential (the verdict is identical at any value)")

		benchTier     = fs.String("bench", "", "run the benchmark harness on a tier (small, full, certify, sim, or sim-legacy) instead of scheduling")
		benchOut      = fs.String("bench-out", "", "file the benchmark report is written to (default BENCH_sched.json; BENCH_certify.json, BENCH_sim.json, or BENCH_sim_baseline.json per tier)")
		benchBaseline = fs.String("bench-baseline", "", "baseline report to compare against; exit non-zero on >2x regression")

		tracePath = fs.String("trace", "", "write a Chrome-trace JSON (build-phase spans + schedule Gantt) to this file; open in Perfetto")
		stats     = fs.Bool("stats", false, "print the observability counters and timers after the run")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlagCombos(fs, *format); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftsched: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ftsched: memprofile:", err)
			}
		}()
	}

	if *benchTier != "" {
		return runBench(*benchTier, benchOutPath(*benchTier, *benchOut), *benchBaseline, *certWorkers, out)
	}

	// The sink is created only when an exporter will consume it, so plain
	// scheduling runs keep the zero-cost disabled path.
	var sink *obs.Sink
	if *tracePath != "" || *stats {
		sink = obs.NewSink()
	}

	var h core.Heuristic
	switch *heuristic {
	case "basic":
		h = core.Basic
	case "ft1":
		h = core.FT1
	case "ft2":
		h = core.FT2
	default:
		return fmt.Errorf("unknown heuristic %q (want basic, ft1, or ft2)", *heuristic)
	}

	var (
		g  *graph.Graph
		a  *arch.Architecture
		sp *spec.Spec
	)
	if *demo {
		in := paperex.BusInstance()
		if h == core.FT2 {
			in = paperex.TriangleInstance()
		}
		g, a, sp = in.Graph, in.Arch, in.Spec
	} else {
		if *graphPath == "" || *archPath == "" || *specPath == "" {
			return fmt.Errorf("need -graph, -arch, and -spec (or -demo)")
		}
		g, a, sp = new(graph.Graph), new(arch.Architecture), spec.New()
		if err := loadJSON(*graphPath, g); err != nil {
			return err
		}
		if err := loadJSON(*archPath, a); err != nil {
			return err
		}
		if err := loadJSON(*specPath, sp); err != nil {
			return err
		}
	}

	opts := core.Options{AllowDegraded: *degraded, Trace: *steps, Obs: sink}
	res, err := core.ScheduleTuned(h, g, a, sp, *k, *seeds, opts)
	if err != nil {
		return err
	}
	if *steps {
		for _, st := range res.Trace {
			fmt.Fprintf(out, "step %d: candidates %s -> %s on %s [%s, %s]\n",
				st.Step, strings.Join(st.Candidates, " "), st.Selected,
				strings.Join(st.Procs, " "), report.Cell(st.Start), report.Cell(st.End))
		}
	}
	if err := res.Schedule.Validate(g, a, sp); err != nil {
		return fmt.Errorf("internal error, schedule failed validation: %w", err)
	}
	var cert *certify.Verdict
	if *doCertify {
		cert, err = certify.CertifyWith(res.Schedule, g, a, sp, *k, certify.Options{Workers: *certWorkers, Obs: sink})
		if err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, sink, res.Schedule); err != nil {
			return err
		}
	}
	switch *format {
	case "gantt":
		fmt.Fprint(out, res.Schedule.Gantt())
	case "table":
		fmt.Fprint(out, res.Schedule.Table())
	case "json":
		data, err := res.Schedule.MarshalJSON()
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := json.Indent(&buf, data, "", "  "); err != nil {
			return err
		}
		buf.WriteByte('\n')
		if _, err := out.Write(buf.Bytes()); err != nil {
			return err
		}
		return certifyOutcome(cert) // the summary line would corrupt the JSON stream
	case "dot":
		fmt.Fprint(out, g.DOT())
	case "chain":
		fmt.Fprint(out, sched.RenderChain(res.Schedule.CriticalChain()))
	case "svg":
		fmt.Fprint(out, res.Schedule.SVG())
		return certifyOutcome(cert) // keep the SVG stream clean
	default:
		return fmt.Errorf("unknown format %q (want gantt, table, json, chain, svg, or dot)", *format)
	}
	fmt.Fprintf(out, "makespan: %.6g, op slots: %d, active comms: %d, passive comms: %d, min replication: %d\n",
		res.Schedule.Makespan(), res.Schedule.NumOpSlots(),
		res.Schedule.NumActiveComms(), res.Schedule.NumPassiveComms(), res.MinReplication)
	if cert != nil {
		fmt.Fprint(out, cert.Report())
	}
	if *stats {
		obs.WriteStats(out, sink)
	}
	return certifyOutcome(cert)
}

// checkFlagCombos rejects contradictory flag combinations with a usage error
// instead of silently ignoring the losing flag. Only flags the user actually
// set are considered.
func checkFlagCombos(fs *flag.FlagSet, format string) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["bench"] {
		// The bench harness neither schedules one instance nor renders: every
		// scheduling-run flag is meaningless alongside it.
		for _, name := range []string{
			"graph", "arch", "spec", "demo", "heuristic", "k", "seeds",
			"format", "degraded", "steps", "certify", "trace", "stats",
		} {
			if set[name] {
				return fmt.Errorf("usage: -%s applies to a scheduling run and contradicts -bench", name)
			}
		}
	} else {
		for _, name := range []string{"bench-out", "bench-baseline"} {
			if set[name] {
				return fmt.Errorf("usage: -%s requires -bench", name)
			}
		}
	}
	if set["certify-workers"] && !set["certify"] && !set["bench"] {
		return fmt.Errorf("usage: -certify-workers requires -certify or -bench certify")
	}
	if set["demo"] {
		for _, name := range []string{"graph", "arch", "spec"} {
			if set[name] {
				return fmt.Errorf("usage: -%s contradicts -demo (the demo provides its own inputs)", name)
			}
		}
	}
	if set["stats"] && (format == "json" || format == "svg") {
		return fmt.Errorf("usage: -stats would corrupt the -format %s stream; use -trace or a text format", format)
	}
	return nil
}

// writeTrace writes the Chrome-trace document for a scheduling run.
func writeTrace(path string, sink *obs.Sink, s *sched.Schedule) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, sink, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchOutPath resolves the report file: an explicit -bench-out wins,
// otherwise each harness gets its own conventional file so the certify tier
// never overwrites the scheduler baseline.
func benchOutPath(tier, explicit string) string {
	if explicit != "" {
		return explicit
	}
	switch tier {
	case "certify":
		return "BENCH_certify.json"
	case "sim":
		return "BENCH_sim.json"
	case "sim-legacy":
		return "BENCH_sim_baseline.json"
	}
	return "BENCH_sched.json"
}

// runBench drives the benchmark harness: time the tier's cases, write the
// report, and gate on the baseline when one is given.
func runBench(tier, outPath, baselinePath string, workers int, out io.Writer) error {
	cases, err := benchrun.Tier(tier)
	if err != nil {
		return err
	}
	if workers > 1 {
		for i := range cases {
			if cases[i].Kind == "certify" {
				cases[i].Workers = workers
			}
		}
	}
	rep, err := benchrun.Run(tier, cases, out)
	if err != nil {
		return err
	}
	if err := rep.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d cases)\n", outPath, len(rep.Results))
	if baselinePath != "" {
		base, err := benchrun.Load(baselinePath)
		if err != nil {
			return err
		}
		// The per-case picture prints before the gate: a tripped gate still
		// leaves the operator the report file and the full delta table.
		fmt.Fprintf(out, "deltas vs %s:\n", baselinePath)
		for _, line := range benchrun.Deltas(rep, base) {
			fmt.Fprintf(out, "  %s\n", line)
		}
		if err := benchrun.Compare(rep, base, 2); err != nil {
			return err
		}
		fmt.Fprintf(out, "no regression vs %s (2x gate)\n", baselinePath)
	}
	return nil
}

// certifyOutcome turns a rejected certificate into the command's error so
// -certify gates the exit status.
func certifyOutcome(cert *certify.Verdict) error {
	if cert != nil && !cert.Certified {
		return fmt.Errorf("certification rejected the schedule for K=%d failures", cert.K)
	}
	return nil
}

func loadJSON(path string, v json.Unmarshaler) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := v.UnmarshalJSON(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
