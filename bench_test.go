// Benchmarks regenerating the paper's evaluation, one per figure or claim
// (see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark measures the cost of
// producing the artifact and reports the headline quantity of the figure via
// b.ReportMetric (makespans in time units, response times, ratios), so
// `go test -bench=. -benchmem` prints the reproduced numbers next to the
// paper's.
package ftsched_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ftsched"
	"ftsched/internal/core"
	"ftsched/internal/faults"
	"ftsched/internal/paperex"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// benchSchedule runs one heuristic on one instance and reports its makespan.
func benchSchedule(b *testing.B, in *paperex.Instance, h core.Heuristic, k int, metric string) {
	b.Helper()
	var makespan float64
	for i := 0; i < b.N; i++ {
		r, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, k, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		makespan = r.Schedule.Makespan()
	}
	b.ReportMetric(makespan, metric)
}

// BenchmarkFig17FT1Bus regenerates Fig. 17: the FT1 schedule on the
// 3-processor bus, K=1. The paper reports makespan 9.4; the deterministic
// run reproduces it exactly.
func BenchmarkFig17FT1Bus(b *testing.B) {
	benchSchedule(b, paperex.BusInstance(), core.FT1, 1, "makespan")
}

// BenchmarkFig19BasicBus regenerates Fig. 19: the non-fault-tolerant bus
// schedule (paper: 8.6). The tuned search over randomized tie-breaks is part
// of the measured work, as in the experiment harness.
func BenchmarkFig19BasicBus(b *testing.B) {
	in := paperex.BusInstance()
	var makespan float64
	for i := 0; i < b.N; i++ {
		r, err := core.ScheduleTuned(core.Basic, in.Graph, in.Arch, in.Spec, 0, 50, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		makespan = r.Schedule.Makespan()
	}
	b.ReportMetric(makespan, "makespan")
}

// BenchmarkFig22FT2P2P regenerates Fig. 22: the FT2 schedule on the
// point-to-point triangle, K=1 (paper: 8.9).
func BenchmarkFig22FT2P2P(b *testing.B) {
	benchSchedule(b, paperex.TriangleInstance(), core.FT2, 1, "makespan")
}

// BenchmarkFig24BasicP2P regenerates Fig. 24: the non-fault-tolerant
// triangle schedule (paper: 8.0, matched exactly by the tuned run).
func BenchmarkFig24BasicP2P(b *testing.B) {
	in := paperex.TriangleInstance()
	var makespan float64
	for i := 0; i < b.N; i++ {
		r, err := core.ScheduleTuned(core.Basic, in.Graph, in.Arch, in.Spec, 0, 50, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		makespan = r.Schedule.Makespan()
	}
	b.ReportMetric(makespan, "makespan")
}

// BenchmarkFig18Transient regenerates Fig. 18(a): the transient iteration of
// the FT1 schedule when P2 crashes; the reported metric is the transient
// response time (the failure-free response is 8.0).
func BenchmarkFig18Transient(b *testing.B) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var resp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec,
			sim.Single("P2", 1, 0), sim.Config{Iterations: 2})
		if err != nil {
			b.Fatal(err)
		}
		resp = sr.Iterations[1].ResponseTime
	}
	b.ReportMetric(resp, "transient_resp")
}

// BenchmarkFig18Permanent regenerates Fig. 18(b): the subsequent iteration
// with P2 marked faulty; the metric is its response time (no timeout waits).
func BenchmarkFig18Permanent(b *testing.B) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var resp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec,
			sim.Single("P2", 1, 0), sim.Config{Iterations: 3})
		if err != nil {
			b.Fatal(err)
		}
		resp = sr.Iterations[2].ResponseTime
	}
	b.ReportMetric(resp, "permanent_resp")
}

// BenchmarkFig23FT2Transient regenerates Fig. 23: FT2's transient iteration
// when P2 crashes right after executing A; the metric is the transient
// response time, reached with zero timeouts.
func BenchmarkFig23FT2Transient(b *testing.B) {
	in := paperex.TriangleInstance()
	r, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	crashAt := r.Schedule.ReplicaOn("A", "P2").End
	var resp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec,
			sim.Single("P2", 0, crashAt), sim.Config{Iterations: 1})
		if err != nil {
			b.Fatal(err)
		}
		ir := sr.Iterations[0]
		if !ir.Completed || ir.TimeoutsFired != 0 {
			b.Fatal("FT2 transient iteration must complete without timeouts")
		}
		resp = ir.ResponseTime
	}
	b.ReportMetric(resp, "transient_resp")
}

// BenchmarkArchCrossover regenerates the Sections 6.6/7.4 guidance: both FT
// heuristics on both architectures; the metric is the failure-free total
// communication time (FT1 minimal on the bus, FT2 heavy everywhere).
func BenchmarkArchCrossover(b *testing.B) {
	cases := []struct {
		name string
		in   *paperex.Instance
		h    core.Heuristic
	}{
		{"FT1OnBus", paperex.BusInstance(), core.FT1},
		{"FT2OnBus", paperex.BusInstance(), core.FT2},
		{"FT1OnTriangle", paperex.TriangleInstance(), core.FT1},
		{"FT2OnTriangle", paperex.TriangleInstance(), core.FT2},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var commTime float64
			for i := 0; i < b.N; i++ {
				r, err := core.Schedule(c.h, c.in.Graph, c.in.Arch, c.in.Spec, 1, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				commTime = r.Schedule.TotalActiveCommTime()
			}
			b.ReportMetric(commTime, "comm_time")
		})
	}
}

// BenchmarkMultiFailure regenerates the several-failures comparison: K=2
// schedules under two simultaneous crashes; the metric is the degraded
// response time (FT1 accumulates timeouts, FT2 does not).
func BenchmarkMultiFailure(b *testing.B) {
	g := paperex.Algorithm()
	a, err := workload.FullMesh(4)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.AddBus("can", a.ProcessorNames()...); err != nil {
		b.Fatal(err)
	}
	sp, err := workload.Costs(rand.New(rand.NewSource(7)), g, a,
		workload.CostParams{MeanExec: 1.5, Spread: 0.3, CCR: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	sc := sim.Scenario{Failures: []sim.Failure{
		{Proc: "P1", Iteration: 0, At: 0},
		{Proc: "P2", Iteration: 0, At: 0},
	}}
	for _, h := range []core.Heuristic{core.FT1, core.FT2} {
		b.Run(h.String(), func(b *testing.B) {
			r, err := core.Schedule(h, g, a, sp, 2, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var resp float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sr, err := sim.Simulate(r.Schedule, g, a, sp, sc, sim.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if !sr.Iterations[0].Completed {
					b.Fatal("K=2 schedule lost outputs")
				}
				resp = sr.Iterations[0].ResponseTime
			}
			b.ReportMetric(resp, "resp_2fail")
		})
	}
}

// BenchmarkOverheadVsK sweeps the replication degree on a random layered
// DAG; the metric is the FT/baseline makespan ratio.
func BenchmarkOverheadVsK(b *testing.B) {
	r := rand.New(rand.NewSource(1000))
	in, err := workload.RandomInstance(r, 16, 4, true, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	base, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ft, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, k, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ratio = ft.Schedule.Makespan() / base.Schedule.Makespan()
			}
			b.ReportMetric(ratio, "ft/basic")
		})
	}
}

// BenchmarkTransientResponse sweeps every single failure over a random
// instance; the metric is the mean transient response inflation.
func BenchmarkTransientResponse(b *testing.B) {
	for _, cfg := range []struct {
		name string
		h    core.Heuristic
		bus  bool
	}{{"FT1Bus", core.FT1, true}, {"FT2Mesh", core.FT2, false}} {
		b.Run(cfg.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(2000))
			in, err := workload.RandomInstance(r, 12, 3, cfg.bus, 0.8)
			if err != nil {
				b.Fatal(err)
			}
			sr, err := core.Schedule(cfg.h, in.Graph, in.Arch, in.Spec, 1, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			free, err := sim.Simulate(sr.Schedule, in.Graph, in.Arch, in.Spec, sim.Scenario{}, sim.Config{})
			if err != nil {
				b.Fatal(err)
			}
			base := free.Iterations[0].ResponseTime
			scenarios := faults.SingleSweep(in.Arch, 0, faults.CrashDates(sr.Schedule.Makespan(), 4))
			var mean float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0.0
				for _, sc := range scenarios {
					res, err := sim.Simulate(sr.Schedule, in.Graph, in.Arch, in.Spec, sc, sim.Config{})
					if err != nil {
						b.Fatal(err)
					}
					total += res.Iterations[0].ResponseTime / base
				}
				mean = total / float64(len(scenarios))
			}
			b.ReportMetric(mean, "mean_inflation")
		})
	}
}

// BenchmarkCCRSweep reports the FT1 overhead ratio across communication-to-
// computation ratios on random bus instances.
func BenchmarkCCRSweep(b *testing.B) {
	for _, ccr := range []float64{0.1, 1, 5} {
		b.Run(fmt.Sprintf("CCR%g", ccr), func(b *testing.B) {
			r := rand.New(rand.NewSource(3000))
			in, err := workload.RandomInstance(r, 12, 3, true, ccr)
			if err != nil {
				b.Fatal(err)
			}
			base, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ratio = ft.Schedule.Makespan() / base.Schedule.Makespan()
			}
			b.ReportMetric(ratio, "ft1/basic")
		})
	}
}

// BenchmarkHeuristicScaling measures scheduling cost against graph size
// (the heuristics are O(n^2) in candidate evaluations over link timelines).
func BenchmarkHeuristicScaling(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200} {
		r := rand.New(rand.NewSource(int64(n)))
		in, err := workload.RandomInstance(r, n, 4, true, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
			b.Run(fmt.Sprintf("%s/ops%d", h, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 1, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCertify measures the static K-fault certification of the paper's
// Figure-17 bus example: K=1 certifies the FT1 schedule built for one
// failure; K=2 exercises the rejection path (the K=1 schedule cannot survive
// two failures, so the certifier shrinks a minimal counterexample). The
// metric is the worst-case transient response bound over the tolerated
// patterns analyzed before the verdict (the failure-free bound on
// rejection).
func BenchmarkCertify(b *testing.B) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for k := 1; k <= 2; k++ {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			var bound float64
			for i := 0; i < b.N; i++ {
				v, err := ftsched.Certify(res, in.Graph, in.Arch, in.Spec, k)
				if err != nil {
					b.Fatal(err)
				}
				if v.Certified != (k == 1) {
					b.Fatalf("K=%d: certified=%v", k, v.Certified)
				}
				bound = v.WorstBound
			}
			b.ReportMetric(bound, "worst_bound")
		})
	}
}

// BenchmarkCertifyScale measures the certifier where its cost actually
// lives: the C(P, K) frontier on random FT1/FT2 workloads across both
// architectures, up to K=3 and 16 processors, with the worker pool swept on
// the widest case (the verdict is identical at every worker count, so the
// sub-benchmarks expose pure engine throughput). The metric is the number of
// frontier patterns analyzed.
func BenchmarkCertifyScale(b *testing.B) {
	cases := []struct {
		name    string
		h       core.Heuristic
		bus     bool
		ops     int
		procs   int
		k       int
		workers int
	}{
		{"FT1Bus/60x8/K2", core.FT1, true, 60, 8, 2, 0},
		{"FT1P2P/60x8/K2", core.FT1, false, 60, 8, 2, 0},
		{"FT1Bus/60x12/K3", core.FT1, true, 60, 12, 3, 0},
		{"FT2P2P/60x8/K2", core.FT2, false, 60, 8, 2, 0},
		{"FT1Bus/100x16/K2", core.FT1, true, 100, 16, 2, 0},
		{"FT1Bus/100x16/K2/w4", core.FT1, true, 100, 16, 2, 4},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(c.ops*100 + c.procs)))
			in, err := workload.RandomInstance(r, c.ops, c.procs, c.bus, 0.8)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Schedule(c.h, in.Graph, in.Arch, in.Spec, c.k, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var checked int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := ftsched.CertifyWith(res, in.Graph, in.Arch, in.Spec, c.k,
					ftsched.CertifyOptions{Workers: c.workers})
				if err != nil {
					b.Fatal(err)
				}
				if !v.Certified {
					b.Fatalf("schedule built for K=%d failed its own certificate:\n%s", c.k, v.Report())
				}
				checked = v.PatternsChecked
			}
			b.ReportMetric(float64(checked), "patterns")
		})
	}
}

// BenchmarkCycab regenerates the conclusion's platform: a control loop with
// state on the 5-processor CAN-bus vehicle, FT1 with K=1; the metric is the
// transient response after the vision processor fails.
func BenchmarkCycab(b *testing.B) {
	g, err := workload.ControlLoop(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	a, err := workload.Cycab()
	if err != nil {
		b.Fatal(err)
	}
	sp, err := workload.Costs(rand.New(rand.NewSource(42)), g, a,
		workload.CostParams{MeanExec: 2, Spread: 0.4, CCR: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.RestrictExtIOs(sp, g, a, 2); err != nil {
		b.Fatal(err)
	}
	r, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var resp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := sim.Simulate(r.Schedule, g, a, sp,
			sim.Single("vision", 1, 1.0), sim.Config{Iterations: 3})
		if err != nil {
			b.Fatal(err)
		}
		if !sr.Iterations[1].Completed {
			b.Fatal("vehicle lost actuation")
		}
		resp = sr.Iterations[1].ResponseTime
	}
	b.ReportMetric(resp, "transient_resp")
}
