package ftsched_test

import (
	"os"
	"path/filepath"
	"testing"

	"ftsched"
)

// loadExample reads one graph/arch/spec triple from examples/testdata.
func loadExample(t *testing.T, graphFile, archFile, specFile string) (*ftsched.Graph, *ftsched.Architecture, *ftsched.Spec) {
	t.Helper()
	dir := filepath.Join("examples", "testdata")
	g := &ftsched.Graph{}
	a := &ftsched.Architecture{}
	sp := &ftsched.Spec{}
	for _, it := range []struct {
		file string
		v    interface{ UnmarshalJSON([]byte) error }
	}{{graphFile, g}, {archFile, a}, {specFile, sp}} {
		data, err := os.ReadFile(filepath.Join(dir, it.file))
		if err != nil {
			t.Fatalf("read %s: %v", it.file, err)
		}
		if err := it.v.UnmarshalJSON(data); err != nil {
			t.Fatalf("unmarshal %s: %v", it.file, err)
		}
	}
	return g, a, sp
}

// TestCertifyExamples is the acceptance check of the certification engine on
// the shipped example problems: the fault-tolerant schedules are certified
// at K=1, the baseline is rejected with a concrete counterexample.
func TestCertifyExamples(t *testing.T) {
	t.Run("ft1-bus", func(t *testing.T) {
		g, a, sp := loadExample(t, "paper_graph.json", "bus_arch.json", "bus_spec.json")
		res, err := ftsched.ScheduleFT1(g, a, sp, 1, ftsched.Options{})
		if err != nil {
			t.Fatalf("ScheduleFT1: %v", err)
		}
		v, err := ftsched.Certify(res, g, a, sp, 1)
		if err != nil {
			t.Fatalf("Certify: %v", err)
		}
		if !v.Certified {
			t.Fatalf("FT1 bus schedule rejected for K=1:\n%s", v.Report())
		}
	})
	t.Run("ft2-triangle", func(t *testing.T) {
		g, a, sp := loadExample(t, "paper_graph.json", "triangle_arch.json", "triangle_spec.json")
		res, err := ftsched.ScheduleFT2(g, a, sp, 1, ftsched.Options{})
		if err != nil {
			t.Fatalf("ScheduleFT2: %v", err)
		}
		v, err := ftsched.Certify(res, g, a, sp, 1)
		if err != nil {
			t.Fatalf("Certify: %v", err)
		}
		if !v.Certified {
			t.Fatalf("FT2 triangle schedule rejected for K=1:\n%s", v.Report())
		}
	})
	t.Run("basic-rejected", func(t *testing.T) {
		g, a, sp := loadExample(t, "paper_graph.json", "bus_arch.json", "bus_spec.json")
		res, err := ftsched.ScheduleBasic(g, a, sp, ftsched.Options{})
		if err != nil {
			t.Fatalf("ScheduleBasic: %v", err)
		}
		v, err := ftsched.Certify(res, g, a, sp, 1)
		if err != nil {
			t.Fatalf("Certify: %v", err)
		}
		if v.Certified {
			t.Fatalf("non-replicated schedule certified for K=1")
		}
		ce := v.Counterexample
		if ce == nil || len(ce.FailureSet) != 1 || ce.Output == "" || len(ce.Path) == 0 {
			t.Fatalf("missing or non-minimal counterexample: %+v", ce)
		}
	})
}
