package ftsched_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ftsched"
	"ftsched/internal/core"
	"ftsched/internal/faults"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// TestIntegrationMatrix runs the full pipeline — generate, schedule,
// validate, simulate failure-free and under failure sweeps — across a cross
// product of heuristics, architectures, workload shapes, and K values.
func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep is slow")
	}
	type shape struct {
		name  string
		build func(r *rand.Rand) (*ftsched.Graph, error)
	}
	shapes := []shape{
		{"layered", func(r *rand.Rand) (*ftsched.Graph, error) {
			return workload.LayeredDAG(r, workload.GraphParams{Ops: 14, Width: 4, EdgeProb: 0.4, WithIO: true})
		}},
		{"forkjoin", func(*rand.Rand) (*ftsched.Graph, error) { return workload.ForkJoin(4, 2) }},
		{"pipeline", func(*rand.Rand) (*ftsched.Graph, error) { return workload.Pipeline(8) }},
		{"fft", func(*rand.Rand) (*ftsched.Graph, error) { return workload.FFT(4) }},
		{"gauss", func(*rand.Rand) (*ftsched.Graph, error) { return workload.GaussianElimination(4) }},
		{"diamond", func(*rand.Rand) (*ftsched.Graph, error) { return workload.Diamond(3) }},
		{"control", func(*rand.Rand) (*ftsched.Graph, error) { return workload.ControlLoop(2, 2) }},
	}
	archs := []struct {
		name  string
		build func() (*ftsched.Architecture, error)
	}{
		{"bus3", func() (*ftsched.Architecture, error) { return workload.BusArch(3) }},
		{"mesh4", func() (*ftsched.Architecture, error) { return workload.FullMesh(4) }},
		{"ring4", func() (*ftsched.Architecture, error) { return workload.Ring(4) }},
		{"star4", func() (*ftsched.Architecture, error) { return workload.Star(4) }},
		{"cycab", workload.Cycab},
	}
	for _, sh := range shapes {
		for _, ar := range archs {
			name := fmt.Sprintf("%s/%s", sh.name, ar.name)
			t.Run(name, func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(len(sh.name) * len(ar.name))))
				g, err := sh.build(r)
				if err != nil {
					t.Fatal(err)
				}
				a, err := ar.build()
				if err != nil {
					t.Fatal(err)
				}
				sp, err := workload.Costs(r, g, a, workload.CostParams{MeanExec: 2, Spread: 0.4, CCR: 0.7})
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
					k := 1
					if h == core.Basic {
						k = 0
					}
					res, err := core.Schedule(h, g, a, sp, k, core.Options{})
					if err != nil {
						t.Fatalf("%v: %v", h, err)
					}
					if err := res.Schedule.Validate(g, a, sp); err != nil {
						t.Fatalf("%v schedule invalid:\n%v", h, err)
					}
					free, err := sim.Simulate(res.Schedule, g, a, sp, sim.Scenario{}, sim.Config{})
					if err != nil {
						t.Fatalf("%v: %v", h, err)
					}
					ir := free.Iterations[0]
					if !ir.Completed {
						t.Fatalf("%v: failure-free run incomplete", h)
					}
					if diff := ir.End - res.Schedule.Makespan(); diff > 1e-6 || diff < -1e-6 {
						t.Errorf("%v: simulated end %v != static %v", h, ir.End, res.Schedule.Makespan())
					}
					if h == core.Basic {
						continue
					}
					// The failure sweep only applies where a single crash
					// cannot partition the network (Section 5.5 excludes
					// link/topology failures): rings and stars can lose
					// connectivity with the routing processor.
					if ar.name == "ring4" || ar.name == "star4" {
						continue
					}
					horizon := res.Schedule.Makespan()
					for _, sc := range faults.SingleSweep(a, 0, faults.CrashDates(horizon, 3)) {
						sr, err := sim.Simulate(res.Schedule, g, a, sp, sc, sim.Config{Iterations: 2})
						if err != nil {
							t.Fatal(err)
						}
						for _, it := range sr.Iterations {
							if !it.Completed {
								t.Errorf("%v: failure %+v: iteration %d incomplete",
									h, sc.Failures[0], it.Index)
							}
						}
					}
				}
			})
		}
	}
}
