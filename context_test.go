package ftsched_test

import (
	"context"
	"errors"
	"testing"

	"ftsched"
	"ftsched/internal/paperex"
)

// A canceled context aborts every context-accepting entry point with the
// context's own error.
func TestContextCanceledAborts(t *testing.T) {
	in := paperex.BusInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := ftsched.ScheduleContext(ctx, ftsched.FT1, in.Graph, in.Arch, in.Spec, 1, ftsched.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScheduleContext: got err %v, want context.Canceled", err)
	}
	_, err = ftsched.ScheduleTunedContext(ctx, ftsched.FT1, in.Graph, in.Arch, in.Spec, 1, 1, ftsched.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScheduleTunedContext: got err %v, want context.Canceled", err)
	}

	res, err := ftsched.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, ftsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ftsched.CertifyContext(ctx, res, in.Graph, in.Arch, in.Spec, 1, ftsched.CertifyOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CertifyContext: got err %v, want context.Canceled", err)
	}
	_, err = ftsched.SimulateContext(ctx, res.Schedule, in.Graph, in.Arch, in.Spec,
		ftsched.Scenario{}, ftsched.SimConfig{Iterations: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateContext: got err %v, want context.Canceled", err)
	}
}

// A background (never-canceled) context leaves every result bit-identical
// to the context-free entry points.
func TestContextBackgroundIsIdentical(t *testing.T) {
	in := paperex.BusInstance()
	ctx := context.Background()

	plain, err := ftsched.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, ftsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := ftsched.ScheduleContext(ctx, ftsched.FT1, in.Graph, in.Arch, in.Spec, 1, ftsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := plain.Schedule.MarshalJSON()
	b, _ := ctxRes.Schedule.MarshalJSON()
	if string(a) != string(b) {
		t.Fatalf("ScheduleContext changed the schedule:\n%s\nvs\n%s", a, b)
	}

	v1, err := ftsched.Certify(plain, in.Graph, in.Arch, in.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ftsched.CertifyContext(ctx, plain, in.Graph, in.Arch, in.Spec, 1, ftsched.CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Certified != v2.Certified || v1.WorstBound != v2.WorstBound {
		t.Fatalf("CertifyContext changed the verdict: %+v vs %+v", v1, v2)
	}
}
