// Package ftsched produces fault-tolerant static schedules for real-time
// distributed embedded systems, reproducing Girault, Lavarenne, Sighireanu,
// and Sorel, "Fault-Tolerant Static Scheduling for Real-Time Distributed
// Embedded Systems" (ICDCS 2001; INRIA RR-4006).
//
// Given an algorithm (a data-flow graph of operations), a distributed
// architecture (processors connected by point-to-point links and buses),
// distribution constraints (worst-case execution and communication
// durations), and a number K of permanent fail-stop processor failures to
// tolerate, the package builds a fully static distributed schedule by one of
// three greedy list-scheduling heuristics driven by the SynDEx schedule
// pressure cost function:
//
//   - ScheduleBasic: the non-fault-tolerant baseline (one replica per
//     operation);
//   - ScheduleFT1: active replication of operations plus time redundancy of
//     communications — only the main replica sends, backups fail over after
//     statically computed timeouts; best on bus architectures;
//   - ScheduleFT2: active replication of operations and communications —
//     every replica sends, consumers keep the first arrival; best on
//     point-to-point architectures.
//
// The package also ships a discrete-event simulator of the generated
// executive (Simulate) that injects fail-stop failures and reports
// per-iteration response times, output delivery, timeout failovers, and
// message counts.
//
// A minimal session:
//
//	g := ftsched.NewGraph("app")
//	_ = g.AddExtIO("in")
//	_ = g.AddComp("f")
//	_ = g.AddExtIO("out")
//	_ = g.Connect("in", "f")
//	_ = g.Connect("f", "out")
//
//	a := ftsched.NewArchitecture("board")
//	_ = a.AddProcessor("P1")
//	_ = a.AddProcessor("P2")
//	_ = a.AddBus("can", "P1", "P2")
//
//	sp := ftsched.NewSpec()
//	// ... SetExec / SetComm for every pair ...
//
//	res, err := ftsched.ScheduleFT1(g, a, sp, 1, ftsched.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Schedule.Gantt())
package ftsched

import (
	"context"
	"errors"
	"io"
	"sync/atomic"

	"ftsched/internal/arch"
	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/executive"
	"ftsched/internal/gen"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/rt"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/spec"
)

// Graph is the algorithm model: a data-flow graph of comp/mem/extio
// operations connected by data-dependencies (Section 4.2 of the paper).
type Graph = graph.Graph

// EdgeKey identifies a data-dependency by its endpoint operation names.
type EdgeKey = graph.EdgeKey

// NewGraph returns an empty algorithm graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// Architecture is the hardware model: processors connected by
// point-to-point links and multi-point buses (Section 4.3).
type Architecture = arch.Architecture

// NewArchitecture returns an empty architecture graph.
func NewArchitecture(name string) *Architecture { return arch.New(name) }

// Spec holds the distribution constraints: worst-case execution durations
// per (operation, processor) and transfer durations per (dependency, link)
// (Section 5.4). Inf marks forbidden placements.
type Spec = spec.Spec

// Inf marks an impossible (operation, processor) placement.
var Inf = spec.Inf

// NewSpec returns an empty constraints table.
func NewSpec() *Spec { return spec.New() }

// Schedule is a static distributed schedule: a total order of operation
// replicas per processor and of communications per link.
type Schedule = sched.Schedule

// ChainElem is one activity on a schedule's critical chain (see
// Schedule.CriticalChain).
type ChainElem = sched.ChainElem

// RenderChain prints a critical chain one activity per line.
func RenderChain(chain []ChainElem) string { return sched.RenderChain(chain) }

// Options tunes the scheduling heuristics.
type Options = core.Options

// Result is a heuristic's outcome: the schedule plus replication and trace
// metadata.
type Result = core.Result

// Heuristic selects a scheduler for Schedule and ScheduleTuned.
type Heuristic = core.Heuristic

// Heuristic values.
const (
	Basic = core.Basic
	FT1   = core.FT1
	FT2   = core.FT2
)

// ErrInfeasible reports that the constraints cannot support the requested
// schedule (no allowed processor, or fewer than K+1 for fault tolerance).
var ErrInfeasible = core.ErrInfeasible

// ScheduleBasic runs the non-fault-tolerant SynDEx baseline heuristic.
func ScheduleBasic(g *Graph, a *Architecture, sp *Spec, opts Options) (*Result, error) {
	return core.ScheduleBasic(g, a, sp, opts)
}

// ScheduleFT1 runs the first fault-tolerant heuristic (Section 6): K+1
// active replicas per operation, time-redundant communications guarded by
// timeout chains. Best suited to bus architectures.
func ScheduleFT1(g *Graph, a *Architecture, sp *Spec, k int, opts Options) (*Result, error) {
	return core.ScheduleFT1(g, a, sp, k, opts)
}

// ScheduleFT2 runs the second fault-tolerant heuristic (Section 7): K+1
// active replicas per operation with fully replicated communications. Best
// suited to point-to-point architectures.
func ScheduleFT2(g *Graph, a *Architecture, sp *Spec, k int, opts Options) (*Result, error) {
	return core.ScheduleFT2(g, a, sp, k, opts)
}

// ScheduleWith dispatches to the chosen heuristic; K is ignored by Basic.
func ScheduleWith(h Heuristic, g *Graph, a *Architecture, sp *Spec, k int, opts Options) (*Result, error) {
	return core.Schedule(h, g, a, sp, k, opts)
}

// ScheduleTuned runs the heuristic once deterministically plus `seeds`
// randomized-tie-break runs (the paper breaks pressure ties randomly) and
// returns the shortest-makespan schedule.
func ScheduleTuned(h Heuristic, g *Graph, a *Architecture, sp *Spec, k, seeds int, opts Options) (*Result, error) {
	return core.ScheduleTuned(h, g, a, sp, k, seeds, opts)
}

// watchContext arms opts-style cooperative cancellation from a context: it
// returns a flag that is raised when ctx is done, and a release function the
// caller must invoke (defer) to stop the watcher goroutine. For contexts
// that can never be canceled the watcher is elided entirely.
func watchContext(ctx context.Context, flag *atomic.Bool) (*atomic.Bool, func()) {
	if flag == nil {
		flag = new(atomic.Bool)
	}
	if ctx.Done() == nil {
		return flag, func() {}
	}
	if ctx.Err() != nil {
		flag.Store(true)
		return flag, func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			flag.Store(true)
		case <-done:
		}
	}()
	return flag, func() { close(done) }
}

// ctxErr maps a cooperative-cancellation failure back to the context's own
// error so callers see the familiar context.Canceled/DeadlineExceeded.
func ctxErr(ctx context.Context, err error, canceled error) error {
	if errors.Is(err, canceled) && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// ScheduleContext is ScheduleWith bounded by a context: when ctx is
// canceled or times out, the heuristic's greedy loop aborts cooperatively
// and the context's error is returned. A run that completes produces a
// schedule bit-identical to the context-free entry points. If opts.Cancel
// is already set, the same flag is shared, so either source can abort.
func ScheduleContext(ctx context.Context, h Heuristic, g *Graph, a *Architecture, sp *Spec, k int, opts Options) (*Result, error) {
	flag, stop := watchContext(ctx, opts.Cancel)
	defer stop()
	opts.Cancel = flag
	res, err := core.Schedule(h, g, a, sp, k, opts)
	if err != nil {
		return nil, ctxErr(ctx, err, core.ErrCanceled)
	}
	return res, nil
}

// ScheduleTunedContext is ScheduleTuned bounded by a context (see
// ScheduleContext).
func ScheduleTunedContext(ctx context.Context, h Heuristic, g *Graph, a *Architecture, sp *Spec, k, seeds int, opts Options) (*Result, error) {
	flag, stop := watchContext(ctx, opts.Cancel)
	defer stop()
	opts.Cancel = flag
	res, err := core.ScheduleTuned(h, g, a, sp, k, seeds, opts)
	if err != nil {
		return nil, ctxErr(ctx, err, core.ErrCanceled)
	}
	return res, nil
}

// Failure is one permanent fail-stop processor failure to inject.
type Failure = sim.Failure

// Scenario is a set of failures injected during a simulation.
type Scenario = sim.Scenario

// SingleFailure returns a scenario with one permanent failure.
func SingleFailure(proc string, iteration int, at float64) Scenario {
	return sim.Single(proc, iteration, at)
}

// IntermittentFailure returns a scenario with one fail-silent outage: proc
// is silent from (iteration, at) to (recIteration, recAt), then resumes. On
// a bus, FT1 re-integrates it once its messages are observed again.
func IntermittentFailure(proc string, iteration int, at float64, recIteration int, recAt float64) Scenario {
	return sim.Intermittent(proc, iteration, at, recIteration, recAt)
}

// SimConfig tunes a simulation run.
type SimConfig = sim.Config

// SimResult is a simulation outcome: per-iteration response times, output
// delivery, failover counts.
type SimResult = sim.Result

// IterationResult reports one simulated iteration.
type IterationResult = sim.IterationResult

// Simulate executes a schedule's distributed executive in virtual time
// under the failure scenario.
func Simulate(s *Schedule, g *Graph, a *Architecture, sp *Spec, sc Scenario, cfg SimConfig) (*SimResult, error) {
	return sim.Simulate(s, g, a, sp, sc, cfg)
}

// SimulateContext is Simulate bounded by a context: the simulator polls
// between iterations and aborts with the context's error when it is done.
// A run that completes is bit-identical to Simulate.
func SimulateContext(ctx context.Context, s *Schedule, g *Graph, a *Architecture, sp *Spec, sc Scenario, cfg SimConfig) (*SimResult, error) {
	flag, stop := watchContext(ctx, cfg.Cancel)
	defer stop()
	cfg.Cancel = flag
	res, err := sim.Simulate(s, g, a, sp, sc, cfg)
	if err != nil {
		return nil, ctxErr(ctx, err, sim.ErrCanceled)
	}
	return res, nil
}

// Value is the data flowing along dependencies in the concurrent executive.
type Value = executive.Value

// OpFunc computes one operation in the concurrent executive.
type OpFunc = executive.OpFunc

// Program binds operation names to implementations for the concurrent
// executive.
type Program = executive.Program

// NewProgram returns an empty executive program.
func NewProgram() *Program { return executive.NewProgram() }

// KillSpec crashes a processor right before it executes an operation.
type KillSpec = executive.KillSpec

// RunConfig tunes a concurrent executive run.
type RunConfig = executive.Config

// RunResult is the outcome of a concurrent executive run.
type RunResult = executive.Result

// Run executes the schedule as a real concurrent distributed program (one
// goroutine per processor), computing the program's functions and failing
// over past crashed replicas — the second step of the AAA method.
func Run(s *Schedule, g *Graph, prog *Program, cfg RunConfig) (*RunResult, error) {
	return executive.Run(s, g, prog, cfg)
}

// GenerateExecutive emits the schedule's distributed executive as a
// standalone Go program (standard library only): the AAA method's second
// step, "from this static schedule, it produces automatically a real-time
// distributed executive implementing this schedule". The program runs the
// demonstration payload; replace its compute function with real code.
func GenerateExecutive(s *Schedule, g *Graph) (string, error) {
	return gen.Generate(s, g, gen.Options{})
}

// Analysis bounds a schedule's response time over every tolerated failure.
type Analysis = rt.Analysis

// AnalyzeWorstCase exhaustively sweeps the failure scenarios of up to K
// simultaneous crashes (and, for K >= 1, each single crash at every event
// boundary of the schedule) and returns response-time bounds, the evidence
// that the schedule satisfies its real-time constraint in faulty executions.
func AnalyzeWorstCase(s *Schedule, g *Graph, a *Architecture, sp *Spec, k int) (*Analysis, error) {
	return rt.Analyze(s, g, a, sp, k)
}

// Certification is the result of statically certifying a schedule against K
// processor failures: the verdict, pattern accounting, response-time bounds,
// and a minimal counterexample when the certificate fails.
type Certification = certify.Verdict

// Counterexample is a minimal failure pattern breaking a schedule, with its
// broken data path.
type Counterexample = certify.Counterexample

// ObsSink collects the engines' observability data: named atomic counters,
// accumulated phase timers, and span events for the Chrome-trace exporter. A
// nil *ObsSink is a valid disabled sink — every instrumented code path costs
// one nil check and produces no data. Set it as Options.Obs (scheduler),
// SimConfig.Obs (simulator), or pass it to CertifyObs.
type ObsSink = obs.Sink

// NewObsSink returns an empty, enabled observability sink.
func NewObsSink() *ObsSink { return obs.NewSink() }

// WriteChromeTrace writes a Chrome-trace (Perfetto-loadable) JSON document
// combining the sink's build-phase spans and the schedule rendered as a Gantt
// timeline, one track per processor and link. Either argument may be nil to
// omit its half.
func WriteChromeTrace(w io.Writer, sink *ObsSink, s *Schedule) error {
	return obs.WriteChromeTrace(w, sink, s)
}

// WriteObsStats writes the sink's counters and timers as aligned text.
func WriteObsStats(w io.Writer, sink *ObsSink) {
	obs.WriteStats(w, sink)
}

// Certify statically proves (or refutes) that a scheduling result tolerates
// every pattern of at most k processor failures, without running the
// simulator: it enumerates the frontier failure patterns (smaller ones are
// implied by monotonicity), propagates data availability through surviving
// replicas, active transfers, and FT1 timeout chains, checks that every
// external output is still produced, and bounds the worst-case response
// time per pattern. When certification fails, the Certification carries a
// minimal counterexample.
func Certify(res *Result, g *Graph, a *Architecture, sp *Spec, k int) (*Certification, error) {
	if res == nil {
		return nil, errors.New("ftsched: nil scheduling result")
	}
	return certify.Certify(res.Schedule, g, a, sp, k)
}

// CertifyObs is Certify with an observability sink recording the frontier
// patterns checked, patterns implied by monotonicity, availability
// evaluations, and fixpoint rounds. A nil sink makes it identical to Certify.
func CertifyObs(res *Result, g *Graph, a *Architecture, sp *Spec, k int, sink *ObsSink) (*Certification, error) {
	if res == nil {
		return nil, errors.New("ftsched: nil scheduling result")
	}
	return certify.CertifyObs(res.Schedule, g, a, sp, k, sink)
}

// CertifyOptions tunes the certification engine: the worker-pool bound, the
// reference full-fixpoint evaluation path, and the observability sink. Every
// option combination produces a bit-identical Certification; the knobs only
// trade wall-clock time for resources.
type CertifyOptions = certify.Options

// CertifyWith is Certify with explicit engine options.
func CertifyWith(res *Result, g *Graph, a *Architecture, sp *Spec, k int, opts CertifyOptions) (*Certification, error) {
	if res == nil {
		return nil, errors.New("ftsched: nil scheduling result")
	}
	return certify.CertifyWith(res.Schedule, g, a, sp, k, opts)
}

// CertifyContext is CertifyWith bounded by a context: the frontier
// enumeration polls between failure patterns and aborts with the context's
// error when it is done. A run that completes produces a Certification
// bit-identical to the context-free entry points.
func CertifyContext(ctx context.Context, res *Result, g *Graph, a *Architecture, sp *Spec, k int, opts CertifyOptions) (*Certification, error) {
	if res == nil {
		return nil, errors.New("ftsched: nil scheduling result")
	}
	flag, stop := watchContext(ctx, opts.Cancel)
	defer stop()
	opts.Cancel = flag
	v, err := certify.CertifyWith(res.Schedule, g, a, sp, k, opts)
	if err != nil {
		return nil, ctxErr(ctx, err, certify.ErrCanceled)
	}
	return v, nil
}
