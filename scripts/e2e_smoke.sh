#!/usr/bin/env bash
# e2e_smoke.sh — end-to-end smoke test of the ftschedd daemon.
#
# Boots ftschedd on a random port, drives /healthz, /v1/schedule,
# /v1/certify, and /metrics, and verifies the schedule response is
# byte-identical to BOTH the committed golden fixture and a fresh run of the
# ftsched CLI (the server's determinism-to-the-wire contract). Exits
# non-zero on any divergence. Run from the repository root; CI runs this as
# the e2e-smoke job.
set -euo pipefail

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -TERM "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "==> building ftschedd and ftsched"
go build -o "$workdir/ftschedd" ./cmd/ftschedd
go build -o "$workdir/ftsched" ./cmd/ftsched

echo "==> booting ftschedd on a random port"
"$workdir/ftschedd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
  if [ -s "$workdir/addr" ]; then
    addr=$(tr -d '[:space:]' <"$workdir/addr")
    break
  fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon exited during startup"; cat "$workdir/daemon.log"; exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "FAIL: daemon never wrote its address"; cat "$workdir/daemon.log"; exit 1
fi
base="http://$addr"
echo "    listening on $base"

echo "==> /healthz"
health=$(curl -fsS "$base/healthz")
[ "$health" = "ok" ] || { echo "FAIL: healthz said '$health'"; exit 1; }

echo "==> /v1/schedule?format=cli vs golden fixture"
curl -fsS -X POST --data-binary @cmd/ftschedd/testdata/schedule_request.json \
  "$base/v1/schedule?format=cli" -o "$workdir/schedule.json"
if ! cmp -s "$workdir/schedule.json" cmd/ftschedd/testdata/schedule_golden.json; then
  echo "FAIL: server response differs from the golden fixture"
  diff cmd/ftschedd/testdata/schedule_golden.json "$workdir/schedule.json" || true
  exit 1
fi

echo "==> golden fixture vs fresh ftsched CLI output"
"$workdir/ftsched" -demo -heuristic ft1 -k 1 -format json >"$workdir/cli.json"
if ! cmp -s "$workdir/cli.json" cmd/ftschedd/testdata/schedule_golden.json; then
  echo "FAIL: golden fixture has rotted away from the CLI output"
  echo "      regenerate with: cd cmd/ftschedd && go run gen_fixtures.go"
  diff "$workdir/cli.json" cmd/ftschedd/testdata/schedule_golden.json || true
  exit 1
fi

echo "==> cache hit replays identical bytes"
curl -fsS -X POST --data-binary @cmd/ftschedd/testdata/schedule_request.json \
  "$base/v1/schedule?format=cli" -o "$workdir/schedule2.json" -D "$workdir/headers2.txt"
cmp -s "$workdir/schedule.json" "$workdir/schedule2.json" || { echo "FAIL: hit bytes differ from miss bytes"; exit 1; }
grep -qi '^x-ftsched-cache: hit' "$workdir/headers2.txt" || {
  echo "FAIL: expected cache hit, headers were:"; cat "$workdir/headers2.txt"; exit 1; }

echo "==> /v1/certify"
curl -fsS -X POST --data-binary @cmd/ftschedd/testdata/schedule_request.json \
  "$base/v1/certify" -o "$workdir/certify.json"
grep -q '"Certified": true' "$workdir/certify.json" || {
  echo "FAIL: paper example did not certify"; cat "$workdir/certify.json"; exit 1; }

echo "==> /metrics"
curl -fsS "$base/metrics" -o "$workdir/metrics.txt"
for series in ftsched_serve_requests ftsched_serve_cache_hits ftsched_serve_engine_schedule; do
  grep -q "^$series " "$workdir/metrics.txt" || {
    echo "FAIL: metrics output lacks $series"; cat "$workdir/metrics.txt"; exit 1; }
done

echo "==> graceful drain on SIGTERM"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: daemon exited non-zero on drain"; cat "$workdir/daemon.log"; exit 1; }
daemon_pid=""

echo "PASS: e2e smoke"
