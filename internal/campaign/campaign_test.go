package campaign_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"

	"ftsched/internal/campaign"
	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/paperex"
	"ftsched/internal/sim"
)

// compileModel schedules the paper instance and compiles it.
func compileModel(t *testing.T, h core.Heuristic, k int) (*sim.Model, *paperex.Instance) {
	t.Helper()
	in := paperex.BusInstance()
	if h == core.FT2 {
		in = paperex.TriangleInstance()
	}
	r, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Compile(r.Schedule, in.Graph, in.Arch, in.Spec)
	if err != nil {
		t.Fatal(err)
	}
	return m, in
}

// TestCampaignDeterministicAcrossWorkers is the determinism contract: the
// same (seed, N, mix) yields byte-identical JSON reports — including the
// retained worst-offender replay records — at workers 1, 4, and 8.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	m, _ := compileModel(t, core.FT1, 1)
	mix := map[string]float64{"failstop": 0.5, "intermittent": 0.2, "burst": 0.2, "linkfail": 0.1}
	var baseline []byte
	for _, workers := range []int{1, 4, 8} {
		rep, err := campaign.Run(m, campaign.Config{
			N: 3000, Seed: 7, Workers: workers, Iterations: 3,
			Deadline: m.Makespan() * 1.5, MaxFaults: 2, K: 1, Mix: mix, Retain: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = b
			if len(rep.WorstOffenders) == 0 {
				t.Fatal("campaign retained no worst offenders")
			}
			continue
		}
		if !bytes.Equal(baseline, b) {
			t.Fatalf("workers=%d report differs from workers=1 report", workers)
		}
	}
}

// TestCampaignCrossCheckFT1 pins the Goemans/Lynch/Saias bound on the
// FT1 schedule: every fail-stop or burst scenario with at most K=1 failure
// completes.
func TestCampaignCrossCheckFT1(t *testing.T) {
	m, _ := compileModel(t, core.FT1, 1)
	rep, err := campaign.Run(m, campaign.Config{
		N: 2000, Seed: 11, Iterations: 3, MaxFaults: 1, K: 1,
		Mix: map[string]float64{"failstop": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CrossCheck.WithinK == 0 {
		t.Fatal("no scenarios within the fault bound")
	}
	if !rep.CrossCheck.Consistent {
		t.Fatalf("FT1 violated the k=1 fault bound: %+v", rep.CrossCheck)
	}
	if rep.Total.Scenarios != 2000 {
		t.Fatalf("scenario count %d != 2000", rep.Total.Scenarios)
	}
}

// TestCampaignCrossCheckFT2 does the same on the FT2 point-to-point
// schedule, where bursts within K must also be harmless.
func TestCampaignCrossCheckFT2(t *testing.T) {
	m, _ := compileModel(t, core.FT2, 1)
	rep, err := campaign.Run(m, campaign.Config{
		N: 1500, Seed: 13, Iterations: 2, MaxFaults: 1, K: 1,
		Mix: map[string]float64{"failstop": 0.7, "burst": 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CrossCheck.Consistent {
		t.Fatalf("FT2 violated the k=1 fault bound: %+v", rep.CrossCheck)
	}
}

// TestCampaignBasicFindsFailures sanity-checks the negative direction: the
// non-fault-tolerant basic schedule must produce incomplete scenarios under
// fail-stop failures (and they surface as worst offenders).
func TestCampaignBasicFindsFailures(t *testing.T) {
	m, _ := compileModel(t, core.Basic, 0)
	rep, err := campaign.Run(m, campaign.Config{
		N: 500, Seed: 3, Iterations: 2, MaxFaults: 1, K: 0,
		Mix: map[string]float64{"failstop": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.IncompleteScenarios == 0 {
		t.Fatal("basic schedule survived every fail-stop scenario")
	}
	if len(rep.WorstOffenders) == 0 {
		t.Fatal("no worst offenders retained")
	}
	if rep.WorstOffenders[0].IncompleteIterations == 0 {
		t.Fatalf("worst offender has no incomplete iterations: %+v", rep.WorstOffenders[0])
	}
}

// TestCampaignOffenderRecordsReplay verifies the replay contract: a
// retained record re-executes to exactly the recorded outcome, and its
// embedded scenario equals the deterministic regeneration from its index.
func TestCampaignOffenderRecordsReplay(t *testing.T) {
	m, _ := compileModel(t, core.FT1, 1)
	rep, err := campaign.Run(m, campaign.Config{
		N: 1000, Seed: 21, Iterations: 3, MaxFaults: 2, K: 1,
		Mix: map[string]float64{"failstop": 0.6, "burst": 0.4}, Retain: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.WorstOffenders) == 0 {
		t.Fatal("no offenders retained")
	}
	for _, rec := range rep.WorstOffenders {
		res, err := campaign.Replay(m, &rec)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		incomplete := 0
		for _, ir := range res.Iterations {
			if ir.ResponseTime > worst {
				worst = ir.ResponseTime
			}
			if !ir.Completed {
				incomplete++
			}
			if len(ir.Trace) == 0 && ir.MessagesSent > 0 {
				t.Fatalf("replay of index %d produced no trace", rec.Index)
			}
		}
		if worst != rec.WorstResponse || incomplete != rec.IncompleteIterations {
			t.Fatalf("replay of index %d diverges: worst %v (rec %v), incomplete %d (rec %d)",
				rec.Index, worst, rec.WorstResponse, incomplete, rec.IncompleteIterations)
		}
	}
	// Records must round-trip through JSON unchanged.
	rec := rep.WorstOffenders[0]
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back campaign.Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("record JSON round-trip changed it:\nbefore: %+v\nafter:  %+v", rec, back)
	}
}

// TestCampaignCancel checks cooperative cancellation: a pre-raised flag
// aborts with sim.ErrCanceled.
func TestCampaignCancel(t *testing.T) {
	m, _ := compileModel(t, core.FT1, 1)
	var flag atomic.Bool
	flag.Store(true)
	_, err := campaign.Run(m, campaign.Config{N: 100000, Seed: 1, Cancel: &flag})
	if err != sim.ErrCanceled {
		t.Fatalf("err = %v, want sim.ErrCanceled", err)
	}
}

// TestCampaignObsCounters checks the campaign wires its counters and
// per-worker spans into the sink.
func TestCampaignObsCounters(t *testing.T) {
	m, _ := compileModel(t, core.FT1, 1)
	sink := obs.NewSink()
	rep, err := campaign.Run(m, campaign.Config{
		N: 600, Seed: 5, Workers: 3, Iterations: 2, Obs: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	if snap["campaign.scenarios"] != 600 {
		t.Fatalf("campaign.scenarios = %d, want 600", snap["campaign.scenarios"])
	}
	if snap["campaign.iterations"] != rep.Total.Iterations {
		t.Fatalf("campaign.iterations = %d, want %d", snap["campaign.iterations"], rep.Total.Iterations)
	}
	if snap["campaign.blocks.merged"] != (600+255)/256 {
		t.Fatalf("campaign.blocks.merged = %d", snap["campaign.blocks.merged"])
	}
}

// TestParseMix covers the CLI mix-spec parser.
func TestParseMix(t *testing.T) {
	mix, err := campaign.ParseMix("failstop=0.7, burst=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if mix["failstop"] != 0.7 || mix["burst"] != 0.3 {
		t.Fatalf("mix = %v", mix)
	}
	if m, err := campaign.ParseMix(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{"nope=1", "failstop", "failstop=x"} {
		if _, err := campaign.ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestCampaignConfigErrors covers the config validation paths.
func TestCampaignConfigErrors(t *testing.T) {
	m, _ := compileModel(t, core.Basic, 0)
	if _, err := campaign.Run(m, campaign.Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := campaign.Run(m, campaign.Config{N: 10, Mix: map[string]float64{"bogus": 1}}); err == nil {
		t.Fatal("unknown mix class accepted")
	}
	if _, err := campaign.Run(m, campaign.Config{N: 10, Mix: map[string]float64{"failstop": -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := campaign.Run(m, campaign.Config{N: 10, Mix: map[string]float64{"failstop": 0}}); err == nil {
		t.Fatal("zero-total mix accepted")
	}
}
