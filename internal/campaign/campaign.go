package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ftsched/internal/obs"
	"ftsched/internal/sim"
)

// blockSize is the fixed work-block granularity. It is part of the
// deterministic contract: blocks are fixed index ranges regardless of
// worker count, so the index-ordered merge folds identical partial sums.
const blockSize = 256

// Config tunes a campaign.
type Config struct {
	// N is the number of scenarios to run (required, positive).
	N int64
	// Seed derives every scenario: scenario i depends only on (Seed, i).
	Seed int64
	// Workers is the shard pool size; 0 means GOMAXPROCS. The report is
	// byte-identical at any worker count.
	Workers int
	// Iterations is the reactive-loop length per scenario (default 2: the
	// FT1 detection dynamics need a post-transient iteration).
	Iterations int
	// Deadline, when positive, is the per-iteration response-time
	// constraint counted in the miss rates.
	Deadline float64
	// MaxFaults caps the failures per scenario (default 1).
	MaxFaults int
	// K is the schedule's design fault-tolerance, used by the
	// Goemans/Lynch/Saias cross-check: fail-stop and burst scenarios with
	// at most K failures must complete every iteration.
	K int
	// Mix weights the scenario classes by name (see Class.String); it is
	// normalized internally. Nil means pure fail-stop (the paper's model).
	Mix map[string]float64
	// Retain is the number of worst-offender replay records kept
	// (default 3).
	Retain int
	// Obs, when non-nil, accumulates campaign counters and per-worker
	// block spans. Results are identical with or without a sink.
	Obs *obs.Sink
	// Cancel, when non-nil, aborts the campaign cooperatively: workers
	// poll it between scenarios and Run returns sim.ErrCanceled.
	Cancel *atomic.Bool
}

// campaignInstruments holds the pre-resolved obs counters.
type campaignInstruments struct {
	scenarios  *obs.Counter
	iterations *obs.Counter
	incomplete *obs.Counter
	misses     *obs.Counter
	blocks     *obs.Counter
	retained   *obs.Counter
}

func (in *campaignInstruments) resolve(s *obs.Sink) {
	if s == nil {
		return
	}
	in.scenarios = s.Counter("campaign.scenarios")
	in.iterations = s.Counter("campaign.iterations")
	in.incomplete = s.Counter("campaign.iterations.incomplete")
	in.misses = s.Counter("campaign.deadline.misses")
	in.blocks = s.Counter("campaign.blocks.merged")
	in.retained = s.Counter("campaign.offenders.retained")
}

// normalizeMix resolves the class weights to a cumulative distribution.
func normalizeMix(mix map[string]float64) ([numClasses]float64, error) {
	var w [numClasses]float64
	if len(mix) == 0 {
		w[ClassFailStop] = 1
	} else {
		for name, v := range mix { //ftlint:order-insensitive each entry writes its own class slot; the sum below is order-free
			c, err := ParseClass(name)
			if err != nil {
				return w, err
			}
			if v < 0 {
				return w, fmt.Errorf("campaign: negative weight %v for class %q", v, name)
			}
			w[c] = v
		}
	}
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return w, fmt.Errorf("campaign: scenario mix has no positive weight")
	}
	cum := 0.0
	for c := range w {
		cum += w[c] / total
		w[c] = cum
	}
	w[numClasses-1] = 1 // guard against rounding
	return w, nil
}

// blockResult carries one finished block to the merger.
type blockResult struct {
	idx int64
	agg *blockAgg
}

// Run executes the campaign and assembles the deterministic report.
func Run(m *sim.Model, cfg Config) (*Report, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("campaign: N must be positive (got %d)", cfg.N)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2
	}
	if cfg.MaxFaults <= 0 {
		cfg.MaxFaults = 1
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	cum, err := normalizeMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	if len(m.Procs()) == 0 {
		return nil, fmt.Errorf("campaign: model has no processors")
	}

	var ins campaignInstruments
	ins.resolve(cfg.Obs)
	binWidth := m.Makespan() * histSpan / histBins

	// Burst scenarios carry at least two failures regardless of MaxFaults;
	// size the per-fault-count bins so they are not silently folded down.
	faultBins := cfg.MaxFaults
	if prev := cum[ClassBurst-1]; cum[ClassBurst] > prev && faultBins < 2 {
		faultBins = 2
	}

	numBlocks := (cfg.N + blockSize - 1) / blockSize
	var nextBlock atomic.Int64
	var canceled atomic.Bool
	results := make(chan blockResult, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			track := fmt.Sprintf("campaign/w%d", w)
			gen := newGenerator(m, cfg.Seed, cfg.Iterations, cfg.MaxFaults, cum)
			runner := m.NewRunner()
			runCfg := sim.RunConfig{Iterations: cfg.Iterations, Deadline: cfg.Deadline}
			for {
				b := nextBlock.Add(1) - 1
				if b >= numBlocks || canceled.Load() {
					return
				}
				span := cfg.Obs.StartSpan(track, "block")
				agg := newBlockAgg(faultBins, cfg.Retain)
				lo, hi := b*blockSize, (b+1)*blockSize
				if hi > cfg.N {
					hi = cfg.N
				}
				for i := lo; i < hi; i++ {
					if cfg.Cancel != nil && cfg.Cancel.Load() {
						canceled.Store(true)
						span.End()
						return
					}
					sc, class, faults := gen.scenario(i)
					st := runner.RunStats(sc, runCfg)
					agg.add(i, class, faults, cfg.K, &st, binWidth)
				}
				span.End()
				ins.scenarios.Add(agg.total.Scenarios)
				ins.iterations.Add(agg.total.Iterations)
				ins.incomplete.Add(agg.total.IncompleteIterations)
				ins.misses.Add(agg.total.DeadlineMisses)
				results <- blockResult{idx: b, agg: agg}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Index-ordered merge through a reorder buffer: whatever order blocks
	// arrive in, they fold in ascending block order, so float sums and
	// offender retention are identical at any worker count.
	total := newBlockAgg(faultBins, cfg.Retain)
	pending := make(map[int64]*blockAgg)
	var next, merged int64
	for br := range results {
		pending[br.idx] = br.agg
		for { //ftlint:allow-nopoll drains at most len(pending) buffered blocks; workers already polled Cancel before producing each one
			agg, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			total.merge(agg)
			next++
			merged++
			ins.blocks.Inc()
		}
	}
	if canceled.Load() || (cfg.Cancel != nil && cfg.Cancel.Load()) {
		return nil, sim.ErrCanceled
	}
	if merged != numBlocks {
		return nil, fmt.Errorf("campaign: merged %d of %d blocks", merged, numBlocks)
	}
	ins.retained.Add(int64(len(total.offenders)))
	return buildReport(m, cfg, cum, total, binWidth), nil
}
