package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ftsched/internal/sim"
)

// Versions of the emitted JSON documents.
const (
	ReportVersion = "ftsim-campaign/v1"
	RecordVersion = "ftsim-replay/v1"
)

// Report is the campaign outcome. It deliberately carries no timing,
// host, or worker-count fields: the same (model, Config.N, Seed, mix)
// produces a byte-identical document at any worker count, which the
// determinism tests and the nightly campaign-smoke leg compare verbatim.
type Report struct {
	Version    string  `json:"version"`
	Seed       int64   `json:"seed"`
	Scenarios  int64   `json:"scenarios"`
	Iterations int     `json:"iterations_per_scenario"`
	Deadline   float64 `json:"deadline,omitempty"`
	MaxFaults  int     `json:"max_faults"`
	K          int     `json:"k"`
	Makespan   float64 `json:"makespan"`
	// Mix holds the normalized class weights actually used.
	Mix map[string]float64 `json:"mix"`

	Total    ClassAgg             `json:"total"`
	PerClass map[string]*ClassAgg `json:"per_class"`
	// PerFaults is indexed by the scenario fault count (0..MaxFaults).
	PerFaults []ClassAgg `json:"per_faults"`

	Response   ResponseStats `json:"response"`
	CrossCheck CrossCheck    `json:"cross_check"`

	// WorstOffenders are the retained replay records, worst first.
	WorstOffenders []Record `json:"worst_offenders"`
}

// ResponseStats summarizes the per-scenario worst response times.
type ResponseStats struct {
	// BinWidth is the histogram resolution; bin i counts scenarios with
	// worst response in [i*BinWidth, (i+1)*BinWidth). The last entry is
	// the overflow bin.
	BinWidth  float64 `json:"bin_width"`
	Histogram []int64 `json:"histogram"`
	// MeanWorst and MeanIteration average the per-scenario worst and
	// per-iteration response times.
	MeanWorst     float64 `json:"mean_worst"`
	MeanIteration float64 `json:"mean_iteration"`
	// P50..P999 are histogram-resolution percentile estimates (upper bin
	// edge); Max is exact.
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// CrossCheck reports the empirical check of the analytic fault bound
// (Goemans/Lynch/Saias): a K-fault-tolerant schedule must complete every
// fail-stop (or burst) scenario with at most K failures. Intermittent and
// link-failure scenarios are outside the bound's failure model and are
// excluded.
type CrossCheck struct {
	K                 int   `json:"k"`
	WithinK           int64 `json:"within_k"`
	WithinKIncomplete int64 `json:"within_k_incomplete"`
	Consistent        bool  `json:"consistent"`
}

// Record is one retained worst-offender scenario with everything needed to
// re-execute it (ftsim -replay).
type Record struct {
	Version              string       `json:"version"`
	Index                int64        `json:"index"`
	Seed                 int64        `json:"seed"`
	Class                string       `json:"class"`
	Faults               int          `json:"faults"`
	Iterations           int          `json:"iterations"`
	Deadline             float64      `json:"deadline,omitempty"`
	Scenario             sim.Scenario `json:"scenario"`
	WorstResponse        float64      `json:"worst_response"`
	WorstIteration       int          `json:"worst_iteration"`
	IncompleteIterations int          `json:"incomplete_iterations"`
	DeadlineMisses       int          `json:"deadline_misses"`
}

// buildReport assembles the final document from the merged aggregate. The
// offender scenarios are regenerated here from their indices — nothing was
// copied during the sweep.
func buildReport(m *sim.Model, cfg Config, cum [numClasses]float64, total *blockAgg, binWidth float64) *Report {
	rep := &Report{
		Version:    ReportVersion,
		Seed:       cfg.Seed,
		Scenarios:  cfg.N,
		Iterations: cfg.Iterations,
		Deadline:   cfg.Deadline,
		MaxFaults:  cfg.MaxFaults,
		K:          cfg.K,
		Makespan:   m.Makespan(),
		Mix:        make(map[string]float64, numClasses),
		Total:      total.total,
		PerClass:   make(map[string]*ClassAgg, numClasses),
		PerFaults:  total.perFaults,
	}
	prev := 0.0
	for c := Class(0); c < numClasses; c++ {
		if w := cum[c] - prev; w > 0 {
			rep.Mix[c.String()] = w
		}
		prev = cum[c]
		if total.perClass[c].Scenarios > 0 {
			agg := total.perClass[c]
			rep.PerClass[c.String()] = &agg
		}
	}
	n := total.total.Scenarios
	rep.Response = ResponseStats{
		BinWidth:  binWidth,
		Histogram: total.hist,
		P50:       percentile(total.hist, n, 0.50, binWidth, total.maxWorst),
		P90:       percentile(total.hist, n, 0.90, binWidth, total.maxWorst),
		P99:       percentile(total.hist, n, 0.99, binWidth, total.maxWorst),
		P999:      percentile(total.hist, n, 0.999, binWidth, total.maxWorst),
		Max:       total.maxWorst,
	}
	if n > 0 {
		rep.Response.MeanWorst = total.sumWorst / float64(n)
		rep.Response.MeanIteration = total.sumMean / float64(n)
	}
	rep.CrossCheck = CrossCheck{
		K:                 cfg.K,
		WithinK:           total.withinK,
		WithinKIncomplete: total.withinBad,
		Consistent:        total.withinBad == 0,
	}
	gen := newGenerator(m, cfg.Seed, cfg.Iterations, cfg.MaxFaults, cum)
	for _, o := range total.offenders {
		sc, class, faults := gen.scenario(o.index)
		rec := Record{
			Version:              RecordVersion,
			Index:                o.index,
			Seed:                 cfg.Seed,
			Class:                class.String(),
			Faults:               faults,
			Iterations:           cfg.Iterations,
			Deadline:             cfg.Deadline,
			Scenario:             copyScenario(sc),
			WorstResponse:        o.worst,
			WorstIteration:       o.worstIter,
			IncompleteIterations: o.incomplete,
			DeadlineMisses:       o.misses,
		}
		if class != o.class || faults != o.faults {
			// Regeneration is pure in (seed, index); a mismatch means the
			// generator changed mid-run and the record would replay a
			// different scenario.
			panic(fmt.Sprintf("campaign: offender %d regenerated as %v/%d, ran as %v/%d",
				o.index, class, faults, o.class, o.faults))
		}
		rep.WorstOffenders = append(rep.WorstOffenders, rec)
	}
	return rep
}

// copyScenario detaches a scenario from the generator's reused buffers.
func copyScenario(sc sim.Scenario) sim.Scenario {
	out := sim.Scenario{}
	if len(sc.Failures) > 0 {
		out.Failures = append([]sim.Failure(nil), sc.Failures...)
	}
	if len(sc.Links) > 0 {
		out.Links = append([]sim.LinkFailure(nil), sc.Links...)
	}
	return out
}

// JSON renders the report as indented JSON with a trailing newline; the
// bytes are the campaign's determinism contract.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders a human-readable summary.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d scenarios x %d iterations, seed %d, max faults %d, k %d\n",
		r.Scenarios, r.Iterations, r.Seed, r.MaxFaults, r.K)
	if r.Deadline > 0 {
		fmt.Fprintf(&b, "deadline: %.4g (misses: %d of %d iterations)\n",
			r.Deadline, r.Total.DeadlineMisses, r.Total.Iterations)
	}
	fmt.Fprintf(&b, "incomplete: %d scenarios (%d iterations)\n",
		r.Total.IncompleteScenarios, r.Total.IncompleteIterations)
	fmt.Fprintf(&b, "response (worst per scenario): p50 %.4g  p90 %.4g  p99 %.4g  p99.9 %.4g  max %.4g  (makespan %.4g)\n",
		r.Response.P50, r.Response.P90, r.Response.P99, r.Response.P999, r.Response.Max, r.Makespan)
	classes := make([]string, 0, len(r.PerClass))
	for name := range r.PerClass {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		a := r.PerClass[name]
		fmt.Fprintf(&b, "  class %-12s %9d scenarios, %6d incomplete, %7d timeouts, %6d false detections, %7d failovers\n",
			name, a.Scenarios, a.IncompleteScenarios, a.Timeouts, a.FalseDetections, a.Failovers)
	}
	for f, a := range r.PerFaults {
		if a.Scenarios == 0 {
			continue
		}
		fmt.Fprintf(&b, "  faults=%-2d %12d scenarios, %6d incomplete\n", f, a.Scenarios, a.IncompleteScenarios)
	}
	cc := r.CrossCheck
	verdict := "CONSISTENT"
	if !cc.Consistent {
		verdict = "VIOLATED"
	}
	fmt.Fprintf(&b, "fault-bound cross-check (k=%d): %d scenarios within bound, %d incomplete -> %s\n",
		cc.K, cc.WithinK, cc.WithinKIncomplete, verdict)
	for i, rec := range r.WorstOffenders {
		fmt.Fprintf(&b, "  offender %d: index %d class %s faults %d worst %.4g incomplete %d\n",
			i+1, rec.Index, rec.Class, rec.Faults, rec.WorstResponse, rec.IncompleteIterations)
	}
	return b.String()
}

// ParseMix parses a CLI mix spec ("failstop=0.7,burst=0.3").
func ParseMix(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("campaign: mix entry %q is not class=weight", part)
		}
		if _, err := ParseClass(strings.TrimSpace(name)); err != nil {
			return nil, err
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("campaign: mix weight %q: %v", val, err)
		}
		mix[strings.TrimSpace(name)] = w
	}
	return mix, nil
}

// Replay re-executes a retained record against the compiled model with
// tracing enabled, so the failure can be inspected iteration by iteration.
func Replay(m *sim.Model, rec *Record) (*sim.Result, error) {
	if rec.Version != RecordVersion {
		return nil, fmt.Errorf("campaign: record version %q, want %q", rec.Version, RecordVersion)
	}
	if err := m.Validate(rec.Scenario); err != nil {
		return nil, err
	}
	return m.Simulate(rec.Scenario, sim.Config{
		Iterations: rec.Iterations,
		Deadline:   rec.Deadline,
		Trace:      true,
	})
}
