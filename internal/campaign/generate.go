// Package campaign is the sharded Monte-Carlo fault-campaign engine: it
// draws randomized failure scenarios from deterministic seed-derived
// streams, executes them against one compiled simulator model (internal/sim
// Model/Runner) across a pool of workers, and folds the results into
// streaming aggregates — response-time histogram and percentiles, per-class
// and per-fault-count rates, retained worst offenders with replay records,
// and a cross-check of the empirical tolerance against the analytic
// fault-bound of Goemans/Lynch/Saias ("On the number of faults a system can
// withstand without repairs"): a K-fault-tolerant schedule must complete
// every scenario with at most K fail-stop failures.
//
// Determinism is the design center. Scenario i is derived solely from
// (Seed, i); work is handed out in fixed index blocks; and every block's
// partial aggregate is merged in block order through a reorder buffer, so
// the report — including float sums and retained offenders — is
// byte-identical at any worker count.
package campaign

import (
	"fmt"

	"ftsched/internal/sim"
)

// Class identifies a scenario generator family.
type Class int

// Scenario classes.
const (
	// ClassFailStop draws 1..MaxFaults permanent fail-stop processor
	// failures at independent random iterations and dates (the paper's
	// Section 5.1 failure model).
	ClassFailStop Class = iota
	// ClassIntermittent draws bounded fail-silent outages with recovery
	// points (the Section 6.1 Item 3 extension).
	ClassIntermittent
	// ClassBurst draws near-simultaneous failures: at least two processors
	// failing within 2% of the makespan in the same iteration — the
	// worst case for FT1's sequential failover timeouts.
	ClassBurst
	// ClassLinkFail draws link outages (the paper assumes links never
	// fail; this class probes that assumption).
	ClassLinkFail

	numClasses = 4
)

// String names the class (the report's JSON keys).
func (c Class) String() string {
	switch c {
	case ClassFailStop:
		return "failstop"
	case ClassIntermittent:
		return "intermittent"
	case ClassBurst:
		return "burst"
	case ClassLinkFail:
		return "linkfail"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass resolves a class name.
func ParseClass(name string) (Class, error) {
	for c := Class(0); c < numClasses; c++ {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown scenario class %q (want failstop, intermittent, burst, or linkfail)", name)
}

// prng is splitmix64: a tiny allocation-free generator whose whole state is
// one word, so every scenario index can reseed it from (seed, index) and be
// regenerated later without storing anything. (math/rand's global source is
// banned in critical packages by the nondet analyzer, and rand.New allocates
// per scenario.)
type prng struct{ s uint64 }

// reseed derives the stream for one (seed, index) pair.
func (p *prng) reseed(seed int64, index int64) {
	p.s = uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(index)*0xbf58476d1ce4e5b9
	p.next()
	p.next()
}

// next returns the next 64 random bits.
func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (p *prng) float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n). n must be positive. The modulo
// bias is ~2^-53 for the small n used here — irrelevant for a simulation
// workload and cheaper than rejection sampling on the hot path.
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// generator derives the scenario for an index. One generator per worker;
// the perm and scenario buffers are reused so steady-state generation
// allocates nothing.
type generator struct {
	seed       int64
	iterations int
	maxFaults  int
	horizon    float64
	procs      []string
	links      []string
	cum        [numClasses]float64 // cumulative normalized class weights

	rng  prng
	perm []int
	sc   sim.Scenario
}

// newGenerator builds a worker-local generator. The mix must already be
// normalized (see normalizeMix).
func newGenerator(m *sim.Model, seed int64, iterations, maxFaults int, cum [numClasses]float64) *generator {
	procs, links := m.Procs(), m.Links()
	n := len(procs)
	if len(links) > n {
		n = len(links)
	}
	return &generator{
		seed:       seed,
		iterations: iterations,
		maxFaults:  maxFaults,
		horizon:    m.Makespan(),
		procs:      procs,
		links:      links,
		cum:        cum,
		perm:       make([]int, n),
	}
}

// scenario regenerates scenario index deterministically from (seed, index).
// The returned Scenario aliases the generator's buffers: it is valid until
// the next call.
func (g *generator) scenario(index int64) (sim.Scenario, Class, int) {
	g.rng.reseed(g.seed, index)
	g.sc.Failures = g.sc.Failures[:0]
	g.sc.Links = g.sc.Links[:0]

	class := g.pickClass()
	switch class {
	case ClassFailStop:
		return g.failStop()
	case ClassIntermittent:
		return g.intermittent()
	case ClassBurst:
		return g.burst()
	default:
		return g.linkFail()
	}
}

// pickClass draws the scenario class from the mix, then applies the
// feasibility fallbacks (burst needs two processors, linkfail needs a
// link): infeasible draws degrade to fail-stop so the campaign never
// silently under-delivers scenarios.
func (g *generator) pickClass() Class {
	u := g.rng.float64()
	class := Class(numClasses - 1)
	for c := Class(0); c < numClasses; c++ {
		if u < g.cum[c] {
			class = c
			break
		}
	}
	if class == ClassBurst && len(g.procs) < 2 {
		class = ClassFailStop
	}
	if class == ClassLinkFail && len(g.links) == 0 {
		class = ClassFailStop
	}
	return class
}

// pickProcs draws n distinct processor indices into perm[:n] (partial
// Fisher-Yates over the reusable buffer).
func (g *generator) pickProcs(n int) []int {
	for i := range g.procs {
		g.perm[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + g.rng.intn(len(g.procs)-i)
		g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
	}
	return g.perm[:n]
}

// faultCount draws 1..min(maxFaults, limit).
func (g *generator) faultCount(limit int) int {
	n := g.maxFaults
	if limit < n {
		n = limit
	}
	if n < 1 {
		n = 1
	}
	return 1 + g.rng.intn(n)
}

func (g *generator) failStop() (sim.Scenario, Class, int) {
	n := g.faultCount(len(g.procs))
	for _, pi := range g.pickProcs(n) {
		g.sc.Failures = append(g.sc.Failures, sim.Failure{
			Proc:      g.procs[pi],
			Iteration: g.rng.intn(g.iterations),
			At:        g.rng.float64() * g.horizon,
		})
	}
	return g.sc, ClassFailStop, n
}

func (g *generator) intermittent() (sim.Scenario, Class, int) {
	n := g.faultCount(len(g.procs))
	for _, pi := range g.pickProcs(n) {
		iter := g.rng.intn(g.iterations)
		at := g.rng.float64() * g.horizon
		f := sim.Failure{Proc: g.procs[pi], Iteration: iter, At: at}
		if g.rng.intn(2) == 0 || iter == g.iterations-1 {
			// Recover within the same iteration.
			f.RecoverIteration = iter
			f.RecoverAt = at + (0.05+g.rng.float64()*0.45)*g.horizon
		} else {
			// A later iteration: RecoverIteration >= 1 keeps the failure
			// distinguishable from a permanent one even when RecoverAt is 0.
			f.RecoverIteration = iter + 1 + g.rng.intn(g.iterations-iter-1)
			f.RecoverAt = g.rng.float64() * g.horizon
		}
		g.sc.Failures = append(g.sc.Failures, f)
	}
	return g.sc, ClassIntermittent, n
}

func (g *generator) burst() (sim.Scenario, Class, int) {
	// At least two failures within a 2%-of-makespan window of the same
	// iteration: FT1's failover chains then time out back to back, which is
	// the paper's stated weakness of the first solution.
	limit := len(g.procs)
	n := g.faultCount(limit)
	if n < 2 {
		n = 2
	}
	iter := g.rng.intn(g.iterations)
	window := g.horizon * 0.02
	base := g.rng.float64() * (g.horizon - window)
	for _, pi := range g.pickProcs(n) {
		g.sc.Failures = append(g.sc.Failures, sim.Failure{
			Proc:      g.procs[pi],
			Iteration: iter,
			At:        base + g.rng.float64()*window,
		})
	}
	return g.sc, ClassBurst, n
}

func (g *generator) linkFail() (sim.Scenario, Class, int) {
	n := g.faultCount(len(g.links))
	for i := range g.links {
		g.perm[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + g.rng.intn(len(g.links)-i)
		g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
	}
	for _, li := range g.perm[:n] {
		iter := g.rng.intn(g.iterations)
		at := g.rng.float64() * g.horizon
		f := sim.LinkFailure{Link: g.links[li], Iteration: iter, At: at}
		if g.rng.intn(2) == 0 {
			f.RecoverIteration = iter
			f.RecoverAt = at + (0.05+g.rng.float64()*0.45)*g.horizon
		}
		g.sc.Links = append(g.sc.Links, f)
	}
	return g.sc, ClassLinkFail, n
}
