package campaign

import (
	"math"

	"ftsched/internal/sim"
)

// histBins is the fixed resolution of the response-time histogram. The
// range spans [0, histSpan × makespan); anything beyond lands in the
// overflow bin. Percentiles are read off the cumulative histogram as the
// upper edge of the covering bin — a deterministic, stream-foldable
// estimate whose error is bounded by one bin width.
const (
	histBins = 64
	histSpan = 4.0
)

// ClassAgg accumulates the outcome counters of one scenario population
// (a class, a fault count, or the whole campaign).
type ClassAgg struct {
	// Scenarios and Iterations count population size.
	Scenarios  int64 `json:"scenarios"`
	Iterations int64 `json:"iterations"`
	// IncompleteScenarios counts scenarios with at least one iteration that
	// failed to produce every output; IncompleteIterations counts the
	// iterations themselves.
	IncompleteScenarios  int64 `json:"incomplete_scenarios"`
	IncompleteIterations int64 `json:"incomplete_iterations"`
	// DeadlineMisses counts iterations that missed the configured deadline.
	DeadlineMisses int64 `json:"deadline_misses"`
	// Engine tallies summed over all iterations.
	Messages        int64 `json:"messages"`
	Timeouts        int64 `json:"timeouts"`
	FalseDetections int64 `json:"false_detections"`
	Failovers       int64 `json:"failovers"`
	Lost            int64 `json:"lost"`
	Missed          int64 `json:"missed"`
}

// addStats folds one scenario's statistics in.
func (a *ClassAgg) addStats(st *sim.Stats) {
	a.Scenarios++
	a.Iterations += int64(st.Iterations)
	inc := int64(st.Iterations - st.Completed)
	if inc > 0 {
		a.IncompleteScenarios++
	}
	a.IncompleteIterations += inc
	a.DeadlineMisses += int64(st.DeadlineMisses)
	a.Messages += int64(st.Messages)
	a.Timeouts += int64(st.Timeouts)
	a.FalseDetections += int64(st.FalseDetections)
	a.Failovers += int64(st.Failovers)
	a.Lost += int64(st.Lost)
	a.Missed += int64(st.Missed)
}

// merge folds another aggregate in (all fields are sums).
func (a *ClassAgg) merge(b *ClassAgg) {
	a.Scenarios += b.Scenarios
	a.Iterations += b.Iterations
	a.IncompleteScenarios += b.IncompleteScenarios
	a.IncompleteIterations += b.IncompleteIterations
	a.DeadlineMisses += b.DeadlineMisses
	a.Messages += b.Messages
	a.Timeouts += b.Timeouts
	a.FalseDetections += b.FalseDetections
	a.Failovers += b.Failovers
	a.Lost += b.Lost
	a.Missed += b.Missed
}

// offender is a worst-offender candidate, tracked as (index, outcome) only:
// the scenario itself is regenerated from the index when the report is
// assembled, so nothing is copied or shipped during the sweep.
type offender struct {
	index      int64
	class      Class
	faults     int
	incomplete int
	worst      float64
	worstIter  int
	misses     int
}

// worse orders offenders: more incomplete iterations first, then higher
// worst response, then lower index. The total order makes top-R retention
// independent of merge arrival order.
func (o *offender) worse(p *offender) bool {
	if o.incomplete != p.incomplete {
		return o.incomplete > p.incomplete
	}
	if o.worst != p.worst {
		return o.worst > p.worst
	}
	return o.index < p.index
}

// blockAgg is one work block's partial aggregate: everything the merger
// needs to fold, in plain additive form.
type blockAgg struct {
	total     ClassAgg
	perClass  [numClasses]ClassAgg
	perFaults []ClassAgg // indexed by fault count, 0..maxFaults
	hist      []int64    // histBins + 1 (overflow)
	sumWorst  float64    // index-ordered sum of per-scenario worst responses
	sumMean   float64    // index-ordered sum of per-scenario mean responses
	maxWorst  float64
	withinK   int64 // fail-stop/burst scenarios with faults <= K
	withinBad int64 // ... of those, with incomplete iterations
	offenders []offender
	retain    int
}

func newBlockAgg(maxFaults, retain int) *blockAgg {
	return &blockAgg{
		perFaults: make([]ClassAgg, maxFaults+1),
		hist:      make([]int64, histBins+1),
		retain:    retain,
	}
}

// add folds one scenario (processed in index order within the block).
func (b *blockAgg) add(index int64, class Class, faults, k int, st *sim.Stats, binWidth float64) {
	b.total.addStats(st)
	b.perClass[class].addStats(st)
	// The last bin is "len-1 faults or more"; the raw count is kept for the
	// offender record and the within-K check below.
	fi := faults
	if fi >= len(b.perFaults) {
		fi = len(b.perFaults) - 1
	}
	b.perFaults[fi].addStats(st)

	bin := histBins
	if binWidth > 0 {
		if i := int(st.WorstResponse / binWidth); i < histBins {
			bin = i
		}
	}
	b.hist[bin]++
	b.sumWorst += st.WorstResponse
	if st.Iterations > 0 {
		b.sumMean += st.SumResponse / float64(st.Iterations)
	}
	if st.WorstResponse > b.maxWorst {
		b.maxWorst = st.WorstResponse
	}

	if (class == ClassFailStop || class == ClassBurst) && faults <= k {
		b.withinK++
		if st.Completed < st.Iterations {
			b.withinBad++
		}
	}

	if b.retain > 0 {
		o := offender{
			index:      index,
			class:      class,
			faults:     faults,
			incomplete: st.Iterations - st.Completed,
			worst:      st.WorstResponse,
			worstIter:  st.WorstIteration,
			misses:     st.DeadlineMisses,
		}
		b.offenders = insertOffender(b.offenders, o, b.retain)
	}
}

// insertOffender keeps list sorted by worse() and capped at retain.
func insertOffender(list []offender, o offender, retain int) []offender {
	if len(list) == retain && !o.worse(&list[retain-1]) {
		return list
	}
	pos := len(list)
	for pos > 0 && o.worse(&list[pos-1]) {
		pos--
	}
	if len(list) < retain {
		list = append(list, offender{})
	}
	copy(list[pos+1:], list[pos:])
	list[pos] = o
	return list
}

// merge folds block b2 (a later index range) into b.
func (b *blockAgg) merge(b2 *blockAgg) {
	b.total.merge(&b2.total)
	for c := range b.perClass {
		b.perClass[c].merge(&b2.perClass[c])
	}
	for f := range b.perFaults {
		b.perFaults[f].merge(&b2.perFaults[f])
	}
	for i := range b.hist {
		b.hist[i] += b2.hist[i]
	}
	b.sumWorst += b2.sumWorst
	b.sumMean += b2.sumMean
	if b2.maxWorst > b.maxWorst {
		b.maxWorst = b2.maxWorst
	}
	b.withinK += b2.withinK
	b.withinBad += b2.withinBad
	for _, o := range b2.offenders {
		b.offenders = insertOffender(b.offenders, o, b.retain)
	}
}

// percentile returns the upper edge of the first histogram bin whose
// cumulative count covers fraction q of n scenarios (and the exact maximum
// for the overflow bin, whose upper edge is unbounded).
func percentile(hist []int64, n int64, q, binWidth, maxWorst float64) float64 {
	if n == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(n)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i, c := range hist {
		cum += c
		if cum >= need {
			if i == histBins {
				return maxWorst
			}
			return float64(i+1) * binWidth
		}
	}
	return maxWorst
}
