// Package faults builds fail-stop failure scenarios for the executive
// simulator: exhaustive single-failure sweeps, K-subset enumerations for
// tolerance proofs, and random injections for property tests.
package faults

import (
	"fmt"
	"math/rand"

	"ftsched/internal/arch"
	"ftsched/internal/sim"
)

// SingleSweep returns one scenario per (processor, crash date): processor p
// fails at the given iteration at each date in ats. Useful to check that a
// K=1 schedule survives every single failure.
func SingleSweep(a *arch.Architecture, iteration int, ats []float64) []sim.Scenario {
	var out []sim.Scenario
	for _, p := range a.ProcessorNames() {
		for _, at := range ats {
			out = append(out, sim.Single(p, iteration, at))
		}
	}
	return out
}

// CrashDates returns n evenly spaced crash dates spanning [0, horizon],
// including both endpoints when n >= 2.
func CrashDates(horizon float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{0}
	}
	out := make([]float64, n)
	step := horizon / float64(n-1)
	for i := range out {
		out[i] = step * float64(i)
	}
	return out
}

// Subsets returns every subset of size k of the architecture's processors,
// in deterministic order.
func Subsets(a *arch.Architecture, k int) [][]string {
	procs := a.ProcessorNames()
	var out [][]string
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) == k {
			cp := make([]string, k)
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := start; i < len(procs); i++ {
			rec(i+1, append(cur, procs[i]))
		}
	}
	rec(0, nil)
	return out
}

// SimultaneousSweep returns one scenario per k-subset of processors, all
// failing at the same iteration and date. Useful to check that a K=k
// schedule survives any k simultaneous failures.
func SimultaneousSweep(a *arch.Architecture, k, iteration int, at float64) []sim.Scenario {
	var out []sim.Scenario
	for _, sub := range Subsets(a, k) {
		sc := sim.Scenario{}
		for _, p := range sub {
			sc.Failures = append(sc.Failures, sim.Failure{Proc: p, Iteration: iteration, At: at})
		}
		out = append(out, sc)
	}
	return out
}

// StaggeredSweep returns one scenario per k-subset, with the i-th processor
// of the subset failing at iteration i (one new failure per iteration).
func StaggeredSweep(a *arch.Architecture, k int, at float64) []sim.Scenario {
	var out []sim.Scenario
	for _, sub := range Subsets(a, k) {
		sc := sim.Scenario{}
		for i, p := range sub {
			sc.Failures = append(sc.Failures, sim.Failure{Proc: p, Iteration: i, At: at})
		}
		out = append(out, sc)
	}
	return out
}

// Random returns a scenario with up to maxFailures distinct processors
// failing at random iterations in [0, iterations) and random dates in
// [0, horizon).
func Random(r *rand.Rand, a *arch.Architecture, maxFailures, iterations int, horizon float64) (sim.Scenario, error) {
	procs := a.ProcessorNames()
	if maxFailures > len(procs) {
		return sim.Scenario{}, fmt.Errorf("faults: maxFailures %d exceeds %d processors", maxFailures, len(procs))
	}
	if iterations <= 0 {
		return sim.Scenario{}, fmt.Errorf("faults: iterations must be positive")
	}
	n := r.Intn(maxFailures + 1)
	perm := r.Perm(len(procs))
	sc := sim.Scenario{}
	for i := 0; i < n; i++ {
		sc.Failures = append(sc.Failures, sim.Failure{
			Proc:      procs[perm[i]],
			Iteration: r.Intn(iterations),
			At:        r.Float64() * horizon,
		})
	}
	return sc, nil
}
