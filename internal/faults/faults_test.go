package faults

import (
	"math/rand"
	"testing"

	"ftsched/internal/arch"
)

func testArch(t *testing.T, n int) *arch.Architecture {
	t.Helper()
	a := arch.New("a")
	names := []string{"P1", "P2", "P3", "P4"}[:n]
	for _, p := range names {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddBus("bus", names...); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSingleSweep(t *testing.T) {
	a := testArch(t, 3)
	scs := SingleSweep(a, 1, []float64{0, 2.5})
	if len(scs) != 6 {
		t.Fatalf("len = %d, want 6", len(scs))
	}
	for _, sc := range scs {
		if len(sc.Failures) != 1 || sc.Failures[0].Iteration != 1 {
			t.Errorf("bad scenario %+v", sc)
		}
	}
	if scs[0].Failures[0].Proc != "P1" || scs[0].Failures[0].At != 0 {
		t.Errorf("first scenario = %+v", scs[0])
	}
}

func TestCrashDates(t *testing.T) {
	if got := CrashDates(10, 0); got != nil {
		t.Errorf("n=0: %v", got)
	}
	if got := CrashDates(10, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("n=1: %v", got)
	}
	got := CrashDates(10, 5)
	if len(got) != 5 || got[0] != 0 || got[4] != 10 || got[2] != 5 {
		t.Errorf("n=5: %v", got)
	}
}

func TestSubsets(t *testing.T) {
	a := testArch(t, 4)
	subs := Subsets(a, 2)
	if len(subs) != 6 { // C(4,2)
		t.Fatalf("len = %d, want 6", len(subs))
	}
	seen := map[string]bool{}
	for _, s := range subs {
		if len(s) != 2 || s[0] == s[1] {
			t.Errorf("bad subset %v", s)
		}
		key := s[0] + "," + s[1]
		if seen[key] {
			t.Errorf("duplicate subset %v", s)
		}
		seen[key] = true
	}
	if got := Subsets(a, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("k=0: %v", got)
	}
	if got := Subsets(a, 5); len(got) != 0 {
		t.Errorf("k>n: %v", got)
	}
}

func TestSimultaneousSweep(t *testing.T) {
	a := testArch(t, 3)
	scs := SimultaneousSweep(a, 2, 0, 1.5)
	if len(scs) != 3 {
		t.Fatalf("len = %d, want 3", len(scs))
	}
	for _, sc := range scs {
		if len(sc.Failures) != 2 {
			t.Errorf("scenario %v", sc)
		}
		for _, f := range sc.Failures {
			if f.Iteration != 0 || f.At != 1.5 {
				t.Errorf("failure %+v", f)
			}
		}
	}
}

func TestStaggeredSweep(t *testing.T) {
	a := testArch(t, 3)
	scs := StaggeredSweep(a, 2, 0.5)
	if len(scs) != 3 {
		t.Fatalf("len = %d", len(scs))
	}
	for _, sc := range scs {
		if sc.Failures[0].Iteration != 0 || sc.Failures[1].Iteration != 1 {
			t.Errorf("staggered iterations wrong: %+v", sc)
		}
	}
}

func TestRandom(t *testing.T) {
	a := testArch(t, 4)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		sc, err := Random(r, a, 2, 3, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Failures) > 2 {
			t.Errorf("too many failures: %+v", sc)
		}
		seen := map[string]bool{}
		for _, f := range sc.Failures {
			if seen[f.Proc] {
				t.Errorf("duplicate proc in %+v", sc)
			}
			seen[f.Proc] = true
			if f.Iteration < 0 || f.Iteration >= 3 || f.At < 0 || f.At >= 10 {
				t.Errorf("out-of-range failure %+v", f)
			}
		}
	}
	if _, err := Random(r, a, 9, 3, 10); err == nil {
		t.Error("maxFailures > procs must error")
	}
	if _, err := Random(r, a, 1, 0, 10); err == nil {
		t.Error("iterations <= 0 must error")
	}
}
