package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/paperex"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden Chrome-trace file")

// TestGoldenChromeTraceFT1 pins the exact trace document produced for the
// paper's FT1 bus schedule. The build-phase half is omitted (nil sink)
// because span timestamps are wall-clock; the schedule half is fully
// deterministic, so any diff here is a real change to the trace schema or to
// the scheduler's output.
func TestGoldenChromeTraceFT1(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, nil, res.Schedule); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "ft1_bus_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from %s (re-run with -update after auditing the diff)\ngot:\n%s", golden, buf.String())
	}
}

// TestChromeTraceSchema validates the shape of every event a full trace
// (build spans + schedule Gantt) emits: the subset of the Trace Event Format
// that Perfetto and chrome://tracing require.
func TestChromeTraceSchema(t *testing.T) {
	in := paperex.BusInstance()
	sink := obs.NewSink()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{Obs: sink})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, sink, res.Schedule); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		DisplayTime string                       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTime != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTime)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	sawSpan, sawOp, sawComm := false, false, false
	for i, raw := range doc.TraceEvents {
		var e struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		}
		data, _ := json.Marshal(raw)
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if e.Ts < 0 {
			t.Errorf("event %d (%s): negative ts %g", i, e.Name, e.Ts)
		}
		if e.Pid != 1 && e.Pid != 2 {
			t.Errorf("event %d (%s): pid %d outside {1, 2}", i, e.Name, e.Pid)
		}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Errorf("event %d (%s): complete event needs dur >= 0, got %v", i, e.Name, e.Dur)
			}
			switch e.Cat {
			case "phase":
				sawSpan = true
			case "op", "op.backup":
				sawOp = true
			case "comm", "comm.broadcast", "comm.passive", "comm.passive.broadcast":
				sawComm = true
			default:
				t.Errorf("event %d (%s): unknown cat %q", i, e.Name, e.Cat)
			}
		case "M":
			if v, ok := e.Args["name"].(string); !ok || v == "" {
				t.Errorf("event %d (%s): metadata event needs args.name, got %v", i, e.Name, e.Args)
			}
		default:
			t.Errorf("event %d (%s): ph %q outside {X, M}", i, e.Name, e.Ph)
		}
	}
	if !sawSpan || !sawOp || !sawComm {
		t.Errorf("trace missing a section: spans=%v ops=%v comms=%v", sawSpan, sawOp, sawComm)
	}
}

// TestChromeTraceEmpty checks the degenerate document: both halves absent
// still yields a loadable trace.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Errorf("want present-but-empty traceEvents, got %v", doc.TraceEvents)
	}
}
