// Package obs is the observability layer of the scheduler, certifier, and
// simulator: named monotonic counters, cumulative timers, and span-style
// trace events, collected by a Sink and exported as a plain-text stats dump
// (WriteStats) or a Chrome-trace/Perfetto JSON document (WriteChromeTrace).
//
// The layer is zero-cost when disabled: a nil *Sink is a valid, permanently
// disabled sink. Every method on Sink, Counter, and Span is nil-receiver
// safe, so instrumented code resolves its counters once and then calls them
// unconditionally — a disabled counter costs one nil check per increment and
// performs no allocation, no locking, and no time measurement. Enabled
// counters are atomic and safe for concurrent use from worker pools.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxEvents bounds the span-event buffer so a long run cannot grow a sink
// without limit. Spans beyond the cap still update their timers; only the
// trace event is dropped, and the drop is counted in the EventsDropped
// counter so truncation is never silent.
const maxEvents = 1 << 16

// EventsDropped is the counter recording span events discarded after the
// event buffer filled up.
const EventsDropped = "obs.events.dropped"

// Counter is a named atomic counter registered on a Sink. The nil Counter
// (from a nil Sink) discards increments.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver and for
// concurrent use.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// TimerStat is the aggregate of one named timer: how many spans completed
// under that name and their total duration.
type TimerStat struct {
	Count int64
	Total time.Duration
}

// timer accumulates span durations atomically.
type timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// SpanEvent is one completed span, with dates relative to the sink's start.
type SpanEvent struct {
	// Track groups related spans onto one timeline (a Chrome-trace thread).
	Track string
	// Name is the span's label, also the key of its cumulative timer.
	Name string
	// Start and End are offsets from the sink's creation.
	Start, End time.Duration
}

// Sink collects counters, timers, and span events for one run. Create one
// with NewSink; a nil *Sink disables all collection.
type Sink struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*timer
	tracks   []string // registration order, drives exporter layout
	events   []SpanEvent
	dropped  *Counter
}

// NewSink returns an empty enabled sink.
func NewSink() *Sink {
	s := &Sink{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		timers:   make(map[string]*timer),
	}
	s.dropped = s.Counter(EventsDropped)
	return s
}

// Counter returns the named counter, registering it on first use. On a nil
// sink it returns a nil (discarding) counter, so call sites can resolve
// counters once and increment unconditionally.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Span is an in-flight span started by StartSpan. The nil Span (from a nil
// sink) ignores End.
type Span struct {
	sink  *Sink
	track string
	name  string
	start time.Duration
}

// StartSpan opens a span on the given track. On a nil sink it returns nil
// and measures nothing.
func (s *Sink) StartSpan(track, name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{sink: s, track: track, name: name, start: time.Since(s.start)}
}

// End closes the span: its duration is added to the cumulative timer named
// after the span, and a trace event is recorded (buffer capacity permitting).
// Safe on a nil receiver.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	s := sp.sink
	end := time.Since(s.start)
	s.mu.Lock()
	t := s.timers[sp.name]
	if t == nil {
		t = &timer{}
		s.timers[sp.name] = t
	}
	if len(s.events) < maxEvents {
		s.events = append(s.events, SpanEvent{Track: sp.track, Name: sp.name, Start: sp.start, End: end})
		if !s.hasTrack(sp.track) {
			s.tracks = append(s.tracks, sp.track)
		}
	} else {
		s.dropped.Inc()
	}
	s.mu.Unlock()
	t.count.Add(1)
	t.nanos.Add(int64(end - sp.start))
}

// hasTrack reports whether track is already registered (callers hold s.mu).
func (s *Sink) hasTrack(track string) bool {
	for _, t := range s.tracks {
		if t == track {
			return true
		}
	}
	return false
}

// Snapshot returns the current counter values, sorted-key iterable via the
// map, with zero-valued counters omitted. Nil-safe: a nil sink returns nil.
func (s *Sink) Snapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		if v := c.Value(); v != 0 {
			out[name] = v
		}
	}
	return out
}

// Timers returns the aggregate of every completed span name. Nil-safe.
func (s *Sink) Timers() map[string]TimerStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TimerStat, len(s.timers))
	for name, t := range s.timers {
		out[name] = TimerStat{Count: t.count.Load(), Total: time.Duration(t.nanos.Load())}
	}
	return out
}

// Events returns a copy of the recorded span events in completion order.
// Nil-safe.
func (s *Sink) Events() []SpanEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanEvent(nil), s.events...)
}

// Tracks returns the span tracks in first-use order. Nil-safe.
func (s *Sink) Tracks() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.tracks...)
}

// sortedKeys returns m's keys in lexicographic order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
