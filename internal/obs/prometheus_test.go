package obs

import (
	"bufio"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusNilSink(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil sink wrote %q", b.String())
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	s := NewSink()
	s.Counter("core.cache.hits").Add(7)
	s.Counter("serve.requests").Add(3)
	s.Counter("idle.counter") // registered, never incremented
	sp := s.StartSpan("core", "evaluate")
	time.Sleep(time.Millisecond)
	sp.End()

	var b strings.Builder
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE ftsched_core_cache_hits counter\nftsched_core_cache_hits 7\n",
		"# TYPE ftsched_serve_requests counter\nftsched_serve_requests 3\n",
		"ftsched_idle_counter 0\n", // zero-valued series still exported
		"# TYPE ftsched_timer_evaluate_count counter\nftsched_timer_evaluate_count 1\n",
		"# TYPE ftsched_timer_evaluate_seconds_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Byte-determinism: a second render of the same state is identical.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, s); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatalf("exposition is not deterministic:\n%s\nvs\n%s", out, b2.String())
	}

	// Shape check: every non-comment line is "name value" with a valid
	// metric name, which is what a Prometheus scraper requires.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if promName(fields[0]) != fields[0] {
			t.Fatalf("metric name %q escapes the Prometheus alphabet", fields[0])
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"core.cache.hits": "core_cache_hits",
		"a-b c":           "a_b_c",
		"9lives":          "_9lives",
		"ok_name:x":       "ok_name:x",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
