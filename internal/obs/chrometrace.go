package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/sched"
)

// Chrome-trace process IDs. The build process carries the sink's span
// timeline (real time); the schedule process carries the produced schedule's
// Gantt chart (abstract schedule time, one track per computation unit and
// link).
const (
	pidBuild    = 1
	pidSchedule = 2
)

// usPerTimeUnit maps one abstract schedule time unit to Chrome-trace
// microseconds, so a schedule with durations around 1.0 renders as
// millisecond-scale slices in Perfetto instead of sub-pixel slivers.
const usPerTimeUnit = 1000.0

// traceEvent is one entry of the Trace Event Format (ph "X" complete events
// and ph "M" metadata), the subset Perfetto and chrome://tracing load.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope of a trace document.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// dur returns a pointer suitable for traceEvent.Dur, clamping the tiny
// negatives float64 noise can produce.
func dur(d float64) *float64 {
	if d < 0 {
		d = 0
	}
	return &d
}

// meta builds a ph "M" metadata event (process/thread naming).
func meta(name string, pid, tid int, value string) traceEvent {
	return traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// WriteChromeTrace writes one Chrome-trace JSON document combining the
// sink's span timeline (the scheduler's own build phases, real time) and the
// produced schedule rendered as a Gantt chart (abstract schedule time, one
// track per processor and per link, with passive backup reservations and
// their timeout chains tagged by category and args). Either part may be
// absent: sink and s are both optional (nil). The output loads in Perfetto
// (ui.perfetto.dev) and chrome://tracing.
func WriteChromeTrace(w io.Writer, sink *Sink, s *sched.Schedule) error {
	doc := chromeTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if sink != nil {
		doc.TraceEvents = append(doc.TraceEvents, spanEvents(sink)...)
	}
	if s != nil {
		doc.TraceEvents = append(doc.TraceEvents, scheduleEvents(s)...)
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// spanEvents renders the sink's spans: one thread per track, events in
// completion order, timestamps in real microseconds since the sink started.
func spanEvents(sink *Sink) []traceEvent {
	tracks := sink.Tracks()
	tid := make(map[string]int, len(tracks))
	out := []traceEvent{meta("process_name", pidBuild, 0, "ftsched build")}
	for i, t := range tracks {
		tid[t] = i
		out = append(out, meta("thread_name", pidBuild, i, t))
	}
	for _, ev := range sink.Events() {
		out = append(out, traceEvent{
			Name: ev.Name, Cat: "phase", Ph: "X",
			Ts:  float64(ev.Start.Microseconds()),
			Dur: dur(float64((ev.End - ev.Start).Microseconds())),
			Pid: pidBuild, Tid: tid[ev.Track],
		})
	}
	return out
}

// scheduleEvents renders the schedule Gantt: processors first, then links,
// in sorted name order. Operation slots carry their replica rank; comm slots
// carry the full transfer identity, with passive reservations (and their
// activation timeouts) and broadcasts tagged in the category so they are
// visually separable in Perfetto's track query and search.
func scheduleEvents(s *sched.Schedule) []traceEvent {
	out := []traceEvent{meta("process_name", pidSchedule, 0, "schedule")}
	tid := 0
	for _, p := range s.Procs() {
		out = append(out, meta("thread_name", pidSchedule, tid, "proc "+p))
		for _, sl := range s.ProcSlots(p) {
			cat := "op"
			if sl.Replica > 0 {
				cat = "op.backup"
			}
			out = append(out, traceEvent{
				Name: sl.Op, Cat: cat, Ph: "X",
				Ts:  sl.Start * usPerTimeUnit,
				Dur: dur(sl.Duration() * usPerTimeUnit),
				Pid: pidSchedule, Tid: tid,
				Args: map[string]any{"replica": sl.Replica, "main": sl.Main()},
			})
		}
		tid++
	}
	for _, l := range s.Links() {
		out = append(out, meta("thread_name", pidSchedule, tid, "link "+l))
		for _, c := range s.LinkSlots(l) {
			cat := "comm"
			if c.Passive {
				cat = "comm.passive"
			}
			if c.Broadcast {
				cat += ".broadcast"
			}
			args := map[string]any{
				"transfer": c.TransferID,
				"hop":      c.Hop,
				"src":      c.SrcProc,
				"rank":     c.SenderRank,
			}
			if c.DstProc != "" {
				args["dst"] = c.DstProc
			}
			if c.Passive {
				args["timeout"] = c.Timeout
			}
			name := c.Edge.String()
			if c.Passive {
				name = fmt.Sprintf("%s (backup r%d)", c.Edge, c.SenderRank)
			}
			out = append(out, traceEvent{
				Name: name, Cat: cat, Ph: "X",
				Ts:  c.Start * usPerTimeUnit,
				Dur: dur(c.Duration() * usPerTimeUnit),
				Pid: pidSchedule, Tid: tid,
				Args: args,
			})
		}
		tid++
	}
	return out
}
