package obs

import (
	"fmt"
	"io"
)

// WriteStats dumps the sink's counters and timers as aligned plain text,
// sorted by name. A nil sink writes a single disabled marker so callers can
// print unconditionally.
func WriteStats(w io.Writer, s *Sink) {
	if s == nil {
		fmt.Fprintln(w, "observability: disabled")
		return
	}
	counters := s.Snapshot()
	if len(counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(counters) {
			fmt.Fprintf(w, "  %-34s %12d\n", name, counters[name])
		}
	}
	timers := s.Timers()
	if len(timers) > 0 {
		fmt.Fprintln(w, "timers:")
		for _, name := range sortedKeys(timers) {
			t := timers[name]
			fmt.Fprintf(w, "  %-34s %12d x %14v\n", name, t.Count, t.Total)
		}
	}
	if len(counters) == 0 && len(timers) == 0 {
		fmt.Fprintln(w, "observability: no activity recorded")
	}
}
