package obs_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ftsched/internal/obs"
)

// TestNilSinkIsDisabled exercises every entry point on the nil sink: the
// whole instrumentation contract is that a nil *Sink is a valid, free,
// disabled collector.
func TestNilSinkIsDisabled(t *testing.T) {
	var s *obs.Sink
	c := s.Counter("x")
	if c != nil {
		t.Fatalf("nil sink Counter() = %v, want nil", c)
	}
	c.Add(5) // must not panic
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Errorf("nil counter Value() = %d, want 0", got)
	}
	sp := s.StartSpan("track", "name")
	sp.End() // must not panic
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Errorf("nil sink Snapshot() = %v, want empty", snap)
	}
	if timers := s.Timers(); len(timers) != 0 {
		t.Errorf("nil sink Timers() = %v, want empty", timers)
	}
	if evs := s.Events(); len(evs) != 0 {
		t.Errorf("nil sink Events() = %v, want empty", evs)
	}
	if tracks := s.Tracks(); len(tracks) != 0 {
		t.Errorf("nil sink Tracks() = %v, want empty", tracks)
	}
}

func TestCountersAndSnapshot(t *testing.T) {
	s := obs.NewSink()
	a := s.Counter("alpha")
	b := s.Counter("beta")
	zero := s.Counter("zero")
	_ = zero
	a.Add(3)
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 4 {
		t.Errorf("alpha = %d, want 4", got)
	}
	snap := s.Snapshot()
	if snap["alpha"] != 4 || snap["beta"] != 1 {
		t.Errorf("snapshot = %v, want alpha:4 beta:1", snap)
	}
	if _, ok := snap["zero"]; ok {
		t.Errorf("snapshot includes zero-valued counter: %v", snap)
	}
	// The same name resolves to the same counter.
	if s.Counter("alpha") != a {
		t.Error("Counter(\"alpha\") returned a different instance")
	}
}

func TestSpansAccumulate(t *testing.T) {
	s := obs.NewSink()
	for i := 0; i < 3; i++ {
		sp := s.StartSpan("core", "evaluate")
		time.Sleep(time.Microsecond)
		sp.End()
	}
	sp := s.StartSpan("certify", "index")
	sp.End()

	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for _, e := range evs {
		if e.Name == "" || e.Track == "" {
			t.Errorf("event missing name or track: %+v", e)
		}
		if e.Start < 0 || e.End < e.Start {
			t.Errorf("event with negative start or end before start: %+v", e)
		}
	}
	tracks := s.Tracks()
	if len(tracks) != 2 || tracks[0] != "core" || tracks[1] != "certify" {
		t.Errorf("Tracks() = %v, want first-use order [core certify]", tracks)
	}
	timers := s.Timers()
	ev, ok := timers["evaluate"]
	if !ok || ev.Count != 3 || ev.Total <= 0 {
		t.Errorf("evaluate timer = %+v, want count 3 with positive total", ev)
	}
}

// TestEventCap verifies the sink stops buffering span events at its cap and
// counts the overflow instead of growing without bound.
func TestEventCap(t *testing.T) {
	s := obs.NewSink()
	const over = 100
	for i := 0; i < (1<<16)+over; i++ {
		s.StartSpan("t", "spin").End()
	}
	if got := len(s.Events()); got != 1<<16 {
		t.Fatalf("buffered %d events, want cap %d", got, 1<<16)
	}
	if got := s.Snapshot()[obs.EventsDropped]; got != over {
		t.Errorf("%s = %d, want %d", obs.EventsDropped, got, over)
	}
	// Timers keep counting past the event cap.
	if tm := s.Timers()["spin"]; tm.Count != (1<<16)+over {
		t.Errorf("spin timer count = %d, want %d", tm.Count, (1<<16)+over)
	}
}

// TestConcurrentUse hammers one shared counter, per-goroutine counters, and
// the span path from many goroutines; run under -race this is the data-race
// proof for the worker-pool instrumentation.
func TestConcurrentUse(t *testing.T) {
	s := obs.NewSink()
	shared := s.Counter("shared")
	const workers, n = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				shared.Inc()
			}
			sp := s.StartSpan("pool", "batch")
			sp.End()
		}()
	}
	// Concurrent readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Snapshot()
				_ = s.Events()
			}
		}()
	}
	wg.Wait()
	if got := shared.Value(); got != workers*n {
		t.Errorf("shared = %d, want %d", got, workers*n)
	}
	if got := s.Timers()["batch"].Count; got != workers {
		t.Errorf("batch spans = %d, want %d", got, workers)
	}
}

func TestWriteStats(t *testing.T) {
	var b strings.Builder
	obs.WriteStats(&b, nil)
	if !strings.Contains(b.String(), "disabled") {
		t.Errorf("nil-sink stats = %q, want a disabled notice", b.String())
	}

	s := obs.NewSink()
	s.Counter("core.evals").Add(42)
	s.StartSpan("core", "evaluate").End()
	b.Reset()
	obs.WriteStats(&b, s)
	out := b.String()
	for _, frag := range []string{"counters:", "core.evals", "42", "timers:", "evaluate", " x "} {
		if !strings.Contains(out, frag) {
			t.Errorf("stats output missing %q:\n%s", frag, out)
		}
	}
}
