package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WritePrometheus writes the sink's counters and timers in the Prometheus
// text exposition format (version 0.0.4), the format a Prometheus server
// scrapes from /metrics.
//
// Every counter name is prefixed with "ftsched_" and sanitized to the
// metric-name alphabet (dots and other separators become underscores), so
// the engine counter "core.cache.hits" is exported as the counter
// "ftsched_core_cache_hits". Each cumulative timer is exported as a pair in
// the style of a Prometheus summary: "ftsched_timer_<name>_count" (spans
// completed) and "ftsched_timer_<name>_seconds_total" (their summed
// duration). Families are emitted in lexicographic order, so the exposition
// for a given sink state is byte-deterministic. A nil sink writes nothing.
//
// Unlike the Snapshot accessor, zero-valued counters are included: a
// scraper that has seen a series once keeps seeing it, which keeps rate()
// queries well-defined across idle windows.
func WritePrometheus(w io.Writer, s *Sink) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	counters := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		counters[name] = c.Value()
	}
	timers := make(map[string]TimerStat, len(s.timers))
	for name, t := range s.timers {
		timers[name] = TimerStat{Count: t.count.Load(), Total: time.Duration(t.nanos.Load())}
	}
	s.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		metric := promName("ftsched_" + name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", metric, metric, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(timers) {
		st := timers[name]
		base := promName("ftsched_timer_" + name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", base, base, st.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_seconds_total counter\n%s_seconds_total %.9f\n",
			base, base, st.Total.Seconds()); err != nil {
			return err
		}
	}
	return nil
}

// promName maps an internal counter name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:]: every other byte becomes an underscore, and a
// leading digit is guarded (internal names never start with one, but the
// exposition must stay valid for any registered name).
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
