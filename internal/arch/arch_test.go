package arch

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// paperBusArch builds Fig. 13(b): P1, P2, P3 on a single bus.
func paperBusArch(t *testing.T) *Architecture {
	t.Helper()
	a := New("bus3")
	for _, p := range []string{"P1", "P2", "P3"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddBus("bus", "P1", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	return a
}

// paperChainArch builds Fig. 8: P1 -L12- P2 -L23- P3.
func paperChainArch(t *testing.T) *Architecture {
	t.Helper()
	a := New("chain3")
	for _, p := range []string{"P1", "P2", "P3"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddLink("L12", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddLink("L23", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	return a
}

// paperTriangleArch builds Fig. 21(b): a fully connected point-to-point
// triangle.
func paperTriangleArch(t *testing.T) *Architecture {
	t.Helper()
	a := New("tri3")
	for _, p := range []string{"P1", "P2", "P3"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	_ = a.AddLink("L12", "P1", "P2")
	_ = a.AddLink("L23", "P2", "P3")
	_ = a.AddLink("L13", "P1", "P3")
	return a
}

func TestAddErrors(t *testing.T) {
	a := New("a")
	if err := a.AddProcessor(""); err == nil {
		t.Error("expected empty-name error")
	}
	_ = a.AddProcessor("P1")
	if err := a.AddProcessor("P1"); err == nil {
		t.Error("expected duplicate-processor error")
	}
	_ = a.AddProcessor("P2")
	if err := a.AddLink("", "P1", "P2"); err == nil {
		t.Error("expected empty-link-name error")
	}
	if err := a.AddLink("L", "P1", "PX"); err == nil {
		t.Error("expected unknown-endpoint error")
	}
	if err := a.AddLink("L", "P1", "P1"); err == nil {
		t.Error("expected twice-attached error")
	}
	if err := a.AddBus("B", "P1"); err == nil {
		t.Error("expected bus-too-small error")
	}
	if err := a.AddLink("L", "P1", "P2"); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := a.AddLink("L", "P1", "P2"); err == nil {
		t.Error("expected duplicate-link error")
	}
}

func TestKindsAndTopologyPredicates(t *testing.T) {
	bus := paperBusArch(t)
	if !bus.IsBusOnly() || bus.IsPointToPointOnly() {
		t.Error("bus3 should be bus-only")
	}
	tri := paperTriangleArch(t)
	if tri.IsBusOnly() || !tri.IsPointToPointOnly() {
		t.Error("tri3 should be p2p-only")
	}
	if New("e").IsBusOnly() || New("e").IsPointToPointOnly() {
		t.Error("empty architecture is neither")
	}
	if PointToPoint.String() != "point-to-point" || Bus.String() != "bus" {
		t.Error("kind strings")
	}
	if !strings.Contains(LinkKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}

func TestValidate(t *testing.T) {
	if err := New("e").Validate(); err == nil {
		t.Error("empty architecture must not validate")
	}

	solo := New("solo")
	_ = solo.AddProcessor("P1")
	if err := solo.Validate(); err != nil {
		t.Errorf("single-processor architecture should validate: %v", err)
	}

	island := New("island")
	_ = island.AddProcessor("P1")
	_ = island.AddProcessor("P2")
	if err := island.Validate(); err == nil {
		t.Error("processor without links must not validate")
	}

	split := New("split")
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		_ = split.AddProcessor(p)
	}
	_ = split.AddLink("L1", "P1", "P2")
	_ = split.AddLink("L2", "P3", "P4")
	if err := split.Validate(); err == nil {
		t.Error("disconnected architecture must not validate")
	}

	if err := paperChainArch(t).Validate(); err != nil {
		t.Errorf("chain should validate: %v", err)
	}
	if err := paperBusArch(t).Validate(); err != nil {
		t.Errorf("bus should validate: %v", err)
	}
}

func TestRouteDirect(t *testing.T) {
	a := paperChainArch(t)
	r, err := a.Route("P1", "P2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, Route{{Link: "L12", To: "P2"}}) {
		t.Errorf("route = %v", r)
	}
}

func TestRouteMultiHop(t *testing.T) {
	// The paper's Fig. 8 example: P1 to P3 is routed over P2.
	a := paperChainArch(t)
	r, err := a.Route("P1", "P3")
	if err != nil {
		t.Fatal(err)
	}
	want := Route{{Link: "L12", To: "P2"}, {Link: "L23", To: "P3"}}
	if !reflect.DeepEqual(r, want) {
		t.Errorf("route = %v, want %v", r, want)
	}
}

func TestRouteSelf(t *testing.T) {
	a := paperChainArch(t)
	r, err := a.Route("P1", "P1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 0 {
		t.Errorf("self route = %v, want empty", r)
	}
}

func TestRouteBus(t *testing.T) {
	a := paperBusArch(t)
	r, err := a.Route("P1", "P3")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, Route{{Link: "bus", To: "P3"}}) {
		t.Errorf("route = %v", r)
	}
}

func TestRouteErrors(t *testing.T) {
	a := paperChainArch(t)
	if _, err := a.Route("PX", "P1"); err == nil {
		t.Error("expected unknown-src error")
	}
	if _, err := a.Route("P1", "PX"); err == nil {
		t.Error("expected unknown-dst error")
	}
	split := New("split")
	_ = split.AddProcessor("P1")
	_ = split.AddProcessor("P2")
	if _, err := split.Route("P1", "P2"); err == nil {
		t.Error("expected no-route error")
	}
}

func TestRouteDeterministicTieBreak(t *testing.T) {
	// Two parallel links; the earliest-declared must win.
	a := New("par")
	_ = a.AddProcessor("P1")
	_ = a.AddProcessor("P2")
	_ = a.AddLink("first", "P1", "P2")
	_ = a.AddLink("second", "P1", "P2")
	r, err := a.Route("P1", "P2")
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Link != "first" {
		t.Errorf("tie-break chose %q, want \"first\"", r[0].Link)
	}
}

func TestRouteCacheInvalidation(t *testing.T) {
	a := New("grow")
	_ = a.AddProcessor("P1")
	_ = a.AddProcessor("P2")
	_ = a.AddProcessor("P3")
	_ = a.AddLink("L12", "P1", "P2")
	_ = a.AddLink("L23", "P2", "P3")
	r, _ := a.Route("P1", "P3")
	if len(r) != 2 {
		t.Fatalf("route = %v", r)
	}
	// Adding a direct link must shorten the route.
	_ = a.AddLink("L13", "P1", "P3")
	r, _ = a.Route("P1", "P3")
	if len(r) != 1 || r[0].Link != "L13" {
		t.Errorf("route after adding L13 = %v", r)
	}
}

func TestDiameter(t *testing.T) {
	chain := paperChainArch(t)
	d, err := chain.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("chain diameter = %d, want 2", d)
	}
	bus := paperBusArch(t)
	d, err = bus.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("bus diameter = %d, want 1", d)
	}
}

func TestNeighborsAndSharedLink(t *testing.T) {
	a := paperChainArch(t)
	if got := a.Neighbors("P2"); !reflect.DeepEqual(got, []string{"P1", "P3"}) {
		t.Errorf("Neighbors(P2) = %v", got)
	}
	if got := a.Neighbors("P1"); !reflect.DeepEqual(got, []string{"P2"}) {
		t.Errorf("Neighbors(P1) = %v", got)
	}
	if got := a.SharedLink("P1", "P2"); got != "L12" {
		t.Errorf("SharedLink = %q", got)
	}
	if got := a.SharedLink("P1", "P3"); got != "" {
		t.Errorf("SharedLink(P1,P3) = %q, want none", got)
	}
}

func TestLinksOfAndAccessors(t *testing.T) {
	a := paperChainArch(t)
	if got := a.LinksOf("P2"); !reflect.DeepEqual(got, []string{"L12", "L23"}) {
		t.Errorf("LinksOf(P2) = %v", got)
	}
	if a.NumProcessors() != 3 || a.NumLinks() != 2 {
		t.Error("counts")
	}
	if a.Processor("P1") == nil || a.Processor("PX") != nil {
		t.Error("Processor lookup")
	}
	if a.Link("L12") == nil || a.Link("LX") != nil {
		t.Error("Link lookup")
	}
	if a.Link("L12").Kind() != PointToPoint {
		t.Error("link kind")
	}
	if !a.Link("L12").Connects("P1") || a.Link("L12").Connects("P3") {
		t.Error("Connects")
	}
	eps := a.Link("L12").Endpoints()
	eps[0] = "mutated"
	if a.Link("L12").Endpoints()[0] != "P1" {
		t.Error("Endpoints returned aliased slice")
	}
	if got := a.ProcessorNames(); !reflect.DeepEqual(got, []string{"P1", "P2", "P3"}) {
		t.Errorf("ProcessorNames = %v", got)
	}
	if got := a.LinkNames(); !reflect.DeepEqual(got, []string{"L12", "L23"}) {
		t.Errorf("LinkNames = %v", got)
	}
}

func TestClone(t *testing.T) {
	a := paperBusArch(t)
	c := a.Clone()
	if c.NumProcessors() != 3 || c.NumLinks() != 1 {
		t.Fatal("clone shape")
	}
	_ = c.AddProcessor("P4")
	if a.HasProcessor("P4") {
		t.Error("clone mutation leaked")
	}
	if c.Link("bus").Kind() != Bus {
		t.Error("clone lost bus kind")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := New("mix")
	for _, p := range []string{"P1", "P2", "P3"} {
		_ = a.AddProcessor(p)
	}
	_ = a.AddLink("L12", "P1", "P2")
	_ = a.AddBus("can", "P1", "P2", "P3")
	data, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Architecture
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Name() != "mix" || back.NumProcessors() != 3 || back.NumLinks() != 2 {
		t.Fatalf("round trip: %s", back.Summary())
	}
	if back.Link("can").Kind() != Bus || back.Link("L12").Kind() != PointToPoint {
		t.Error("kinds lost")
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	var a Architecture
	if err := a.UnmarshalJSON([]byte(`bad`)); err == nil {
		t.Error("expected syntax error")
	}
	if err := a.UnmarshalJSON([]byte(`{"processors":["P1"],"links":[{"name":"l","kind":"warp","endpoints":["P1"]}]}`)); err == nil {
		t.Error("expected unknown-kind error")
	}
	if err := a.UnmarshalJSON([]byte(`{"processors":["P1"],"links":[{"name":"l","kind":"p2p","endpoints":["P1"]}]}`)); err == nil {
		t.Error("expected endpoint-count error")
	}
}

func TestDOT(t *testing.T) {
	a := New("mix")
	for _, p := range []string{"P1", "P2"} {
		_ = a.AddProcessor(p)
	}
	_ = a.AddLink("L", "P1", "P2")
	_ = a.AddBus("B", "P1", "P2")
	dot := a.DOT()
	for _, frag := range []string{`graph "mix"`, `"P1" -- "P2"`, `"bus_B"`} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestSummary(t *testing.T) {
	s := paperBusArch(t).Summary()
	for _, frag := range []string{"3 processors", "1 buses", "0 point-to-point"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Summary missing %q: %s", frag, s)
		}
	}
}

// randomConnectedArch builds a random connected architecture: a spanning
// chain plus random extra links.
func randomConnectedArch(r *rand.Rand, n int) *Architecture {
	a := New("rand")
	for i := 0; i < n; i++ {
		_ = a.AddProcessor("P" + strconv.Itoa(i))
	}
	for i := 1; i < n; i++ {
		_ = a.AddLink("chain"+strconv.Itoa(i), "P"+strconv.Itoa(i-1), "P"+strconv.Itoa(i))
	}
	extra := r.Intn(n + 1)
	for e := 0; e < extra; e++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		name := "x" + strconv.Itoa(e)
		_ = a.AddLink(name, "P"+strconv.Itoa(i), "P"+strconv.Itoa(j))
	}
	return a
}

func TestQuickRoutesAreValidPaths(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%8) + 2
		r := rand.New(rand.NewSource(seed))
		a := randomConnectedArch(r, n)
		if err := a.Validate(); err != nil {
			return false
		}
		for _, s := range a.ProcessorNames() {
			for _, d := range a.ProcessorNames() {
				route, err := a.Route(s, d)
				if err != nil {
					return false
				}
				// Walk the route and check each hop is traversable.
				at := s
				for _, h := range route {
					l := a.Link(h.Link)
					if l == nil || !l.Connects(at) || !l.Connects(h.To) {
						return false
					}
					at = h.To
				}
				if at != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoutesAreShortest(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%7) + 2
		r := rand.New(rand.NewSource(seed))
		a := randomConnectedArch(r, n)
		// Independent BFS distance computation.
		for _, s := range a.ProcessorNames() {
			dist := map[string]int{s: 0}
			queue := []string{s}
			for len(queue) > 0 {
				p := queue[0]
				queue = queue[1:]
				for _, q := range a.Neighbors(p) {
					if _, ok := dist[q]; !ok {
						dist[q] = dist[p] + 1
						queue = append(queue, q)
					}
				}
			}
			for _, d := range a.ProcessorNames() {
				route, err := a.Route(s, d)
				if err != nil {
					return false
				}
				if len(route) != dist[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBusBetween checks the cached processor-pair -> bus lookup: earliest
// declared bus wins, non-bus connectivity is invisible, and mutation drops
// the cache.
func TestBusBetween(t *testing.T) {
	a := New("mixed")
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddLink("L12", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddBus("B123", "P1", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddBus("B23", "P2", "P3"); err != nil {
		t.Fatal(err)
	}

	cases := []struct{ x, y, want string }{
		{"P1", "P2", "B123"}, // the point-to-point L12 must not count
		{"P2", "P1", "B123"},
		{"P2", "P3", "B123"}, // earliest declared wins over B23
		{"P1", "P4", ""},     // P4 is on no bus
		{"P1", "P1", "B123"}, // self-pair: earliest bus attaching P1
	}
	for _, c := range cases {
		if got := a.BusBetween(c.x, c.y); got != c.want {
			t.Errorf("BusBetween(%s, %s) = %q, want %q", c.x, c.y, got, c.want)
		}
	}

	// Mutation invalidates the cached table.
	if err := a.AddBus("B14", "P1", "P4"); err != nil {
		t.Fatal(err)
	}
	if got := a.BusBetween("P1", "P4"); got != "B14" {
		t.Errorf("after AddBus: BusBetween(P1, P4) = %q, want B14", got)
	}
}

// TestPrecompute checks that Precompute warms both lazy tables, so later
// Route/BusBetween calls are pure lookups (the scheduler's worker pool
// relies on this for race-freedom).
func TestPrecompute(t *testing.T) {
	a := New("pre")
	for _, p := range []string{"P1", "P2", "P3"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddLink("L12", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddBus("B23", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	a.Precompute()
	if a.routes == nil || a.buses == nil {
		t.Fatalf("Precompute left a table nil: routes=%v buses=%v", a.routes != nil, a.buses != nil)
	}
	r, err := a.Route("P1", "P3")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0].Link != "L12" || r[1].Link != "B23" {
		t.Errorf("Route(P1, P3) = %v, want L12 then B23", r)
	}
	if got := a.BusBetween("P2", "P3"); got != "B23" {
		t.Errorf("BusBetween(P2, P3) = %q, want B23", got)
	}
}
