// Package arch implements the AAA architecture model: a network of
// processors connected by bidirectional communication links.
//
// Following the paper (Section 4.3), each processor holds one computation
// unit plus one communication unit per link it is attached to; the
// architecture is a non-oriented hypergraph whose hyper-edges are the links.
// Links are either point-to-point (exactly two processors) or multi-point
// buses (two or more processors, serialized by an arbiter, with hardware
// broadcast).
package arch

import (
	"errors"
	"fmt"
	"sort"
)

// LinkKind distinguishes point-to-point links from multi-point buses.
type LinkKind int

// Link kinds.
const (
	// PointToPoint connects exactly two processors; concurrent
	// communications on distinct point-to-point links proceed in parallel.
	PointToPoint LinkKind = iota + 1
	// Bus connects two or more processors; all communications on the bus
	// are serialized, and every attached processor observes all traffic
	// (hardware broadcast), which FT1 exploits for failure detection.
	Bus
)

// String returns a human-readable name for the kind.
func (k LinkKind) String() string {
	switch k {
	case PointToPoint:
		return "point-to-point"
	case Bus:
		return "bus"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Processor is a node of the architecture graph: one computation unit and
// the communication units implied by its link attachments.
type Processor struct {
	name string
}

// Name returns the processor's unique name.
func (p *Processor) Name() string { return p.name }

// Link is a hyper-edge of the architecture graph.
type Link struct {
	name      string
	kind      LinkKind
	endpoints []string // processor names, insertion order
}

// Name returns the link's unique name.
func (l *Link) Name() string { return l.name }

// Kind returns whether the link is point-to-point or a bus.
func (l *Link) Kind() LinkKind { return l.kind }

// Endpoints returns the processors attached to the link.
func (l *Link) Endpoints() []string {
	out := make([]string, len(l.endpoints))
	copy(out, l.endpoints)
	return out
}

// Connects reports whether the link attaches the named processor.
func (l *Link) Connects(proc string) bool {
	for _, e := range l.endpoints {
		if e == proc {
			return true
		}
	}
	return false
}

// Hop is one step of a route: traverse Link to reach processor To.
type Hop struct {
	Link string
	To   string
}

// Route is a static path between two processors, as a sequence of hops. An
// empty route means source and destination are the same processor.
type Route []Hop

// Architecture is a mutable architecture graph. Create one with New.
type Architecture struct {
	name      string
	procs     map[string]*Processor
	procOrder []string
	links     map[string]*Link
	linkOrder []string
	attach    map[string][]string // proc -> link names, insertion order

	routes map[[2]string]Route  // lazily computed static routing table
	buses  map[[2]string]string // lazily computed earliest shared bus per pair
}

// New returns an empty architecture with the given name.
func New(name string) *Architecture {
	return &Architecture{
		name:   name,
		procs:  make(map[string]*Processor),
		links:  make(map[string]*Link),
		attach: make(map[string][]string),
	}
}

// Name returns the architecture's name.
func (a *Architecture) Name() string { return a.name }

// AddProcessor adds a processor node.
func (a *Architecture) AddProcessor(name string) error {
	if name == "" {
		return errors.New("arch: processor name must not be empty")
	}
	if _, ok := a.procs[name]; ok {
		return fmt.Errorf("arch: duplicate processor %q", name)
	}
	a.procs[name] = &Processor{name: name}
	a.procOrder = append(a.procOrder, name)
	a.routes = nil
	a.buses = nil
	return nil
}

// AddLink adds a point-to-point link between processors x and y.
func (a *Architecture) AddLink(name, x, y string) error {
	return a.addLink(name, PointToPoint, []string{x, y})
}

// AddBus adds a multi-point bus attaching the given processors.
func (a *Architecture) AddBus(name string, procs ...string) error {
	return a.addLink(name, Bus, procs)
}

func (a *Architecture) addLink(name string, kind LinkKind, eps []string) error {
	if name == "" {
		return errors.New("arch: link name must not be empty")
	}
	if _, ok := a.links[name]; ok {
		return fmt.Errorf("arch: duplicate link %q", name)
	}
	if kind == PointToPoint && len(eps) != 2 {
		return fmt.Errorf("arch: point-to-point link %q must have exactly 2 endpoints, got %d", name, len(eps))
	}
	if kind == Bus && len(eps) < 2 {
		return fmt.Errorf("arch: bus %q must attach at least 2 processors, got %d", name, len(eps))
	}
	seen := make(map[string]bool, len(eps))
	for _, p := range eps {
		if _, ok := a.procs[p]; !ok {
			return fmt.Errorf("arch: link %q references unknown processor %q", name, p)
		}
		if seen[p] {
			return fmt.Errorf("arch: link %q attaches processor %q twice", name, p)
		}
		seen[p] = true
	}
	cp := make([]string, len(eps))
	copy(cp, eps)
	a.links[name] = &Link{name: name, kind: kind, endpoints: cp}
	a.linkOrder = append(a.linkOrder, name)
	for _, p := range eps {
		a.attach[p] = append(a.attach[p], name)
	}
	a.routes = nil
	a.buses = nil
	return nil
}

// NumProcessors returns the number of processors.
func (a *Architecture) NumProcessors() int { return len(a.procs) }

// NumLinks returns the number of links.
func (a *Architecture) NumLinks() int { return len(a.links) }

// Processor returns the named processor, or nil.
func (a *Architecture) Processor(name string) *Processor { return a.procs[name] }

// HasProcessor reports whether the named processor exists.
func (a *Architecture) HasProcessor(name string) bool { _, ok := a.procs[name]; return ok }

// Processors returns all processors in insertion order.
func (a *Architecture) Processors() []*Processor {
	out := make([]*Processor, 0, len(a.procOrder))
	for _, n := range a.procOrder {
		out = append(out, a.procs[n])
	}
	return out
}

// ProcessorNames returns all processor names in insertion order.
func (a *Architecture) ProcessorNames() []string {
	out := make([]string, len(a.procOrder))
	copy(out, a.procOrder)
	return out
}

// Link returns the named link, or nil.
func (a *Architecture) Link(name string) *Link { return a.links[name] }

// Links returns all links in insertion order.
func (a *Architecture) Links() []*Link {
	out := make([]*Link, 0, len(a.linkOrder))
	for _, n := range a.linkOrder {
		out = append(out, a.links[n])
	}
	return out
}

// LinkNames returns all link names in insertion order.
func (a *Architecture) LinkNames() []string {
	out := make([]string, len(a.linkOrder))
	copy(out, a.linkOrder)
	return out
}

// LinksOf returns the names of the links attached to proc, in insertion
// order (one communication unit per entry, in the paper's model).
func (a *Architecture) LinksOf(proc string) []string {
	out := make([]string, len(a.attach[proc]))
	copy(out, a.attach[proc])
	return out
}

// SharedLink returns the name of a link directly connecting x and y
// (preferring the earliest declared), or "" if none exists.
func (a *Architecture) SharedLink(x, y string) string {
	for _, ln := range a.linkOrder {
		l := a.links[ln]
		if l.Connects(x) && l.Connects(y) {
			return ln
		}
	}
	return ""
}

// BusBetween returns the name of the earliest-declared bus attaching both x
// and y, or "" if no bus connects them. The pair table is computed on first
// use and cached; mutating the architecture invalidates it.
func (a *Architecture) BusBetween(x, y string) string {
	if a.buses == nil {
		a.buildBuses()
	}
	return a.buses[[2]string{x, y}]
}

// buildBuses fills the processor-pair -> earliest-declared-bus table.
func (a *Architecture) buildBuses() {
	a.buses = make(map[[2]string]string)
	for _, ln := range a.linkOrder {
		l := a.links[ln]
		if l.kind != Bus {
			continue
		}
		for i, p := range l.endpoints {
			if _, ok := a.buses[[2]string{p, p}]; !ok {
				a.buses[[2]string{p, p}] = ln
			}
			for _, q := range l.endpoints[i+1:] {
				if _, ok := a.buses[[2]string{p, q}]; !ok {
					a.buses[[2]string{p, q}] = ln
					a.buses[[2]string{q, p}] = ln
				}
			}
		}
	}
}

// Precompute eagerly builds the routing and shared-bus tables. Schedulers
// call it before evaluating candidates concurrently: afterwards Route and
// BusBetween are read-only lookups, safe for parallel use as long as the
// architecture is not mutated.
func (a *Architecture) Precompute() {
	if a.routes == nil {
		a.buildRoutes()
	}
	if a.buses == nil {
		a.buildBuses()
	}
}

// IsBusOnly reports whether every link is a bus.
func (a *Architecture) IsBusOnly() bool {
	for _, l := range a.links {
		if l.kind != Bus {
			return false
		}
	}
	return len(a.links) > 0
}

// IsPointToPointOnly reports whether every link is point-to-point.
func (a *Architecture) IsPointToPointOnly() bool {
	for _, l := range a.links {
		if l.kind != PointToPoint {
			return false
		}
	}
	return len(a.links) > 0
}

// Validate checks structural well-formedness: at least one processor, every
// processor attached to at least one link (unless the architecture has a
// single processor), and the whole graph connected.
func (a *Architecture) Validate() error {
	if len(a.procs) == 0 {
		return fmt.Errorf("arch %q: no processors", a.name)
	}
	if len(a.procs) == 1 {
		return nil
	}
	for _, p := range a.procOrder {
		if len(a.attach[p]) == 0 {
			return fmt.Errorf("arch %q: processor %q has no link", a.name, p)
		}
	}
	if !a.connected() {
		return fmt.Errorf("arch %q: network is not connected", a.name)
	}
	return nil
}

func (a *Architecture) connected() bool {
	if len(a.procOrder) == 0 {
		return false
	}
	seen := map[string]bool{a.procOrder[0]: true}
	queue := []string{a.procOrder[0]}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, ln := range a.attach[p] {
			for _, q := range a.links[ln].endpoints {
				if !seen[q] {
					seen[q] = true
					queue = append(queue, q)
				}
			}
		}
	}
	return len(seen) == len(a.procs)
}

// Route returns the static route from processor src to processor dst: the
// shortest path in hops, with deterministic tie-breaking (earliest-declared
// link, then earliest-declared processor). Routes are precomputed once and
// cached; mutating the architecture invalidates the cache.
func (a *Architecture) Route(src, dst string) (Route, error) {
	if !a.HasProcessor(src) {
		return nil, fmt.Errorf("arch %q: route: unknown processor %q", a.name, src)
	}
	if !a.HasProcessor(dst) {
		return nil, fmt.Errorf("arch %q: route: unknown processor %q", a.name, dst)
	}
	if src == dst {
		return Route{}, nil
	}
	if a.routes == nil {
		a.buildRoutes()
	}
	r, ok := a.routes[[2]string{src, dst}]
	if !ok {
		return nil, fmt.Errorf("arch %q: no route from %q to %q", a.name, src, dst)
	}
	return r, nil
}

// buildRoutes runs a BFS from every processor, producing deterministic
// shortest routes (earliest-declared link, then earliest-declared endpoint,
// wins ties).
func (a *Architecture) buildRoutes() {
	a.routes = make(map[[2]string]Route)
	for _, src := range a.procOrder {
		prevProc := map[string]string{}
		prevLink := map[string]string{}
		seen := map[string]bool{src: true}
		queue := []string{src}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, ln := range a.attach[p] {
				for _, q := range a.links[ln].endpoints {
					if q == p || seen[q] {
						continue
					}
					seen[q] = true
					prevProc[q] = p
					prevLink[q] = ln
					queue = append(queue, q)
				}
			}
		}
		for dst := range prevProc {
			var rev Route
			for at := dst; at != src; at = prevProc[at] {
				rev = append(rev, Hop{Link: prevLink[at], To: at})
			}
			r := make(Route, len(rev))
			for i := range rev {
				r[i] = rev[len(rev)-1-i]
			}
			a.routes[[2]string{src, dst}] = r
		}
	}
}

// Diameter returns the maximum route length in hops between any two
// processors, or an error if the architecture is disconnected.
func (a *Architecture) Diameter() (int, error) {
	max := 0
	for _, s := range a.procOrder {
		for _, d := range a.procOrder {
			if s == d {
				continue
			}
			r, err := a.Route(s, d)
			if err != nil {
				return 0, err
			}
			if len(r) > max {
				max = len(r)
			}
		}
	}
	return max, nil
}

// Neighbors returns the processors sharing at least one link with proc,
// sorted by name.
func (a *Architecture) Neighbors(proc string) []string {
	set := map[string]bool{}
	for _, ln := range a.attach[proc] {
		for _, q := range a.links[ln].endpoints {
			if q != proc {
				set[q] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the architecture.
func (a *Architecture) Clone() *Architecture {
	c := New(a.name)
	for _, p := range a.procOrder {
		_ = c.AddProcessor(p)
	}
	for _, ln := range a.linkOrder {
		l := a.links[ln]
		_ = c.addLink(ln, l.kind, l.endpoints)
	}
	return c
}
