package arch

import "testing"

// FuzzArchJSON checks that arbitrary input never panics the decoder and
// that accepted inputs re-encode and re-decode to the same architecture.
func FuzzArchJSON(f *testing.F) {
	f.Add([]byte(`{"name":"bus3","processors":["P1","P2","P3"],"links":[{"name":"bus","kind":"bus","endpoints":["P1","P2","P3"]}]}`))
	f.Add([]byte(`{"name":"pair","processors":["P1","P2"],"links":[{"name":"L12","kind":"p2p","endpoints":["P1","P2"]}]}`))
	f.Add([]byte(`{"processors":["P1"]}`))
	f.Add([]byte(`{"processors":["P1"],"links":[{"name":"l","kind":"warp","endpoints":["P1"]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var a Architecture
		if err := a.UnmarshalJSON(data); err != nil {
			return // rejected input is fine
		}
		out, err := a.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		var back Architecture
		if err := back.UnmarshalJSON(out); err != nil {
			t.Fatalf("re-encoded output failed to decode: %v\n%s", err, out)
		}
		out2, err := back.MarshalJSON()
		if err != nil {
			t.Fatalf("round-tripped architecture failed to re-encode: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("round trip is not a fixed point:\n%s\n%s", out, out2)
		}
	})
}
