package arch

import (
	"strconv"
	"testing"
)

// benchRing builds a ring of n processors, giving routes of length up to n/2.
func benchRing(b *testing.B, n int) *Architecture {
	b.Helper()
	a := New("ring")
	for i := 0; i < n; i++ {
		if err := a.AddProcessor("P" + strconv.Itoa(i)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if err := a.AddLink("L"+strconv.Itoa(i), "P"+strconv.Itoa(i), "P"+strconv.Itoa(j)); err != nil {
			b.Fatal(err)
		}
	}
	return a
}

func BenchmarkRouteTableBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := benchRing(b, 64)
		b.StartTimer()
		if _, err := a.Route("P0", "P32"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteLookup(b *testing.B) {
	a := benchRing(b, 64)
	if _, err := a.Route("P0", "P1"); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Route("P0", "P32"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiameter(b *testing.B) {
	a := benchRing(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Diameter(); err != nil {
			b.Fatal(err)
		}
	}
}
