package arch

import (
	"encoding/json"
	"fmt"
	"strings"
)

type jsonArch struct {
	Name  string     `json:"name"`
	Procs []string   `json:"processors"`
	Links []jsonLink `json:"links"`
}

type jsonLink struct {
	Name      string   `json:"name"`
	Kind      string   `json:"kind"`
	Endpoints []string `json:"endpoints"`
}

// MarshalJSON encodes the architecture with deterministic ordering.
func (a *Architecture) MarshalJSON() ([]byte, error) {
	ja := jsonArch{Name: a.name, Procs: a.ProcessorNames()}
	for _, l := range a.Links() {
		kind := "p2p"
		if l.Kind() == Bus {
			kind = "bus"
		}
		ja.Links = append(ja.Links, jsonLink{Name: l.Name(), Kind: kind, Endpoints: l.Endpoints()})
	}
	return json.Marshal(ja)
}

// UnmarshalJSON decodes an architecture previously encoded by MarshalJSON.
func (a *Architecture) UnmarshalJSON(data []byte) error {
	var ja jsonArch
	if err := json.Unmarshal(data, &ja); err != nil {
		return fmt.Errorf("arch: decode: %w", err)
	}
	na := New(ja.Name)
	for _, p := range ja.Procs {
		if err := na.AddProcessor(p); err != nil {
			return err
		}
	}
	for _, l := range ja.Links {
		var err error
		switch l.Kind {
		case "p2p":
			if len(l.Endpoints) != 2 {
				err = fmt.Errorf("arch: decode: p2p link %q needs 2 endpoints", l.Name)
			} else {
				err = na.AddLink(l.Name, l.Endpoints[0], l.Endpoints[1])
			}
		case "bus":
			err = na.AddBus(l.Name, l.Endpoints...)
		default:
			err = fmt.Errorf("arch: decode: unknown link kind %q for %q", l.Kind, l.Name)
		}
		if err != nil {
			return err
		}
	}
	*a = *na
	return nil
}

// DOT renders the architecture in Graphviz syntax. Buses appear as small
// square junction nodes connected to their endpoints.
func (a *Architecture) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", a.name)
	for _, p := range a.ProcessorNames() {
		fmt.Fprintf(&b, "  %q [shape=box];\n", p)
	}
	for _, l := range a.Links() {
		if l.Kind() == PointToPoint {
			eps := l.Endpoints()
			fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", eps[0], eps[1], l.Name())
			continue
		}
		bus := "bus_" + l.Name()
		fmt.Fprintf(&b, "  %q [shape=point, xlabel=%q];\n", bus, l.Name())
		for _, e := range l.Endpoints() {
			fmt.Fprintf(&b, "  %q -- %q;\n", e, bus)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line description of the architecture.
func (a *Architecture) Summary() string {
	buses, p2p := 0, 0
	for _, l := range a.links {
		if l.kind == Bus {
			buses++
		} else {
			p2p++
		}
	}
	return fmt.Sprintf("architecture %q: %d processors, %d point-to-point links, %d buses",
		a.name, len(a.procs), p2p, buses)
}
