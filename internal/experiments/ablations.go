package experiments

import (
	"math/rand"

	"ftsched/internal/arch"
	"ftsched/internal/bound"
	"ftsched/internal/core"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/report"
	"ftsched/internal/rt"
	"ftsched/internal/sim"
	"ftsched/internal/spec"
	"ftsched/internal/workload"
)

// BroadcastAblation quantifies the benefit FT1 draws from bus broadcast
// (Section 2.1's point about multi-point links): the same schedules with
// the bus treated as a set of point-to-point channels.
func BroadcastAblation() (string, error) {
	tb := report.NewTable("FT1 with and without bus broadcast (K=1)",
		"instance", "broadcast", "makespan", "active comms", "total comm time")
	run := func(name string, g *workload.Instance, noBroadcast bool) error {
		r, err := core.ScheduleFT1(g.Graph, g.Arch, g.Spec, 1, core.Options{NoBroadcast: noBroadcast})
		if err != nil {
			return err
		}
		tb.AddRow(name, !noBroadcast, r.Schedule.Makespan(),
			r.Schedule.NumActiveComms(), r.Schedule.TotalActiveCommTime())
		return nil
	}
	paper := paperex.BusInstance()
	paperInst := &workload.Instance{Graph: paper.Graph, Arch: paper.Arch, Spec: paper.Spec}
	for _, nb := range []bool{false, true} {
		if err := run("paper bus", paperInst, nb); err != nil {
			return "", err
		}
	}
	// A fan-out workload with pinned placement: the producer can only run
	// on P1/P2 and the consumers only on P3/P4, so every dependency has two
	// remote consumer processors and the placements are identical in both
	// runs — the comparison isolates the communication scheme.
	fanInst, err := pinnedFanOut()
	if err != nil {
		return "", err
	}
	for _, nb := range []bool{false, true} {
		if err := run("pinned fan-out bus4", fanInst, nb); err != nil {
			return "", err
		}
	}
	return tb.String(), nil
}

// pinnedFanOut builds src -> {y1..y4} on a 4-processor bus with src forced
// onto {P1, P2} and the consumers onto {P3, P4} through prohibitive costs.
func pinnedFanOut() (*workload.Instance, error) {
	g := graph.New("fan")
	if err := g.AddComp("src"); err != nil {
		return nil, err
	}
	consumers := []string{"y1", "y2", "y3", "y4"}
	for _, c := range consumers {
		if err := g.AddComp(c); err != nil {
			return nil, err
		}
		if err := g.Connect("src", c); err != nil {
			return nil, err
		}
	}
	a, err := workload.BusArch(4)
	if err != nil {
		return nil, err
	}
	sp := specForFan(g, a)
	return &workload.Instance{Graph: g, Arch: a, Spec: sp}, nil
}

func specForFan(g *graph.Graph, a *arch.Architecture) *spec.Spec {
	sp := spec.New()
	for i, p := range a.ProcessorNames() {
		srcD, consD := 1.0, 50.0
		if i >= 2 {
			srcD, consD = 50.0, 1.0
		}
		_ = sp.SetExec("src", p, srcD)
		for _, c := range []string{"y1", "y2", "y3", "y4"} {
			_ = sp.SetExec(c, p, consD)
		}
	}
	for _, e := range g.Edges() {
		_ = sp.SetCommUniform(a, e.Key(), 0.5)
	}
	return sp
}

// PressureAblation compares the schedule-pressure cost function against
// plain earliest-finish-time list scheduling across random instances.
func PressureAblation() (string, error) {
	const samples = 8
	tb := report.NewTable("schedule pressure vs earliest-finish-time (mean makespan over random DAGs)",
		"heuristic", "with pressure", "EFT only", "EFT/pressure")
	for _, h := range []core.Heuristic{core.Basic, core.FT1} {
		var withP, without []float64
		for s := 0; s < samples; s++ {
			r := rand.New(rand.NewSource(int64(5000 + s)))
			in, err := workload.RandomInstance(r, 14, 3, true, 1.0)
			if err != nil {
				return "", err
			}
			a, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 1, core.Options{})
			if err != nil {
				return "", err
			}
			b, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 1, core.Options{NoPressure: true})
			if err != nil {
				return "", err
			}
			withP = append(withP, a.Schedule.Makespan())
			without = append(without, b.Schedule.Makespan())
		}
		mw, mo := report.Summarize(withP).Mean, report.Summarize(without).Mean
		tb.AddRow(h.String(), mw, mo, mo/mw)
	}
	return tb.String(), nil
}

// Heterogeneity slows one processor down and watches the FT1 heuristic
// shift main replicas away from it: the election criterion (earliest
// completion, Section 6.1 Item 4) automatically demotes slow processors to
// backup duty.
func Heterogeneity() (string, error) {
	tb := report.NewTable("one processor slowed by a factor (random 12-op DAG, 3-proc bus, FT1 K=1)",
		"slow factor", "makespan", "mains on slow proc", "backups on slow proc")
	for _, factor := range []float64{1, 2, 4} {
		r := rand.New(rand.NewSource(7000))
		in, err := workload.RandomInstance(r, 12, 3, true, 0.5)
		if err != nil {
			return "", err
		}
		const slow = "P3"
		if factor > 1 {
			if err := workload.ScaleProcessor(in.Spec, in.Graph, slow, factor); err != nil {
				return "", err
			}
		}
		res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
		if err != nil {
			return "", err
		}
		mains, backups := 0, 0
		for _, sl := range res.Schedule.ProcSlots(slow) {
			if sl.Main() {
				mains++
			} else {
				backups++
			}
		}
		tb.AddRow(factor, res.Schedule.Makespan(), mains, backups)
	}
	return tb.String(), nil
}

// OptimalityGap reports the heuristics' makespans against the critical-path
// and work lower bounds (scheduling is NP-complete; gaps quantify heuristic
// quality).
func OptimalityGap() (string, error) {
	const samples = 6
	tb := report.NewTable("mean makespan / lower bound over random DAGs (12 ops, 3 procs, tuned runs)",
		"heuristic", "architecture", "mean gap", "max gap")
	for _, cfg := range []struct {
		h   core.Heuristic
		bus bool
		k   int
	}{
		{core.Basic, true, 0},
		{core.Basic, false, 0},
		{core.FT1, true, 1},
		{core.FT2, false, 1},
	} {
		var gaps []float64
		for s := 0; s < samples; s++ {
			r := rand.New(rand.NewSource(int64(6000 + s)))
			in, err := workload.RandomInstance(r, 12, 3, cfg.bus, 0.8)
			if err != nil {
				return "", err
			}
			lb, err := bound.Compute(in.Graph, in.Arch, in.Spec)
			if err != nil {
				return "", err
			}
			res, err := core.ScheduleTuned(cfg.h, in.Graph, in.Arch, in.Spec, cfg.k, 10, core.Options{})
			if err != nil {
				return "", err
			}
			gaps = append(gaps, res.Schedule.Makespan()/lb.Best())
		}
		archName := "bus"
		if !cfg.bus {
			archName = "mesh"
		}
		st := report.Summarize(gaps)
		tb.AddRow(cfg.h.String(), archName, st.Mean, st.Max)
	}
	return tb.String(), nil
}

// WorstCaseResponse bounds the response time of the paper's two FT
// schedules over every tolerated failure scenario (exhaustive crash sweep
// at every event boundary), the evidence behind "the obtained distributed
// executive is guaranteed to satisfy the real-time constraints".
func WorstCaseResponse() (string, error) {
	tb := report.NewTable("worst-case response over every single failure at every event boundary (K=1)",
		"schedule", "failure-free", "worst transient", "worst permanent", "scenarios", "all delivered")
	bus := paperex.BusInstance()
	ft1, err := core.ScheduleFT1(bus.Graph, bus.Arch, bus.Spec, 1, core.Options{})
	if err != nil {
		return "", err
	}
	an1, err := rt.Analyze(ft1.Schedule, bus.Graph, bus.Arch, bus.Spec, 1)
	if err != nil {
		return "", err
	}
	tb.AddRow("FT1 on bus", an1.FailureFree, an1.WorstTransient, an1.WorstPermanent,
		an1.ScenariosChecked, an1.AllDelivered)
	tri := paperex.TriangleInstance()
	ft2, err := core.ScheduleFT2(tri.Graph, tri.Arch, tri.Spec, 1, core.Options{})
	if err != nil {
		return "", err
	}
	an2, err := rt.Analyze(ft2.Schedule, tri.Graph, tri.Arch, tri.Spec, 1)
	if err != nil {
		return "", err
	}
	tb.AddRow("FT2 on triangle", an2.FailureFree, an2.WorstTransient, an2.WorstPermanent,
		an2.ScenariosChecked, an2.AllDelivered)
	return tb.String(), nil
}

// IntermittentReintegration exercises the Section 6.1 Item 3 extension: an
// intermittent fail-silent outage on the bus is detected by the timeout
// machinery, and the processor is re-integrated once its messages are
// observed again, so later iterations match the failure-free execution.
func IntermittentReintegration() (string, error) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		return "", err
	}
	free, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sim.Scenario{}, sim.Config{})
	if err != nil {
		return "", err
	}
	res, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec,
		sim.Intermittent("P2", 1, 0, 1, 4.0), sim.Config{Iterations: 4})
	if err != nil {
		return "", err
	}
	tb := report.NewTable("P2 silent during [0,4) of iteration 1, then re-integrated",
		"iteration", "response", "outputs ok", "timeouts", "false detections")
	tb.AddRow("failure-free", free.Iterations[0].ResponseTime, free.Iterations[0].Completed, 0, 0)
	for _, ir := range res.Iterations {
		tb.AddRow(ir.Index, ir.ResponseTime, ir.Completed, ir.TimeoutsFired, ir.FalseDetections)
	}
	out := tb.String()
	if len(res.DetectedProcs) == 0 {
		out += "fail flags at end: none (P2 re-integrated)\n"
	} else {
		out += "fail flags at end: " + res.DetectedProcs[0] + "\n"
	}
	return out, nil
}
