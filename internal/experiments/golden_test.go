package experiments

import (
	"strings"
	"testing"
)

// TestGoldenFig17Gantt pins the exact deterministic FT1 schedule of the
// paper example: any change to the heuristic's decisions shows up here.
func TestGoldenFig17Gantt(t *testing.T) {
	out, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	golden := []string{
		"ft1 schedule, K=1, makespan=9.4",
		"P1     | [0,1] I* | [1,3] A* | [3,5] C | [6.9,7.9] E | [7.9,9.4] O",
		"P2     | [0,1] I | [1,3] A | [3,4.5] B* | [4.5,5.5] D* | [5.5,6.5] E* | [6.5,8] O*",
		"P3     | [3.5,4.5] C* | [4.5,6] B | [6,7] D",
		"[3,3.5] A->C P1=>*",
		"([3.5,4] A->C P2=>* t/o 3.5)",
		"[5.9,6.9] D->E P2=>*",
	}
	for _, frag := range golden {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig17 output missing %q:\n%s", frag, out)
		}
	}
}

// TestGoldenCostTables pins the round-tripped Section 5.4 tables.
func TestGoldenCostTables(t *testing.T) {
	out, err := CostTables()
	if err != nil {
		t.Fatal(err)
	}
	golden := []string{
		"P1\t1\t2\t3\t2\t3\t1\t1.5",
		"P2\t1\t2\t1.5\t3\t1\t1\t1.5",
		"P3\tinf\t2\t1.5\t1\t1\t1\tinf",
		"bus\t1.25\t0.5\t0.5\t0.5\t0.6\t0.8\t1\t1",
	}
	for _, frag := range golden {
		if !strings.Contains(out, frag) {
			t.Errorf("cost tables missing %q:\n%s", frag, out)
		}
	}
}

// TestGoldenFT1TraceSteps pins the step order of Figs. 14-16: I and A are
// committed first (the only candidates), then the three parallel branches.
func TestGoldenFT1TraceSteps(t *testing.T) {
	out, err := FT1Trace()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"1     I           I",
		"2     A           A",
		"3     B C D",
		"7     O           O",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q:\n%s", frag, out)
		}
	}
}
