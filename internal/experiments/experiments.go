// Package experiments regenerates every figure and analytic claim of the
// paper's evaluation, plus the extended sweeps listed in DESIGN.md §4. Each
// experiment returns a text table comparing measured values against the
// paper's reported ones where the paper gives a number.
//
// The paper resolves ties between equal schedule pressures randomly
// (Section 6.2); the harness therefore reports both the deterministic run
// and the best schedule over a fixed budget of seeded runs (ScheduleTuned),
// the same budget for every heuristic.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ftsched/internal/core"
	"ftsched/internal/faults"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/report"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// Seeds is the tie-breaking search budget used by every tuned run.
const Seeds = 50

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID matches DESIGN.md §4 (E01..E17).
	ID string
	// Title says what is reproduced.
	Title string
	// Run executes the experiment and renders its result.
	Run func() (string, error)
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{ID: "E01", Title: "Section 5.4: distribution-constraint tables", Run: CostTables},
		{ID: "E02", Title: "Figs. 14-16: step-by-step FT1 heuristic trace", Run: FT1Trace},
		{ID: "E03", Title: "Fig. 17: FT1 schedule on the 3-processor bus (K=1)", Run: Fig17},
		{ID: "E04", Title: "Fig. 18(a): FT1 transient iteration when P2 crashes", Run: Fig18Transient},
		{ID: "E05", Title: "Fig. 18(b): FT1 subsequent iterations with P2 down", Run: Fig18Permanent},
		{ID: "E06", Title: "Fig. 19 / Sec. 6.6: non-fault-tolerant schedule on the bus", Run: Fig19},
		{ID: "E07", Title: "Sec. 6.4: FT1 message minimality", Run: MessageMinimality},
		{ID: "E08", Title: "Fig. 22: FT2 schedule on the point-to-point triangle (K=1)", Run: Fig22},
		{ID: "E09", Title: "Fig. 23: FT2 transient iteration when P2 crashes after A", Run: Fig23},
		{ID: "E10", Title: "Fig. 24 / Sec. 7.4: non-fault-tolerant schedule on the triangle", Run: Fig24},
		{ID: "E11", Title: "Secs. 6.6/7.4: FT1 vs FT2 across architectures (crossover)", Run: ArchCrossover},
		{ID: "E12", Title: "Secs. 6.6/7.4: several failures in one iteration", Run: MultiFailure},
		{ID: "E13", Title: "Extension: failure-free overhead vs K on random DAGs", Run: OverheadVsK},
		{ID: "E14", Title: "Extension: transient response distribution, FT1 vs FT2", Run: TransientResponse},
		{ID: "E15", Title: "Extension: overhead vs communication/computation ratio", Run: CCRSweep},
		{ID: "E16", Title: "Extension: heuristic runtime vs graph size", Run: HeuristicScaling},
		{ID: "E17", Title: "Sec. 8: CyCAB 5-processor CAN-bus vehicle workload", Run: Cycab},
		{ID: "E18", Title: "Ablation: FT1 with bus broadcast disabled", Run: BroadcastAblation},
		{ID: "E19", Title: "Ablation: schedule pressure vs earliest-finish-time", Run: PressureAblation},
		{ID: "E20", Title: "Extension (Sec. 6.1 item 3): intermittent fail-silent outage and re-integration", Run: IntermittentReintegration},
		{ID: "E21", Title: "Extension: worst-case response-time bound over every tolerated failure", Run: WorstCaseResponse},
		{ID: "E22", Title: "Extension: heuristic optimality gap against makespan lower bounds", Run: OptimalityGap},
		{ID: "E23", Title: "Extension: heterogeneous processors demoted to backup duty", Run: Heterogeneity},
	}
}

// RunAll renders every experiment, separated by headers.
func RunAll() (string, error) {
	var b strings.Builder
	for _, e := range All() {
		fmt.Fprintf(&b, "=== %s: %s ===\n", e.ID, e.Title)
		out, err := e.Run()
		if err != nil {
			return "", fmt.Errorf("%s: %w", e.ID, err)
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// CostTables prints the Section 5.4 constraint tables round-tripped through
// the spec model.
func CostTables() (string, error) {
	in := paperex.BusInstance()
	var b strings.Builder
	b.WriteString("execution durations (time units, inf = not executable):\n")
	b.WriteString(in.Spec.ExecTable(paperex.OpNames, in.Arch.ProcessorNames()))
	b.WriteString("communication durations (time units):\n")
	b.WriteString(in.Spec.CommTable(edgeKeySlice(in), in.Arch.LinkNames()))
	return b.String(), nil
}

// FT1Trace renders the step-by-step decisions of the FT1 heuristic on the
// paper example, the information of Figs. 14-16.
func FT1Trace() (string, error) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{Trace: true})
	if err != nil {
		return "", err
	}
	tb := report.NewTable("greedy steps (micro-steps mSn.1-mSn.3)",
		"step", "candidates", "selected", "processors (main first)", "main start", "main end")
	for _, st := range r.Trace {
		tb.AddRow(st.Step, strings.Join(st.Candidates, " "), st.Selected,
			strings.Join(st.Procs, " "), st.Start, st.End)
	}
	return tb.String() + "\nfinal schedule:\n" + r.Schedule.Gantt(), nil
}

// Fig17 reproduces the final FT1 schedule on the bus.
func Fig17() (string, error) {
	in := paperex.BusInstance()
	det, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		return "", err
	}
	tuned, err := core.ScheduleTuned(core.FT1, in.Graph, in.Arch, in.Spec, in.K, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	tb := report.NewTable("", "quantity", "measured (deterministic)", "measured (tuned)", "paper")
	tb.AddRow("FT1 bus makespan", det.Schedule.Makespan(), tuned.Schedule.Makespan(), paperex.PaperMakespans.FT1Bus)
	tb.AddRow("active inter-proc comms", det.Schedule.NumActiveComms(), tuned.Schedule.NumActiveComms(), "n/a")
	tb.AddRow("passive (timeout) comms", det.Schedule.NumPassiveComms(), tuned.Schedule.NumPassiveComms(), "n/a")
	return tb.String() + "\n" + det.Schedule.Gantt(), nil
}

// fig18 runs the Fig. 18 scenario: P2 crashes at the start of iteration 1.
func fig18() (*sim.Result, *core.Result, error) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sim.Single("P2", 1, 0), sim.Config{Iterations: 3})
	if err != nil {
		return nil, nil, err
	}
	return res, r, nil
}

// Fig18Transient reports the transient iteration after P2's crash.
func Fig18Transient() (string, error) {
	res, r, err := fig18()
	if err != nil {
		return "", err
	}
	normal, transient := res.Iterations[0], res.Iterations[1]
	tb := report.NewTable("P2 crashes at the start of iteration 1",
		"quantity", "failure-free", "transient", "paper claim")
	tb.AddRow("response time", normal.ResponseTime, transient.ResponseTime, "increased by timeout waits")
	tb.AddRow("outputs delivered", normal.Completed, transient.Completed, "true")
	tb.AddRow("timeouts fired", normal.TimeoutsFired, transient.TimeoutsFired, ">= 1")
	tb.AddRow("messages sent", normal.MessagesSent, transient.MessagesSent, "does not increase")
	tb.AddRow("static makespan", r.Schedule.Makespan(), "", "9.4")
	return tb.String(), nil
}

// Fig18Permanent reports the subsequent iterations with P2 down.
func Fig18Permanent() (string, error) {
	res, _, err := fig18()
	if err != nil {
		return "", err
	}
	normal, transient, perm := res.Iterations[0], res.Iterations[1], res.Iterations[2]
	tb := report.NewTable("subsequent iteration with P2 detected faulty",
		"quantity", "failure-free", "transient", "permanent", "paper claim")
	tb.AddRow("response time", normal.ResponseTime, transient.ResponseTime, perm.ResponseTime, "timeout waits disappear")
	tb.AddRow("timeouts fired", normal.TimeoutsFired, transient.TimeoutsFired, perm.TimeoutsFired, "0 after detection")
	tb.AddRow("messages sent", normal.MessagesSent, transient.MessagesSent, perm.MessagesSent, "<= failure-free")
	return tb.String(), nil
}

// Fig19 reproduces the non-fault-tolerant bus schedule and the FT1 overhead
// of Section 6.6.
func Fig19() (string, error) {
	in := paperex.BusInstance()
	det, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		return "", err
	}
	tuned, err := core.ScheduleTuned(core.Basic, in.Graph, in.Arch, in.Spec, 0, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	ft1, err := core.ScheduleTuned(core.FT1, in.Graph, in.Arch, in.Spec, in.K, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	tb := report.NewTable("", "quantity", "measured (deterministic)", "measured (tuned)", "paper")
	tb.AddRow("basic bus makespan", det.Schedule.Makespan(), tuned.Schedule.Makespan(), paperex.PaperMakespans.BasicBus)
	tb.AddRow("FT1 overhead (vs tuned basic)", "", ft1.Schedule.Makespan()-tuned.Schedule.Makespan(), 0.8)
	return tb.String() + "\n" + tuned.Schedule.Gantt(), nil
}

// MessageMinimality verifies Section 6.4's analysis on the paper instance.
func MessageMinimality() (string, error) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		return "", err
	}
	perEdge := map[string]int{}
	for _, l := range r.Schedule.Links() {
		for _, c := range r.Schedule.LinkSlots(l) {
			if !c.Passive {
				perEdge[c.Edge.String()]++
			}
		}
	}
	tb := report.NewTable("active transfers per data-dependency (bound: K+1 = 2; bus broadcast gives 1)",
		"dependency", "active transfers", "bound respected")
	for _, e := range in.Graph.Edges() {
		n := perEdge[e.Key().String()]
		tb.AddRow(e.Key().String(), n, n <= in.K+1)
	}
	return tb.String(), nil
}

// Fig22 reproduces the FT2 schedule on the triangle.
func Fig22() (string, error) {
	in := paperex.TriangleInstance()
	det, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		return "", err
	}
	tuned, err := core.ScheduleTuned(core.FT2, in.Graph, in.Arch, in.Spec, in.K, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	tb := report.NewTable("", "quantity", "measured (deterministic)", "measured (tuned)", "paper")
	tb.AddRow("FT2 triangle makespan", det.Schedule.Makespan(), tuned.Schedule.Makespan(), paperex.PaperMakespans.FT2Triangle)
	tb.AddRow("active inter-proc comms", det.Schedule.NumActiveComms(), tuned.Schedule.NumActiveComms(), "n/a")
	tb.AddRow("passive comms", det.Schedule.NumPassiveComms(), tuned.Schedule.NumPassiveComms(), "0")
	return tb.String() + "\n" + det.Schedule.Gantt(), nil
}

// Fig23 reproduces the FT2 transient behavior: P2 crashes right after
// executing A; no timeouts, the late replicas' results are discarded.
func Fig23() (string, error) {
	in := paperex.TriangleInstance()
	r, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		return "", err
	}
	aEnd := 0.0
	if rep := r.Schedule.ReplicaOn("A", "P2"); rep != nil {
		aEnd = rep.End
	}
	res, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sim.Single("P2", 1, aEnd), sim.Config{Iterations: 3})
	if err != nil {
		return "", err
	}
	normal, transient, perm := res.Iterations[0], res.Iterations[1], res.Iterations[2]
	tb := report.NewTable(fmt.Sprintf("P2 crashes at t=%s (right after its replica of A)", report.Cell(aEnd)),
		"quantity", "failure-free", "transient", "permanent", "paper claim")
	tb.AddRow("response time", normal.ResponseTime, transient.ResponseTime, perm.ResponseTime, "no timeout waits")
	tb.AddRow("outputs delivered", normal.Completed, transient.Completed, perm.Completed, "true")
	tb.AddRow("timeouts fired", normal.TimeoutsFired, transient.TimeoutsFired, perm.TimeoutsFired, "0 (no timeouts at all)")
	tb.AddRow("messages sent", normal.MessagesSent, transient.MessagesSent, perm.MessagesSent, "useless comms disappear")
	return tb.String(), nil
}

// Fig24 reproduces the non-fault-tolerant triangle schedule and the FT2
// overhead of Section 7.4.
func Fig24() (string, error) {
	in := paperex.TriangleInstance()
	det, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		return "", err
	}
	tuned, err := core.ScheduleTuned(core.Basic, in.Graph, in.Arch, in.Spec, 0, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	ft2, err := core.ScheduleTuned(core.FT2, in.Graph, in.Arch, in.Spec, in.K, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	tb := report.NewTable("", "quantity", "measured (deterministic)", "measured (tuned)", "paper")
	tb.AddRow("basic triangle makespan", det.Schedule.Makespan(), tuned.Schedule.Makespan(), paperex.PaperMakespans.BasicP2P)
	tb.AddRow("FT2 overhead (vs tuned basic)", "", ft2.Schedule.Makespan()-tuned.Schedule.Makespan(), 0.9)
	return tb.String() + "\n" + tuned.Schedule.Gantt(), nil
}

// ArchCrossover backs the paper's architectural guidance: FT1's
// communication load is low on a bus and FT2's is low on point-to-point
// links, and each solution wins on the architecture it targets.
func ArchCrossover() (string, error) {
	busIn := paperex.BusInstance()
	triIn := paperex.TriangleInstance()
	tb := report.NewTable("both FT heuristics on both architectures (K=1, tuned)",
		"architecture", "heuristic", "makespan", "active comms", "total comm time")
	for _, row := range []struct {
		name string
		in   *paperex.Instance
		h    core.Heuristic
	}{
		{"bus", busIn, core.FT1},
		{"bus", busIn, core.FT2},
		{"triangle", triIn, core.FT1},
		{"triangle", triIn, core.FT2},
	} {
		r, err := core.ScheduleTuned(row.h, row.in.Graph, row.in.Arch, row.in.Spec, 1, Seeds, core.Options{})
		if err != nil {
			return "", err
		}
		tb.AddRow(row.name, row.h.String(), r.Schedule.Makespan(),
			r.Schedule.NumActiveComms(), r.Schedule.TotalActiveCommTime())
	}
	return tb.String(), nil
}

// MultiFailure compares the two solutions under two simultaneous failures
// (K=2 on a 4-processor architecture carrying both a bus and a full mesh).
func MultiFailure() (string, error) {
	in, err := quadInstance()
	if err != nil {
		return "", err
	}
	tb := report.NewTable("two simultaneous failures (P1 and P2 at t=0), K=2",
		"heuristic", "failure-free response", "2-failure response", "timeouts", "outputs delivered")
	for _, h := range []core.Heuristic{core.FT1, core.FT2} {
		r, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 2, core.Options{})
		if err != nil {
			return "", err
		}
		free, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sim.Scenario{}, sim.Config{})
		if err != nil {
			return "", err
		}
		sc := sim.Scenario{Failures: []sim.Failure{
			{Proc: "P1", Iteration: 0, At: 0},
			{Proc: "P2", Iteration: 0, At: 0},
		}}
		res, err := sim.Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sc, sim.Config{})
		if err != nil {
			return "", err
		}
		ir := res.Iterations[0]
		tb.AddRow(h.String(), free.Iterations[0].ResponseTime, ir.ResponseTime, ir.TimeoutsFired, ir.Completed)
	}
	return tb.String(), nil
}

// OverheadVsK sweeps K on random layered DAGs over bus and mesh
// architectures, reporting mean failure-free overhead ratios.
func OverheadVsK() (string, error) {
	const (
		nProcs  = 4
		nOps    = 16
		samples = 5
	)
	tb := report.NewTable(
		fmt.Sprintf("mean makespan ratio vs non-FT baseline (%d random DAGs of %d ops, %d processors)", samples, nOps, nProcs),
		"architecture", "heuristic", "K=1", "K=2", "K=3")
	for _, busArch := range []bool{true, false} {
		archName := "bus"
		h := core.FT1
		if !busArch {
			archName = "mesh"
			h = core.FT2
		}
		ratios := map[int][]float64{}
		for s := 0; s < samples; s++ {
			r := rand.New(rand.NewSource(int64(1000 + s)))
			in, err := workload.RandomInstance(r, nOps, nProcs, busArch, 0.8)
			if err != nil {
				return "", err
			}
			base, err := core.ScheduleTuned(core.Basic, in.Graph, in.Arch, in.Spec, 0, 10, core.Options{})
			if err != nil {
				return "", err
			}
			for k := 1; k <= 3; k++ {
				ft, err := core.ScheduleTuned(h, in.Graph, in.Arch, in.Spec, k, 10, core.Options{})
				if err != nil {
					return "", err
				}
				ratios[k] = append(ratios[k], ft.Schedule.Makespan()/base.Schedule.Makespan())
			}
		}
		tb.AddRow(archName, h.String(),
			report.Summarize(ratios[1]).Mean,
			report.Summarize(ratios[2]).Mean,
			report.Summarize(ratios[3]).Mean)
	}
	return tb.String(), nil
}

// TransientResponse sweeps every single failure over random instances and
// compares the transient response-time inflation of FT1 and FT2.
func TransientResponse() (string, error) {
	const samples = 4
	tb := report.NewTable("transient response inflation over every (processor x 4 crash dates), K=1",
		"heuristic", "architecture", "mean inflation", "max inflation", "timeouts/run")
	for _, cfg := range []struct {
		h   core.Heuristic
		bus bool
	}{{core.FT1, true}, {core.FT2, false}} {
		var inflations []float64
		var timeouts []float64
		for s := 0; s < samples; s++ {
			r := rand.New(rand.NewSource(int64(2000 + s)))
			in, err := workload.RandomInstance(r, 12, 3, cfg.bus, 0.8)
			if err != nil {
				return "", err
			}
			sr, err := core.Schedule(cfg.h, in.Graph, in.Arch, in.Spec, 1, core.Options{})
			if err != nil {
				return "", err
			}
			free, err := sim.Simulate(sr.Schedule, in.Graph, in.Arch, in.Spec, sim.Scenario{}, sim.Config{})
			if err != nil {
				return "", err
			}
			base := free.Iterations[0].ResponseTime
			for _, sc := range faults.SingleSweep(in.Arch, 0, faults.CrashDates(sr.Schedule.Makespan(), 4)) {
				res, err := sim.Simulate(sr.Schedule, in.Graph, in.Arch, in.Spec, sc, sim.Config{})
				if err != nil {
					return "", err
				}
				ir := res.Iterations[0]
				if !ir.Completed {
					return "", fmt.Errorf("K=1 schedule lost outputs under %+v", sc.Failures[0])
				}
				inflations = append(inflations, ir.ResponseTime/base)
				timeouts = append(timeouts, float64(ir.TimeoutsFired))
			}
		}
		archName := "bus"
		if !cfg.bus {
			archName = "mesh"
		}
		st := report.Summarize(inflations)
		tb.AddRow(cfg.h.String(), archName, st.Mean, st.Max, report.Summarize(timeouts).Mean)
	}
	return tb.String(), nil
}

// CCRSweep reports FT overhead across communication/computation ratios.
func CCRSweep() (string, error) {
	ccrs := []float64{0.1, 0.5, 1, 2, 5}
	tb := report.NewTable("mean FT makespan ratio vs baseline across CCR (K=1, 3 random DAGs each)",
		"ccr", "ft1/basic on bus", "ft2/basic on mesh")
	for _, ccr := range ccrs {
		var busRatio, meshRatio []float64
		for s := 0; s < 3; s++ {
			r := rand.New(rand.NewSource(int64(3000 + s)))
			busIn, err := workload.RandomInstance(r, 12, 3, true, ccr)
			if err != nil {
				return "", err
			}
			meshIn, err := workload.RandomInstance(r, 12, 3, false, ccr)
			if err != nil {
				return "", err
			}
			b1, err := core.ScheduleTuned(core.Basic, busIn.Graph, busIn.Arch, busIn.Spec, 0, 10, core.Options{})
			if err != nil {
				return "", err
			}
			f1, err := core.ScheduleTuned(core.FT1, busIn.Graph, busIn.Arch, busIn.Spec, 1, 10, core.Options{})
			if err != nil {
				return "", err
			}
			b2, err := core.ScheduleTuned(core.Basic, meshIn.Graph, meshIn.Arch, meshIn.Spec, 0, 10, core.Options{})
			if err != nil {
				return "", err
			}
			f2, err := core.ScheduleTuned(core.FT2, meshIn.Graph, meshIn.Arch, meshIn.Spec, 1, 10, core.Options{})
			if err != nil {
				return "", err
			}
			busRatio = append(busRatio, f1.Schedule.Makespan()/b1.Schedule.Makespan())
			meshRatio = append(meshRatio, f2.Schedule.Makespan()/b2.Schedule.Makespan())
		}
		tb.AddRow(ccr, report.Summarize(busRatio).Mean, report.Summarize(meshRatio).Mean)
	}
	return tb.String(), nil
}

// HeuristicScaling measures scheduling time against graph size.
func HeuristicScaling() (string, error) {
	sizes := []int{25, 50, 100, 200}
	tb := report.NewTable("wall-clock per schedule (4-processor bus, single deterministic run)",
		"ops", "basic", "ft1 (K=1)", "ft2 (K=1)")
	for _, n := range sizes {
		r := rand.New(rand.NewSource(int64(n)))
		in, err := workload.RandomInstance(r, n, 4, true, 0.8)
		if err != nil {
			return "", err
		}
		times := make([]string, 0, 3)
		for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
			start := time.Now()
			if _, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 1, core.Options{}); err != nil {
				return "", err
			}
			times = append(times, time.Since(start).Round(time.Microsecond).String())
		}
		tb.AddRow(n, times[0], times[1], times[2])
	}
	return tb.String(), nil
}

// Cycab schedules a control loop on the conclusion's 5-processor CAN-bus
// vehicle and exercises a failover of the vision processor.
func Cycab() (string, error) {
	g, err := workload.ControlLoop(3, 2)
	if err != nil {
		return "", err
	}
	a, err := workload.Cycab()
	if err != nil {
		return "", err
	}
	r := rand.New(rand.NewSource(42))
	sp, err := workload.Costs(r, g, a, workload.CostParams{MeanExec: 2, Spread: 0.4, CCR: 0.5})
	if err != nil {
		return "", err
	}
	if err := workload.RestrictExtIOs(sp, g, a, 2); err != nil {
		return "", err
	}
	base, err := core.ScheduleTuned(core.Basic, g, a, sp, 0, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	ft, err := core.ScheduleTuned(core.FT1, g, a, sp, 1, Seeds, core.Options{})
	if err != nil {
		return "", err
	}
	res, err := sim.Simulate(ft.Schedule, g, a, sp, sim.Single("vision", 1, 1.0), sim.Config{Iterations: 3})
	if err != nil {
		return "", err
	}
	tb := report.NewTable("CyCAB control loop (3 sensors, 2 actuators, state) on 5 processors + CAN",
		"quantity", "value")
	tb.AddRow("basic makespan", base.Schedule.Makespan())
	tb.AddRow("ft1 makespan (K=1)", ft.Schedule.Makespan())
	tb.AddRow("overhead", ft.Schedule.Overhead(base.Schedule))
	tb.AddRow("transient response (vision fails)", res.Iterations[1].ResponseTime)
	tb.AddRow("transient outputs delivered", res.Iterations[1].Completed)
	tb.AddRow("permanent response", res.Iterations[2].ResponseTime)
	tb.AddRow("permanent outputs delivered", res.Iterations[2].Completed)
	return tb.String(), nil
}

// quadInstance is the 4-processor instance used by MultiFailure.
func quadInstance() (*workload.Instance, error) {
	g := paperex.Algorithm()
	a, err := workload.FullMesh(4)
	if err != nil {
		return nil, err
	}
	if err := a.AddBus("can", a.ProcessorNames()...); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(7))
	sp, err := workload.Costs(r, g, a, workload.CostParams{MeanExec: 1.5, Spread: 0.3, CCR: 0.5})
	if err != nil {
		return nil, err
	}
	return &workload.Instance{Graph: g, Arch: a, Spec: sp}, nil
}

// edgeKeySlice returns the instance's dependency keys in the paper's order.
func edgeKeySlice(in *paperex.Instance) []graph.EdgeKey {
	edges := in.Graph.Edges()
	out := make([]graph.EdgeKey, 0, len(edges))
	for _, e := range edges {
		out = append(out, e.Key())
	}
	return out
}
