package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if strings.TrimSpace(out) == "" {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestExperimentIDsMatchDesignDoc(t *testing.T) {
	want := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
		"E09", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17",
		"E18", "E19", "E20", "E21", "E22", "E23"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestFig17MatchesPaperExactly(t *testing.T) {
	out, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	// Both deterministic and tuned runs reproduce the 9.4 of Fig. 17.
	if !strings.Contains(out, "FT1 bus makespan         9.4") {
		t.Errorf("Fig17 output:\n%s", out)
	}
}

func TestFig24MatchesPaperExactly(t *testing.T) {
	out, err := Fig24()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "8                 8") {
		t.Errorf("Fig24 output should show tuned makespan 8 vs paper 8:\n%s", out)
	}
}

func TestRunAllProducesEverySection(t *testing.T) {
	out, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID+":") {
			t.Errorf("RunAll output misses %s", e.ID)
		}
	}
}
