// Package executive runs a static schedule as a real concurrent distributed
// program — the second step of the AAA method (Section 4.1: "from this
// static schedule, it produces automatically a real-time distributed
// executive implementing this schedule").
//
// One goroutine per processor executes its operation sequence in schedule
// order, computing user-supplied functions; every operation replica exposes
// its result as a single-assignment promise, and consumers resolve their
// inputs with the mode's policy: the basic executive reads its only
// producer, the fault-tolerant executives walk the producer's replicas in
// election order, failing over when a replica's processor has crashed or
// aborted (the paper's fail-stop assumption of Section 3.1 — "any processor
// can detect the failure of a fail-stop processor" — realized with closed
// channels instead of wall-clock timeouts, keeping the executive
// deterministic and test-friendly; the time-accurate view of the failover
// machinery, including timeout accumulation, lives in the sim package).
//
// Crashes are injected deterministically: a KillSpec stops a processor
// right before it would execute a given operation of a given iteration.
// Memory operations (mems) keep per-replica state across iterations and
// consume their delayed inputs at iteration boundaries.
package executive

import (
	"fmt"
	"sync"

	"ftsched/internal/graph"
	"ftsched/internal/sched"
)

// Value is the data flowing along the algorithm graph's dependencies.
type Value any

// OpFunc computes one operation: it receives the iteration number and the
// operation's inputs keyed by predecessor name, and returns the operation's
// output. Functions must be deterministic (Section 4.2: two executions of
// an operation in the same iteration produce the same value) and safe for
// concurrent use (replicas run in parallel).
type OpFunc func(iteration int, inputs map[string]Value) Value

// Program binds operation names to their implementations.
type Program struct {
	fns     map[string]OpFunc
	memInit map[string]Value
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{fns: make(map[string]OpFunc), memInit: make(map[string]Value)}
}

// Bind attaches the implementation of op.
func (p *Program) Bind(op string, fn OpFunc) *Program {
	p.fns[op] = fn
	return p
}

// InitMem sets the initial value of a mem operation; every replica starts
// from the same value (Section 5.4, Item 2).
func (p *Program) InitMem(op string, v Value) *Program {
	p.memInit[op] = v
	return p
}

// KillSpec crashes a processor immediately before it executes Op in the
// given iteration (fail-stop: the processor does nothing from then on).
type KillSpec struct {
	Proc      string
	Iteration int
	Op        string
}

// Config tunes a run.
type Config struct {
	// Iterations is the number of reactive-loop iterations (default 1).
	Iterations int
	// Kills are the crash injections.
	Kills []KillSpec
}

// IterationOutputs reports one iteration of the executive.
type IterationOutputs struct {
	// Values holds, for each output extio that was produced, the value of
	// its earliest-ranked surviving replica.
	Values map[string]Value
	// Produced maps every output extio to whether some replica produced it.
	Produced map[string]bool
	// Completed is true when every output was produced.
	Completed bool
}

// Result is the outcome of Run.
type Result struct {
	Iterations []IterationOutputs
	// CrashedProcs lists the processors killed during the run, sorted by
	// name.
	CrashedProcs []string
}

// promise is a single-assignment result of one operation replica.
type promise struct {
	done chan struct{}
	val  Value
	ok   bool
}

func newPromise() *promise { return &promise{done: make(chan struct{})} }

func (p *promise) fulfill(v Value) {
	p.val = v
	p.ok = true
	close(p.done)
}

func (p *promise) fail() { close(p.done) }

// wait blocks until the promise resolves and reports the value.
func (p *promise) wait() (Value, bool) {
	<-p.done
	return p.val, p.ok
}

// Run executes the schedule's distributed executive for the program.
func Run(s *sched.Schedule, g *graph.Graph, prog *Program, cfg Config) (*Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	for _, op := range g.OpNames() {
		if g.Op(op).Kind() == graph.KindMem {
			continue // mems are realized by the executive itself
		}
		if prog.fns[op] == nil {
			return nil, fmt.Errorf("executive: operation %q has no bound function", op)
		}
	}
	for _, k := range cfg.Kills {
		if s.ReplicaOn(k.Op, k.Proc) == nil {
			return nil, fmt.Errorf("executive: kill spec targets %q on %q, which the schedule does not place there", k.Op, k.Proc)
		}
		if k.Iteration < 0 || k.Iteration >= cfg.Iterations {
			return nil, fmt.Errorf("executive: kill spec for %q has iteration %d outside [0, %d)", k.Proc, k.Iteration, cfg.Iterations)
		}
	}

	e := &executive{
		s: s, g: g, prog: prog, cfg: cfg,
		crashed: make(map[string]bool),
		memVals: make(map[memKey]Value),
	}
	// Initialize every mem replica with the program's initial value.
	for _, op := range g.Ops() {
		if op.Kind() != graph.KindMem {
			continue
		}
		init, ok := prog.memInit[op.Name()]
		if !ok {
			return nil, fmt.Errorf("executive: mem %q has no initial value", op.Name())
		}
		for _, rep := range s.Replicas(op.Name()) {
			e.memVals[memKey{op: op.Name(), proc: rep.Proc}] = init
		}
	}

	res := &Result{}
	for it := 0; it < cfg.Iterations; it++ {
		res.Iterations = append(res.Iterations, e.runIteration(it))
	}
	for p := range e.crashed {
		res.CrashedProcs = append(res.CrashedProcs, p)
	}
	sortStrings(res.CrashedProcs)
	return res, nil
}

type memKey struct {
	op, proc string
}

// executive holds the cross-iteration state of one run.
type executive struct {
	s    *sched.Schedule
	g    *graph.Graph
	prog *Program
	cfg  Config

	crashed map[string]bool
	memVals map[memKey]Value
}

// runIteration spawns one goroutine per live processor and collects the
// outputs once all of them finish (crashing counts as finishing).
func (e *executive) runIteration(it int) IterationOutputs {
	// Fresh promises for every replica instance of this iteration.
	promises := make(map[memKey]*promise)
	for _, p := range e.s.Procs() {
		for _, slot := range e.s.ProcSlots(p) {
			promises[memKey{op: slot.Op, proc: p}] = newPromise()
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards crashed and memVals during the iteration
	for _, p := range e.s.Procs() {
		mu.Lock()
		dead := e.crashed[p]
		mu.Unlock()
		if dead {
			// A dead processor resolves all its promises as failed so no
			// consumer blocks on it.
			for _, slot := range e.s.ProcSlots(p) {
				promises[memKey{op: slot.Op, proc: p}].fail()
			}
			continue
		}
		wg.Add(1)
		go func(proc string) {
			defer wg.Done()
			e.runProcessor(proc, it, promises, &mu)
		}(p)
	}
	wg.Wait()

	// Consume delayed edges: each surviving mem replica updates its state
	// from the freshest producer value it can resolve (already resolved:
	// every promise is settled once the WaitGroup clears).
	for _, edge := range e.g.Edges() {
		if !edge.Delayed() {
			continue
		}
		for _, rep := range e.s.Replicas(edge.Dst()) {
			if e.crashed[rep.Proc] {
				continue
			}
			if v, ok := e.resolveInput(edge.Key(), rep.Proc, promises); ok {
				e.memVals[memKey{op: edge.Dst(), proc: rep.Proc}] = v
			}
		}
	}

	out := IterationOutputs{
		Values:    make(map[string]Value),
		Produced:  make(map[string]bool),
		Completed: true,
	}
	outs := e.g.Outputs()
	if len(outs) == 0 {
		// No output extios: report the graph's sinks instead.
		outs = e.g.Sinks()
	}
	for _, o := range outs {
		produced := false
		for _, rep := range e.s.Replicas(o) {
			if v, ok := promises[memKey{op: o, proc: rep.Proc}].wait(); ok {
				out.Values[o] = v
				produced = true
				break
			}
		}
		out.Produced[o] = produced
		if !produced {
			out.Completed = false
		}
	}
	return out
}

// runProcessor executes one processor's static sequence for one iteration.
func (e *executive) runProcessor(proc string, it int, promises map[memKey]*promise, mu *sync.Mutex) {
	slots := e.s.ProcSlots(proc)
	for i, slot := range slots {
		if e.shouldCrash(proc, it, slot.Op) {
			mu.Lock()
			e.crashed[proc] = true
			mu.Unlock()
			// Fail-stop: every remaining promise of this processor resolves
			// as failed, which is how other processors detect the crash.
			for _, rest := range slots[i:] {
				promises[memKey{op: rest.Op, proc: proc}].fail()
			}
			return
		}
		pr := promises[memKey{op: slot.Op, proc: proc}]
		op := e.g.Op(slot.Op)
		if op.Kind() == graph.KindMem {
			// A mem outputs its current state (written at the previous
			// iteration's boundary).
			mu.Lock()
			v := e.memVals[memKey{op: slot.Op, proc: proc}]
			mu.Unlock()
			pr.fulfill(v)
			continue
		}
		inputs := make(map[string]Value)
		aborted := false
		for _, pred := range e.g.StrictPreds(slot.Op) {
			v, ok := e.resolveInput(graph.EdgeKey{Src: pred, Dst: slot.Op}, proc, promises)
			if !ok {
				aborted = true
				break
			}
			inputs[pred] = v
		}
		if aborted {
			// More failures than the schedule tolerates: this replica
			// cannot compute; resolve as failed so consumers fail over.
			pr.fail()
			continue
		}
		pr.fulfill(e.prog.fns[slot.Op](it, inputs))
	}
}

// resolveInput implements the receive side of the executive: a local
// replica of the producer wins; otherwise the producer's replicas are
// consulted in election order, failing over past crashed or aborted ones
// (rank order gives the basic executive its single source, and both
// fault-tolerant executives their K-failure tolerance; values are identical
// across replicas by the determinism assumption, so any surviving rank is
// correct).
func (e *executive) resolveInput(edge graph.EdgeKey, proc string, promises map[memKey]*promise) (Value, bool) {
	if pr, ok := promises[memKey{op: edge.Src, proc: proc}]; ok {
		if v, ok := pr.wait(); ok {
			return v, true
		}
		// The local replica aborted; fall through to remote replicas.
	}
	for _, rep := range e.s.Replicas(edge.Src) {
		if rep.Proc == proc {
			continue
		}
		if v, ok := promises[memKey{op: edge.Src, proc: rep.Proc}].wait(); ok {
			return v, true
		}
	}
	return nil, false
}

// shouldCrash reports whether a kill spec targets this execution point.
func (e *executive) shouldCrash(proc string, it int, op string) bool {
	for _, k := range e.cfg.Kills {
		if k.Proc == proc && k.Iteration == it && k.Op == op {
			return true
		}
	}
	return false
}

// sortStrings is a tiny local sort to avoid importing sort for one call.
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
