package executive

import (
	"fmt"
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/workload"
)

// TestStressManyIterationsWithStaggeredKills runs a larger schedule for
// many iterations with one crash per early iteration, checking value
// correctness throughout. Exercises the promise machinery under real
// concurrency (run with -race in CI).
func TestStressManyIterationsWithStaggeredKills(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	in, err := workload.RandomInstance(r, 24, 4, true, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Bind every operation to a commutative shifted sum so the reference
	// can be computed sequentially.
	prog := NewProgram()
	for _, op := range in.Graph.OpNames() {
		op := op
		switch {
		case len(in.Graph.Preds(op)) == 0:
			prog.Bind(op, func(it int, _ map[string]Value) Value { return it + 13 })
		default:
			prog.Bind(op, func(_ int, in map[string]Value) Value {
				total := 3
				for _, v := range in {
					total += v.(int)
				}
				return total
			})
		}
	}
	ref := func(it int) map[string]int {
		vals := map[string]int{}
		order, _ := in.Graph.TopoOrder()
		for _, op := range order {
			if len(in.Graph.Preds(op)) == 0 {
				vals[op] = it + 13
				continue
			}
			total := 3
			for _, p := range in.Graph.StrictPreds(op) {
				total += vals[p]
			}
			vals[op] = total
		}
		return vals
	}

	// Two kills in different iterations (K=2 tolerates them).
	procs := sr.Schedule.Procs()
	kills := []KillSpec{
		{Proc: procs[0], Iteration: 1, Op: sr.Schedule.ProcSlots(procs[0])[0].Op},
		{Proc: procs[1], Iteration: 3, Op: sr.Schedule.ProcSlots(procs[1])[2].Op},
	}
	const iters = 12
	res, err := Run(sr.Schedule, in.Graph, prog, Config{Iterations: iters, Kills: kills})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != iters {
		t.Fatalf("ran %d iterations", len(res.Iterations))
	}
	for it, io := range res.Iterations {
		if !io.Completed {
			t.Fatalf("iteration %d incomplete", it)
		}
		want := ref(it)
		for out, v := range io.Values {
			if v != want[out] {
				t.Errorf("iteration %d output %s = %v, want %d", it, out, v, want[out])
			}
		}
	}
	if len(res.CrashedProcs) != 2 {
		t.Errorf("crashed = %v", res.CrashedProcs)
	}
}

// TestStressParallelRuns executes many runs concurrently to shake out any
// shared-state assumptions between independent executives.
func TestStressParallelRuns(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	in, err := workload.RandomInstance(r, 10, 3, true, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram()
	for _, op := range in.Graph.OpNames() {
		if len(in.Graph.Preds(op)) == 0 {
			prog.Bind(op, func(it int, _ map[string]Value) Value { return it })
		} else {
			prog.Bind(op, func(_ int, in map[string]Value) Value {
				total := 0
				for _, v := range in {
					total += v.(int)
				}
				return total
			})
		}
	}
	t.Run("group", func(t *testing.T) {
		for i := 0; i < 8; i++ {
			i := i
			t.Run(fmt.Sprintf("run%d", i), func(t *testing.T) {
				t.Parallel()
				res, err := Run(sr.Schedule, in.Graph, prog, Config{Iterations: 5})
				if err != nil {
					t.Fatal(err)
				}
				for it, io := range res.Iterations {
					if !io.Completed {
						t.Fatalf("iteration %d incomplete", it)
					}
				}
			})
		}
	})
}
