package executive

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/spec"
)

// paperProgram implements the paper graph with integer arithmetic so
// results are exactly checkable: I = iteration+1, each comp combines its
// inputs, O forwards E's value.
func paperProgram() *Program {
	sum := func(_ int, in map[string]Value) Value {
		total := 0
		for _, v := range in {
			total += v.(int)
		}
		return total
	}
	return NewProgram().
		Bind("I", func(it int, _ map[string]Value) Value { return it + 1 }).
		Bind("A", func(_ int, in map[string]Value) Value { return in["I"].(int) * 2 }).
		Bind("B", func(_ int, in map[string]Value) Value { return in["A"].(int) + 1 }).
		Bind("C", func(_ int, in map[string]Value) Value { return in["A"].(int) + 2 }).
		Bind("D", func(_ int, in map[string]Value) Value { return in["A"].(int) + 3 }).
		Bind("E", sum).
		Bind("O", func(_ int, in map[string]Value) Value { return in["E"] })
}

// expectedO computes the reference output for iteration it.
func expectedO(it int) int {
	i := it + 1
	a := i * 2
	return (a + 1) + (a + 2) + (a + 3)
}

func scheduleFor(t *testing.T, h core.Heuristic, in *paperex.Instance, k int) *core.Result {
	t.Helper()
	r, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFailureFreeExecutiveComputesCorrectValues(t *testing.T) {
	in := paperex.BusInstance()
	for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
		r := scheduleFor(t, h, in, 1)
		res, err := Run(r.Schedule, in.Graph, paperProgram(), Config{Iterations: 3})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		for it, io := range res.Iterations {
			if !io.Completed {
				t.Fatalf("%v: iteration %d incomplete", h, it)
			}
			if got := io.Values["O"]; got != expectedO(it) {
				t.Errorf("%v: iteration %d O = %v, want %d", h, it, got, expectedO(it))
			}
		}
		if len(res.CrashedProcs) != 0 {
			t.Errorf("%v: spurious crashes %v", h, res.CrashedProcs)
		}
	}
}

func TestExecutiveSurvivesCrashFT1(t *testing.T) {
	in := paperex.BusInstance()
	r := scheduleFor(t, core.FT1, in, 1)
	// Kill the processor hosting the main replica of E right before it
	// would execute E, in iteration 1.
	victim := r.Schedule.MainReplica("E").Proc
	res, err := Run(r.Schedule, in.Graph, paperProgram(), Config{
		Iterations: 3,
		Kills:      []KillSpec{{Proc: victim, Iteration: 1, Op: "E"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for it, io := range res.Iterations {
		if !io.Completed {
			t.Fatalf("iteration %d incomplete after crash of %s", it, victim)
		}
		if got := io.Values["O"]; got != expectedO(it) {
			t.Errorf("iteration %d O = %v, want %d", it, got, expectedO(it))
		}
	}
	if len(res.CrashedProcs) != 1 || res.CrashedProcs[0] != victim {
		t.Errorf("CrashedProcs = %v", res.CrashedProcs)
	}
}

func TestExecutiveSurvivesEverySingleCrashPoint(t *testing.T) {
	in := paperex.BusInstance()
	tri := paperex.TriangleInstance()
	for _, tc := range []struct {
		h  core.Heuristic
		in *paperex.Instance
	}{{core.FT1, in}, {core.FT2, tri}} {
		r := scheduleFor(t, tc.h, tc.in, 1)
		for _, p := range r.Schedule.Procs() {
			for _, slot := range r.Schedule.ProcSlots(p) {
				res, err := Run(r.Schedule, tc.in.Graph, paperProgram(), Config{
					Iterations: 2,
					Kills:      []KillSpec{{Proc: p, Iteration: 0, Op: slot.Op}},
				})
				if err != nil {
					t.Fatal(err)
				}
				for it, io := range res.Iterations {
					if !io.Completed {
						t.Errorf("%v: crash of %s before %s: iteration %d incomplete",
							tc.h, p, slot.Op, it)
					} else if got := io.Values["O"]; got != expectedO(it) {
						t.Errorf("%v: crash of %s before %s: O = %v, want %d",
							tc.h, p, slot.Op, got, expectedO(it))
					}
				}
			}
		}
	}
}

func TestBasicExecutiveLosesOutputsOnCrash(t *testing.T) {
	in := paperex.BusInstance()
	r := scheduleFor(t, core.Basic, in, 0)
	p := r.Schedule.MainReplica("A").Proc
	res, err := Run(r.Schedule, in.Graph, paperProgram(), Config{
		Iterations: 1,
		Kills:      []KillSpec{{Proc: p, Iteration: 0, Op: "A"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].Completed {
		t.Error("basic executive should lose outputs when its only replica chain breaks")
	}
}

func TestExecutiveDoubleCrashFT2(t *testing.T) {
	// K=2 on a 4-processor mesh: two crashes in the same iteration.
	g := paperex.Algorithm()
	a := arch.New("mesh4")
	procs := []string{"P1", "P2", "P3", "P4"}
	for _, p := range procs {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := a.AddLink(fmt.Sprintf("L%d%d", i+1, j+1), procs[i], procs[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	sp := spec.New()
	for _, op := range g.OpNames() {
		for _, p := range procs {
			if err := sp.SetExec(op, p, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range g.Edges() {
		if err := sp.SetCommUniform(a, e.Key(), 0.3); err != nil {
			t.Fatal(err)
		}
	}
	r, err := core.ScheduleFT2(g, a, sp, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps := r.Schedule.Replicas("E")
	res, err := Run(r.Schedule, g, paperProgram(), Config{
		Iterations: 2,
		Kills: []KillSpec{
			{Proc: reps[0].Proc, Iteration: 0, Op: "E"},
			{Proc: reps[1].Proc, Iteration: 0, Op: "E"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for it, io := range res.Iterations {
		if !io.Completed {
			t.Fatalf("iteration %d incomplete under double crash", it)
		}
		if got := io.Values["O"]; got != expectedO(it) {
			t.Errorf("iteration %d O = %v, want %d", it, got, expectedO(it))
		}
	}
}

// memProgram is a counter: state starts at 0; step adds the input extio's
// value (always 1) to the state; out reads the new count... the mem value
// read in iteration i is the state from iteration i-1.
func memFixture(t *testing.T) (*graph.Graph, *arch.Architecture, *spec.Spec, *Program) {
	t.Helper()
	g := graph.New("counter")
	if err := g.AddExtIO("tick"); err != nil {
		t.Fatal(err)
	}
	_ = g.AddMem("count")
	_ = g.AddComp("step")
	_ = g.AddExtIO("out")
	for _, e := range [][2]string{{"tick", "step"}, {"count", "step"}, {"step", "count"}, {"step", "out"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	a := arch.New("bus3")
	for _, p := range []string{"P1", "P2", "P3"} {
		_ = a.AddProcessor(p)
	}
	if err := a.AddBus("bus", "P1", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	for _, op := range g.OpNames() {
		for _, p := range []string{"P1", "P2", "P3"} {
			_ = sp.SetExec(op, p, 1)
		}
	}
	for _, e := range g.Edges() {
		_ = sp.SetCommUniform(a, e.Key(), 0.4)
	}
	prog := NewProgram().
		Bind("tick", func(int, map[string]Value) Value { return 1 }).
		Bind("step", func(_ int, in map[string]Value) Value {
			return in["count"].(int) + in["tick"].(int)
		}).
		Bind("out", func(_ int, in map[string]Value) Value { return in["step"] }).
		InitMem("count", 0)
	return g, a, sp, prog
}

func TestMemStateAcrossIterations(t *testing.T) {
	g, a, sp, prog := memFixture(t)
	r, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(r.Schedule, g, prog, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	for it, io := range res.Iterations {
		want := it + 1 // counter increments once per iteration
		if got := io.Values["out"]; got != want {
			t.Errorf("iteration %d out = %v, want %d", it, got, want)
		}
	}
}

func TestMemStateSurvivesCrash(t *testing.T) {
	g, a, sp, prog := memFixture(t)
	r, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the processor holding the main replica of the mem before it can
	// serve the state in iteration 2.
	victim := r.Schedule.MainReplica("count").Proc
	res, err := Run(r.Schedule, g, prog, Config{
		Iterations: 4,
		Kills:      []KillSpec{{Proc: victim, Iteration: 2, Op: "count"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for it, io := range res.Iterations {
		want := it + 1
		if !io.Completed {
			t.Fatalf("iteration %d incomplete", it)
		}
		if got := io.Values["out"]; got != want {
			t.Errorf("iteration %d out = %v, want %d (state must survive on the backup)", it, got, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	in := paperex.BusInstance()
	r := scheduleFor(t, core.FT1, in, 1)
	// Unbound operation.
	if _, err := Run(r.Schedule, in.Graph, NewProgram(), Config{}); err == nil {
		t.Error("unbound operations must error")
	}
	// Kill spec naming a placement that does not exist.
	prog := paperProgram()
	if _, err := Run(r.Schedule, in.Graph, prog, Config{
		Kills: []KillSpec{{Proc: "P3", Iteration: 0, Op: "I"}},
	}); err == nil {
		t.Error("kill spec for a non-placement must error")
	}
	if _, err := Run(r.Schedule, in.Graph, prog, Config{
		Iterations: 1,
		Kills:      []KillSpec{{Proc: "P1", Iteration: 5, Op: "I"}},
	}); err == nil {
		t.Error("kill iteration out of range must error")
	}
	// Missing mem init.
	g, a, sp, _ := memFixture(t)
	rr, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	noInit := NewProgram().
		Bind("tick", func(int, map[string]Value) Value { return 1 }).
		Bind("step", func(_ int, in map[string]Value) Value { return 0 }).
		Bind("out", func(_ int, in map[string]Value) Value { return in["step"] })
	if _, err := Run(rr.Schedule, g, noInit, Config{}); err == nil {
		t.Error("missing mem init must error")
	}
}

// TestQuickExecutiveMatchesReference: on random DAGs with deterministic
// arithmetic, the concurrent executive under a random single crash produces
// the same outputs as a sequential reference evaluation.
func TestQuickExecutiveMatchesReference(t *testing.T) {
	f := func(seed int64, szOps uint8, killIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nOps := int(szOps%8) + 3
		g := graph.New("rand")
		_ = g.AddExtIO("in")
		names := []string{"in"}
		for i := 0; i < nOps; i++ {
			name := fmt.Sprintf("op%d", i)
			_ = g.AddComp(name)
			// Connect to 1-3 random earlier ops so everything is reachable.
			for _, j := range r.Perm(len(names))[:1+r.Intn(min(3, len(names)))] {
				_ = g.Connect(names[j], name)
			}
			names = append(names, name)
		}
		_ = g.AddExtIO("out")
		_ = g.Connect(names[len(names)-1], "out")

		a := arch.New("bus3")
		for _, p := range []string{"P1", "P2", "P3"} {
			_ = a.AddProcessor(p)
		}
		_ = a.AddBus("bus", "P1", "P2", "P3")
		sp := spec.New()
		for _, op := range g.OpNames() {
			for _, p := range []string{"P1", "P2", "P3"} {
				_ = sp.SetExec(op, p, 0.5+r.Float64())
			}
		}
		for _, e := range g.Edges() {
			_ = sp.SetCommUniform(a, e.Key(), 0.2+r.Float64()*0.3)
		}

		// Operation functions fold over a map, whose iteration order is
		// random, so the fold must be commutative: a shifted sum.
		prog := NewProgram()
		prog.Bind("in", func(it int, _ map[string]Value) Value { return it * 31 })
		prog.Bind("out", func(_ int, in map[string]Value) Value {
			for _, v := range in {
				return v
			}
			return nil
		})
		for i := 0; i < nOps; i++ {
			prog.Bind(fmt.Sprintf("op%d", i), func(_ int, in map[string]Value) Value {
				total := 7
				for _, v := range in {
					total += v.(int)
				}
				return total
			})
		}
		// Sequential reference evaluation.
		refSum := func(it int) int {
			vals := map[string]int{"in": it * 31}
			order, _ := g.TopoOrder()
			for _, op := range order {
				switch op {
				case "in":
				case "out":
					vals[op] = vals[g.StrictPreds(op)[0]]
				default:
					total := 7
					for _, p := range g.StrictPreds(op) {
						total += vals[p]
					}
					vals[op] = total
				}
			}
			return vals["out"]
		}

		sr, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
		if err != nil {
			return false
		}
		// Pick a random crash point among all placements.
		var kills []KillSpec
		var all []KillSpec
		for _, p := range sr.Schedule.Procs() {
			for _, slot := range sr.Schedule.ProcSlots(p) {
				all = append(all, KillSpec{Proc: p, Iteration: 0, Op: slot.Op})
			}
		}
		if len(all) > 0 {
			kills = []KillSpec{all[int(killIdx)%len(all)]}
		}
		res, err := Run(sr.Schedule, g, prog, Config{Iterations: 2, Kills: kills})
		if err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		for it, io := range res.Iterations {
			if !io.Completed {
				t.Logf("seed=%d kill=%+v: iteration %d incomplete", seed, kills, it)
				return false
			}
			if got := io.Values["out"]; got != refSum(it) {
				t.Logf("seed=%d kill=%+v: out=%v want %d", seed, kills, got, refSum(it))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkExecutiveFailureFree(b *testing.B) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog := paperProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(r.Schedule, in.Graph, prog, Config{Iterations: 3})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Iterations[2].Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkExecutiveWithCrash(b *testing.B) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog := paperProgram()
	victim := r.Schedule.MainReplica("E").Proc
	kills := []KillSpec{{Proc: victim, Iteration: 1, Op: "E"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(r.Schedule, in.Graph, prog, Config{Iterations: 3, Kills: kills})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Iterations[2].Completed {
			b.Fatal("incomplete")
		}
	}
}
