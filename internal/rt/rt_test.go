package rt

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
	"ftsched/internal/workload"
)

func TestAnalyzeFT1PaperInstance(t *testing.T) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(r.Schedule, in.Graph, in.Arch, in.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !an.AllDelivered {
		t.Fatal("FT1 K=1 must deliver under every single failure")
	}
	if an.FailureFree != 8.0 {
		t.Errorf("failure-free response = %v, want 8", an.FailureFree)
	}
	// The worst transient over all (proc, date) pairs is the P2 crash: 10.5.
	if an.WorstTransient < 10.5-1e-6 || an.WorstTransient > 12 {
		t.Errorf("worst transient = %v, expected about 10.5", an.WorstTransient)
	}
	if an.WorstPermanent < an.FailureFree || an.WorstPermanent > an.WorstTransient+1e-9 {
		t.Errorf("worst permanent = %v outside [%v, %v]", an.WorstPermanent, an.FailureFree, an.WorstTransient)
	}
	if an.ScenariosChecked == 0 {
		t.Error("no scenarios checked")
	}
	if len(an.WorstScenario.Failures) != 1 {
		t.Errorf("worst scenario = %+v", an.WorstScenario)
	}
	// Deadline verdicts at the three interesting thresholds.
	if an.MeetsDeadline(8.0) {
		t.Error("8.0 cannot cover the transient penalty")
	}
	if !an.MeetsDeadline(an.WorstTransient) {
		t.Error("the worst transient bound itself must pass")
	}
}

func TestAnalyzeFT2SupportsK2(t *testing.T) {
	// K=2 on a 4-processor mesh: simultaneous pairs are included.
	in := paperex.TriangleInstance()
	r, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(r.Schedule, in.Graph, in.Arch, in.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !an.AllDelivered {
		t.Error("FT2 K=1 must deliver under every single failure")
	}
	if an.WorstTransient < an.FailureFree {
		t.Error("worst transient below failure-free")
	}
}

func TestAnalyzeBasicIsNotTolerant(t *testing.T) {
	in := paperex.BusInstance()
	r, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(r.Schedule, in.Graph, in.Arch, in.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if an.AllDelivered {
		t.Error("the baseline schedule cannot deliver under every failure")
	}
	if an.MeetsDeadline(1e9) {
		t.Error("undelivered outputs must fail any deadline")
	}
}

func TestAnalyzeKZero(t *testing.T) {
	in := paperex.BusInstance()
	r, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(r.Schedule, in.Graph, in.Arch, in.Spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if an.ScenariosChecked != 0 {
		t.Errorf("K=0 checked %d scenarios, want 0", an.ScenariosChecked)
	}
	if an.WorstTransient != an.FailureFree || !an.AllDelivered {
		t.Errorf("K=0 analysis = %+v", an)
	}
	if !an.MeetsDeadline(an.FailureFree) {
		t.Error("failure-free bound must pass as its own deadline")
	}
}

func TestAnalyzeNegativeK(t *testing.T) {
	in := paperex.BusInstance()
	r, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(r.Schedule, in.Graph, in.Arch, in.Spec, -1); err == nil {
		t.Error("negative K must error")
	}
}

func TestEventBoundaries(t *testing.T) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dates := eventBoundaries(r.Schedule)
	if len(dates) < 10 {
		t.Errorf("only %d boundaries", len(dates))
	}
	for i := 1; i < len(dates); i++ {
		if dates[i] <= dates[i-1] {
			t.Fatal("boundaries not strictly increasing")
		}
	}
	if dates[0] != 0 {
		t.Errorf("first boundary = %v", dates[0])
	}
}

func TestAnalyzeK2IncludesPairs(t *testing.T) {
	// A K=2 FT2 schedule on a 4-processor mesh: the analysis must include
	// every simultaneous pair and still certify delivery.
	g := paperex.Algorithm()
	a, err := workload.FullMesh(4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workload.Costs(rand.New(rand.NewSource(7)), g, a,
		workload.CostParams{MeanExec: 1.5, Spread: 0.3, CCR: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.ScheduleFT2(g, a, sp, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(r.Schedule, g, a, sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !an.AllDelivered {
		t.Error("FT2 K=2 must deliver under every pair of simultaneous failures")
	}
	// singles: 4 procs x boundaries; pairs: C(4,2) = 6 more.
	if an.ScenariosChecked < 6 {
		t.Errorf("only %d scenarios checked", an.ScenariosChecked)
	}
	if an.WorstTransient < an.FailureFree {
		t.Error("worst transient below failure-free")
	}
}
