// Package rt analyzes the real-time behavior of a fault-tolerant schedule:
// it bounds the response time over every tolerated failure scenario by
// exhaustive simulation, producing the evidence that the schedule satisfies
// its real-time constraint ("the obtained distributed executive is
// guaranteed to satisfy the real-time constraints", Section 4.1, extended
// here to the faulty executions of Sections 6 and 7).
//
// The simulator's virtual time is deterministic, and a fail-stop failure
// only changes the execution when it crosses an activity boundary, so
// sweeping the crash date over the schedule's event boundaries (plus the
// points just after each boundary) covers every distinct behavior of a
// single failure; K-subset sweeps cover simultaneous failures.
package rt

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/arch"
	"ftsched/internal/faults"
	"ftsched/internal/graph"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/spec"
)

// Analysis bounds the response time of a schedule under failures.
type Analysis struct {
	// FailureFree is the response time with no failures.
	FailureFree float64
	// WorstTransient is the largest response time over every simulated
	// failure scenario, measured in the iteration where the failure occurs.
	WorstTransient float64
	// WorstPermanent is the largest response time over the iterations after
	// detection (the degraded steady state).
	WorstPermanent float64
	// WorstScenario is a scenario attaining WorstTransient.
	WorstScenario sim.Scenario
	// ScenariosChecked counts the simulated failure scenarios.
	ScenariosChecked int
	// AllDelivered reports whether every scenario delivered every output in
	// every iteration.
	AllDelivered bool
}

// MeetsDeadline reports whether every checked execution, failure-free and
// faulty, responds within d.
func (a *Analysis) MeetsDeadline(d float64) bool {
	return a.AllDelivered && a.FailureFree <= d+1e-9 &&
		a.WorstTransient <= d+1e-9 && a.WorstPermanent <= d+1e-9
}

// Analyze sweeps every failure scenario of up to K processors crashing
// simultaneously (plus, for K >= 1, each single-processor crash at every
// event boundary) and reports response-time bounds. K = 0 checks only the
// failure-free execution.
func Analyze(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int) (*Analysis, error) {
	if k < 0 {
		return nil, fmt.Errorf("rt: negative K")
	}
	res := &Analysis{AllDelivered: true}
	free, err := sim.Simulate(s, g, a, sp, sim.Scenario{}, sim.Config{Iterations: 1})
	if err != nil {
		return nil, err
	}
	if !free.Iterations[0].Completed {
		return nil, fmt.Errorf("rt: the failure-free execution does not deliver every output")
	}
	res.FailureFree = free.Iterations[0].ResponseTime

	check := func(sc sim.Scenario) error {
		sr, err := sim.Simulate(s, g, a, sp, sc, sim.Config{Iterations: 3})
		if err != nil {
			return err
		}
		res.ScenariosChecked++
		for i, ir := range sr.Iterations {
			if !ir.Completed {
				res.AllDelivered = false
				continue
			}
			switch {
			case i == 0: // transient iteration (failures injected at 0)
				if ir.ResponseTime > res.WorstTransient {
					res.WorstTransient = ir.ResponseTime
					res.WorstScenario = sc
				}
			default: // degraded steady state
				if ir.ResponseTime > res.WorstPermanent {
					res.WorstPermanent = ir.ResponseTime
				}
			}
		}
		return nil
	}

	if k >= 1 {
		dates := eventBoundaries(s)
		for _, p := range a.ProcessorNames() {
			for _, at := range dates {
				if err := check(sim.Single(p, 0, at)); err != nil {
					return nil, err
				}
			}
		}
	}
	for size := 2; size <= k; size++ {
		for _, sub := range faults.Subsets(a, size) {
			sc := sim.Scenario{}
			for _, p := range sub {
				sc.Failures = append(sc.Failures, sim.Failure{Proc: p, Iteration: 0, At: 0})
			}
			if err := check(sc); err != nil {
				return nil, err
			}
		}
	}
	if res.WorstTransient < res.FailureFree {
		res.WorstTransient = res.FailureFree
	}
	if res.WorstPermanent < res.FailureFree {
		res.WorstPermanent = res.FailureFree
	}
	return res, nil
}

// eventBoundaries collects the schedule's distinct activity start/end dates
// plus a point just after each, the crash dates that produce distinct
// executions.
func eventBoundaries(s *sched.Schedule) []float64 {
	set := map[float64]bool{0: true}
	add := func(t float64) {
		set[t] = true
		set[t+1e-6] = true
	}
	for _, p := range s.Procs() {
		for _, sl := range s.ProcSlots(p) {
			add(sl.Start)
			add(sl.End)
		}
	}
	for _, l := range s.Links() {
		for _, c := range s.LinkSlots(l) {
			add(c.Start)
			add(c.End)
		}
	}
	out := make([]float64, 0, len(set))
	for t := range set {
		if t >= 0 && !math.IsInf(t, 0) {
			out = append(out, t)
		}
	}
	sort.Float64s(out)
	return out
}
