// Package pressure implements the static half of the SynDEx "schedule
// pressure" cost function (Section 6.2 of the paper):
//
//	σ(n)(o, p) = S(n)(o, p) + Δ(o, p) + E(o) − R
//
// where S is the earliest start of operation o on processor p given the
// partial schedule at step n (computed dynamically by the schedulers), Δ the
// execution duration from the constraints table, E(o) the longest remaining
// path after o measured from the end of the critical path, and R the
// critical path of the whole algorithm. σ measures by how much scheduling o
// on p lengthens the critical path of the implementation, so the heuristic
// schedules the most urgent operation (max σ) on its best processor (min σ).
//
// R and E(o) are computed once before scheduling, with durations averaged
// over the allowed processors and links (the architecture is heterogeneous,
// so no single exact duration exists before placement).
package pressure

import (
	"fmt"
	"math"

	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// Table holds the static quantities of the pressure function for one
// (algorithm, constraints) pair.
type Table struct {
	// R is the averaged critical-path length of the algorithm.
	R    float64
	tail map[string]float64
}

// Compute builds the pressure table for g under sp. It rejects non-finite
// path lengths: an operation with no allowed processor makes AvgExec return
// the ∞ sentinel, which LongestPaths would silently propagate into R and the
// tails — and Sigma would then evaluate Inf − Inf = NaN, mis-ranking every
// candidate instead of failing.
func Compute(g *graph.Graph, sp *spec.Spec) (*Table, error) {
	info, err := graph.LongestPaths(g, spec.AvgCost{S: sp})
	if err != nil {
		return nil, fmt.Errorf("pressure: %w", err)
	}
	bad := ""
	for op, e := range info.Tail {
		if (math.IsInf(e, 1) || math.IsNaN(e)) && (bad == "" || op < bad) {
			bad = op
		}
	}
	if bad != "" {
		return nil, fmt.Errorf("pressure: remaining path after %s is not finite: an operation on it has no allowed processor", bad)
	}
	if math.IsInf(info.R, 1) || math.IsNaN(info.R) {
		return nil, fmt.Errorf("pressure: critical path is not finite: an operation has no allowed processor")
	}
	return &Table{R: info.R, tail: info.Tail}, nil
}

// E returns the longest remaining path after op ends (the paper's E(o),
// "maximal end date measured from the end of the critical path").
func (t *Table) E(op string) float64 { return t.tail[op] }

// Sigma evaluates the schedule pressure of placing op on a processor where
// it would start at date s and run for d time units.
func (t *Table) Sigma(op string, s, d float64) float64 {
	return s + d + t.E(op) - t.R
}

// Dense is the compiled form of a Table for a fixed operation interning: the
// tail term indexed by a caller-assigned dense operation ID instead of a
// name. Sigma on a Dense is branchless array arithmetic — no map hash, no
// existence check — and small enough to inline into the scheduler's scoring
// loop. Build one with Table.Dense.
type Dense struct {
	// R is the averaged critical-path length, identical to the Table's.
	R    float64
	tail []float64
}

// Dense compiles the table against ops, where the operation at index i gets
// dense ID i. Every op must be present in the table: a miss here would turn
// into a silent 0 tail and mis-rank candidates, so it is an error instead.
func (t *Table) Dense(ops []string) (Dense, error) {
	tail := make([]float64, len(ops))
	for i, op := range ops {
		e, ok := t.tail[op]
		if !ok {
			return Dense{}, fmt.Errorf("pressure: operation %q has no remaining-path entry", op)
		}
		tail[i] = e
	}
	return Dense{R: t.R, tail: tail}, nil
}

// Sigma evaluates the schedule pressure of placing the operation with dense
// ID op on a processor where it would start at date s and run for d time
// units. The float expression is identical, operation for operation, to the
// string-keyed Table.Sigma, so both produce bit-equal pressures.
func (d *Dense) Sigma(op int32, s, dur float64) float64 {
	return s + dur + d.tail[op] - d.R
}
