package pressure

import (
	"math"
	"strings"
	"testing"

	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// chainFixture: A -> B -> C, exec 2 on P1 and 4 on P2 (avg 3), comm 1.
func chainFixture(t *testing.T) (*graph.Graph, *spec.Spec) {
	t.Helper()
	g := graph.New("chain")
	for _, n := range []string{"A", "B", "C"} {
		if err := g.AddComp(n); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.Connect("A", "B")
	_ = g.Connect("B", "C")
	sp := spec.New()
	for _, n := range []string{"A", "B", "C"} {
		_ = sp.SetExec(n, "P1", 2)
		_ = sp.SetExec(n, "P2", 4)
	}
	for _, e := range g.Edges() {
		_ = sp.SetComm(e.Key(), "L", 1)
	}
	return g, sp
}

func TestComputeChain(t *testing.T) {
	g, sp := chainFixture(t)
	tab, err := Compute(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Averaged durations: 3 per op, 1 per edge. R = 3+1+3+1+3 = 11.
	if !almostEq(tab.R, 11) {
		t.Errorf("R = %v, want 11", tab.R)
	}
	if !almostEq(tab.E("C"), 0) {
		t.Errorf("E(C) = %v, want 0", tab.E("C"))
	}
	if !almostEq(tab.E("B"), 4) { // comm 1 + C 3
		t.Errorf("E(B) = %v, want 4", tab.E("B"))
	}
	if !almostEq(tab.E("A"), 8) {
		t.Errorf("E(A) = %v, want 8", tab.E("A"))
	}
}

func TestSigma(t *testing.T) {
	g, sp := chainFixture(t)
	tab, err := Compute(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduling A at t=0 with its average duration on the critical path
	// gives σ = 0 + 3 + 8 − 11 = 0: no lengthening.
	if got := tab.Sigma("A", 0, 3); !almostEq(got, 0) {
		t.Errorf("Sigma(A,0,3) = %v, want 0", got)
	}
	// Any delay or longer duration increases σ by the same amount.
	if got := tab.Sigma("A", 2, 3); !almostEq(got, 2) {
		t.Errorf("Sigma(A,2,3) = %v, want 2", got)
	}
	if got := tab.Sigma("A", 0, 5); !almostEq(got, 2) {
		t.Errorf("Sigma(A,0,5) = %v, want 2", got)
	}
	// An operation with slack can absorb delay: σ stays negative until the
	// slack is consumed.
	if got := tab.Sigma("C", 0, 3); !almostEq(got, -8) {
		t.Errorf("Sigma(C,0,3) = %v, want -8", got)
	}
}

func TestComputeCycleError(t *testing.T) {
	g := graph.New("cyc")
	_ = g.AddComp("a")
	_ = g.AddComp("b")
	_ = g.Connect("a", "b")
	_ = g.Connect("b", "a")
	if _, err := Compute(g, spec.New()); err == nil {
		t.Fatal("expected cycle error")
	}
}

// TestComputeRejectsUnplaceableOp is the regression test for the ∞-sentinel
// leak found by the infwcet audit: an operation with no allowed processor
// makes AvgExec return +Inf, which LongestPaths propagated into the tails and
// R. Sigma then evaluated Inf − Inf = NaN for upstream candidates, and NaN
// compares false with everything — the heuristic kept mis-ranked candidates
// instead of failing. Compute must reject the table up front.
func TestComputeRejectsUnplaceableOp(t *testing.T) {
	g := graph.New("chain")
	for _, n := range []string{"A", "B", "C"} {
		if err := g.AddComp(n); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.Connect("A", "B")
	_ = g.Connect("B", "C")
	sp := spec.New()
	for _, n := range []string{"A", "C"} { // B has no allowed processor
		_ = sp.SetExec(n, "P1", 2)
	}
	for _, e := range g.Edges() {
		_ = sp.SetComm(e.Key(), "L", 1)
	}
	_, err := Compute(g, sp)
	if err == nil {
		t.Fatal("Compute accepted a table with an unplaceable operation")
	}
	// A is the only op whose remaining path crosses B, so the error must
	// name it — deterministically, regardless of map iteration order.
	if want := "remaining path after A"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

// TestComputeRejectsUnplaceableSource covers the R-only branch: when the
// unplaceable operation is a source, every tail stays finite but the critical
// path itself is infinite.
func TestComputeRejectsUnplaceableSource(t *testing.T) {
	g := graph.New("chain")
	for _, n := range []string{"A", "B"} {
		if err := g.AddComp(n); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.Connect("A", "B")
	sp := spec.New()
	_ = sp.SetExec("B", "P1", 2) // A has no allowed processor
	for _, e := range g.Edges() {
		_ = sp.SetComm(e.Key(), "L", 1)
	}
	_, err := Compute(g, sp)
	if err == nil {
		t.Fatal("Compute accepted a table with an unplaceable source")
	}
	if want := "critical path is not finite"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestEUnknownOpIsZero(t *testing.T) {
	g, sp := chainFixture(t)
	tab, err := Compute(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	if tab.E("nope") != 0 {
		t.Error("unknown op should have zero tail")
	}
}

// TestDenseMatchesTable checks that the compiled Dense form is bit-equal to
// the string-keyed Table it was built from, for every op and several (s, d)
// points — the scheduler's golden-equivalence matrix depends on the two
// producing identical floats, not merely close ones.
func TestDenseMatchesTable(t *testing.T) {
	g, sp := chainFixture(t)
	tab, err := Compute(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{"A", "B", "C"}
	d, err := tab.Dense(ops)
	if err != nil {
		t.Fatal(err)
	}
	if d.R != tab.R {
		t.Fatalf("Dense.R = %v, Table.R = %v", d.R, tab.R)
	}
	for i, op := range ops {
		for _, pt := range [][2]float64{{0, 0}, {1.5, 2.25}, {7, 0.1}} {
			got := d.Sigma(int32(i), pt[0], pt[1])
			want := tab.Sigma(op, pt[0], pt[1])
			if got != want {
				t.Errorf("Sigma(%s, %v, %v): dense %v != table %v", op, pt[0], pt[1], got, want)
			}
		}
	}
}

func TestDenseRejectsUnknownOp(t *testing.T) {
	g, sp := chainFixture(t)
	tab, err := Compute(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Dense([]string{"A", "nope"}); err == nil {
		t.Fatal("Dense accepted an operation with no remaining-path entry")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error should name the missing op, got: %v", err)
	}
}
