package benchrun

import (
	"fmt"
	"math/rand"
	"time"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/paperex"
	"ftsched/internal/sim"
	"ftsched/internal/spec"
	"ftsched/internal/workload"
)

// simIterations is the reactive-loop length per simulated scenario.
const simIterations = 3

// simCases returns the simulator tier: the same case set for both engines,
// so BENCH_sim.json (compiled) and BENCH_sim_baseline.json (legacy) gate and
// diff against each other by name.
//
//   - ft1/bus/7x3: the paper's worked example (Fig. 13) under FT1;
//   - ft2/p2p/60x4: a mid-size replicated-communication schedule;
//   - ft1/bus/100x8: a larger failover-chain schedule.
func simCases(engine string) []Case {
	return []Case{
		{Kind: "sim", Engine: engine, Heuristic: "ft1", Arch: "bus", Ops: 7, Procs: 3, K: 1, Scenarios: 2000},
		{Kind: "sim", Engine: engine, Heuristic: "ft2", Arch: "p2p", Ops: 60, Procs: 4, K: 1, Scenarios: 500},
		{Kind: "sim", Engine: engine, Heuristic: "ft1", Arch: "bus", Ops: 100, Procs: 8, K: 1, Scenarios: 300},
	}
}

// simInstance resolves the case's problem: the 7x3 bus case is the paper's
// worked example; everything else draws the deterministic random workload
// with the harness seed convention.
func simInstance(c Case) (*graph.Graph, *arch.Architecture, *spec.Spec, error) {
	if c.Ops == 7 && c.Procs == 3 {
		in := paperex.BusInstance()
		return in.Graph, in.Arch, in.Spec, nil
	}
	in, err := workload.RandomInstance(rand.New(rand.NewSource(int64(c.Ops*100+c.Procs))), c.Ops, c.Procs, c.Arch == "bus", 0.8)
	if err != nil {
		return nil, nil, nil, err
	}
	return in.Graph, in.Arch, in.Spec, nil
}

// simScenarios derives the deterministic fail-stop/intermittent scenario
// sweep for a case: scenario i fails processor i mod P at iteration i mod 3,
// at a date cycling through the makespan; every fifth scenario recovers
// within the same iteration (an intermittent outage). Both engines replay
// the identical sweep, so the SimResult identity must match exactly.
func simScenarios(procs []string, makespan float64, n int) []sim.Scenario {
	out := make([]sim.Scenario, n)
	for i := 0; i < n; i++ {
		f := sim.Failure{
			Proc:      procs[i%len(procs)],
			Iteration: i % simIterations,
			At:        float64(i%97) / 97 * makespan,
		}
		if i%5 == 4 {
			f.RecoverIteration = f.Iteration
			f.RecoverAt = f.At + 0.3*makespan
		}
		out[i] = sim.Scenario{Failures: []sim.Failure{f}}
	}
	return out
}

// runSim times one simulator case: the schedule is built untimed, then the
// full scenario sweep is timed (best of up to three runs within a one-second
// budget). The compiled engine pays Compile once outside the loop and reuses
// one Runner across the sweep — exactly the campaign's usage pattern; the
// legacy engine re-walks the schedule maps per scenario.
func runSim(c Case) (*Result, error) {
	h, err := heuristicOf(c.Heuristic)
	if err != nil {
		return nil, err
	}
	g, a, sp, err := simInstance(c)
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
	}
	res, err := core.Schedule(h, g, a, sp, c.K, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
	}
	s := res.Schedule
	scenarios := simScenarios(a.ProcessorNames(), s.Makespan(), c.Scenarios)

	var sweep func() (*SimResult, error)
	switch c.Engine {
	case "compiled":
		m, err := sim.Compile(s, g, a, sp)
		if err != nil {
			return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
		}
		runner := m.NewRunner()
		cfg := sim.RunConfig{Iterations: simIterations}
		sweep = func() (*SimResult, error) {
			var id SimResult
			for _, sc := range scenarios {
				st := runner.RunStats(sc, cfg)
				id.addStats(&st)
			}
			return &id, nil
		}
	case "legacy":
		cfg := sim.Config{Iterations: simIterations}
		sweep = func() (*SimResult, error) {
			var id SimResult
			for _, sc := range scenarios {
				r, err := sim.SimulateLegacy(s, g, a, sp, sc, cfg)
				if err != nil {
					return nil, err
				}
				id.addResult(r)
			}
			return &id, nil
		}
	default:
		return nil, fmt.Errorf("benchrun: %s: unknown sim engine %q (want compiled or legacy)", c.Name(), c.Engine)
	}

	var (
		best    time.Duration
		id      *SimResult
		runs    int
		elapsed time.Duration
	)
	for runs = 0; runs < 3; runs++ {
		start := time.Now() //ftlint:allow-nondet the bench harness measures wall-clock by design; timings never feed back into a schedule
		sid, err := sweep()
		d := time.Since(start) //ftlint:allow-nondet wall-clock measurement of the run above, reported not scheduled
		if err != nil {
			return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
		}
		if runs == 0 || d < best {
			best, id = d, sid
		}
		if elapsed += d; elapsed > time.Second {
			runs++
			break
		}
	}
	allocs, bytes, err := measureAllocs(func() error {
		_, err := sweep()
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: alloc run: %w", c.Name(), err)
	}
	// One instrumented pass over the first scenario records the engine
	// counters (identical per scenario modulo the failure date, so one
	// scenario explains the sweep).
	sink := obs.NewSink()
	icfg := sim.Config{Iterations: simIterations, Obs: sink}
	if c.Engine == "compiled" {
		_, err = sim.Simulate(s, g, a, sp, scenarios[0], icfg)
	} else {
		_, err = sim.SimulateLegacy(s, g, a, sp, scenarios[0], icfg)
	}
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: instrumented run: %w", c.Name(), err)
	}
	return &Result{
		Case:         c,
		Seconds:      best.Seconds(),
		Runs:         runs,
		Makespan:     s.Makespan(),
		OpSlots:      s.NumOpSlots(),
		ActiveComms:  s.NumActiveComms(),
		PassiveComms: s.NumPassiveComms(),
		AllocsPerRun: allocs,
		BytesPerRun:  bytes,
		Counters:     sink.Snapshot(),
		Sim:          id,
	}, nil
}

// addStats folds one compiled-engine scenario into the identity.
func (id *SimResult) addStats(st *sim.Stats) {
	id.Scenarios++
	id.Iterations += int64(st.Iterations)
	id.Incomplete += int64(st.Iterations - st.Completed)
	id.Messages += int64(st.Messages)
	id.Timeouts += int64(st.Timeouts)
	id.FalseDetections += int64(st.FalseDetections)
	id.SumResponse += st.SumResponse
	if st.WorstResponse > id.WorstResponse {
		id.WorstResponse = st.WorstResponse
	}
}

// addResult folds one legacy-engine scenario into the identity. Responses
// are summed per scenario first and then folded in, matching the compiled
// path's grouping (Stats.SumResponse per scenario), so the float totals of
// the two engines are bit-identical.
func (id *SimResult) addResult(r *sim.Result) {
	id.Scenarios++
	var sum float64
	for _, ir := range r.Iterations {
		id.Iterations++
		if !ir.Completed {
			id.Incomplete++
		}
		id.Messages += int64(ir.MessagesSent)
		id.Timeouts += int64(ir.TimeoutsFired)
		id.FalseDetections += int64(ir.FalseDetections)
		sum += ir.ResponseTime
		if ir.ResponseTime > id.WorstResponse {
			id.WorstResponse = ir.ResponseTime
		}
	}
	id.SumResponse += sum
}
