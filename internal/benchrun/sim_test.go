package benchrun

import (
	"strings"
	"testing"
)

// TestSimTiers checks the two simulator tiers carry the same case names (so
// BENCH_sim.json gates against BENCH_sim_baseline.json) and differ only in
// engine.
func TestSimTiers(t *testing.T) {
	compiled, err := Tier("sim")
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Tier("sim-legacy")
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled) != len(legacy) || len(compiled) == 0 {
		t.Fatalf("tier sizes: sim %d, sim-legacy %d", len(compiled), len(legacy))
	}
	for i := range compiled {
		if compiled[i].Name() != legacy[i].Name() {
			t.Errorf("case %d: names differ: %q vs %q", i, compiled[i].Name(), legacy[i].Name())
		}
		if compiled[i].Engine != "compiled" || legacy[i].Engine != "legacy" {
			t.Errorf("case %d: engines %q/%q", i, compiled[i].Engine, legacy[i].Engine)
		}
		if compiled[i].Scenarios != legacy[i].Scenarios || compiled[i].Scenarios == 0 {
			t.Errorf("case %d: scenario counts %d/%d", i, compiled[i].Scenarios, legacy[i].Scenarios)
		}
		if !strings.HasPrefix(compiled[i].Name(), "sim/") {
			t.Errorf("sim case name %q must carry the kind prefix", compiled[i].Name())
		}
	}
}

// TestRunSimCaseBothEngines runs a scaled-down sim case through both engines
// and requires identical outcome identities — the bench-level differential
// check that the [sim drift] marker in Deltas relies on.
func TestRunSimCaseBothEngines(t *testing.T) {
	base := Case{Kind: "sim", Heuristic: "ft1", Arch: "bus", Ops: 7, Procs: 3, K: 1, Scenarios: 60}
	var ids []*SimResult
	for _, engine := range []string{"compiled", "legacy"} {
		c := base
		c.Engine = engine
		rr, err := runSim(c)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Sim == nil || rr.Sim.Scenarios != 60 || rr.Sim.Iterations != 60*simIterations {
			t.Fatalf("%s identity = %+v", engine, rr.Sim)
		}
		if rr.Seconds <= 0 || rr.AllocsPerRun == 0 {
			t.Fatalf("%s: seconds %v, allocs %d", engine, rr.Seconds, rr.AllocsPerRun)
		}
		ids = append(ids, rr.Sim)
	}
	if *ids[0] != *ids[1] {
		t.Fatalf("engines diverge:\ncompiled: %+v\nlegacy:   %+v", *ids[0], *ids[1])
	}
}

func TestRunSimUnknownEngine(t *testing.T) {
	_, err := runSim(Case{Kind: "sim", Heuristic: "ft1", Arch: "bus", Ops: 7, Procs: 3, K: 1, Scenarios: 5, Engine: "warp"})
	if err == nil || !strings.Contains(err.Error(), "unknown sim engine") {
		t.Fatalf("err = %v", err)
	}
}
