package benchrun

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestTiers(t *testing.T) {
	small, err := Tier("small")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Tier("full")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tier("nope"); err == nil {
		t.Error("unknown tier: want error, got nil")
	}
	// The CI smoke job gates small-tier results against the committed
	// full-tier baseline, so every small case must exist in full.
	fullBy := make(map[string]bool, len(full))
	for _, c := range full {
		fullBy[c.Name()] = true
	}
	for _, c := range small {
		if !fullBy[c.Name()] {
			t.Errorf("small case %s missing from the full tier", c.Name())
		}
	}
	for _, c := range full {
		if c.Heuristic == "basic" && c.K != 0 {
			t.Errorf("%s: basic must use K=0", c.Name())
		}
		if c.Heuristic != "basic" && c.K == 0 {
			t.Errorf("%s: fault-tolerant case must use K>0", c.Name())
		}
	}
	cert, err := Tier("certify")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cert {
		if c.Kind != "certify" || c.K == 0 {
			t.Errorf("%s: certify-tier case must have Kind=certify and K>0: %+v", c.Name(), c)
		}
		if !strings.HasPrefix(c.Name(), "certify/") {
			t.Errorf("certify case name %q must carry the kind prefix", c.Name())
		}
	}
}

// TestRunSmallCase runs one real case end to end and round-trips the report
// through its JSON file format.
func TestRunSmallCase(t *testing.T) {
	cases := []Case{{Heuristic: "ft1", Arch: "bus", Ops: 20, Procs: 3, K: 1}}
	rep, err := Run("unit", cases, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Seconds <= 0 || rep.Results[0].OpSlots == 0 {
		t.Fatalf("implausible result: %+v", rep.Results)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tier != "unit" || len(back.Results) != 1 || back.Results[0].Name() != cases[0].Name() {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestCompare(t *testing.T) {
	c := Case{Heuristic: "ft1", Arch: "bus", Ops: 400, Procs: 8, K: 1}
	base := &Report{Results: []Result{{Case: c, Seconds: 1.0}}}

	ok := &Report{Results: []Result{{Case: c, Seconds: 1.9}}}
	if err := Compare(ok, base, 2); err != nil {
		t.Errorf("1.9x should pass the 2x gate: %v", err)
	}
	bad := &Report{Results: []Result{{Case: c, Seconds: 2.5}}}
	err := Compare(bad, base, 2)
	if err == nil {
		t.Fatal("2.5x should fail the 2x gate")
	}
	if !strings.Contains(err.Error(), c.Name()) {
		t.Errorf("regression error should name the case, got: %v", err)
	}

	// A case absent from the baseline is not gated.
	other := Case{Heuristic: "ft2", Arch: "p2p", Ops: 100, Procs: 4, K: 1}
	newCase := &Report{Results: []Result{{Case: other, Seconds: 100}}}
	if err := Compare(newCase, base, 2); err != nil {
		t.Errorf("case missing from baseline must be ignored: %v", err)
	}

	// Sub-floor baseline times are clamped so jitter on tiny cases cannot
	// trip the gate.
	tiny := &Report{Results: []Result{{Case: c, Seconds: 0.001}}}
	cur := &Report{Results: []Result{{Case: c, Seconds: 0.02}}}
	if err := Compare(cur, tiny, 2); err != nil {
		t.Errorf("20ms vs 1ms baseline is inside the %gms floor: %v", floorSeconds*1000, err)
	}
}

// TestCompareAllocGate pins the allocation gate: a 2x allocation regression
// fails even at identical timing, sub-floor baselines are clamped, and
// reports without measurements are not gated.
func TestCompareAllocGate(t *testing.T) {
	c := Case{Heuristic: "ft1", Arch: "bus", Ops: 400, Procs: 8, K: 1}
	base := &Report{Results: []Result{{Case: c, Seconds: 1.0, AllocsPerRun: 1_000_000, BytesPerRun: 64 << 20}}}

	ok := &Report{Results: []Result{{Case: c, Seconds: 1.0, AllocsPerRun: 1_900_000, BytesPerRun: 65 << 20}}}
	if err := Compare(ok, base, 2); err != nil {
		t.Errorf("1.9x allocs should pass the 2x gate: %v", err)
	}
	badAllocs := &Report{Results: []Result{{Case: c, Seconds: 1.0, AllocsPerRun: 2_500_000, BytesPerRun: 65 << 20}}}
	if err := Compare(badAllocs, base, 2); err == nil || !strings.Contains(err.Error(), "allocs/run") {
		t.Errorf("2.5x allocs should fail the 2x gate, got: %v", err)
	}
	badBytes := &Report{Results: []Result{{Case: c, Seconds: 1.0, AllocsPerRun: 1_000_000, BytesPerRun: 160 << 20}}}
	if err := Compare(badBytes, base, 2); err == nil || !strings.Contains(err.Error(), "bytes/run") {
		t.Errorf("2.5x bytes should fail the 2x gate, got: %v", err)
	}

	// Near-zero-alloc baselines are clamped to the floor: doubling a handful
	// of allocations is not a regression.
	tinyBase := &Report{Results: []Result{{Case: c, Seconds: 1.0, AllocsPerRun: 50, BytesPerRun: 4096}}}
	tinyCur := &Report{Results: []Result{{Case: c, Seconds: 1.0, AllocsPerRun: 500, BytesPerRun: 65536}}}
	if err := Compare(tinyCur, tinyBase, 2); err != nil {
		t.Errorf("sub-floor allocation baseline must be clamped: %v", err)
	}

	// A baseline without measurements (pre-gate report) is not alloc-gated.
	unmeasured := &Report{Results: []Result{{Case: c, Seconds: 1.0}}}
	if err := Compare(badAllocs, unmeasured, 2); err != nil {
		t.Errorf("unmeasured baseline must skip the allocation gate: %v", err)
	}
}

// TestRunMeasuresAllocs checks the harness records a plausible allocation
// profile for a real case and round-trips it through JSON.
func TestRunMeasuresAllocs(t *testing.T) {
	cases := []Case{{Heuristic: "ft2", Arch: "bus", Ops: 20, Procs: 3, K: 1}}
	rep, err := Run("unit", cases, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.AllocsPerRun == 0 || r.BytesPerRun == 0 {
		t.Fatalf("allocation measurement missing: %+v", r)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0].AllocsPerRun != r.AllocsPerRun || back.Results[0].BytesPerRun != r.BytesPerRun {
		t.Fatalf("allocation round-trip mismatch: %+v", back.Results[0])
	}
}

func TestDeltas(t *testing.T) {
	c1 := Case{Heuristic: "ft1", Arch: "bus", Ops: 400, Procs: 8, K: 1}
	c2 := Case{Heuristic: "ft2", Arch: "p2p", Ops: 400, Procs: 8, K: 1}
	base := &Report{Results: []Result{
		{Case: c1, Seconds: 1.0, Makespan: 50, OpSlots: 10},
	}}
	cur := &Report{Results: []Result{
		{Case: c1, Seconds: 2.0, Makespan: 51, OpSlots: 10},
		{Case: c2, Seconds: 0.5, Makespan: 40, OpSlots: 12},
	}}
	lines := Deltas(cur, base)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "2.00x") {
		t.Errorf("line should carry the timing ratio: %q", lines[0])
	}
	if !strings.Contains(lines[0], "[behavioral drift]") {
		t.Errorf("makespan change should flag behavioral drift: %q", lines[0])
	}
	if !strings.Contains(lines[1], "new case, no baseline") {
		t.Errorf("unmatched case should be flagged new: %q", lines[1])
	}
}

// TestDeltasFloor pins the timer-noise clamp: ratios against sub-floor
// baselines are computed as if the baseline took floorSeconds.
func TestDeltasFloor(t *testing.T) {
	c := Case{Heuristic: "basic", Arch: "bus", Ops: 100, Procs: 4}
	base := &Report{Results: []Result{{Case: c, Seconds: 0.001}}}
	cur := &Report{Results: []Result{{Case: c, Seconds: 0.025}}}
	lines := Deltas(cur, base)
	if len(lines) != 1 || !strings.Contains(lines[0], "0.50x") {
		t.Errorf("sub-floor baseline should clamp to %g for the ratio: %v", floorSeconds, lines)
	}
}

// TestRunRecordsCounters checks the instrumented run embeds a non-empty
// engine-counter snapshot in the report.
func TestRunRecordsCounters(t *testing.T) {
	cases := []Case{{Heuristic: "ft1", Arch: "bus", Ops: 20, Procs: 3, K: 1}}
	rep, err := Run("unit", cases, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Results[0].Counters
	if snap["core.steps"] == 0 || snap["core.evals"] == 0 {
		t.Errorf("report counters missing core engine data: %v", snap)
	}
}

// TestRunCertifyCase runs one certify-kind case end to end: the schedule is
// built untimed, the certifier is timed, and the result carries the verdict
// identity, the certifier's counters, and a JSON round-trip.
func TestRunCertifyCase(t *testing.T) {
	cases := []Case{{Kind: "certify", Heuristic: "ft1", Arch: "bus", Ops: 20, Procs: 3, K: 1, Workers: 2}}
	rep, err := Run("unit", cases, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Seconds <= 0 || r.Runs == 0 || r.Makespan <= 0 {
		t.Fatalf("implausible certify result: %+v", r)
	}
	if r.Certify == nil || !r.Certify.Certified || r.Certify.PatternsChecked == 0 {
		t.Fatalf("certify verdict missing or implausible: %+v", r.Certify)
	}
	if r.Counters["certify.evals"] == 0 || r.Counters["certify.patterns.checked"] == 0 {
		t.Errorf("report counters missing certifier data: %v", r.Counters)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Name() != cases[0].Name() || back.Results[0].Certify == nil ||
		*back.Results[0].Certify != *r.Certify {
		t.Fatalf("certify round-trip mismatch: %+v", back.Results[0])
	}
}

// TestDeltasCertifyDriftAndCounters pins the certify-aware delta lines: a
// verdict change flags certify drift, and changed counters get per-counter
// explanation lines (suppressed when either side is uninstrumented).
func TestDeltasCertifyDriftAndCounters(t *testing.T) {
	c := Case{Kind: "certify", Heuristic: "ft1", Arch: "bus", Ops: 100, Procs: 8, K: 1}
	base := &Report{Results: []Result{{
		Case: c, Seconds: 1.0,
		Certify:  &CertifyResult{Certified: true, WorstBound: 10, PatternsChecked: 8},
		Counters: map[string]int64{"certify.evals": 9, "certify.cache.hits": 3},
	}}}
	cur := &Report{Results: []Result{{
		Case: c, Seconds: 1.0,
		Certify:  &CertifyResult{Certified: true, WorstBound: 12, PatternsChecked: 8},
		Counters: map[string]int64{"certify.evals": 20, "certify.cache.hits": 3},
	}}}
	lines := Deltas(cur, base)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want case line + one counter delta:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "[certify drift]") {
		t.Errorf("worst-bound change should flag certify drift: %q", lines[0])
	}
	if !strings.Contains(lines[1], "certify.evals") || strings.Contains(lines[1], "cache.hits") {
		t.Errorf("only the changed counter should be rendered: %q", lines[1])
	}

	// An uninstrumented baseline produces no counter noise.
	base.Results[0].Counters = nil
	if lines := Deltas(cur, base); len(lines) != 1 {
		t.Errorf("uninstrumented baseline must suppress counter deltas:\n%s", strings.Join(lines, "\n"))
	}
}
