// Package benchrun is the scheduler benchmark harness behind `ftsched
// -bench`: it times the three heuristics on deterministic random instances
// across sizes and architecture families, writes the results as JSON
// (BENCH_sched.json at the repository root), and compares runs against a
// committed baseline so CI can fail on performance regressions.
//
// Instances are drawn with the same seed convention as the package-level Go
// benchmarks (seed = ops*100 + procs), so `go test -bench` and `-bench` time
// the same workloads.
package benchrun

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/workload"
)

// Case is one benchmark cell: a heuristic on a deterministic random instance.
type Case struct {
	// Kind selects what is timed: "" times the scheduler, "certify" builds
	// the schedule untimed and times the K-fault certifier on it.
	Kind string `json:"kind,omitempty"`
	// Heuristic is basic, ft1, or ft2.
	Heuristic string `json:"heuristic"`
	// Arch is the architecture family: bus or p2p (full mesh).
	Arch string `json:"arch"`
	// Ops and Procs size the instance.
	Ops   int `json:"ops"`
	Procs int `json:"procs"`
	// K is the tolerated failure count (0 for basic). Certify cases request
	// a certificate for the same K the schedule was built for.
	K int `json:"k"`
	// Workers is the certifier's worker-pool bound (certify cases only;
	// 0 or 1 is sequential). Not part of the case name: the verdict is
	// identical at any worker count, only the timing moves.
	Workers int `json:"workers,omitempty"`
	// Engine selects the simulator implementation for sim cases: "compiled"
	// (the Model/Runner path) or "legacy" (the per-call map-walking path).
	// Not part of the case name: BENCH_sim.json and BENCH_sim_baseline.json
	// hold the same case names so they gate against each other.
	Engine string `json:"engine,omitempty"`
	// Scenarios is the sweep length of a sim case (identical for both
	// engines; also excluded from the name).
	Scenarios int `json:"scenarios,omitempty"`
}

// Name returns the case's stable identifier, used to match baseline entries.
func (c Case) Name() string {
	name := fmt.Sprintf("%s/%s/%dx%d/k%d", c.Heuristic, c.Arch, c.Ops, c.Procs, c.K)
	if c.Kind != "" {
		name = c.Kind + "/" + name
	}
	return name
}

// Result is one timed case.
type Result struct {
	Case
	// Seconds is the best wall-clock scheduling time over the measured runs.
	Seconds float64 `json:"seconds"`
	// Runs is how many times the case was timed (Seconds is the minimum).
	Runs int `json:"runs"`
	// Makespan and the slot counts identify the schedule produced, so a
	// baseline diff also reveals behavioral drift, not just timing drift.
	Makespan     float64 `json:"makespan"`
	OpSlots      int     `json:"op_slots"`
	ActiveComms  int     `json:"active_comms"`
	PassiveComms int     `json:"passive_comms"`
	// AllocsPerRun and BytesPerRun are the heap allocation count and byte
	// volume of one uninstrumented run (runtime.MemStats deltas around a
	// single schedule/certify call, measured outside the timing loop). They
	// are gated like Seconds: a 2x allocation regression fails Compare even
	// when wall-clock noise hides it.
	AllocsPerRun uint64 `json:"allocs_per_run,omitempty"`
	BytesPerRun  uint64 `json:"bytes_per_run,omitempty"`
	// Counters is the engine's observability snapshot (cache hits,
	// invalidations, gap-memo hits, evaluations — see internal/obs) from one
	// instrumented run of the case. The timed runs above execute with
	// observability disabled; this extra run explains *why* Seconds moved
	// between two reports, not just that it moved.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Certify identifies the verdict of a certify case, so a baseline diff
	// also reveals certification drift.
	Certify *CertifyResult `json:"certify,omitempty"`
	// Sim identifies the aggregate outcome of a sim case's scenario sweep.
	// The compiled and legacy engines replay the identical sweep, so any
	// difference between BENCH_sim.json and BENCH_sim_baseline.json here is
	// an engine divergence, not noise.
	Sim *SimResult `json:"sim,omitempty"`
}

// SimResult is the outcome identity of a sim case: totals over the sweep.
type SimResult struct {
	Scenarios       int     `json:"scenarios"`
	Iterations      int64   `json:"iterations"`
	Incomplete      int64   `json:"incomplete"`
	Messages        int64   `json:"messages"`
	Timeouts        int64   `json:"timeouts"`
	FalseDetections int64   `json:"false_detections"`
	SumResponse     float64 `json:"sum_response"`
	WorstResponse   float64 `json:"worst_response"`
}

// CertifyResult is the verdict identity of a certify case.
type CertifyResult struct {
	Certified       bool    `json:"certified"`
	WorstBound      float64 `json:"worst_bound"`
	PatternsChecked int     `json:"patterns_checked"`
}

// Report is a full harness run, the schema of BENCH_sched.json.
type Report struct {
	// Tier names the case set that was run.
	Tier string `json:"tier"`
	// Results holds one entry per case, in tier order.
	Results []Result `json:"results"`
}

// Tiers returns the known tier names.
func Tiers() []string { return []string{"small", "full", "certify", "sim", "sim-legacy"} }

// Tier returns the case set for a tier name.
//
//   - small: 100 ops on 4 and 8 processors — fast enough for a CI smoke job.
//   - full: the size sweep 100x4, 100x8, 400x8, 1000x16 — the perf
//     trajectory recorded in BENCH_sched.json.
//   - certify: the K-fault certifier on fault-tolerant schedules, sweeping
//     the frontier size (K=1..3, C(P,K) up to 220 patterns) across bus and
//     p2p — the trajectory recorded in BENCH_certify.json.
//   - sim: the compiled simulator (Model/Runner) timing a deterministic
//     scenario sweep per case — the trajectory recorded in BENCH_sim.json.
//   - sim-legacy: the identical sweep through the legacy per-call simulator,
//     recorded in BENCH_sim_baseline.json; gating sim against it bounds the
//     compiled engine at 2x the legacy time (it runs at a fraction of it).
//
// The scheduler tiers cross bus and point-to-point architectures with all
// three heuristics (K=1 for the fault-tolerant ones).
func Tier(name string) ([]Case, error) {
	var sizes [][2]int
	switch name {
	case "small":
		sizes = [][2]int{{100, 4}, {100, 8}}
	case "full":
		// A superset of small, so the CI smoke run can gate every one of
		// its cases against the committed full-tier baseline.
		sizes = [][2]int{{100, 4}, {100, 8}, {400, 8}, {1000, 16}}
	case "sim":
		return simCases("compiled"), nil
	case "sim-legacy":
		return simCases("legacy"), nil
	case "certify":
		return []Case{
			{Kind: "certify", Heuristic: "ft1", Arch: "bus", Ops: 100, Procs: 8, K: 1},
			{Kind: "certify", Heuristic: "ft1", Arch: "bus", Ops: 100, Procs: 16, K: 2},
			{Kind: "certify", Heuristic: "ft1", Arch: "p2p", Ops: 100, Procs: 16, K: 2},
			{Kind: "certify", Heuristic: "ft1", Arch: "bus", Ops: 60, Procs: 12, K: 3},
			{Kind: "certify", Heuristic: "ft2", Arch: "p2p", Ops: 60, Procs: 8, K: 2},
		}, nil
	default:
		return nil, fmt.Errorf("benchrun: unknown tier %q (want small, full, certify, sim, or sim-legacy)", name)
	}
	var cases []Case
	for _, sz := range sizes {
		for _, arch := range []string{"bus", "p2p"} {
			for _, h := range []string{"basic", "ft1", "ft2"} {
				k := 1
				if h == "basic" {
					k = 0
				}
				cases = append(cases, Case{Heuristic: h, Arch: arch, Ops: sz[0], Procs: sz[1], K: k})
			}
		}
	}
	return cases, nil
}

// heuristicOf maps a case's heuristic name to the core dispatcher's constant.
func heuristicOf(name string) (core.Heuristic, error) {
	switch name {
	case "basic":
		return core.Basic, nil
	case "ft1":
		return core.FT1, nil
	case "ft2":
		return core.FT2, nil
	default:
		return 0, fmt.Errorf("benchrun: unknown heuristic %q", name)
	}
}

// instance draws the deterministic workload for a case.
func instance(c Case) (*workload.Instance, error) {
	seed := int64(c.Ops*100 + c.Procs)
	return workload.RandomInstance(rand.New(rand.NewSource(seed)), c.Ops, c.Procs, c.Arch == "bus", 0.8)
}

// Run times every case and returns the report. Cases finishing under a
// second are re-timed up to three times and the minimum kept, damping
// scheduler and allocator noise on small instances. Progress lines go to log
// when non-nil.
func Run(tier string, cases []Case, log io.Writer) (*Report, error) {
	rep := &Report{Tier: tier}
	for _, c := range cases {
		if c.Kind == "sim" {
			rr, err := runSim(c)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, *rr)
			if log != nil {
				fmt.Fprintf(log, "%-30s %10.4fs  (runs %d, %s engine, %d scenarios, %d allocs)\n",
					c.Name(), rr.Seconds, rr.Runs, c.Engine, c.Scenarios, rr.AllocsPerRun)
			}
			continue
		}
		if c.Kind == "certify" {
			rr, err := runCertify(c)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, *rr)
			if log != nil {
				fmt.Fprintf(log, "%-30s %10.4fs  (runs %d, patterns %d, worst %.6g)\n",
					c.Name(), rr.Seconds, rr.Runs, rr.Certify.PatternsChecked, rr.Certify.WorstBound)
			}
			continue
		}
		h, err := heuristicOf(c.Heuristic)
		if err != nil {
			return nil, err
		}
		in, err := instance(c)
		if err != nil {
			return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
		}
		var (
			best    time.Duration
			res     *core.Result
			runs    int
			elapsed time.Duration
		)
		for runs = 0; runs < 3; runs++ {
			start := time.Now() //ftlint:allow-nondet the bench harness measures wall-clock by design; timings never feed back into a schedule
			r, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, c.K, core.Options{})
			d := time.Since(start) //ftlint:allow-nondet wall-clock measurement of the run above, reported not scheduled
			if err != nil {
				return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
			}
			if runs == 0 || d < best {
				best, res = d, r
			}
			if elapsed += d; elapsed > time.Second {
				runs++
				break
			}
		}
		// One extra uninstrumented run, outside the timing loop, measures
		// allocation behavior; a second, instrumented one records the engine
		// counters so the report explains its own numbers.
		allocs, bytes, err := measureAllocs(func() error {
			_, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, c.K, core.Options{})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("benchrun: %s: alloc run: %w", c.Name(), err)
		}
		sink := obs.NewSink()
		if _, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, c.K, core.Options{Obs: sink}); err != nil {
			return nil, fmt.Errorf("benchrun: %s: instrumented run: %w", c.Name(), err)
		}
		rr := Result{
			Case:         c,
			Seconds:      best.Seconds(),
			Runs:         runs,
			Makespan:     res.Schedule.Makespan(),
			OpSlots:      res.Schedule.NumOpSlots(),
			ActiveComms:  res.Schedule.NumActiveComms(),
			PassiveComms: res.Schedule.NumPassiveComms(),
			AllocsPerRun: allocs,
			BytesPerRun:  bytes,
			Counters:     sink.Snapshot(),
		}
		rep.Results = append(rep.Results, rr)
		if log != nil {
			fmt.Fprintf(log, "%-30s %10.4fs  (runs %d, makespan %.6g)\n", c.Name(), rr.Seconds, rr.Runs, rr.Makespan)
		}
	}
	return rep, nil
}

// runCertify times one certify case: the schedule is built untimed with the
// case's heuristic, then the certifier is timed on it (best of up to three
// runs within a one-second budget, like the scheduler cases), plus one
// instrumented run recording the engine counters.
func runCertify(c Case) (*Result, error) {
	h, err := heuristicOf(c.Heuristic)
	if err != nil {
		return nil, err
	}
	in, err := instance(c)
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
	}
	res, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, c.K, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
	}
	opts := certify.Options{Workers: c.Workers}
	var (
		best    time.Duration
		v       *certify.Verdict
		runs    int
		elapsed time.Duration
	)
	for runs = 0; runs < 3; runs++ {
		start := time.Now() //ftlint:allow-nondet the bench harness measures wall-clock by design; timings never feed back into a schedule
		cv, err := certify.CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, c.K, opts)
		d := time.Since(start) //ftlint:allow-nondet wall-clock measurement of the run above, reported not scheduled
		if err != nil {
			return nil, fmt.Errorf("benchrun: %s: %w", c.Name(), err)
		}
		if runs == 0 || d < best {
			best, v = d, cv
		}
		if elapsed += d; elapsed > time.Second {
			runs++
			break
		}
	}
	allocs, bytes, err := measureAllocs(func() error {
		_, err := certify.CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, c.K, opts)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: alloc run: %w", c.Name(), err)
	}
	sink := obs.NewSink()
	iopts := opts
	iopts.Obs = sink
	if _, err := certify.CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, c.K, iopts); err != nil {
		return nil, fmt.Errorf("benchrun: %s: instrumented run: %w", c.Name(), err)
	}
	return &Result{
		Case:         c,
		Seconds:      best.Seconds(),
		Runs:         runs,
		Makespan:     res.Schedule.Makespan(),
		OpSlots:      res.Schedule.NumOpSlots(),
		ActiveComms:  res.Schedule.NumActiveComms(),
		PassiveComms: res.Schedule.NumPassiveComms(),
		AllocsPerRun: allocs,
		BytesPerRun:  bytes,
		Counters:     sink.Snapshot(),
		Certify: &CertifyResult{
			Certified:       v.Certified,
			WorstBound:      v.WorstBound,
			PatternsChecked: v.PatternsChecked,
		},
	}, nil
}

// measureAllocs runs f once and returns the heap allocation count and byte
// volume it caused, from runtime.MemStats deltas. Mallocs and TotalAlloc are
// monotonic, so no GC is forced; background allocation in a quiet benchmark
// process is negligible against the floors used by the gate.
func measureAllocs(f func() error) (allocs, bytes uint64, err error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := f(); err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a report written by WriteFile.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	return &r, nil
}

// Deltas returns one human-readable line per case of cur, comparing it
// against the same-named case of base: timing ratio plus any behavioral
// drift (makespan or slot-count changes). Cases absent from the baseline are
// flagged as new. The caller prints these before gating on Compare, so a
// tripped gate still shows the full per-case picture.
func Deltas(cur, base *Report) []string {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name()] = r
	}
	out := make([]string, 0, len(cur.Results))
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name()]
		if !ok {
			out = append(out, fmt.Sprintf("%-30s %10.4fs  (new case, no baseline)", r.Name(), r.Seconds))
			continue
		}
		ref := b.Seconds
		if ref < floorSeconds {
			ref = floorSeconds
		}
		line := fmt.Sprintf("%-30s %10.4fs  baseline %10.4fs  %5.2fx", r.Name(), r.Seconds, b.Seconds, r.Seconds/ref)
		if r.AllocsPerRun > 0 && b.AllocsPerRun > 0 {
			line += fmt.Sprintf("  allocs %d vs %d", r.AllocsPerRun, b.AllocsPerRun)
		}
		if r.Makespan != b.Makespan || r.OpSlots != b.OpSlots ||
			r.ActiveComms != b.ActiveComms || r.PassiveComms != b.PassiveComms {
			line += "  [behavioral drift]"
		}
		if (r.Certify == nil) != (b.Certify == nil) {
			line += "  [certify drift]"
		} else if r.Certify != nil && *r.Certify != *b.Certify {
			line += "  [certify drift]"
		}
		if (r.Sim == nil) != (b.Sim == nil) {
			line += "  [sim drift]"
		} else if r.Sim != nil && *r.Sim != *b.Sim {
			line += "  [sim drift]"
		}
		out = append(out, line)
		out = append(out, counterDeltas(r.Counters, b.Counters)...)
	}
	return out
}

// counterDeltas renders one indented line per engine counter whose value
// moved between two runs of a case, so a timing delta comes with the cause
// (more evaluations, fewer cache hits, a bigger dirty cone) attached.
func counterDeltas(cur, base map[string]int64) []string {
	if len(cur) == 0 || len(base) == 0 {
		return nil // an uninstrumented side would make every counter a delta
	}
	keys := make([]string, 0, len(cur)+len(base))
	for k := range cur { //ftlint:order-insensitive key-set union; the merged slice is sorted before use
		keys = append(keys, k)
	}
	for k := range base {
		if _, ok := cur[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		if cur[k] == base[k] {
			continue
		}
		out = append(out, fmt.Sprintf("    counter %-32s %12d  baseline %12d", k, cur[k], base[k]))
	}
	return out
}

// floorSeconds guards the regression ratio against timer noise: cases faster
// than this in the baseline are compared as if they took this long.
const floorSeconds = 0.05

// floorAllocs guards the allocation ratio the same way: baselines below this
// many allocations (or the byte equivalent) are clamped, so a handful of
// extra allocations on a near-zero-alloc case cannot trip the gate.
const (
	floorAllocs = 10_000
	floorBytes  = 1 << 20 // 1 MiB
)

// Compare fails when any case of cur is more than factor times slower than
// the same case in base, or allocates more than factor times the baseline's
// allocation count or byte volume. Cases absent from the baseline are ignored
// (new cases have no reference); sub-floor baseline values are clamped so
// jitter on tiny instances cannot trip the gate. Allocation gating only
// applies when both reports carry allocation measurements.
func Compare(cur, base *Report, factor float64) error {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name()] = r
	}
	var regressions []string
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name()]
		if !ok {
			continue
		}
		ref := b.Seconds
		if ref < floorSeconds {
			ref = floorSeconds
		}
		if r.Seconds > factor*ref {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.4fs vs baseline %.4fs (%.1fx > %.1fx allowed)",
					r.Name(), r.Seconds, b.Seconds, r.Seconds/ref, factor))
		}
		if r.AllocsPerRun > 0 && b.AllocsPerRun > 0 {
			refA := b.AllocsPerRun
			if refA < floorAllocs {
				refA = floorAllocs
			}
			if float64(r.AllocsPerRun) > factor*float64(refA) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %d allocs/run vs baseline %d (%.1fx > %.1fx allowed)",
						r.Name(), r.AllocsPerRun, b.AllocsPerRun, float64(r.AllocsPerRun)/float64(refA), factor))
			}
			refB := b.BytesPerRun
			if refB < floorBytes {
				refB = floorBytes
			}
			if float64(r.BytesPerRun) > factor*float64(refB) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %d bytes/run vs baseline %d (%.1fx > %.1fx allowed)",
						r.Name(), r.BytesPerRun, b.BytesPerRun, float64(r.BytesPerRun)/float64(refB), factor))
			}
		}
	}
	if len(regressions) > 0 {
		sort.Strings(regressions)
		return fmt.Errorf("benchrun: performance regression:\n  %s", joinLines(regressions))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
