package core

import (
	"math"

	"ftsched/internal/sched"
)

// opRec is one scheduled operation replica in the arena: the dense mirror of
// sched.OpSlot. Records are appended in commit order and never removed;
// st.reps and st.repOn address them by arena index.
type opRec struct {
	start, end float64
	op         int32
	proc       int32
	replica    int32
}

// commRec is one communication hop in the arena: the dense mirror of
// sched.CommSlot. to and dst are -1 where the slot has no hop destination or
// final destination (bus broadcasts), matching the empty strings of the
// materialized slot.
type commRec struct {
	start, end, timeout float64
	edge                int32
	link                int32
	from, to            int32
	src, dst            int32
	rank                int32
	transferID          int32
	hop                 int32
	passive             bool
	broadcast           bool
}

// schedState is the structure-of-arrays schedule under construction: flat
// arenas for the committed op and comm slots plus dense lookup tables for
// everything the old builder kept in string-keyed maps (processor frontiers,
// link occupancy, replica sets, committed deliveries/sends/broadcasts,
// passive-chain completion). Absent float entries are NaN — schedule dates
// are always finite, so NaN is a free sentinel and the presence test is one
// IsNaN instead of a map probe.
//
// Concurrency discipline (the copy-on-write contract of DESIGN.md §13):
// evaluations — including the parallel worker pool — read this state but
// never write it; their tentative placements live entirely in per-evaluation
// evalCtx overlays (the gap memo). Every mutating method bumps mutEpoch, and
// the builder asserts the epoch is unchanged across each evaluation batch,
// so a write sneaking into the read-only phase is caught as a hard error
// instead of a silent race.
type schedState struct {
	nProcs, nLinks int32

	ops   []opRec
	comms []commRec

	// procFree[proc] is the processor's frontier: the end of its last slot.
	procFree []float64
	// linkBusy[link] is the link's sorted active-transfer occupancy with its
	// block-indexed gap accelerator.
	linkBusy []occupancy

	// reps[op] lists op's replicas as arena indices in rank order; the
	// chunks are carved out of repsArena (one allocation for the whole run).
	reps      [][]int32
	repsArena []int32
	// repOn[op*nProcs+proc] is the arena index of op's replica on proc, -1
	// when none.
	repOn []int32

	// deliv[edge*nProcs+proc] is the committed point-to-point delivery date
	// of edge's value on proc (Basic and FT1); NaN = not delivered.
	deliv []float64
	// sent[(edge*nProcs+src)*nProcs+dst] is the committed FT2 transfer
	// arrival from a sender processor to a destination; NaN = not sent.
	sent []float64
	// bcastEnd[edge*nLinks+bus] is the end date of the committed FT1 bus
	// broadcast; NaN = not broadcast.
	bcastEnd []float64
	// passBus[edge*nLinks+bus] / passDst[edge*nProcs+dst] record that the
	// FT1 passive backup chain for the edge has been committed on that bus /
	// toward that destination.
	passBus []bool
	passDst []bool

	nextTransfer int32
	mutEpoch     uint64
}

// newSchedState allocates the arenas and tables for a run of the given mode.
// Mode-specific tables (deliv, sent, bcastEnd, passive markers) are only
// allocated where the mode's communication scheme uses them.
func newSchedState(m *model, mode sched.Mode, k int) *schedState {
	repl := k + 1
	st := &schedState{
		nProcs:    m.nProcs,
		nLinks:    m.nLinks,
		ops:       make([]opRec, 0, int(m.nOps)*repl),
		procFree:  make([]float64, m.nProcs),
		linkBusy:  make([]occupancy, m.nLinks),
		reps:      make([][]int32, m.nOps),
		repsArena: make([]int32, 0, int(m.nOps)*repl),
		repOn:     make([]int32, int(m.nOps)*int(m.nProcs)),
	}
	for i := range st.repOn {
		st.repOn[i] = -1
	}
	nanFill := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = math.NaN()
		}
		return v
	}
	switch mode {
	case sched.ModeBasic:
		st.deliv = nanFill(int(m.nEdges) * int(m.nProcs))
	case sched.ModeFT1:
		st.deliv = nanFill(int(m.nEdges) * int(m.nProcs))
		st.bcastEnd = nanFill(int(m.nEdges) * int(m.nLinks))
		st.passBus = make([]bool, int(m.nEdges)*int(m.nLinks))
		st.passDst = make([]bool, int(m.nEdges)*int(m.nProcs))
	case sched.ModeFT2:
		st.sent = nanFill(int(m.nEdges) * int(m.nProcs) * int(m.nProcs))
	}
	return st
}

// appendOp commits one operation replica and returns its arena index.
func (st *schedState) appendOp(r opRec) int32 {
	st.mutEpoch++
	st.ops = append(st.ops, r)
	return int32(len(st.ops) - 1)
}

// appendComm commits one communication hop.
func (st *schedState) appendComm(r commRec) {
	st.mutEpoch++
	st.comms = append(st.comms, r)
}

// newTransferID allocates a fresh transfer identifier, in the same sequence
// the materialized schedule will expose.
func (st *schedState) newTransferID() int32 {
	st.mutEpoch++
	id := st.nextTransfer
	st.nextTransfer++
	return id
}

// occupy records an active transfer on link.
func (st *schedState) occupy(link int32, start, end float64) {
	st.mutEpoch++
	st.linkBusy[link].insert(start, end)
}

// claimReps carves op's replica chunk (n arena indices, filled by the commit
// loop) out of the shared arena and installs it as st.reps[op].
func (st *schedState) claimReps(op int32, n int) []int32 {
	st.mutEpoch++
	off := len(st.repsArena)
	for i := 0; i < n; i++ {
		st.repsArena = append(st.repsArena, -1)
	}
	chunk := st.repsArena[off : off+n : off+n]
	st.reps[op] = chunk
	return chunk
}

// setDeliv records the committed delivery date of edge e's value on proc.
func (st *schedState) setDeliv(e, proc int32, t float64) {
	st.mutEpoch++
	st.deliv[e*st.nProcs+proc] = t
}

// setSent records the committed FT2 arrival of e from src to dst.
func (st *schedState) setSent(e, src, dst int32, t float64) {
	st.mutEpoch++
	st.sent[(e*st.nProcs+src)*st.nProcs+dst] = t
}

// setBcast records the end date of the committed FT1 broadcast of e on bus.
func (st *schedState) setBcast(e, bus int32, t float64) {
	st.mutEpoch++
	st.bcastEnd[e*st.nLinks+bus] = t
}

// markPassBus records that e's passive chain on bus has been committed.
func (st *schedState) markPassBus(e, bus int32) {
	st.mutEpoch++
	st.passBus[e*st.nLinks+bus] = true
}

// markPassDst records that e's point-to-point passive chain toward dst has
// been committed.
func (st *schedState) markPassDst(e, dst int32) {
	st.mutEpoch++
	st.passDst[e*st.nProcs+dst] = true
}
