package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/pressure"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// instruments holds the builder's pre-resolved observability counters and
// its span sink. The zero value (all nil) is the disabled state: every
// counter hit is a nil check, every span a nil-receiver no-op, so the
// schedule and its timing are unaffected when Options.Obs is unset.
// Counters are atomic, so the evaluation worker pool increments them
// concurrently without coordination.
type instruments struct {
	sink        *obs.Sink
	steps       *obs.Counter // greedy scheduling steps committed
	evals       *obs.Counter // candidate evaluations performed (mSn.1)
	cacheHits   *obs.Counter // evaluations reused from the cross-step cache
	cacheInval  *obs.Counter // cached evaluations discarded as stale
	gapSearches *obs.Counter // earliestGap runs, memoized or not
	gapHits     *obs.Counter // gap searches answered by the per-eval memo
	poolBatches *obs.Counter // worker-pool dispatches (one per stale batch)
	poolEvals   *obs.Counter // evaluations executed on the pool
	poolWorkers *obs.Counter // workers engaged, summed over batches
}

// resolve registers the builder's counters on the sink (no-op when nil).
func (in *instruments) resolve(s *obs.Sink) {
	if s == nil {
		return
	}
	in.sink = s
	in.steps = s.Counter("core.steps")
	in.evals = s.Counter("core.evals")
	in.cacheHits = s.Counter("core.cache.hits")
	in.cacheInval = s.Counter("core.cache.invalidations")
	in.gapSearches = s.Counter("core.gap.searches")
	in.gapHits = s.Counter("core.gap.memo.hits")
	in.poolBatches = s.Counter("core.pool.batches")
	in.poolEvals = s.Counter("core.pool.evals")
	in.poolWorkers = s.Counter("core.pool.workers")
}

// eps absorbs float64 noise when comparing schedule dates.
const eps = 1e-9

// interval is a busy window on a link, part of a sorted, non-overlapping set.
type interval struct {
	start, end float64
}

// earliestGap returns the earliest date >= ready at which a transfer of
// duration dur fits into the free gaps of busy (sorted by start).
//
// Intervals are non-overlapping (every occupancy comes from a previous gap
// search), so their end dates are sorted too and the scan can start at the
// first interval still ending after ready; everything before it neither
// blocks the window nor advances t. The backup loop guards against
// eps-scale end-date inversions introduced by tolerant gap fits.
func earliestGap(busy []interval, ready, dur float64) float64 {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].end > ready })
	for i > 0 && busy[i-1].end > ready {
		i--
	}
	t := ready
	for _, iv := range busy[i:] {
		if iv.start-t >= dur-eps {
			return t
		}
		if iv.end > t {
			t = iv.end
		}
	}
	return t
}

// insertInterval adds [start,end) keeping the slice sorted by start.
func insertInterval(busy []interval, start, end float64) []interval {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].start >= start })
	busy = append(busy, interval{})
	copy(busy[i+1:], busy[i:])
	busy[i] = interval{start: start, end: end}
	return busy
}

// delivKey identifies a committed delivery of an edge's value to a processor
// (basic and FT1 point-to-point deliveries).
type delivKey struct {
	edge graph.EdgeKey
	proc string
}

// sentKey identifies a committed FT2 transfer from a specific sender
// processor to a destination processor.
type sentKey struct {
	edge     graph.EdgeKey
	src, dst string
}

// bcKey identifies a committed FT1 bus broadcast.
type bcKey struct {
	edge graph.EdgeKey
	src  string
	bus  string
}

// passKey identifies a committed FT1 passive backup chain, one per bus or
// per point-to-point destination.
type passKey struct {
	edge graph.EdgeKey
	bus  string // bus name, or "" for a point-to-point chain
	dst  string // destination proc for point-to-point chains, else ""
}

// hopPlan is a tentatively routed hop, committed only if the evaluation is
// selected.
type hopPlan struct {
	link     string
	from, to string
	start    float64
	end      float64
}

// linkSet tracks which links' occupancy an evaluation consulted.
type linkSet map[string]struct{}

// gapKey identifies one gap search against a link's (immutable during
// evaluation) busy list; equal keys yield equal results.
type gapKey struct {
	link       string
	ready, dur float64
}

// evalCtx is the per-evaluation scratch state: the links consulted (for
// cache invalidation) and a memo of gap searches. Within one evaluation the
// link occupancies are frozen, so a gap search is a pure function of its key
// — in FT1 on a bus, every destination processor of an uncommitted
// broadcast repeats the exact same search, which the memo collapses. A nil
// ctx (the commit path) disables both: occupancies mutate between commits.
type evalCtx struct {
	links linkSet
	gaps  map[gapKey]float64
}

func newEvalCtx() *evalCtx {
	return &evalCtx{links: make(linkSet), gaps: make(map[gapKey]float64)}
}

// gapSearch runs earliestGap through the evaluation memo (when present) and
// records the link dependency.
func (b *builder) gapSearch(ctx *evalCtx, link string, ready, dur float64) float64 {
	b.ins.gapSearches.Inc()
	if ctx == nil {
		return earliestGap(b.linkBusy[link], ready, dur)
	}
	ctx.links[link] = struct{}{}
	k := gapKey{link: link, ready: ready, dur: dur}
	if v, ok := ctx.gaps[k]; ok {
		b.ins.gapHits.Inc()
		return v
	}
	v := earliestGap(b.linkBusy[link], ready, dur)
	ctx.gaps[k] = v
	return v
}

// cachedEval is one candidate's evaluation carried across steps, with the
// links whose busy sets it depends on (its processors are the static allowed
// set, so they are not recorded per evaluation).
type cachedEval struct {
	ev    evaluation
	links linkSet
}

// builder holds the mutable state of one scheduling run.
type builder struct {
	g    *graph.Graph
	a    *arch.Architecture
	sp   *spec.Spec
	pt   *pressure.Table
	opts Options
	mode sched.Mode
	k    int

	s        *sched.Schedule
	reps     map[string][]*sched.OpSlot  // replicas per op, rank order
	repOn    map[[2]string]*sched.OpSlot // (op, proc) -> replica
	procFree map[string]float64
	linkBusy map[string][]interval
	deliv    map[delivKey]float64
	sent     map[sentKey]float64
	bcast    map[bcKey]*sched.CommSlot
	passDone map[passKey]float64 // worst-case end of the committed chain

	// Static per-run tables, filled by newBuilder.
	allowed map[string][]string // op -> allowed processors, declaration order
	ordIdx  map[string]int      // op -> declaration index
	workers int

	// Incremental engine state (see DESIGN.md §8): the ready candidates in
	// declaration order, the count of unscheduled strict predecessors per
	// operation, the evaluations carried over from earlier steps, and the
	// processors/links dirtied by the latest commit.
	cands        []string
	pendingPreds map[string]int
	evalCache    map[string]*cachedEval
	touchedProcs map[string]struct{}
	touchedLinks map[string]struct{}

	rng     randSource
	trace   []StepTrace
	minRepl int
	ins     instruments
}

// randSource is the subset of *rand.Rand the builder needs; nil means
// deterministic first-declared tie-breaking.
type randSource interface {
	Intn(n int) int
}

func newBuilder(g *graph.Graph, a *arch.Architecture, sp *spec.Spec, mode sched.Mode, k int, opts Options) (*builder, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := sp.Validate(g, a); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pt, err := pressure.Compute(g, sp)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Warm the routing and shared-bus tables now: evaluations may run on a
	// worker pool and must only perform read-only lookups on the
	// architecture.
	a.Precompute()
	b := &builder{
		g: g, a: a, sp: sp, pt: pt, opts: opts, mode: mode, k: k,
		s:            sched.New(mode, k),
		reps:         make(map[string][]*sched.OpSlot, g.NumOps()),
		repOn:        make(map[[2]string]*sched.OpSlot),
		procFree:     make(map[string]float64, a.NumProcessors()),
		linkBusy:     make(map[string][]interval, a.NumLinks()),
		deliv:        make(map[delivKey]float64),
		sent:         make(map[sentKey]float64),
		bcast:        make(map[bcKey]*sched.CommSlot),
		passDone:     make(map[passKey]float64),
		allowed:      make(map[string][]string, g.NumOps()),
		ordIdx:       make(map[string]int, g.NumOps()),
		pendingPreds: make(map[string]int, g.NumOps()),
		evalCache:    make(map[string]*cachedEval),
		touchedProcs: make(map[string]struct{}),
		touchedLinks: make(map[string]struct{}),
		minRepl:      math.MaxInt,
	}
	procs := a.ProcessorNames()
	for i, op := range g.OpNames() {
		b.ordIdx[op] = i
		var allowed []string
		for _, p := range procs {
			if sp.CanRun(op, p) {
				allowed = append(allowed, p)
			}
		}
		b.allowed[op] = allowed
		b.pendingPreds[op] = len(g.StrictPreds(op))
		if b.pendingPreds[op] == 0 {
			b.cands = append(b.cands, op)
		}
	}
	b.workers = opts.Workers
	if b.workers <= 0 {
		b.workers = runtime.GOMAXPROCS(0)
	}
	if r := opts.rng(); r != nil {
		b.rng = r
	}
	b.ins.resolve(opts.Obs)
	return b, nil
}

// allowedProcs returns, in architecture declaration order, the processors
// able to run op (precomputed by newBuilder).
func (b *builder) allowedProcs(op string) []string { return b.allowed[op] }

// replication returns the number of replicas to place for op, or an error
// when the constraints cannot support the requested fault tolerance.
func (b *builder) replication(op string) (int, error) {
	allowed := len(b.allowed[op])
	if allowed == 0 {
		return 0, fmt.Errorf("%w: operation %q has no allowed processor", ErrInfeasible, op)
	}
	if b.mode == sched.ModeBasic {
		return 1, nil
	}
	want := b.k + 1
	if allowed < want {
		if !b.opts.AllowDegraded {
			return 0, fmt.Errorf("%w: operation %q can run on %d processors, %d needed to tolerate %d failures (set AllowDegraded to proceed)",
				ErrInfeasible, op, allowed, want, b.k)
		}
		return allowed, nil
	}
	return want, nil
}

// occupyLink records an active transfer on link and marks the link dirty for
// the incremental evaluation cache.
func (b *builder) occupyLink(link string, start, end float64) {
	b.linkBusy[link] = insertInterval(b.linkBusy[link], start, end)
	b.touchedLinks[link] = struct{}{}
}

// planRoute tentatively schedules the transfer of e from src to dst with the
// data ready at the source at date ready. It performs gap search against the
// current link occupancy but commits nothing. The links consulted are
// recorded in ctx (when non-nil) so cached evaluations can be invalidated
// once those links change.
func (b *builder) planRoute(e graph.EdgeKey, src, dst string, ready float64, ctx *evalCtx) (float64, []hopPlan, error) {
	route, err := b.a.Route(src, dst)
	if err != nil {
		return 0, nil, err
	}
	plans := make([]hopPlan, 0, len(route))
	at, t := src, ready
	for _, h := range route {
		dur, err := b.sp.Comm(e, h.Link)
		if err != nil {
			return 0, nil, err
		}
		start := b.gapSearch(ctx, h.Link, t, dur)
		plans = append(plans, hopPlan{link: h.Link, from: at, to: h.To, start: start, end: start + dur})
		t = start + dur
		at = h.To
	}
	return t, plans, nil
}

// commitPlans records the hops of one transfer and, for active transfers,
// occupies the links.
func (b *builder) commitPlans(e graph.EdgeKey, src, dst string, senderRank int, plans []hopPlan, passive bool, timeout float64) {
	id := b.s.NewTransferID()
	for i, h := range plans {
		slot := sched.CommSlot{
			Edge: e, Link: h.link, From: h.from, To: h.to,
			SrcProc: src, DstProc: dst, SenderRank: senderRank,
			TransferID: id, Hop: i, Start: h.start, End: h.end,
			Passive: passive,
		}
		if passive && i == 0 {
			slot.Timeout = timeout
		}
		b.s.AddCommSlot(slot)
		if !passive {
			b.occupyLink(h.link, h.start, h.end)
		}
	}
}

// arrival returns the failure-free availability date of edge e's value on
// dstProc under the builder's mode. With commit set, any missing transfers
// (and, in FT1, the passive backup chains) are recorded in the schedule.
func (b *builder) arrival(e graph.EdgeKey, dstProc string, commit bool, ctx *evalCtx) (float64, error) {
	switch b.mode {
	case sched.ModeBasic:
		return b.basicArrival(e, dstProc, commit, ctx)
	case sched.ModeFT1:
		return b.ft1Arrival(e, dstProc, commit, ctx)
	case sched.ModeFT2:
		return b.ft2Arrival(e, dstProc, commit, ctx)
	default:
		return 0, fmt.Errorf("core: unknown mode %v", b.mode)
	}
}

func (b *builder) basicArrival(e graph.EdgeKey, dstProc string, commit bool, ctx *evalCtx) (float64, error) {
	main := b.mainOf(e.Src)
	if main == nil {
		return 0, fmt.Errorf("core: predecessor %q of %q not scheduled", e.Src, e.Dst)
	}
	if main.Proc == dstProc {
		return main.End, nil
	}
	if d, ok := b.deliv[delivKey{edge: e, proc: dstProc}]; ok {
		return d, nil
	}
	t, plans, err := b.planRoute(e, main.Proc, dstProc, main.End, ctx)
	if err != nil {
		return 0, err
	}
	if commit {
		b.commitPlans(e, main.Proc, dstProc, 0, plans, false, 0)
		b.deliv[delivKey{edge: e, proc: dstProc}] = t
	}
	return t, nil
}

// ft1Arrival implements the first solution's communication scheme: the main
// replica of the producer sends once (a broadcast on a shared bus, a routed
// transfer otherwise); backup replicas get passive, timeout-guarded
// reservations committed alongside the active transfer.
func (b *builder) ft1Arrival(e graph.EdgeKey, dstProc string, commit bool, ctx *evalCtx) (float64, error) {
	if rep := b.repOn[[2]string{e.Src, dstProc}]; rep != nil {
		// A replica of the producer runs here: intra-processor communication.
		return rep.End, nil
	}
	main := b.mainOf(e.Src)
	if main == nil {
		return 0, fmt.Errorf("core: predecessor %q of %q not scheduled", e.Src, e.Dst)
	}
	if bus := b.a.BusBetween(main.Proc, dstProc); bus != "" && !b.opts.NoBroadcast {
		key := bcKey{edge: e, src: main.Proc, bus: bus}
		if slot, ok := b.bcast[key]; ok {
			return slot.End, nil
		}
		dur, err := b.sp.Comm(e, bus)
		if err != nil {
			return 0, err
		}
		start := b.gapSearch(ctx, bus, main.End, dur)
		if commit {
			slot := b.s.AddCommSlot(sched.CommSlot{
				Edge: e, Link: bus, From: main.Proc, SrcProc: main.Proc,
				TransferID: b.s.NewTransferID(), Start: start, End: start + dur,
				Broadcast: true,
			})
			b.occupyLink(bus, start, start+dur)
			b.bcast[key] = slot
			if err := b.ft1PassiveChain(e, bus, "", start+dur); err != nil {
				return 0, err
			}
		}
		return start + dur, nil
	}
	if d, ok := b.deliv[delivKey{edge: e, proc: dstProc}]; ok {
		return d, nil
	}
	t, plans, err := b.planRoute(e, main.Proc, dstProc, main.End, ctx)
	if err != nil {
		return 0, err
	}
	if commit {
		b.commitPlans(e, main.Proc, dstProc, 0, plans, false, 0)
		b.deliv[delivKey{edge: e, proc: dstProc}] = t
		if err := b.ft1PassiveChain(e, "", dstProc, t); err != nil {
			return 0, err
		}
	}
	return t, nil
}

// ft1PassiveChain commits the timeout chain of Fig. 12 for edge e: for each
// backup rank of the producer, a passive reservation that activates when
// every earlier sender has been detected faulty. mainDeadline is the
// worst-case arrival date of the main replica's (active) transfer; each
// passive slot's Timeout is the deadline of the previous rank.
//
// Static dates are worst-case without re-modeling link contention after a
// failure: backup k sends at max(deadline(k-1), completion(k)) and its hops
// follow sequentially. The executive simulator recomputes actual dates.
//
// A chain that cannot be routed or costed is a hard error: silently dropping
// a backup hop would leave the schedule unable to fail over past the ranks
// already committed.
func (b *builder) ft1PassiveChain(e graph.EdgeKey, bus, dstProc string, mainDeadline float64) error {
	key := passKey{edge: e, bus: bus, dst: dstProc}
	if _, ok := b.passDone[key]; ok {
		return nil
	}
	reps := b.reps[e.Src]
	deadline := mainDeadline
	for rank := 1; rank < len(reps); rank++ {
		sender := reps[rank]
		if bus == "" && sender.Proc == dstProc {
			// The backup is colocated with the consumer: on failover the
			// value is already local, no reservation needed for this rank.
			continue
		}
		if bus != "" {
			dur, err := b.sp.Comm(e, bus)
			if err != nil {
				return fmt.Errorf("core: passive backup of %s (rank %d) on bus %q: %w", e, rank, bus, err)
			}
			start := math.Max(deadline, sender.End)
			b.s.AddCommSlot(sched.CommSlot{
				Edge: e, Link: bus, From: sender.Proc, SrcProc: sender.Proc,
				SenderRank: rank, TransferID: b.s.NewTransferID(),
				Start: start, End: start + dur,
				Passive: true, Timeout: deadline, Broadcast: true,
			})
			deadline = start + dur
			continue
		}
		route, err := b.a.Route(sender.Proc, dstProc)
		if err != nil {
			return fmt.Errorf("core: passive backup of %s (rank %d): %w", e, rank, err)
		}
		id := b.s.NewTransferID()
		at := sender.Proc
		t := math.Max(deadline, sender.End)
		timeout := deadline
		for i, h := range route {
			dur, err := b.sp.Comm(e, h.Link)
			if err != nil {
				return fmt.Errorf("core: passive backup of %s (rank %d) hop %d: %w", e, rank, i, err)
			}
			slot := sched.CommSlot{
				Edge: e, Link: h.Link, From: at, To: h.To,
				SrcProc: sender.Proc, DstProc: dstProc, SenderRank: rank,
				TransferID: id, Hop: i, Start: t, End: t + dur, Passive: true,
			}
			if i == 0 {
				slot.Timeout = timeout
			}
			b.s.AddCommSlot(slot)
			t += dur
			at = h.To
		}
		deadline = t
	}
	b.passDone[key] = deadline
	return nil
}

// ft2Arrival implements the second solution's communication scheme: every
// replica of the producer sends to dstProc, except when a replica of the
// producer already runs on dstProc, in which case the value is local and no
// transfer at all is committed for this consumer (Section 7.1).
func (b *builder) ft2Arrival(e graph.EdgeKey, dstProc string, commit bool, ctx *evalCtx) (float64, error) {
	reps := b.reps[e.Src]
	if len(reps) == 0 {
		return 0, fmt.Errorf("core: predecessor %q of %q not scheduled", e.Src, e.Dst)
	}
	for _, r := range reps {
		if r.Proc == dstProc {
			return r.End, nil
		}
	}
	best := math.Inf(1)
	for _, r := range reps {
		key := sentKey{edge: e, src: r.Proc, dst: dstProc}
		if d, ok := b.sent[key]; ok {
			if d < best {
				best = d
			}
			continue
		}
		t, plans, err := b.planRoute(e, r.Proc, dstProc, r.End, ctx)
		if err != nil {
			return 0, err
		}
		if commit {
			b.commitPlans(e, r.Proc, dstProc, r.Replica, plans, false, 0)
			b.sent[key] = t
		}
		if t < best {
			best = t
		}
	}
	return best, nil
}

// earliestStart evaluates S(n)(op, proc): the earliest date op could start
// on proc given the partial schedule, without committing anything.
func (b *builder) earliestStart(op, proc string, ctx *evalCtx) (float64, error) {
	t := b.procFree[proc]
	for _, pred := range b.g.StrictPreds(op) {
		at, err := b.arrival(graph.EdgeKey{Src: pred, Dst: op}, proc, false, ctx)
		if err != nil {
			return 0, err
		}
		if at > t {
			t = at
		}
	}
	return t, nil
}

// commitReplica schedules one replica of op on proc, committing the
// transfers that deliver its inputs.
func (b *builder) commitReplica(op, proc string, rank int) (*sched.OpSlot, error) {
	start := b.procFree[proc]
	for _, pred := range b.g.StrictPreds(op) {
		at, err := b.arrival(graph.EdgeKey{Src: pred, Dst: op}, proc, true, nil)
		if err != nil {
			return nil, err
		}
		if at > start {
			start = at
		}
	}
	d := b.sp.Exec(op, proc)
	if math.IsInf(d, 1) {
		// Never reached: proc comes from b.allowed, which keeps only CanRun
		// processors. The check turns a table bug into an error instead of
		// letting ∞ poison every later start date.
		return nil, fmt.Errorf("core: replica of %s placed on forbidden processor %s", op, proc)
	}
	slot := b.s.AddOpSlot(sched.OpSlot{Op: op, Proc: proc, Replica: rank, Start: start, End: start + d})
	b.procFree[proc] = start + d
	b.touchedProcs[proc] = struct{}{}
	b.repOn[[2]string{op, proc}] = slot
	return slot, nil
}

// mainOf returns the main replica of op from the builder's index.
func (b *builder) mainOf(op string) *sched.OpSlot {
	reps := b.reps[op]
	if len(reps) == 0 {
		return nil
	}
	return reps[0]
}

// commitDelayedEdges schedules the state-update transfers of delayed edges
// (edges into mems) once every operation is placed. They do not constrain
// intra-iteration start dates but must still deliver the next-iteration
// value to every replica of the mem.
func (b *builder) commitDelayedEdges() error {
	for _, e := range b.g.Edges() {
		if !e.Delayed() {
			continue
		}
		for _, mrep := range b.reps[e.Dst()] {
			if _, err := b.arrival(e.Key(), mrep.Proc, true, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// run executes the greedy list-scheduling loop shared by the three
// heuristics (Figs. 11 and 20).
func (b *builder) run() (*Result, error) {
	scheduled := 0
	for step := 1; len(b.cands) > 0; step++ {
		evalSpan := b.ins.sink.StartSpan("core", "evaluate")
		evals, err := b.evaluateStep()
		evalSpan.End()
		if err != nil {
			return nil, err
		}
		commitSpan := b.ins.sink.StartSpan("core", "commit")
		sel := b.selectCandidate(evals)
		chosen := evals[sel]
		var cands []string
		if b.opts.Trace {
			cands = append(cands, b.cands...)
		}
		b.retire(chosen.op)
		slots := make([]*sched.OpSlot, 0, len(chosen.kept))
		for i, pe := range chosen.kept {
			slot, err := b.commitReplica(chosen.op, pe.Proc, i)
			if err != nil {
				return nil, err
			}
			slots = append(slots, slot)
		}
		// Rank replicas by completion date: the earliest finisher is the
		// main replica, the others are backups in election order.
		sort.SliceStable(slots, func(i, j int) bool { return slots[i].End < slots[j].End })
		for i, sl := range slots {
			sl.Replica = i
		}
		b.reps[chosen.op] = slots
		if len(slots) < b.minRepl {
			b.minRepl = len(slots)
		}
		scheduled++
		b.ins.steps.Inc()
		commitSpan.End()
		if b.opts.Trace {
			st := StepTrace{
				Step:       step,
				Candidates: cands,
				Selected:   chosen.op,
				Start:      slots[0].Start,
				End:        slots[0].End,
			}
			for _, ev := range evals {
				st.Pressures = append(st.Pressures, ev.kept...)
			}
			for _, sl := range slots {
				st.Procs = append(st.Procs, sl.Proc)
			}
			b.trace = append(b.trace, st)
		}
	}
	if scheduled != b.g.NumOps() {
		return nil, fmt.Errorf("core: internal error: %d of %d operations scheduled", scheduled, b.g.NumOps())
	}
	delayedSpan := b.ins.sink.StartSpan("core", "delayed-edges")
	err := b.commitDelayedEdges()
	delayedSpan.End()
	if err != nil {
		return nil, err
	}
	if b.minRepl == math.MaxInt {
		b.minRepl = 0
	}
	if b.opts.Deadline > 0 && b.s.Makespan() > b.opts.Deadline+eps {
		return nil, fmt.Errorf("%w: makespan %g exceeds deadline %g",
			ErrDeadlineMissed, b.s.Makespan(), b.opts.Deadline)
	}
	return &Result{Schedule: b.s, MinReplication: b.minRepl, Trace: b.trace}, nil
}

// retire removes a committed operation from the candidate machinery and
// admits the successors it unblocks, keeping b.cands in declaration order
// (the order the full rescan used to produce).
func (b *builder) retire(op string) {
	delete(b.evalCache, op)
	i := sort.Search(len(b.cands), func(i int) bool { return b.ordIdx[b.cands[i]] >= b.ordIdx[op] })
	b.cands = append(b.cands[:i], b.cands[i+1:]...)
	for _, s := range b.g.StrictSuccs(op) {
		b.pendingPreds[s]--
		if b.pendingPreds[s] == 0 {
			j := sort.Search(len(b.cands), func(i int) bool { return b.ordIdx[b.cands[i]] >= b.ordIdx[s] })
			b.cands = append(b.cands, "")
			copy(b.cands[j+1:], b.cands[j:])
			b.cands[j] = s
		}
	}
}

// evaluation holds micro-step mSn.1's result for one candidate: the kept
// (processor, sigma) pairs, best first.
type evaluation struct {
	op      string
	kept    []PressureEntry
	urgency float64 // the greatest kept sigma, used at mSn.2
}

// evaluateStep runs micro-step mSn.1 for the current candidates.
//
// Unseeded runs go through the incremental engine: evaluations from earlier
// steps are reused unless the latest commit dirtied one of the candidate's
// allowed processors or one of the links its route planning consulted; only
// stale candidates are re-evaluated, on a worker pool when one is
// configured. Seeded runs fall back to the full re-evaluation of every
// candidate, because the shared tie-breaking rand stream must be consumed in
// exactly the order the original serial heuristic consumed it.
func (b *builder) evaluateStep() ([]evaluation, error) {
	if b.rng != nil {
		return b.evaluateAll(b.cands)
	}
	evals := make([]evaluation, len(b.cands))
	var todo []int
	for i, op := range b.cands {
		if ce := b.evalCache[op]; ce != nil {
			if !b.stale(op, ce) {
				evals[i] = ce.ev
				b.ins.cacheHits.Inc()
				continue
			}
			b.ins.cacheInval.Inc()
		}
		todo = append(todo, i)
	}
	for p := range b.touchedProcs {
		delete(b.touchedProcs, p)
	}
	for l := range b.touchedLinks {
		delete(b.touchedLinks, l)
	}
	if b.workers > 1 && len(todo) > 1 {
		if err := b.evaluateParallel(evals, todo); err != nil {
			return nil, err
		}
		return evals, nil
	}
	for _, i := range todo {
		ctx := newEvalCtx()
		ev, err := b.evaluateOne(b.cands[i], ctx)
		if err != nil {
			return nil, err
		}
		evals[i] = ev
		b.evalCache[b.cands[i]] = &cachedEval{ev: ev, links: ctx.links}
	}
	return evals, nil
}

// evaluateParallel evaluates the stale candidates at the todo indices on a
// bounded worker pool. Workers only read builder state; results and
// dependency sets are merged back in index order on the caller's goroutine,
// so the outcome is identical to the serial loop.
func (b *builder) evaluateParallel(evals []evaluation, todo []int) error {
	workers := b.workers
	if workers > len(todo) {
		workers = len(todo)
	}
	b.ins.poolBatches.Inc()
	b.ins.poolEvals.Add(int64(len(todo)))
	b.ins.poolWorkers.Add(int64(workers))
	depsOut := make([]linkSet, len(todo))
	errs := make([]error, len(todo))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				ctx := newEvalCtx()
				ev, err := b.evaluateOne(b.cands[todo[j]], ctx)
				if err != nil {
					errs[j] = err
					continue
				}
				evals[todo[j]] = ev
				depsOut[j] = ctx.links
			}
		}()
	}
	for j := range todo {
		next <- j
	}
	close(next)
	wg.Wait()
	for j := range todo {
		if errs[j] != nil {
			return errs[j]
		}
		b.evalCache[b.cands[todo[j]]] = &cachedEval{ev: evals[todo[j]], links: depsOut[j]}
	}
	return nil
}

// stale reports whether a cached evaluation may have been invalidated by the
// latest commit: one of the candidate's allowed processors gained work, or a
// link whose occupancy the evaluation's gap searches consulted was occupied
// further.
func (b *builder) stale(op string, ce *cachedEval) bool {
	if len(b.touchedProcs) > 0 {
		for _, p := range b.allowed[op] {
			if _, ok := b.touchedProcs[p]; ok {
				return true
			}
		}
	}
	if len(b.touchedLinks) > 0 {
		for l := range ce.links { //ftlint:order-insensitive existence test: true iff any consulted link was touched, identical for every visit order
			if _, ok := b.touchedLinks[l]; ok {
				return true
			}
		}
	}
	return false
}

// scoredEntry is one (processor, sigma) evaluation with the completion date
// used for tie-breaking.
type scoredEntry struct {
	PressureEntry
	completion float64
}

// evaluateOne evaluates one candidate with deterministic tie-breaking,
// recording consulted links in ctx. Safe for concurrent use: it only reads
// builder state.
func (b *builder) evaluateOne(op string, ctx *evalCtx) (evaluation, error) {
	b.ins.evals.Inc()
	repl, err := b.replication(op)
	if err != nil {
		return evaluation{}, err
	}
	entries := make([]scoredEntry, 0, len(b.allowed[op]))
	for _, p := range b.allowed[op] {
		s, err := b.earliestStart(op, p, ctx)
		if err != nil {
			return evaluation{}, err
		}
		entries = append(entries, b.score(op, p, s))
	}
	return b.keepBest(op, entries, repl), nil
}

// score builds the (processor, sigma) entry for op starting at date s on p.
func (b *builder) score(op, p string, s float64) scoredEntry {
	d := b.sp.Exec(op, p)
	sigma := b.pt.Sigma(op, s, d)
	if b.opts.NoPressure {
		// Ablation: earliest-finish-time only, no remaining-path term.
		sigma = s + d //ftlint:infwcet-checked p is drawn from b.allowed, which keeps only CanRun processors
	}
	return scoredEntry{
		PressureEntry: PressureEntry{Op: op, Proc: p, Sigma: sigma},
		completion:    s + d, //ftlint:infwcet-checked p is drawn from b.allowed, which keeps only CanRun processors
	}
}

// keepBest sorts the scored entries and keeps the repl smallest pressures.
// Equal pressures are split by earliest completion date, then architecture
// declaration order (the stable sort preserves it). With a seed set, equal
// entries are instead resolved randomly, like the paper's "randomly chosen"
// tie-breaking: the caller shuffles first, so the stable sort picks a random
// representative of each tie group.
func (b *builder) keepBest(op string, entries []scoredEntry, repl int) evaluation {
	sort.SliceStable(entries, func(i, j int) bool {
		if math.Abs(entries[i].Sigma-entries[j].Sigma) > eps {
			return entries[i].Sigma < entries[j].Sigma
		}
		return entries[i].completion < entries[j].completion-eps
	})
	kept := make([]PressureEntry, repl)
	for i := range kept {
		kept[i] = entries[i].PressureEntry
	}
	return evaluation{op: op, kept: kept, urgency: kept[len(kept)-1].Sigma}
}

// evaluateAll is the seeded evaluation path: every candidate is re-evaluated
// and the shared rand stream is consumed candidate by candidate, exactly as
// the original serial heuristic did.
func (b *builder) evaluateAll(cands []string) ([]evaluation, error) {
	out := make([]evaluation, 0, len(cands))
	for _, op := range cands {
		b.ins.evals.Inc()
		repl, err := b.replication(op)
		if err != nil {
			return nil, err
		}
		// The gap memo is exact (occupancies are frozen during evaluation),
		// so it speeds the seeded path without changing any result.
		ctx := newEvalCtx()
		entries := make([]scoredEntry, 0, len(b.allowed[op]))
		for _, p := range b.allowed[op] {
			s, err := b.earliestStart(op, p, ctx)
			if err != nil {
				return nil, err
			}
			entries = append(entries, b.score(op, p, s))
		}
		if b.rng != nil {
			for i := len(entries) - 1; i > 0; i-- {
				j := b.rng.Intn(i + 1)
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
		out = append(out, b.keepBest(op, entries, repl))
	}
	return out, nil
}

// selectCandidate runs micro-step mSn.2: pick the candidate with the
// greatest kept pressure. Ties go to the earliest-declared operation, or to
// a random choice when Options.Seed is set.
func (b *builder) selectCandidate(evals []evaluation) int {
	best := 0
	var ties []int
	for i := 1; i < len(evals); i++ {
		switch {
		case evals[i].urgency > evals[best].urgency+eps:
			best = i
			ties = ties[:0]
		case evals[i].urgency > evals[best].urgency-eps:
			if len(ties) == 0 {
				ties = append(ties, best)
			}
			ties = append(ties, i)
		}
	}
	if b.rng != nil && len(ties) > 1 {
		return ties[b.rng.Intn(len(ties))]
	}
	return best
}
