package core

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/pressure"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// eps absorbs float64 noise when comparing schedule dates.
const eps = 1e-9

// interval is a busy window on a link, part of a sorted, non-overlapping set.
type interval struct {
	start, end float64
}

// earliestGap returns the earliest date >= ready at which a transfer of
// duration dur fits into the free gaps of busy (sorted by start).
func earliestGap(busy []interval, ready, dur float64) float64 {
	t := ready
	for _, iv := range busy {
		if iv.start-t >= dur-eps {
			return t
		}
		if iv.end > t {
			t = iv.end
		}
	}
	return t
}

// insertInterval adds [start,end) keeping the slice sorted by start.
func insertInterval(busy []interval, start, end float64) []interval {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].start >= start })
	busy = append(busy, interval{})
	copy(busy[i+1:], busy[i:])
	busy[i] = interval{start: start, end: end}
	return busy
}

// delivKey identifies a committed delivery of an edge's value to a processor
// (basic and FT1 point-to-point deliveries).
type delivKey struct {
	edge graph.EdgeKey
	proc string
}

// sentKey identifies a committed FT2 transfer from a specific sender
// processor to a destination processor.
type sentKey struct {
	edge     graph.EdgeKey
	src, dst string
}

// bcKey identifies a committed FT1 bus broadcast.
type bcKey struct {
	edge graph.EdgeKey
	src  string
	bus  string
}

// passKey identifies a committed FT1 passive backup chain, one per bus or
// per point-to-point destination.
type passKey struct {
	edge graph.EdgeKey
	bus  string // bus name, or "" for a point-to-point chain
	dst  string // destination proc for point-to-point chains, else ""
}

// hopPlan is a tentatively routed hop, committed only if the evaluation is
// selected.
type hopPlan struct {
	link     string
	from, to string
	start    float64
	end      float64
}

// builder holds the mutable state of one scheduling run.
type builder struct {
	g    *graph.Graph
	a    *arch.Architecture
	sp   *spec.Spec
	pt   *pressure.Table
	opts Options
	mode sched.Mode
	k    int

	s        *sched.Schedule
	reps     map[string][]*sched.OpSlot  // replicas per op, rank order
	repOn    map[[2]string]*sched.OpSlot // (op, proc) -> replica
	procFree map[string]float64
	linkBusy map[string][]interval
	deliv    map[delivKey]float64
	sent     map[sentKey]float64
	bcast    map[bcKey]*sched.CommSlot
	passDone map[passKey]float64 // worst-case end of the committed chain

	rng     randSource
	trace   []StepTrace
	minRepl int
}

// randSource is the subset of *rand.Rand the builder needs; nil means
// deterministic first-declared tie-breaking.
type randSource interface {
	Intn(n int) int
}

func newBuilder(g *graph.Graph, a *arch.Architecture, sp *spec.Spec, mode sched.Mode, k int, opts Options) (*builder, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := sp.Validate(g, a); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pt, err := pressure.Compute(g, sp)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	b := &builder{
		g: g, a: a, sp: sp, pt: pt, opts: opts, mode: mode, k: k,
		s:        sched.New(mode, k),
		reps:     make(map[string][]*sched.OpSlot, g.NumOps()),
		repOn:    make(map[[2]string]*sched.OpSlot),
		procFree: make(map[string]float64, a.NumProcessors()),
		linkBusy: make(map[string][]interval, a.NumLinks()),
		deliv:    make(map[delivKey]float64),
		sent:     make(map[sentKey]float64),
		bcast:    make(map[bcKey]*sched.CommSlot),
		passDone: make(map[passKey]float64),
		minRepl:  math.MaxInt,
	}
	if r := opts.rng(); r != nil {
		b.rng = r
	}
	return b, nil
}

// allowedProcs returns, in architecture declaration order, the processors
// able to run op.
func (b *builder) allowedProcs(op string) []string {
	var out []string
	for _, p := range b.a.ProcessorNames() {
		if b.sp.CanRun(op, p) {
			out = append(out, p)
		}
	}
	return out
}

// replication returns the number of replicas to place for op, or an error
// when the constraints cannot support the requested fault tolerance.
func (b *builder) replication(op string) (int, error) {
	allowed := len(b.allowedProcs(op))
	if allowed == 0 {
		return 0, fmt.Errorf("%w: operation %q has no allowed processor", ErrInfeasible, op)
	}
	if b.mode == sched.ModeBasic {
		return 1, nil
	}
	want := b.k + 1
	if allowed < want {
		if !b.opts.AllowDegraded {
			return 0, fmt.Errorf("%w: operation %q can run on %d processors, %d needed to tolerate %d failures (set AllowDegraded to proceed)",
				ErrInfeasible, op, allowed, want, b.k)
		}
		return allowed, nil
	}
	return want, nil
}

// busBetween returns the earliest-declared bus attaching both processors, or
// "" if none.
func (b *builder) busBetween(x, y string) string {
	for _, l := range b.a.Links() {
		if l.Kind() == arch.Bus && l.Connects(x) && l.Connects(y) {
			return l.Name()
		}
	}
	return ""
}

// planRoute tentatively schedules the transfer of e from src to dst with the
// data ready at the source at date ready. It performs gap search against the
// current link occupancy but commits nothing.
func (b *builder) planRoute(e graph.EdgeKey, src, dst string, ready float64) (float64, []hopPlan, error) {
	route, err := b.a.Route(src, dst)
	if err != nil {
		return 0, nil, err
	}
	plans := make([]hopPlan, 0, len(route))
	at, t := src, ready
	for _, h := range route {
		dur, err := b.sp.Comm(e, h.Link)
		if err != nil {
			return 0, nil, err
		}
		start := earliestGap(b.linkBusy[h.Link], t, dur)
		plans = append(plans, hopPlan{link: h.Link, from: at, to: h.To, start: start, end: start + dur})
		t = start + dur
		at = h.To
	}
	return t, plans, nil
}

// commitPlans records the hops of one transfer and, for active transfers,
// occupies the links.
func (b *builder) commitPlans(e graph.EdgeKey, src, dst string, senderRank int, plans []hopPlan, passive bool, timeout float64) {
	id := b.s.NewTransferID()
	for i, h := range plans {
		slot := sched.CommSlot{
			Edge: e, Link: h.link, From: h.from, To: h.to,
			SrcProc: src, DstProc: dst, SenderRank: senderRank,
			TransferID: id, Hop: i, Start: h.start, End: h.end,
			Passive: passive,
		}
		if passive && i == 0 {
			slot.Timeout = timeout
		}
		b.s.AddCommSlot(slot)
		if !passive {
			b.linkBusy[h.link] = insertInterval(b.linkBusy[h.link], h.start, h.end)
		}
	}
}

// arrival returns the failure-free availability date of edge e's value on
// dstProc under the builder's mode. With commit set, any missing transfers
// (and, in FT1, the passive backup chains) are recorded in the schedule.
func (b *builder) arrival(e graph.EdgeKey, dstProc string, commit bool) (float64, error) {
	switch b.mode {
	case sched.ModeBasic:
		return b.basicArrival(e, dstProc, commit)
	case sched.ModeFT1:
		return b.ft1Arrival(e, dstProc, commit)
	case sched.ModeFT2:
		return b.ft2Arrival(e, dstProc, commit)
	default:
		return 0, fmt.Errorf("core: unknown mode %v", b.mode)
	}
}

func (b *builder) basicArrival(e graph.EdgeKey, dstProc string, commit bool) (float64, error) {
	main := b.mainOf(e.Src)
	if main == nil {
		return 0, fmt.Errorf("core: predecessor %q of %q not scheduled", e.Src, e.Dst)
	}
	if main.Proc == dstProc {
		return main.End, nil
	}
	if d, ok := b.deliv[delivKey{edge: e, proc: dstProc}]; ok {
		return d, nil
	}
	t, plans, err := b.planRoute(e, main.Proc, dstProc, main.End)
	if err != nil {
		return 0, err
	}
	if commit {
		b.commitPlans(e, main.Proc, dstProc, 0, plans, false, 0)
		b.deliv[delivKey{edge: e, proc: dstProc}] = t
	}
	return t, nil
}

// ft1Arrival implements the first solution's communication scheme: the main
// replica of the producer sends once (a broadcast on a shared bus, a routed
// transfer otherwise); backup replicas get passive, timeout-guarded
// reservations committed alongside the active transfer.
func (b *builder) ft1Arrival(e graph.EdgeKey, dstProc string, commit bool) (float64, error) {
	if rep := b.repOn[[2]string{e.Src, dstProc}]; rep != nil {
		// A replica of the producer runs here: intra-processor communication.
		return rep.End, nil
	}
	main := b.mainOf(e.Src)
	if main == nil {
		return 0, fmt.Errorf("core: predecessor %q of %q not scheduled", e.Src, e.Dst)
	}
	if bus := b.busBetween(main.Proc, dstProc); bus != "" && !b.opts.NoBroadcast {
		key := bcKey{edge: e, src: main.Proc, bus: bus}
		if slot, ok := b.bcast[key]; ok {
			return slot.End, nil
		}
		dur, err := b.sp.Comm(e, bus)
		if err != nil {
			return 0, err
		}
		start := earliestGap(b.linkBusy[bus], main.End, dur)
		if commit {
			slot := b.s.AddCommSlot(sched.CommSlot{
				Edge: e, Link: bus, From: main.Proc, SrcProc: main.Proc,
				TransferID: b.s.NewTransferID(), Start: start, End: start + dur,
				Broadcast: true,
			})
			b.linkBusy[bus] = insertInterval(b.linkBusy[bus], start, start+dur)
			b.bcast[key] = slot
			b.ft1PassiveChain(e, bus, "", start+dur)
		}
		return start + dur, nil
	}
	if d, ok := b.deliv[delivKey{edge: e, proc: dstProc}]; ok {
		return d, nil
	}
	t, plans, err := b.planRoute(e, main.Proc, dstProc, main.End)
	if err != nil {
		return 0, err
	}
	if commit {
		b.commitPlans(e, main.Proc, dstProc, 0, plans, false, 0)
		b.deliv[delivKey{edge: e, proc: dstProc}] = t
		b.ft1PassiveChain(e, "", dstProc, t)
	}
	return t, nil
}

// ft1PassiveChain commits the timeout chain of Fig. 12 for edge e: for each
// backup rank of the producer, a passive reservation that activates when
// every earlier sender has been detected faulty. mainDeadline is the
// worst-case arrival date of the main replica's (active) transfer; each
// passive slot's Timeout is the deadline of the previous rank.
//
// Static dates are worst-case without re-modeling link contention after a
// failure: backup k sends at max(deadline(k-1), completion(k)) and its hops
// follow sequentially. The executive simulator recomputes actual dates.
func (b *builder) ft1PassiveChain(e graph.EdgeKey, bus, dstProc string, mainDeadline float64) {
	key := passKey{edge: e, bus: bus, dst: dstProc}
	if _, ok := b.passDone[key]; ok {
		return
	}
	reps := b.reps[e.Src]
	deadline := mainDeadline
	for rank := 1; rank < len(reps); rank++ {
		sender := reps[rank]
		if bus == "" && sender.Proc == dstProc {
			// The backup is colocated with the consumer: on failover the
			// value is already local, no reservation needed for this rank.
			continue
		}
		var (
			link string
			dur  float64
			err  error
		)
		if bus != "" {
			link, dur = bus, 0
			dur, err = b.sp.Comm(e, bus)
			if err != nil {
				continue
			}
			start := math.Max(deadline, sender.End)
			b.s.AddCommSlot(sched.CommSlot{
				Edge: e, Link: link, From: sender.Proc, SrcProc: sender.Proc,
				SenderRank: rank, TransferID: b.s.NewTransferID(),
				Start: start, End: start + dur,
				Passive: true, Timeout: deadline, Broadcast: true,
			})
			deadline = start + dur
			continue
		}
		route, rerr := b.a.Route(sender.Proc, dstProc)
		if rerr != nil {
			continue
		}
		id := b.s.NewTransferID()
		at := sender.Proc
		t := math.Max(deadline, sender.End)
		timeout := deadline
		for i, h := range route {
			dur, err = b.sp.Comm(e, h.Link)
			if err != nil {
				break
			}
			slot := sched.CommSlot{
				Edge: e, Link: h.Link, From: at, To: h.To,
				SrcProc: sender.Proc, DstProc: dstProc, SenderRank: rank,
				TransferID: id, Hop: i, Start: t, End: t + dur, Passive: true,
			}
			if i == 0 {
				slot.Timeout = timeout
			}
			b.s.AddCommSlot(slot)
			t += dur
			at = h.To
		}
		deadline = t
	}
	b.passDone[key] = deadline
}

// ft2Arrival implements the second solution's communication scheme: every
// replica of the producer sends to dstProc, except when a replica of the
// producer already runs on dstProc, in which case the value is local and no
// transfer at all is committed for this consumer (Section 7.1).
func (b *builder) ft2Arrival(e graph.EdgeKey, dstProc string, commit bool) (float64, error) {
	reps := b.reps[e.Src]
	if len(reps) == 0 {
		return 0, fmt.Errorf("core: predecessor %q of %q not scheduled", e.Src, e.Dst)
	}
	for _, r := range reps {
		if r.Proc == dstProc {
			return r.End, nil
		}
	}
	best := math.Inf(1)
	for _, r := range reps {
		key := sentKey{edge: e, src: r.Proc, dst: dstProc}
		if d, ok := b.sent[key]; ok {
			if d < best {
				best = d
			}
			continue
		}
		t, plans, err := b.planRoute(e, r.Proc, dstProc, r.End)
		if err != nil {
			return 0, err
		}
		if commit {
			b.commitPlans(e, r.Proc, dstProc, r.Replica, plans, false, 0)
			b.sent[key] = t
		}
		if t < best {
			best = t
		}
	}
	return best, nil
}

// earliestStart evaluates S(n)(op, proc): the earliest date op could start
// on proc given the partial schedule, without committing anything.
func (b *builder) earliestStart(op, proc string) (float64, error) {
	t := b.procFree[proc]
	for _, pred := range b.g.StrictPreds(op) {
		at, err := b.arrival(graph.EdgeKey{Src: pred, Dst: op}, proc, false)
		if err != nil {
			return 0, err
		}
		if at > t {
			t = at
		}
	}
	return t, nil
}

// commitReplica schedules one replica of op on proc, committing the
// transfers that deliver its inputs.
func (b *builder) commitReplica(op, proc string, rank int) (*sched.OpSlot, error) {
	start := b.procFree[proc]
	for _, pred := range b.g.StrictPreds(op) {
		at, err := b.arrival(graph.EdgeKey{Src: pred, Dst: op}, proc, true)
		if err != nil {
			return nil, err
		}
		if at > start {
			start = at
		}
	}
	d := b.sp.Exec(op, proc)
	slot := b.s.AddOpSlot(sched.OpSlot{Op: op, Proc: proc, Replica: rank, Start: start, End: start + d})
	b.procFree[proc] = start + d
	b.repOn[[2]string{op, proc}] = slot
	return slot, nil
}

// mainOf returns the main replica of op from the builder's index.
func (b *builder) mainOf(op string) *sched.OpSlot {
	reps := b.reps[op]
	if len(reps) == 0 {
		return nil
	}
	return reps[0]
}

// commitDelayedEdges schedules the state-update transfers of delayed edges
// (edges into mems) once every operation is placed. They do not constrain
// intra-iteration start dates but must still deliver the next-iteration
// value to every replica of the mem.
func (b *builder) commitDelayedEdges() error {
	for _, e := range b.g.Edges() {
		if !e.Delayed() {
			continue
		}
		for _, mrep := range b.reps[e.Dst()] {
			if _, err := b.arrival(e.Key(), mrep.Proc, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// run executes the greedy list-scheduling loop shared by the three
// heuristics (Figs. 11 and 20).
func (b *builder) run() (*Result, error) {
	scheduled := make(map[string]bool, b.g.NumOps())
	for step := 1; ; step++ {
		cands := b.candidates(scheduled)
		if len(cands) == 0 {
			break
		}
		evals, err := b.evaluate(cands)
		if err != nil {
			return nil, err
		}
		sel := b.selectCandidate(evals)
		chosen := evals[sel]
		slots := make([]*sched.OpSlot, 0, len(chosen.kept))
		for i, pe := range chosen.kept {
			slot, err := b.commitReplica(chosen.op, pe.Proc, i)
			if err != nil {
				return nil, err
			}
			slots = append(slots, slot)
		}
		// Rank replicas by completion date: the earliest finisher is the
		// main replica, the others are backups in election order.
		sort.SliceStable(slots, func(i, j int) bool { return slots[i].End < slots[j].End })
		for i, sl := range slots {
			sl.Replica = i
		}
		b.reps[chosen.op] = slots
		if len(slots) < b.minRepl {
			b.minRepl = len(slots)
		}
		scheduled[chosen.op] = true
		if b.opts.Trace {
			st := StepTrace{
				Step:       step,
				Candidates: cands,
				Selected:   chosen.op,
				Start:      slots[0].Start,
				End:        slots[0].End,
			}
			for _, ev := range evals {
				st.Pressures = append(st.Pressures, ev.kept...)
			}
			for _, sl := range slots {
				st.Procs = append(st.Procs, sl.Proc)
			}
			b.trace = append(b.trace, st)
		}
	}
	if len(scheduled) != b.g.NumOps() {
		return nil, fmt.Errorf("core: internal error: %d of %d operations scheduled", len(scheduled), b.g.NumOps())
	}
	if err := b.commitDelayedEdges(); err != nil {
		return nil, err
	}
	if b.minRepl == math.MaxInt {
		b.minRepl = 0
	}
	if b.opts.Deadline > 0 && b.s.Makespan() > b.opts.Deadline+eps {
		return nil, fmt.Errorf("%w: makespan %g exceeds deadline %g",
			ErrDeadlineMissed, b.s.Makespan(), b.opts.Deadline)
	}
	return &Result{Schedule: b.s, MinReplication: b.minRepl, Trace: b.trace}, nil
}

// candidates returns, in declaration order, the unscheduled operations whose
// strict predecessors are all scheduled.
func (b *builder) candidates(scheduled map[string]bool) []string {
	var out []string
	for _, op := range b.g.OpNames() {
		if scheduled[op] {
			continue
		}
		ready := true
		for _, p := range b.g.StrictPreds(op) {
			if !scheduled[p] {
				ready = false
				break
			}
		}
		if ready {
			out = append(out, op)
		}
	}
	return out
}

// evaluation holds micro-step mSn.1's result for one candidate: the kept
// (processor, sigma) pairs, best first.
type evaluation struct {
	op      string
	kept    []PressureEntry
	urgency float64 // the greatest kept sigma, used at mSn.2
}

// evaluate runs micro-step mSn.1 for every candidate.
func (b *builder) evaluate(cands []string) ([]evaluation, error) {
	out := make([]evaluation, 0, len(cands))
	for _, op := range cands {
		repl, err := b.replication(op)
		if err != nil {
			return nil, err
		}
		type scored struct {
			PressureEntry
			completion float64
		}
		var entries []scored
		for _, p := range b.allowedProcs(op) {
			s, err := b.earliestStart(op, p)
			if err != nil {
				return nil, err
			}
			d := b.sp.Exec(op, p)
			sigma := b.pt.Sigma(op, s, d)
			if b.opts.NoPressure {
				// Ablation: earliest-finish-time only, no remaining-path term.
				sigma = s + d
			}
			entries = append(entries, scored{
				PressureEntry: PressureEntry{Op: op, Proc: p, Sigma: sigma},
				completion:    s + d,
			})
		}
		// Keep the repl smallest pressures. Equal pressures are split by
		// earliest completion date, then architecture declaration order
		// (the stable sort preserves it). With a seed set, equal entries are
		// instead resolved randomly, like the paper's "randomly chosen"
		// tie-breaking: shuffling first makes the stable sort pick a random
		// representative of each tie group.
		if b.rng != nil {
			for i := len(entries) - 1; i > 0; i-- {
				j := b.rng.Intn(i + 1)
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
		sort.SliceStable(entries, func(i, j int) bool {
			if math.Abs(entries[i].Sigma-entries[j].Sigma) > eps {
				return entries[i].Sigma < entries[j].Sigma
			}
			return entries[i].completion < entries[j].completion-eps
		})
		kept := make([]PressureEntry, repl)
		for i := range kept {
			kept[i] = entries[i].PressureEntry
		}
		ev := evaluation{op: op, kept: kept, urgency: kept[len(kept)-1].Sigma}
		out = append(out, ev)
	}
	return out, nil
}

// selectCandidate runs micro-step mSn.2: pick the candidate with the
// greatest kept pressure. Ties go to the earliest-declared operation, or to
// a random choice when Options.Seed is set.
func (b *builder) selectCandidate(evals []evaluation) int {
	best := 0
	var ties []int
	for i := 1; i < len(evals); i++ {
		switch {
		case evals[i].urgency > evals[best].urgency+eps:
			best = i
			ties = ties[:0]
		case evals[i].urgency > evals[best].urgency-eps:
			if len(ties) == 0 {
				ties = append(ties, best)
			}
			ties = append(ties, i)
		}
	}
	if b.rng != nil && len(ties) > 1 {
		return ties[b.rng.Intn(len(ties))]
	}
	return best
}
