package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/pressure"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// instruments holds the builder's pre-resolved observability counters and
// its span sink. The zero value (all nil) is the disabled state: every
// counter hit is a nil check, every span a nil-receiver no-op, so the
// schedule and its timing are unaffected when Options.Obs is unset.
// Counters are atomic, so the evaluation worker pool increments them
// concurrently without coordination.
type instruments struct {
	sink        *obs.Sink
	steps       *obs.Counter // greedy scheduling steps committed
	evals       *obs.Counter // candidate evaluations performed (mSn.1)
	cacheHits   *obs.Counter // evaluations reused from the cross-step cache
	cacheInval  *obs.Counter // cached evaluations discarded as stale
	gapSearches *obs.Counter // earliestGap runs, memoized or not
	gapHits     *obs.Counter // gap searches answered by the per-eval memo
	poolBatches *obs.Counter // worker-pool dispatches (one per stale batch)
	poolEvals   *obs.Counter // evaluations executed on the pool
	poolWorkers *obs.Counter // workers engaged, summed over batches
}

// resolve registers the builder's counters on the sink (no-op when nil).
func (in *instruments) resolve(s *obs.Sink) {
	if s == nil {
		return
	}
	in.sink = s
	in.steps = s.Counter("core.steps")
	in.evals = s.Counter("core.evals")
	in.cacheHits = s.Counter("core.cache.hits")
	in.cacheInval = s.Counter("core.cache.invalidations")
	in.gapSearches = s.Counter("core.gap.searches")
	in.gapHits = s.Counter("core.gap.memo.hits")
	in.poolBatches = s.Counter("core.pool.batches")
	in.poolEvals = s.Counter("core.pool.evals")
	in.poolWorkers = s.Counter("core.pool.workers")
}

// eps absorbs float64 noise when comparing schedule dates.
const eps = 1e-9

// interval is a busy window on a link, part of a sorted, non-overlapping set.
type interval struct {
	start, end float64
}

// earliestGap returns the earliest date >= ready at which a transfer of
// duration dur fits into the free gaps of busy (sorted by start).
//
// Intervals are non-overlapping (every occupancy comes from a previous gap
// search), so their end dates are sorted too and the scan can start at the
// first interval still ending after ready; everything before it neither
// blocks the window nor advances t. The backup loop guards against
// eps-scale end-date inversions introduced by tolerant gap fits.
func earliestGap(busy []interval, ready, dur float64) float64 {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].end > ready }) //ftlint:hotalloc-ok non-escaping: sort.Search invokes the predicate without retaining it
	for i > 0 && busy[i-1].end > ready {
		i--
	}
	t := ready
	for _, iv := range busy[i:] {
		if iv.start-t >= dur-eps {
			return t
		}
		if iv.end > t {
			t = iv.end
		}
	}
	return t
}

// insertInterval adds [start,end) keeping the slice sorted by start.
func insertInterval(busy []interval, start, end float64) []interval {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].start >= start }) //ftlint:hotalloc-ok non-escaping: sort.Search invokes the predicate without retaining it
	busy = append(busy, interval{})
	copy(busy[i+1:], busy[i:])
	busy[i] = interval{start: start, end: end}
	return busy
}

// hopPlan is a tentatively routed hop, committed only if the evaluation is
// selected.
type hopPlan struct {
	link     int32
	from, to int32
	start    float64
	end      float64
}

// gapEntry is one memoized gap search against a link's busy list: a search
// with the same (ready, dur) on the same frozen occupancy returns val.
type gapEntry struct {
	ready, dur, val float64
}

// evalCtx is the per-evaluation scratch state: the links consulted (for
// cache invalidation), a memo of gap searches, and the scored-entry buffer.
// Within one evaluation the link occupancies are frozen, so a gap search is
// a pure function of its (link, ready, dur) key — in FT1 on a bus, every
// destination processor of an uncommitted broadcast repeats the exact same
// search, which the memo collapses. A nil ctx (the commit path) disables
// both: occupancies mutate between commits.
//
// A ctx is owned by exactly one goroutine (the serial loop's, or one pool
// worker's) and reused across evaluations via reset, so the per-candidate
// maps the old engine allocated are gone entirely. Memo lookups scan the
// consulted link's entries linearly with exact float equality — the same
// key semantics as the old map, and the lists are tiny (one entry per
// distinct (ready, dur) pair seen on the link this evaluation).
type evalCtx struct {
	linkMark []bool        // linkMark[link]: consulted this evaluation
	links    []int32       // consulted links, consult order (for reset + cache deps)
	gaps     [][]gapEntry  // per-link memo, only non-empty for consulted links
	entries  []scoredEntry // scored-candidate buffer, reused across evaluations
}

func newEvalCtx(nLinks int32) *evalCtx {
	return &evalCtx{
		linkMark: make([]bool, nLinks),
		gaps:     make([][]gapEntry, nLinks),
	}
}

// reset clears the consulted links and their memo entries, keeping all
// capacity for the next evaluation.
func (ctx *evalCtx) reset() {
	for _, l := range ctx.links {
		ctx.linkMark[l] = false
		ctx.gaps[l] = ctx.gaps[l][:0]
	}
	ctx.links = ctx.links[:0]
}

// gapSearch runs earliestGap through the evaluation memo (when present) and
// records the link dependency.
func (b *builder) gapSearch(ctx *evalCtx, link int32, ready, dur float64) float64 {
	b.ins.gapSearches.Inc()
	if ctx == nil {
		return b.st.linkBusy[link].search(ready, dur)
	}
	if !ctx.linkMark[link] {
		ctx.linkMark[link] = true
		ctx.links = append(ctx.links, link)
	}
	for _, g := range ctx.gaps[link] {
		if g.ready == ready && g.dur == dur {
			b.ins.gapHits.Inc()
			return g.val
		}
	}
	v := b.st.linkBusy[link].search(ready, dur)
	ctx.gaps[link] = append(ctx.gaps[link], gapEntry{ready: ready, dur: dur, val: v})
	return v
}

// cachedEval is one candidate's evaluation carried across steps, with the
// links whose busy sets it depends on (its processors are the static allowed
// set, so they are not recorded per evaluation). Entries live in a flat
// array indexed by op ID; valid distinguishes live entries from retired or
// never-filled slots.
type cachedEval struct {
	ev    evaluation
	links []int32
	valid bool
}

// builder holds the mutable state of one scheduling run: the compiled model
// (read-only), the SoA schedule state, and the incremental-evaluation
// machinery, all integer-indexed. Strings appear only at the two ends —
// compile interning them in, materialize rendering them back out.
type builder struct {
	m    *model
	opts Options
	mode sched.Mode
	k    int

	st *schedState

	workers int

	// Incremental engine state (see DESIGN.md §8 and §13): the ready
	// candidates as ascending op IDs (declaration order), the count of
	// unscheduled strict predecessors per operation, the evaluations carried
	// over from earlier steps, and the processors/links dirtied by the
	// latest commit (bool table + touched list, reset each step).
	cands        []int32
	pendingPreds []int32
	cache        []cachedEval
	touchedProc  []bool
	touchedLink  []bool
	touchedProcL []int32
	touchedLinkL []int32

	ctx     *evalCtx   // serial evaluation scratch, reused every step
	wctx    []*evalCtx // per-worker scratch, lazily grown to b.workers
	planBuf []hopPlan  // commit-path route buffer, reused every transfer

	rng     randSource
	trace   []StepTrace
	minRepl int
	ins     instruments
}

// randSource is the subset of *rand.Rand the builder needs; nil means
// deterministic first-declared tie-breaking.
type randSource interface {
	Intn(n int) int
}

func newBuilder(g *graph.Graph, a *arch.Architecture, sp *spec.Spec, mode sched.Mode, k int, opts Options) (*builder, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := sp.Validate(g, a); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pt, err := pressure.Compute(g, sp)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m, err := compile(g, a, sp, pt)
	if err != nil {
		return nil, err
	}
	b := &builder{
		m: m, opts: opts, mode: mode, k: k,
		st:           newSchedState(m, mode, k),
		pendingPreds: make([]int32, m.nOps),
		cache:        make([]cachedEval, m.nOps),
		touchedProc:  make([]bool, m.nProcs),
		touchedLink:  make([]bool, m.nLinks),
		ctx:          newEvalCtx(m.nLinks),
		minRepl:      math.MaxInt,
	}
	for o := int32(0); o < m.nOps; o++ {
		b.pendingPreds[o] = int32(len(m.predEdges[o]))
		if b.pendingPreds[o] == 0 {
			b.cands = append(b.cands, o)
		}
	}
	b.workers = opts.Workers
	if b.workers <= 0 {
		b.workers = runtime.GOMAXPROCS(0)
	}
	if r := opts.rng(); r != nil {
		b.rng = r
	}
	b.ins.resolve(opts.Obs)
	return b, nil
}

// replication returns the number of replicas to place for op, or an error
// when the constraints cannot support the requested fault tolerance.
func (b *builder) replication(op int32) (int, error) {
	allowed := len(b.m.allowed[op])
	if allowed == 0 {
		return 0, fmt.Errorf("%w: operation %q has no allowed processor", ErrInfeasible, b.m.opNames[op]) //ftlint:hotalloc-ok error path: an infeasible replication aborts the whole run, so this formats at most once
	}
	if b.mode == sched.ModeBasic {
		return 1, nil
	}
	want := b.k + 1
	if allowed < want {
		if !b.opts.AllowDegraded {
			return 0, fmt.Errorf("%w: operation %q can run on %d processors, %d needed to tolerate %d failures (set AllowDegraded to proceed)", //ftlint:hotalloc-ok error path: an infeasible replication aborts the whole run, so this formats at most once
				ErrInfeasible, b.m.opNames[op], allowed, want, b.k)
		}
		return allowed, nil
	}
	return want, nil
}

// occupyLink records an active transfer on link and marks the link dirty for
// the incremental evaluation cache.
func (b *builder) occupyLink(link int32, start, end float64) {
	b.st.occupy(link, start, end)
	if !b.touchedLink[link] {
		b.touchedLink[link] = true
		b.touchedLinkL = append(b.touchedLinkL, link)
	}
}

// planRoute tentatively schedules the transfer of edge e from src to dst with
// the data ready at the source at date ready, returning the arrival date. It
// performs gap search against the current link occupancy but commits nothing.
// The links consulted are recorded in ctx (when non-nil) so cached
// evaluations can be invalidated once those links change. When plans is
// non-nil the hops are appended to it for a later commitPlans; evaluations
// pass nil and skip building them. Routes and communication durations come
// from the compiled model, which is total, so planning cannot fail.
func (b *builder) planRoute(e, src, dst int32, ready float64, ctx *evalCtx, plans *[]hopPlan) float64 {
	m := b.m
	at, t := src, ready
	for _, h := range m.routes[src*m.nProcs+dst] {
		dur := m.comm[e*m.nLinks+h.link]
		start := b.gapSearch(ctx, h.link, t, dur)
		if plans != nil {
			*plans = append(*plans, hopPlan{link: h.link, from: at, to: h.to, start: start, end: start + dur})
		}
		t = start + dur
		at = h.to
	}
	return t
}

// commitPlans records the hops of one transfer and, for active transfers,
// occupies the links.
func (b *builder) commitPlans(e, src, dst, senderRank int32, plans []hopPlan, passive bool, timeout float64) {
	id := b.st.newTransferID()
	for i, h := range plans {
		rec := commRec{
			edge: e, link: h.link, from: h.from, to: h.to,
			src: src, dst: dst, rank: senderRank,
			transferID: id, hop: int32(i), start: h.start, end: h.end,
			passive: passive,
		}
		if passive && i == 0 {
			rec.timeout = timeout
		}
		b.st.appendComm(rec)
		if !passive {
			b.occupyLink(h.link, h.start, h.end)
		}
	}
}

// arrival returns the failure-free availability date of edge e's value on
// dstProc under the builder's mode. With commit set, any missing transfers
// (and, in FT1, the passive backup chains) are recorded in the schedule.
func (b *builder) arrival(e, dstProc int32, commit bool, ctx *evalCtx) (float64, error) {
	switch b.mode {
	case sched.ModeBasic:
		return b.basicArrival(e, dstProc, commit, ctx)
	case sched.ModeFT1:
		return b.ft1Arrival(e, dstProc, commit, ctx)
	case sched.ModeFT2:
		return b.ft2Arrival(e, dstProc, commit, ctx)
	default:
		return 0, fmt.Errorf("core: unknown mode %v", b.mode) //ftlint:hotalloc-ok defensive: unknown modes are rejected at Build entry, so this branch formats never or aborts once
	}
}

// unscheduledPred reports the error for an arrival queried before the edge's
// producer was committed — an internal ordering bug, never user input.
func (b *builder) unscheduledPred(e int32) error {
	key := b.m.edgeKeys[e]
	return fmt.Errorf("core: predecessor %q of %q not scheduled", key.Src, key.Dst) //ftlint:hotalloc-ok error path: an unscheduled predecessor is an internal ordering bug that aborts the run
}

func (b *builder) basicArrival(e, dstProc int32, commit bool, ctx *evalCtx) (float64, error) {
	m := b.m
	reps := b.st.reps[m.edgeSrc[e]]
	if len(reps) == 0 {
		return 0, b.unscheduledPred(e)
	}
	main := &b.st.ops[reps[0]]
	if main.proc == dstProc {
		return main.end, nil
	}
	if d := b.st.deliv[e*m.nProcs+dstProc]; !math.IsNaN(d) {
		return d, nil
	}
	if !commit {
		return b.planRoute(e, main.proc, dstProc, main.end, ctx, nil), nil
	}
	b.planBuf = b.planBuf[:0]
	t := b.planRoute(e, main.proc, dstProc, main.end, ctx, &b.planBuf)
	b.commitPlans(e, main.proc, dstProc, 0, b.planBuf, false, 0)
	b.st.setDeliv(e, dstProc, t)
	return t, nil
}

// ft1Arrival implements the first solution's communication scheme: the main
// replica of the producer sends once (a broadcast on a shared bus, a routed
// transfer otherwise); backup replicas get passive, timeout-guarded
// reservations committed alongside the active transfer.
func (b *builder) ft1Arrival(e, dstProc int32, commit bool, ctx *evalCtx) (float64, error) {
	m := b.m
	src := m.edgeSrc[e]
	if idx := b.st.repOn[src*m.nProcs+dstProc]; idx >= 0 {
		// A replica of the producer runs here: intra-processor communication.
		return b.st.ops[idx].end, nil
	}
	reps := b.st.reps[src]
	if len(reps) == 0 {
		return 0, b.unscheduledPred(e)
	}
	main := &b.st.ops[reps[0]]
	if bus := m.bus[main.proc*m.nProcs+dstProc]; bus >= 0 && !b.opts.NoBroadcast {
		if bc := b.st.bcastEnd[e*m.nLinks+bus]; !math.IsNaN(bc) {
			return bc, nil
		}
		dur := m.comm[e*m.nLinks+bus]
		start := b.gapSearch(ctx, bus, main.end, dur)
		if commit {
			b.st.appendComm(commRec{
				edge: e, link: bus, from: main.proc, to: -1,
				src: main.proc, dst: -1,
				transferID: b.st.newTransferID(), start: start, end: start + dur,
				broadcast: true,
			})
			b.occupyLink(bus, start, start+dur)
			b.st.setBcast(e, bus, start+dur)
			b.ft1PassiveChain(e, bus, -1, start+dur)
		}
		return start + dur, nil
	}
	if d := b.st.deliv[e*m.nProcs+dstProc]; !math.IsNaN(d) {
		return d, nil
	}
	if !commit {
		return b.planRoute(e, main.proc, dstProc, main.end, ctx, nil), nil
	}
	b.planBuf = b.planBuf[:0]
	t := b.planRoute(e, main.proc, dstProc, main.end, ctx, &b.planBuf)
	b.commitPlans(e, main.proc, dstProc, 0, b.planBuf, false, 0)
	b.st.setDeliv(e, dstProc, t)
	b.ft1PassiveChain(e, -1, dstProc, t)
	return t, nil
}

// ft1PassiveChain commits the timeout chain of Fig. 12 for edge e: for each
// backup rank of the producer, a passive reservation that activates when
// every earlier sender has been detected faulty. bus is the broadcast bus
// (-1 for a point-to-point chain toward dstProc); mainDeadline is the
// worst-case arrival date of the main replica's (active) transfer; each
// passive slot's Timeout is the deadline of the previous rank.
//
// Static dates are worst-case without re-modeling link contention after a
// failure: backup k sends at max(deadline(k-1), completion(k)) and its hops
// follow sequentially. The executive simulator recomputes actual dates.
//
// The compiled model's route and comm tables are total (compile fails on any
// hole), so — unlike the pre-dense engine, which could discover a missing
// cost here — every backup hop is guaranteed routable and costed by the time
// the chain is committed.
func (b *builder) ft1PassiveChain(e, bus, dstProc int32, mainDeadline float64) {
	m := b.m
	if bus >= 0 {
		if b.st.passBus[e*m.nLinks+bus] {
			return
		}
	} else if b.st.passDst[e*m.nProcs+dstProc] {
		return
	}
	reps := b.st.reps[m.edgeSrc[e]]
	deadline := mainDeadline
	for rank := 1; rank < len(reps); rank++ {
		sender := &b.st.ops[reps[rank]]
		if bus < 0 && sender.proc == dstProc {
			// The backup is colocated with the consumer: on failover the
			// value is already local, no reservation needed for this rank.
			continue
		}
		if bus >= 0 {
			dur := m.comm[e*m.nLinks+bus]
			start := math.Max(deadline, sender.end)
			b.st.appendComm(commRec{
				edge: e, link: bus, from: sender.proc, to: -1,
				src: sender.proc, dst: -1, rank: int32(rank),
				transferID: b.st.newTransferID(),
				start:      start, end: start + dur,
				passive: true, timeout: deadline, broadcast: true,
			})
			deadline = start + dur
			continue
		}
		id := b.st.newTransferID()
		at := sender.proc
		t := math.Max(deadline, sender.end)
		timeout := deadline
		for i, h := range m.routes[sender.proc*m.nProcs+dstProc] {
			dur := m.comm[e*m.nLinks+h.link]
			rec := commRec{
				edge: e, link: h.link, from: at, to: h.to,
				src: sender.proc, dst: dstProc, rank: int32(rank),
				transferID: id, hop: int32(i), start: t, end: t + dur,
				passive: true,
			}
			if i == 0 {
				rec.timeout = timeout
			}
			b.st.appendComm(rec)
			t += dur
			at = h.to
		}
		deadline = t
	}
	if bus >= 0 {
		b.st.markPassBus(e, bus)
	} else {
		b.st.markPassDst(e, dstProc)
	}
}

// ft2Arrival implements the second solution's communication scheme: every
// replica of the producer sends to dstProc, except when a replica of the
// producer already runs on dstProc, in which case the value is local and no
// transfer at all is committed for this consumer (Section 7.1).
func (b *builder) ft2Arrival(e, dstProc int32, commit bool, ctx *evalCtx) (float64, error) {
	m := b.m
	reps := b.st.reps[m.edgeSrc[e]]
	if len(reps) == 0 {
		return 0, b.unscheduledPred(e)
	}
	for _, ri := range reps {
		if b.st.ops[ri].proc == dstProc {
			return b.st.ops[ri].end, nil
		}
	}
	best := math.Inf(1)
	for _, ri := range reps {
		r := &b.st.ops[ri]
		if d := b.st.sent[(e*m.nProcs+r.proc)*m.nProcs+dstProc]; !math.IsNaN(d) {
			if d < best {
				best = d
			}
			continue
		}
		var t float64
		if commit {
			b.planBuf = b.planBuf[:0]
			t = b.planRoute(e, r.proc, dstProc, r.end, ctx, &b.planBuf)
			b.commitPlans(e, r.proc, dstProc, r.replica, b.planBuf, false, 0)
			b.st.setSent(e, r.proc, dstProc, t)
		} else {
			t = b.planRoute(e, r.proc, dstProc, r.end, ctx, nil)
		}
		if t < best {
			best = t
		}
	}
	return best, nil
}

// earliestStart evaluates S(n)(op, proc): the earliest date op could start
// on proc given the partial schedule, without committing anything.
func (b *builder) earliestStart(op, proc int32, ctx *evalCtx) (float64, error) {
	t := b.st.procFree[proc]
	for _, pe := range b.m.predEdges[op] {
		at, err := b.arrival(pe.edge, proc, false, ctx)
		if err != nil {
			return 0, err
		}
		if at > t {
			t = at
		}
	}
	return t, nil
}

// commitReplica schedules one replica of op on proc, committing the
// transfers that deliver its inputs, and returns the replica's arena index.
func (b *builder) commitReplica(op, proc int32, rank int) (int32, error) {
	start := b.st.procFree[proc]
	for _, pe := range b.m.predEdges[op] {
		at, err := b.arrival(pe.edge, proc, true, nil)
		if err != nil {
			return -1, err
		}
		if at > start {
			start = at
		}
	}
	d := b.m.exec[op*b.m.nProcs+proc]
	if math.IsInf(d, 1) {
		// Never reached: proc comes from m.allowed, which keeps only CanRun
		// processors. The check turns a table bug into an error instead of
		// letting ∞ poison every later start date.
		return -1, fmt.Errorf("core: replica of %s placed on forbidden processor %s", b.m.opNames[op], b.m.procNames[proc])
	}
	idx := b.st.appendOp(opRec{op: op, proc: proc, replica: int32(rank), start: start, end: start + d})
	b.st.procFree[proc] = start + d
	if !b.touchedProc[proc] {
		b.touchedProc[proc] = true
		b.touchedProcL = append(b.touchedProcL, proc)
	}
	b.st.repOn[op*b.m.nProcs+proc] = idx
	return idx, nil
}

// commitDelayedEdges schedules the state-update transfers of delayed edges
// (edges into mems) once every operation is placed. They do not constrain
// intra-iteration start dates but must still deliver the next-iteration
// value to every replica of the mem.
func (b *builder) commitDelayedEdges() error {
	for _, e := range b.m.delayedEdges {
		for _, ri := range b.st.reps[b.m.edgeDst[e]] {
			if _, err := b.arrival(e, b.st.ops[ri].proc, true, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// materialize renders the arenas into the public string-keyed schedule.
// Slots are replayed in arena (commit) order, so the stable start-date sorts
// of sched.ProcSlots/LinkSlots break ties exactly as they did when the old
// engine added slots one commit at a time.
func (b *builder) materialize() *sched.Schedule {
	m := b.m
	s := sched.New(b.mode, b.k)
	for i := range b.st.ops {
		r := &b.st.ops[i]
		s.AddOpSlot(sched.OpSlot{
			Op: m.opNames[r.op], Proc: m.procNames[r.proc],
			Replica: int(r.replica), Start: r.start, End: r.end,
		})
	}
	for i := range b.st.comms {
		c := &b.st.comms[i]
		slot := sched.CommSlot{
			Edge: m.edgeKeys[c.edge], Link: m.linkNames[c.link],
			From: m.procNames[c.from], SrcProc: m.procNames[c.src],
			SenderRank: int(c.rank), TransferID: int(c.transferID),
			Hop: int(c.hop), Start: c.start, End: c.end,
			Passive: c.passive, Timeout: c.timeout, Broadcast: c.broadcast,
		}
		if c.to >= 0 {
			slot.To = m.procNames[c.to]
		}
		if c.dst >= 0 {
			slot.DstProc = m.procNames[c.dst]
		}
		s.AddCommSlot(slot)
	}
	s.ReserveTransferIDs(int(b.st.nextTransfer))
	return s
}

// run executes the greedy list-scheduling loop shared by the three
// heuristics (Figs. 11 and 20).
func (b *builder) run() (*Result, error) {
	m := b.m
	scheduled := 0
	for step := 1; len(b.cands) > 0; step++ {
		if b.opts.canceled() {
			return nil, ErrCanceled
		}
		evalSpan := b.ins.sink.StartSpan("core", "evaluate")
		evals, err := b.evaluateStep()
		evalSpan.End()
		if err != nil {
			return nil, err
		}
		commitSpan := b.ins.sink.StartSpan("core", "commit")
		sel := b.selectCandidate(evals)
		chosen := evals[sel]
		var cands []string
		var pressures []PressureEntry
		if b.opts.Trace {
			cands = make([]string, len(b.cands))
			for i, c := range b.cands {
				cands[i] = m.opNames[c]
			}
			for _, ev := range evals {
				for _, ke := range ev.kept {
					pressures = append(pressures, PressureEntry{
						Op: m.opNames[ev.op], Proc: m.procNames[ke.proc], Sigma: ke.sigma,
					})
				}
			}
		}
		b.retire(chosen.op)
		slots := b.st.claimReps(chosen.op, len(chosen.kept))
		for i, ke := range chosen.kept {
			idx, err := b.commitReplica(chosen.op, ke.proc, i)
			if err != nil {
				return nil, err
			}
			slots[i] = idx
		}
		// Rank replicas by completion date: the earliest finisher is the
		// main replica, the others are backups in election order.
		ops := b.st.ops
		sort.SliceStable(slots, func(i, j int) bool { return ops[slots[i]].end < ops[slots[j]].end })
		for i, idx := range slots {
			ops[idx].replica = int32(i)
		}
		if len(slots) < b.minRepl {
			b.minRepl = len(slots)
		}
		scheduled++
		b.ins.steps.Inc()
		commitSpan.End()
		if b.opts.Trace {
			main := &ops[slots[0]]
			st := StepTrace{
				Step:       step,
				Candidates: cands,
				Pressures:  pressures,
				Selected:   m.opNames[chosen.op],
				Start:      main.start,
				End:        main.end,
			}
			for _, idx := range slots {
				st.Procs = append(st.Procs, m.procNames[ops[idx].proc])
			}
			b.trace = append(b.trace, st)
		}
	}
	if scheduled != int(m.nOps) {
		return nil, fmt.Errorf("core: internal error: %d of %d operations scheduled", scheduled, m.nOps)
	}
	delayedSpan := b.ins.sink.StartSpan("core", "delayed-edges")
	err := b.commitDelayedEdges()
	delayedSpan.End()
	if err != nil {
		return nil, err
	}
	if b.minRepl == math.MaxInt {
		b.minRepl = 0
	}
	s := b.materialize()
	if b.opts.Deadline > 0 && s.Makespan() > b.opts.Deadline+eps {
		return nil, fmt.Errorf("%w: makespan %g exceeds deadline %g",
			ErrDeadlineMissed, s.Makespan(), b.opts.Deadline)
	}
	return &Result{Schedule: s, MinReplication: b.minRepl, Trace: b.trace}, nil
}

// retire removes a committed operation from the candidate machinery and
// admits the successors it unblocks. Op IDs are declaration indices, so
// keeping b.cands ascending keeps it in declaration order (the order the
// full rescan used to produce).
func (b *builder) retire(op int32) {
	b.cache[op].valid = false
	i := sort.Search(len(b.cands), func(i int) bool { return b.cands[i] >= op })
	b.cands = append(b.cands[:i], b.cands[i+1:]...)
	for _, s := range b.m.succs[op] {
		b.pendingPreds[s]--
		if b.pendingPreds[s] == 0 {
			j := sort.Search(len(b.cands), func(i int) bool { return b.cands[i] >= s })
			b.cands = append(b.cands, 0)
			copy(b.cands[j+1:], b.cands[j:])
			b.cands[j] = s
		}
	}
}

// keptEntry is one kept (processor, sigma) pair of an evaluation.
type keptEntry struct {
	proc  int32
	sigma float64
}

// evaluation holds micro-step mSn.1's result for one candidate: the kept
// (processor, sigma) pairs, best first.
type evaluation struct {
	op      int32
	kept    []keptEntry
	urgency float64 // the greatest kept sigma, used at mSn.2
}

// evaluateStep runs micro-step mSn.1 for the current candidates and guards
// the read-only contract: the SoA state's mutation epoch must not move while
// evaluations (serial or pooled) are in flight.
//
// Unseeded runs go through the incremental engine: evaluations from earlier
// steps are reused unless the latest commit dirtied one of the candidate's
// allowed processors or one of the links its route planning consulted; only
// stale candidates are re-evaluated, on a worker pool when one is
// configured. Seeded runs fall back to the full re-evaluation of every
// candidate, because the shared tie-breaking rand stream must be consumed in
// exactly the order the original serial heuristic consumed it.
func (b *builder) evaluateStep() ([]evaluation, error) {
	epoch := b.st.mutEpoch
	var evals []evaluation
	var err error
	if b.rng != nil {
		evals, err = b.evaluateAll(b.cands)
	} else {
		evals, err = b.evaluateIncremental()
	}
	if err != nil {
		return nil, err
	}
	if b.st.mutEpoch != epoch {
		return nil, fmt.Errorf("core: internal error: schedule state mutated during candidate evaluation (epoch %d -> %d)", epoch, b.st.mutEpoch)
	}
	return evals, nil
}

// evaluateIncremental is the unseeded evaluation path: cached evaluations
// are reused unless stale, and the stale set is re-evaluated serially or on
// the worker pool.
func (b *builder) evaluateIncremental() ([]evaluation, error) {
	evals := make([]evaluation, len(b.cands))
	var todo []int
	for i, op := range b.cands {
		if ce := &b.cache[op]; ce.valid {
			if !b.stale(op, ce) {
				evals[i] = ce.ev
				b.ins.cacheHits.Inc()
				continue
			}
			b.ins.cacheInval.Inc()
		}
		todo = append(todo, i)
	}
	for _, p := range b.touchedProcL {
		b.touchedProc[p] = false
	}
	b.touchedProcL = b.touchedProcL[:0]
	for _, l := range b.touchedLinkL {
		b.touchedLink[l] = false
	}
	b.touchedLinkL = b.touchedLinkL[:0]
	if b.workers > 1 && len(todo) > 1 {
		if err := b.evaluateParallel(evals, todo); err != nil {
			return nil, err
		}
		return evals, nil
	}
	for _, i := range todo {
		op := b.cands[i]
		b.ctx.reset()
		ev, err := b.evaluateOne(op, b.ctx)
		if err != nil {
			return nil, err
		}
		evals[i] = ev
		ce := &b.cache[op]
		ce.ev = ev
		ce.links = append(ce.links[:0], b.ctx.links...)
		ce.valid = true
	}
	return evals, nil
}

// evaluateParallel evaluates the stale candidates at the todo indices on a
// bounded worker pool. Workers only read builder state; each owns one
// long-lived evalCtx, and results and dependency sets are merged back in
// index order on the caller's goroutine, so the outcome is identical to the
// serial loop.
func (b *builder) evaluateParallel(evals []evaluation, todo []int) error {
	workers := b.workers
	if workers > len(todo) {
		workers = len(todo)
	}
	b.ins.poolBatches.Inc()
	b.ins.poolEvals.Add(int64(len(todo)))
	b.ins.poolWorkers.Add(int64(workers))
	for len(b.wctx) < workers { //ftlint:allow-nopoll bounded: appends one context per missing worker, so trips <= Options.Workers
		b.wctx = append(b.wctx, newEvalCtx(b.m.nLinks))
	}
	depsOut := make([][]int32, len(todo))
	errs := make([]error, len(todo))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ctx *evalCtx) {
			defer wg.Done()
			for j := range next {
				ctx.reset()
				ev, err := b.evaluateOne(b.cands[todo[j]], ctx)
				if err != nil {
					errs[j] = err
					continue
				}
				evals[todo[j]] = ev
				// ctx.links is reused for the worker's next job, so the
				// dependency set must be copied out before then.
				depsOut[j] = append([]int32(nil), ctx.links...)
			}
		}(b.wctx[w])
	}
	for j := range todo {
		next <- j
	}
	close(next)
	wg.Wait()
	for j := range todo {
		if errs[j] != nil {
			return errs[j]
		}
		ce := &b.cache[b.cands[todo[j]]]
		ce.ev = evals[todo[j]]
		ce.links = depsOut[j]
		ce.valid = true
	}
	return nil
}

// stale reports whether a cached evaluation may have been invalidated by the
// latest commit: one of the candidate's allowed processors gained work, or a
// link whose occupancy the evaluation's gap searches consulted was occupied
// further.
func (b *builder) stale(op int32, ce *cachedEval) bool {
	if len(b.touchedProcL) > 0 {
		for _, p := range b.m.allowed[op] {
			if b.touchedProc[p] {
				return true
			}
		}
	}
	if len(b.touchedLinkL) > 0 {
		for _, l := range ce.links {
			if b.touchedLink[l] {
				return true
			}
		}
	}
	return false
}

// scoredEntry is one (processor, sigma) evaluation with the completion date
// used for tie-breaking.
type scoredEntry struct {
	proc              int32
	sigma, completion float64
}

// evaluateOne evaluates one candidate with deterministic tie-breaking,
// recording consulted links in ctx. Safe for concurrent use: it only reads
// builder state, and all scratch lives in the caller-owned ctx.
func (b *builder) evaluateOne(op int32, ctx *evalCtx) (evaluation, error) {
	b.ins.evals.Inc()
	repl, err := b.replication(op)
	if err != nil {
		return evaluation{}, err
	}
	entries := ctx.entries[:0]
	for _, p := range b.m.allowed[op] {
		s, err := b.earliestStart(op, p, ctx)
		if err != nil {
			return evaluation{}, err
		}
		entries = append(entries, b.score(op, p, s)) //ftlint:hotalloc-ok amortized: appends into the reused evalCtx.entries buffer, which keeps its capacity across candidates
	}
	ctx.entries = entries
	return b.keepBest(op, entries, repl), nil
}

// score builds the (processor, sigma) entry for op starting at date s on p.
func (b *builder) score(op, p int32, s float64) scoredEntry {
	d := b.m.exec[op*b.m.nProcs+p]
	sigma := b.m.sigma.Sigma(op, s, d)
	if b.opts.NoPressure {
		// Ablation: earliest-finish-time only, no remaining-path term.
		sigma = s + d
	}
	return scoredEntry{
		proc:       p,
		sigma:      sigma,
		completion: s + d,
	}
}

// keepBest sorts the scored entries and keeps the repl smallest pressures.
// Equal pressures are split by earliest completion date, then architecture
// declaration order (the stable sort preserves it — processor IDs are
// declaration indices and entries arrive in ascending ID order). With a seed
// set, equal entries are instead resolved randomly, like the paper's
// "randomly chosen" tie-breaking: the caller shuffles first, so the stable
// sort picks a random representative of each tie group.
func (b *builder) keepBest(op int32, entries []scoredEntry, repl int) evaluation {
	sort.SliceStable(entries, func(i, j int) bool { //ftlint:hotalloc-ok non-escaping: sort.SliceStable invokes the less function without retaining it
		if math.Abs(entries[i].sigma-entries[j].sigma) > eps {
			return entries[i].sigma < entries[j].sigma
		}
		return entries[i].completion < entries[j].completion-eps
	})
	kept := make([]keptEntry, repl)
	for i := range kept {
		kept[i] = keptEntry{proc: entries[i].proc, sigma: entries[i].sigma}
	}
	return evaluation{op: op, kept: kept, urgency: kept[len(kept)-1].sigma}
}

// evaluateAll is the seeded evaluation path: every candidate is re-evaluated
// and the shared rand stream is consumed candidate by candidate, exactly as
// the original serial heuristic did.
func (b *builder) evaluateAll(cands []int32) ([]evaluation, error) {
	out := make([]evaluation, 0, len(cands))
	for _, op := range cands {
		b.ins.evals.Inc()
		repl, err := b.replication(op)
		if err != nil {
			return nil, err
		}
		// The gap memo is exact (occupancies are frozen during evaluation),
		// so it speeds the seeded path without changing any result. The ctx
		// is reset per candidate, matching the old per-candidate memos.
		b.ctx.reset()
		entries := b.ctx.entries[:0]
		for _, p := range b.m.allowed[op] {
			s, err := b.earliestStart(op, p, b.ctx)
			if err != nil {
				return nil, err
			}
			entries = append(entries, b.score(op, p, s))
		}
		b.ctx.entries = entries
		if b.rng != nil {
			for i := len(entries) - 1; i > 0; i-- {
				j := b.rng.Intn(i + 1)
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
		out = append(out, b.keepBest(op, entries, repl))
	}
	return out, nil
}

// selectCandidate runs micro-step mSn.2: pick the candidate with the
// greatest kept pressure. Ties go to the earliest-declared operation, or to
// a random choice when Options.Seed is set.
func (b *builder) selectCandidate(evals []evaluation) int {
	best := 0
	var ties []int
	for i := 1; i < len(evals); i++ {
		switch {
		case evals[i].urgency > evals[best].urgency+eps:
			best = i
			ties = ties[:0]
		case evals[i].urgency > evals[best].urgency-eps:
			if len(ties) == 0 {
				ties = append(ties, best)
			}
			ties = append(ties, i)
		}
	}
	if b.rng != nil && len(ties) > 1 {
		return ties[b.rng.Intn(len(ties))]
	}
	return best
}
