package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ftsched/internal/paperex"
	"ftsched/internal/sched"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestBasicOnPaperBusValidatesAndPinsMakespan(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleBasic(in.Graph, in.Arch, in.Spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// Regression pin for the deterministic run (heuristic output, not a
	// paper value).
	if got := r.Schedule.Makespan(); !almostEq(got, 9.9) {
		t.Errorf("deterministic basic bus makespan = %v, want 9.9", got)
	}
	if r.MinReplication != 1 {
		t.Errorf("MinReplication = %d, want 1", r.MinReplication)
	}
}

func TestFT1OnPaperBusMatchesFig17(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// The paper's Fig. 17 reports makespan 9.4; the deterministic run
	// reproduces it exactly.
	if got := r.Schedule.Makespan(); !almostEq(got, paperex.PaperMakespans.FT1Bus) {
		t.Errorf("FT1 bus makespan = %v, paper reports %v", got, paperex.PaperMakespans.FT1Bus)
	}
	if r.MinReplication != 2 {
		t.Errorf("MinReplication = %d, want 2", r.MinReplication)
	}
}

func TestBasicTunedOnPaperTriangleMatchesFig24(t *testing.T) {
	in := paperex.TriangleInstance()
	r, err := ScheduleTuned(Basic, in.Graph, in.Arch, in.Spec, 0, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// The paper's Fig. 24 reports makespan 8.0 for the non-fault-tolerant
	// schedule on the triangle; the tuned search finds it.
	if got := r.Schedule.Makespan(); !almostEq(got, paperex.PaperMakespans.BasicP2P) {
		t.Errorf("tuned basic triangle makespan = %v, paper reports %v", got, paperex.PaperMakespans.BasicP2P)
	}
}

func TestFT2OnPaperTriangleValidates(t *testing.T) {
	in := paperex.TriangleInstance()
	r, err := ScheduleFT2(in.Graph, in.Arch, in.Spec, in.K, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// No timeouts in the second solution: every comm is active.
	if got := r.Schedule.NumPassiveComms(); got != 0 {
		t.Errorf("FT2 schedule has %d passive comms, want 0", got)
	}
	// Regression pin (paper's Fig. 22 reports 8.9 with its own tie-breaks;
	// see EXPERIMENTS.md).
	if got := r.Schedule.Makespan(); !almostEq(got, 9.9) {
		t.Errorf("deterministic FT2 triangle makespan = %v, want 9.9", got)
	}
}

func TestFTOverheadIsPositiveOnPaperInstances(t *testing.T) {
	bus := paperex.BusInstance()
	tri := paperex.TriangleInstance()
	const seeds = 50

	basicBus, err := ScheduleTuned(Basic, bus.Graph, bus.Arch, bus.Spec, 0, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ft1, err := ScheduleTuned(FT1, bus.Graph, bus.Arch, bus.Spec, 1, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ov := ft1.Schedule.Overhead(basicBus.Schedule); ov <= 0 {
		t.Errorf("FT1 overhead on bus = %v, want > 0 (Section 6.6 shape)", ov)
	}

	basicTri, err := ScheduleTuned(Basic, tri.Graph, tri.Arch, tri.Spec, 0, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ft2, err := ScheduleTuned(FT2, tri.Graph, tri.Arch, tri.Spec, 1, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ov := ft2.Schedule.Overhead(basicTri.Schedule); ov <= 0 {
		t.Errorf("FT2 overhead on triangle = %v, want > 0 (Section 7.4 shape)", ov)
	}
}

func TestDeterminism(t *testing.T) {
	in := paperex.BusInstance()
	for _, h := range []Heuristic{Basic, FT1, FT2} {
		r1, err := Schedule(h, in.Graph, in.Arch, in.Spec, 1, Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		r2, err := Schedule(h, in.Graph, in.Arch, in.Spec, 1, Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if g1, g2 := r1.Schedule.Gantt(), r2.Schedule.Gantt(); g1 != g2 {
			t.Errorf("%v: two deterministic runs differ:\n%s\nvs\n%s", h, g1, g2)
		}
	}
}

func TestSeededRunsAreReproducible(t *testing.T) {
	in := paperex.BusInstance()
	r1, err := ScheduleBasic(in.Graph, in.Arch, in.Spec, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ScheduleBasic(in.Graph, in.Arch, in.Spec, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Schedule.Gantt() != r2.Schedule.Gantt() {
		t.Error("same seed must reproduce the same schedule")
	}
}

func TestAllHeuristicsAllArchsValidate(t *testing.T) {
	instances := map[string]*paperex.Instance{
		"bus":      paperex.BusInstance(),
		"triangle": paperex.TriangleInstance(),
	}
	for name, in := range instances {
		for _, h := range []Heuristic{Basic, FT1, FT2} {
			for k := 0; k <= 1; k++ {
				if h == Basic && k > 0 {
					continue
				}
				r, err := Schedule(h, in.Graph, in.Arch, in.Spec, k, Options{})
				if err != nil {
					t.Errorf("%s/%v/K=%d: %v", name, h, k, err)
					continue
				}
				if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
					t.Errorf("%s/%v/K=%d invalid:\n%v", name, h, k, err)
				}
			}
		}
	}
}

func TestInfeasibleKTooLarge(t *testing.T) {
	in := paperex.BusInstance()
	// I and O can only run on P1 and P2, so K=2 (3 replicas) is infeasible.
	_, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 2, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	_, err = ScheduleFT2(in.Graph, in.Arch, in.Spec, 2, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestAllowDegraded(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 2, Options{AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatalf("degraded schedule invalid: %v", err)
	}
	if r.MinReplication != 2 {
		t.Errorf("MinReplication = %d, want 2 (extios limited to two processors)", r.MinReplication)
	}
	// Fully replicable comps must still get K+1 = 3 replicas.
	if got := len(r.Schedule.Replicas("A")); got != 3 {
		t.Errorf("A has %d replicas, want 3", got)
	}
	if got := len(r.Schedule.Replicas("I")); got != 2 {
		t.Errorf("I has %d replicas, want 2 (degraded)", got)
	}
}

func TestNegativeK(t *testing.T) {
	in := paperex.BusInstance()
	if _, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, -1, Options{}); err == nil {
		t.Error("FT1 with negative K must fail")
	}
	if _, err := ScheduleFT2(in.Graph, in.Arch, in.Spec, -1, Options{}); err == nil {
		t.Error("FT2 with negative K must fail")
	}
}

func TestKZeroFTEquivalentStructure(t *testing.T) {
	in := paperex.BusInstance()
	for _, h := range []Heuristic{FT1, FT2} {
		r, err := Schedule(h, in.Graph, in.Arch, in.Spec, 0, Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if r.Schedule.NumOpSlots() != in.Graph.NumOps() {
			t.Errorf("%v K=0: %d op slots, want %d", h, r.Schedule.NumOpSlots(), in.Graph.NumOps())
		}
		if r.Schedule.NumPassiveComms() != 0 {
			t.Errorf("%v K=0: passive comms present", h)
		}
	}
}

func TestFT1MessageMinimality(t *testing.T) {
	// Section 6.4: each data-dependency leads to at most K+1 inter-processor
	// communications; on a single bus the broadcast makes it at most one
	// active transfer per (dependency, sending replica), and only the main
	// replica sends.
	in := paperex.BusInstance()
	r, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perEdge := map[string]int{}
	for _, l := range r.Schedule.Links() {
		for _, c := range r.Schedule.LinkSlots(l) {
			if c.Passive {
				continue
			}
			if c.SenderRank != 0 {
				t.Errorf("active transfer of %s sent by backup rank %d", c.Edge, c.SenderRank)
			}
			perEdge[c.Edge.String()]++
		}
	}
	for e, n := range perEdge {
		if n > in.K+1 {
			t.Errorf("dependency %s has %d active transfers, want <= %d", e, n, in.K+1)
		}
	}
}

func TestFT1TimeoutChain(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each passive slot activates only after its timeout, and the timeout
	// equals the worst-case completion of the previous-ranked transfer.
	passives := 0
	for _, l := range r.Schedule.Links() {
		for _, c := range r.Schedule.LinkSlots(l) {
			if !c.Passive {
				continue
			}
			passives++
			if c.Hop == 0 && c.Start < c.Timeout-1e-9 {
				t.Errorf("passive transfer of %s starts at %g before its timeout %g", c.Edge, c.Start, c.Timeout)
			}
			if c.SenderRank < 1 {
				t.Errorf("passive transfer of %s has sender rank %d, want >= 1", c.Edge, c.SenderRank)
			}
			// The backup sender must actually hold the value: a replica of
			// the producer on the sending processor completing before Start.
			rep := r.Schedule.ReplicaOn(c.Edge.Src, c.SrcProc)
			if c.Hop == 0 {
				if rep == nil {
					t.Errorf("passive sender %q has no replica of %q", c.SrcProc, c.Edge.Src)
				} else if rep.End > c.Start+1e-9 {
					t.Errorf("passive transfer of %s starts at %g before its sender completes at %g", c.Edge, c.Start, rep.End)
				}
			}
		}
	}
	if passives == 0 {
		t.Error("FT1 with K=1 should produce passive backup transfers")
	}
}

func TestFT2CommReplication(t *testing.T) {
	// Section 7.1: a consumer replica colocated with any replica of its
	// producer gets the value intra-processor and no transfer is committed
	// to its processor; otherwise every producer replica sends to it.
	in := paperex.TriangleInstance()
	r, err := ScheduleFT2(in.Graph, in.Arch, in.Spec, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Schedule
	for _, e := range in.Graph.Edges() {
		if e.Delayed() {
			continue
		}
		prodProcs := map[string]bool{}
		for _, rep := range s.Replicas(e.Src()) {
			prodProcs[rep.Proc] = true
		}
		for _, cons := range s.Replicas(e.Dst()) {
			// Count transfers of e delivered to cons.Proc.
			senders := map[string]bool{}
			for _, hops := range s.Transfers() {
				last := hops[len(hops)-1]
				if last.Edge == e.Key() && last.DstProc == cons.Proc {
					senders[last.SrcProc] = true
				}
			}
			if prodProcs[cons.Proc] {
				if len(senders) != 0 {
					t.Errorf("edge %s: consumer on %q is colocated with a producer replica but receives %d transfers",
						e.Key(), cons.Proc, len(senders))
				}
				continue
			}
			if len(senders) != len(prodProcs) {
				t.Errorf("edge %s: consumer on %q receives from %d senders, want %d",
					e.Key(), cons.Proc, len(senders), len(prodProcs))
			}
		}
	}
}

func TestTraceRecordsSteps(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != in.Graph.NumOps() {
		t.Fatalf("trace has %d steps, want %d", len(r.Trace), in.Graph.NumOps())
	}
	first := r.Trace[0]
	if first.Step != 1 || first.Selected != "I" {
		t.Errorf("first step = %+v", first)
	}
	if len(first.Procs) != 2 {
		t.Errorf("first step placed on %v, want 2 processors", first.Procs)
	}
	for _, st := range r.Trace {
		if len(st.Candidates) == 0 || len(st.Pressures) == 0 {
			t.Errorf("step %d misses candidates or pressures", st.Step)
		}
	}
}

func TestNoTraceByDefault(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleBasic(in.Graph, in.Arch, in.Spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != nil {
		t.Error("trace recorded without Options.Trace")
	}
}

func TestHeuristicString(t *testing.T) {
	if Basic.String() != "basic" || FT1.String() != "ft1" || FT2.String() != "ft2" {
		t.Error("heuristic names")
	}
	if !strings.Contains(Heuristic(9).String(), "9") {
		t.Error("unknown heuristic name")
	}
	if _, err := Schedule(Heuristic(9), nil, nil, nil, 0, Options{}); err == nil {
		t.Error("unknown heuristic must error")
	}
}

func TestScheduleModesAreTagged(t *testing.T) {
	in := paperex.BusInstance()
	cases := []struct {
		h    Heuristic
		mode sched.Mode
	}{{Basic, sched.ModeBasic}, {FT1, sched.ModeFT1}, {FT2, sched.ModeFT2}}
	for _, c := range cases {
		r, err := Schedule(c.h, in.Graph, in.Arch, in.Spec, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Schedule.Mode != c.mode {
			t.Errorf("%v produced mode %v", c.h, r.Schedule.Mode)
		}
	}
}
