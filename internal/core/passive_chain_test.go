package core

import (
	"strings"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/pressure"
	"ftsched/internal/spec"
)

// These tests are the successors of the passive-chain error-propagation
// regression tests: the pre-dense engine could first discover a missing
// communication cost or an unroutable backup sender deep inside
// ft1PassiveChain, and had to propagate the error instead of silently
// dropping the hop. The dense engine front-loads those lookups — compile
// builds total comm and route tables before the greedy loop starts — so the
// same defects must now fail compilation outright, before any slot exists.

// compileFixture builds the two-op graph A -> B and a pressure table for it
// under sp (exec costs must already be set for A and B).
func compileFixture(t *testing.T, sp *spec.Spec) (*graph.Graph, *pressure.Table) {
	t.Helper()
	g := graph.New("pair")
	_ = g.AddComp("A")
	_ = g.AddComp("B")
	if err := g.Connect("A", "B"); err != nil {
		t.Fatal(err)
	}
	pt, err := pressure.Compute(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	return g, pt
}

func TestCompileRejectsMissingCommCost(t *testing.T) {
	a := arch.New("bus2")
	for _, p := range []string{"P1", "P2"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddBus("B1", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New() // no Comm(A->B, "B1") entry
	for _, op := range []string{"A", "B"} {
		for _, p := range []string{"P1", "P2"} {
			if err := sp.SetExec(op, p, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, pt := compileFixture(t, sp)
	if _, err := compile(g, a, sp, pt); err == nil {
		t.Fatal("missing comm cost: want compile error, got nil")
	} else if !strings.Contains(err.Error(), "compile") {
		t.Errorf("error should identify the compile step, got: %v", err)
	}
}

func TestCompileRejectsUnroutableProcessor(t *testing.T) {
	// P3 is isolated: no link connects it, so the all-pairs route table
	// cannot be built. In the old engine this surfaced only when an FT1
	// backup replica landed on P3 and its passive chain failed to route.
	a := arch.New("split")
	for _, p := range []string{"P1", "P2", "P3"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddLink("L12", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	for _, op := range []string{"A", "B"} {
		for _, p := range []string{"P1", "P2", "P3"} {
			if err := sp.SetExec(op, p, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, pt := compileFixture(t, sp)
	if err := sp.SetComm(graph.EdgeKey{Src: "A", Dst: "B"}, "L12", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := compile(g, a, sp, pt); err == nil {
		t.Fatal("unroutable processor: want compile error, got nil")
	} else if !strings.Contains(err.Error(), "compile") {
		t.Errorf("error should identify the compile step, got: %v", err)
	}
}

// TestCompileTablesMatchSpec spot-checks the dense tables against the
// string-keyed sources they were compiled from: exec and comm durations,
// route shapes, allowed processors in declaration order, and the pressure
// tail per op ID.
func TestCompileTablesMatchSpec(t *testing.T) {
	a := arch.New("chain3")
	for _, p := range []string{"P1", "P2", "P3"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddLink("L12", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddLink("L23", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	for i, op := range []string{"A", "B"} {
		for j, p := range []string{"P1", "P2", "P3"} {
			if err := sp.SetExec(op, p, float64(1+i+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, pt := compileFixture(t, sp)
	e := graph.EdgeKey{Src: "A", Dst: "B"}
	if err := sp.SetComm(e, "L12", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := sp.SetComm(e, "L23", 0.25); err != nil {
		t.Fatal(err)
	}
	m, err := compile(g, a, sp, pt)
	if err != nil {
		t.Fatal(err)
	}
	if m.nOps != 2 || m.nProcs != 3 || m.nLinks != 2 || m.nEdges != 1 {
		t.Fatalf("sizes = %d ops, %d procs, %d links, %d edges", m.nOps, m.nProcs, m.nLinks, m.nEdges)
	}
	for o := int32(0); o < m.nOps; o++ {
		for p := int32(0); p < m.nProcs; p++ {
			if got, want := m.exec[o*m.nProcs+p], sp.Exec(m.opNames[o], m.procNames[p]); got != want {
				t.Errorf("exec[%s on %s] = %v, want %v", m.opNames[o], m.procNames[p], got, want)
			}
		}
	}
	for l := int32(0); l < m.nLinks; l++ {
		want, err := sp.Comm(e, m.linkNames[l])
		if err != nil {
			t.Fatal(err)
		}
		if got := m.comm[0*m.nLinks+l]; got != want {
			t.Errorf("comm[%s] = %v, want %v", m.linkNames[l], got, want)
		}
	}
	// P1 -> P3 crosses both links; the dense route must mirror a.Route.
	route := m.routes[0*m.nProcs+2]
	if len(route) != 2 {
		t.Fatalf("route P1->P3 has %d hops, want 2", len(route))
	}
	if m.linkNames[route[0].link] != "L12" || m.procNames[route[0].to] != "P2" {
		t.Errorf("hop 0 = %s to %s", m.linkNames[route[0].link], m.procNames[route[0].to])
	}
	if m.linkNames[route[1].link] != "L23" || m.procNames[route[1].to] != "P3" {
		t.Errorf("hop 1 = %s to %s", m.linkNames[route[1].link], m.procNames[route[1].to])
	}
	for o := int32(0); o < m.nOps; o++ {
		if len(m.allowed[o]) != 3 {
			t.Errorf("allowed[%s] = %d procs, want 3", m.opNames[o], len(m.allowed[o]))
		}
		if got, want := m.sigma.Sigma(o, 0, 0), pt.Sigma(m.opNames[o], 0, 0); got != want {
			t.Errorf("sigma[%s] = %v, want %v", m.opNames[o], got, want)
		}
	}
	// Edge A->B must link op IDs 0 -> 1 with one predecessor edge on B.
	if m.edgeSrc[0] != 0 || m.edgeDst[0] != 1 {
		t.Errorf("edge endpoints = %d -> %d", m.edgeSrc[0], m.edgeDst[0])
	}
	if len(m.predEdges[1]) != 1 || m.predEdges[1][0].pred != 0 || m.predEdges[1][0].edge != 0 {
		t.Errorf("predEdges[B] = %+v", m.predEdges[1])
	}
	if len(m.succs[0]) != 1 || m.succs[0][0] != 1 {
		t.Errorf("succs[A] = %v", m.succs[0])
	}
}
