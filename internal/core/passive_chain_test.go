package core

import (
	"strings"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// TestFT1PassiveChainErrors is the regression test for the former silent
// error swallowing in ft1PassiveChain: a backup hop whose communication cost
// or route cannot be resolved must fail the chain, not drop the hop. The
// builder is assembled by hand because newBuilder's spec validation rejects
// such inputs before the chain is ever reached.
func TestFT1PassiveChainErrors(t *testing.T) {
	e := graph.EdgeKey{Src: "A", Dst: "B"}

	newChainBuilder := func(a *arch.Architecture, sp *spec.Spec, reps []*sched.OpSlot) *builder {
		return &builder{
			a: a, sp: sp,
			s:        sched.New(sched.ModeFT1, 1),
			reps:     map[string][]*sched.OpSlot{"A": reps},
			passDone: make(map[passKey]float64),
		}
	}

	t.Run("missing bus comm cost", func(t *testing.T) {
		a := arch.New("bus2")
		for _, p := range []string{"P1", "P2"} {
			if err := a.AddProcessor(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.AddBus("B1", "P1", "P2"); err != nil {
			t.Fatal(err)
		}
		sp := spec.New() // no Comm(e, "B1") entry
		b := newChainBuilder(a, sp, []*sched.OpSlot{
			{Op: "A", Proc: "P1", Replica: 0, End: 1},
			{Op: "A", Proc: "P2", Replica: 1, End: 2},
		})
		err := b.ft1PassiveChain(e, "B1", "", 3)
		if err == nil {
			t.Fatal("missing bus comm cost: want error, got nil")
		}
		if !strings.Contains(err.Error(), "passive backup") {
			t.Errorf("error should identify the passive backup chain, got: %v", err)
		}
		if got := b.s.NumPassiveComms(); got != 0 {
			t.Errorf("failed chain must not leave partial slots, got %d", got)
		}
	})

	t.Run("unroutable backup sender", func(t *testing.T) {
		// P3 is isolated: no link connects it, so Route(P3, P2) fails.
		a := arch.New("split")
		for _, p := range []string{"P1", "P2", "P3"} {
			if err := a.AddProcessor(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.AddLink("L12", "P1", "P2"); err != nil {
			t.Fatal(err)
		}
		sp := spec.New()
		if err := sp.SetComm(e, "L12", 1); err != nil {
			t.Fatal(err)
		}
		b := newChainBuilder(a, sp, []*sched.OpSlot{
			{Op: "A", Proc: "P1", Replica: 0, End: 1},
			{Op: "A", Proc: "P3", Replica: 1, End: 2},
		})
		err := b.ft1PassiveChain(e, "", "P2", 3)
		if err == nil {
			t.Fatal("unroutable backup sender: want error, got nil")
		}
		if !strings.Contains(err.Error(), "passive backup") {
			t.Errorf("error should identify the passive backup chain, got: %v", err)
		}
	})

	t.Run("missing hop comm cost", func(t *testing.T) {
		// The backup's route P3 -> P2 crosses L32, which has no comm cost.
		a := arch.New("chain3")
		for _, p := range []string{"P1", "P2", "P3"} {
			if err := a.AddProcessor(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.AddLink("L12", "P1", "P2"); err != nil {
			t.Fatal(err)
		}
		if err := a.AddLink("L32", "P3", "P2"); err != nil {
			t.Fatal(err)
		}
		sp := spec.New()
		if err := sp.SetComm(e, "L12", 1); err != nil {
			t.Fatal(err)
		}
		b := newChainBuilder(a, sp, []*sched.OpSlot{
			{Op: "A", Proc: "P1", Replica: 0, End: 1},
			{Op: "A", Proc: "P3", Replica: 1, End: 2},
		})
		err := b.ft1PassiveChain(e, "", "P2", 3)
		if err == nil {
			t.Fatal("missing hop comm cost: want error, got nil")
		}
		if !strings.Contains(err.Error(), "passive backup") {
			t.Errorf("error should identify the passive backup chain, got: %v", err)
		}
	})
}
