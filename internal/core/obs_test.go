package core

import (
	"testing"

	"ftsched/internal/obs"
)

// TestObsEquivalence proves the observability layer never influences the
// produced schedule: for every golden-matrix case, an instrumented run
// (serial and with the worker pool) dumps byte-identically to the
// uninstrumented one. Under -race this doubles as the data-race proof for
// counters incremented from Options.Workers pool goroutines.
func TestObsEquivalence(t *testing.T) {
	for _, c := range goldenMatrix() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			in := c.instance(t)
			opts := Options{Seed: c.seed}
			plain, err := Schedule(c.h, in.Graph, in.Arch, in.Spec, c.k, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := dumpSchedule(plain.Schedule)
			for _, workers := range []int{1, 4} {
				sink := obs.NewSink()
				o := opts
				o.Workers = workers
				o.Obs = sink
				got, err := Schedule(c.h, in.Graph, in.Arch, in.Spec, c.k, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if dump := dumpSchedule(got.Schedule); dump != want {
					t.Errorf("workers=%d: instrumented schedule differs from uninstrumented:\n--- want\n%s--- got\n%s",
						workers, want, dump)
				}
				snap := sink.Snapshot()
				if snap["core.steps"] == 0 || snap["core.evals"] == 0 {
					t.Errorf("workers=%d: core counters missing from snapshot: %v", workers, snap)
				}
				// Seeded runs evaluate serially regardless of Workers (see
				// Options.Workers), so the pool counters stay zero there.
				if workers > 1 && c.seed == 0 && snap["core.pool.batches"] == 0 {
					t.Errorf("workers=%d: pool counters missing from snapshot: %v", workers, snap)
				}
			}
		})
	}
}

// TestObsCounterConsistency checks the arithmetic relations between the
// engine's counters on one instrumented run.
func TestObsCounterConsistency(t *testing.T) {
	c := goldenMatrix()[3] // ft1 on a bus, 24x4
	in := c.instance(t)
	sink := obs.NewSink()
	if _, err := Schedule(c.h, in.Graph, in.Arch, in.Spec, c.k, Options{Obs: sink, Seed: c.seed}); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	// One greedy step per graph operation (the workload's comps plus its
	// generated extios), so steps is at least the requested comp count.
	if snap["core.steps"] < int64(c.ops) {
		t.Errorf("core.steps = %d, want >= one per comp operation (%d)", snap["core.steps"], c.ops)
	}
	if snap["core.evals"] < snap["core.steps"] {
		t.Errorf("core.evals (%d) below core.steps (%d): every step evaluates at least once",
			snap["core.evals"], snap["core.steps"])
	}
	if snap["core.gap.memo.hits"] > snap["core.gap.searches"] {
		t.Errorf("gap memo hits (%d) exceed gap searches (%d)",
			snap["core.gap.memo.hits"], snap["core.gap.searches"])
	}
	timers := sink.Timers()
	for _, name := range []string{"evaluate", "commit"} {
		if timers[name].Count != snap["core.steps"] {
			t.Errorf("timer %q count = %d, want one per step (%d)", name, timers[name].Count, snap["core.steps"])
		}
	}
}
