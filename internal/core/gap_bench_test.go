package core

import (
	"fmt"
	"testing"
)

// packedBusy builds a busy list of n back-to-back transfers with gaps too
// small for a unit-duration request: the worst case for the linear reference
// scan, which must walk every gap before concluding only the tail fits. This
// is the shape a saturated bus link takes in the 400x8 FT1 benchmark, where
// earliestGap dominated the profile before the block index landed.
func packedBusy(n int) []interval {
	busy := make([]interval, n)
	t := 0.0
	for i := range busy {
		busy[i] = interval{t, t + 1}
		t += 1.5 // 0.5-wide gaps: visible, but below the unit duration
	}
	return busy
}

// BenchmarkEarliestGapPacked measures one gap search over a packed link,
// reference scan versus the block-indexed occupancy, at the list sizes a
// saturated bus reaches mid-run.
func BenchmarkEarliestGapPacked(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		busy := packedBusy(n)
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := earliestGap(busy, 0, 1); got != busy[n-1].end {
					b.Fatalf("gap at %v, want tail %v", got, busy[n-1].end)
				}
			}
		})
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			var occ occupancy
			for _, iv := range busy {
				occ.insert(iv.start, iv.end)
			}
			if !occ.clean {
				b.Fatal("packed list should stay clean")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := occ.search(0, 1); got != busy[n-1].end {
					b.Fatalf("gap at %v, want tail %v", got, busy[n-1].end)
				}
			}
		})
	}
}

// BenchmarkInsertIntervalFrontShift measures the O(n) memmove worst case: an
// insert landing at the front of an n-interval list shifts every element. The
// slice is re-primed each iteration by copying a template, so the measured
// cost is one copy plus one front insert at steady length.
func BenchmarkInsertIntervalFrontShift(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			template := packedBusy(n)
			for i := range template {
				template[i].start += 10 // leave room at the front
				template[i].end += 10
			}
			scratch := make([]interval, n, n+1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(scratch, template)
				busy := insertInterval(scratch[:n], 0, 1)
				if busy[0].start != 0 {
					b.Fatal("front insert did not land first")
				}
			}
		})
	}
}

// BenchmarkOccupancyInsertAppend measures the common case the scheduler hits
// on every commit: appending at the tail of a growing busy list, including
// the incremental block-index maintenance.
func BenchmarkOccupancyInsertAppend(b *testing.B) {
	const n = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var occ occupancy
		t := 0.0
		for j := 0; j < n; j++ {
			occ.insert(t, t+1)
			t += 1.5
		}
	}
}
