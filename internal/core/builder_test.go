package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

func TestEarliestGap(t *testing.T) {
	busy := []interval{{1, 2}, {3, 5}, {6, 7}}
	cases := []struct {
		ready, dur, want float64
	}{
		{0, 1, 0},   // fits before first interval
		{0, 1.5, 7}, // too big for every gap, lands after the last
		{0, 0.5, 0}, // fits at origin
		{1.5, 0.5, 2},
		{2, 1, 2},   // exactly fills the [2,3] gap
		{4, 1, 5},   // inside a busy window, shifts to its end
		{10, 3, 10}, // after everything
		{5.5, 0.5, 5.5},
	}
	for _, c := range cases {
		if got := earliestGap(busy, c.ready, c.dur); got != c.want {
			t.Errorf("earliestGap(ready=%v,dur=%v) = %v, want %v", c.ready, c.dur, got, c.want)
		}
	}
	if got := earliestGap(nil, 3, 1); got != 3 {
		t.Errorf("empty link: %v", got)
	}
}

func TestInsertIntervalKeepsOrder(t *testing.T) {
	var busy []interval
	for _, iv := range []interval{{3, 4}, {1, 2}, {5, 6}, {0, 0.5}} {
		busy = insertInterval(busy, iv.start, iv.end)
	}
	for i := 1; i < len(busy); i++ {
		if busy[i-1].start > busy[i].start {
			t.Fatalf("intervals out of order: %v", busy)
		}
	}
}

func TestQuickGapNeverOverlaps(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var busy []interval
		for i := 0; i < int(n%20)+1; i++ {
			ready := r.Float64() * 10
			dur := r.Float64() + 0.01
			start := earliestGap(busy, ready, dur)
			if start < ready-1e-9 {
				return false
			}
			// The chosen window must not overlap any busy interval.
			for _, iv := range busy {
				if start < iv.end-1e-9 && iv.start < start+dur-1e-9 {
					return false
				}
			}
			busy = insertInterval(busy, start, start+dur)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// memFixture builds a control loop with state: in -> step -> out, with a mem
// feeding step and updated by step.
func memFixture(t *testing.T) (*graph.Graph, *arch.Architecture, *spec.Spec) {
	t.Helper()
	g := graph.New("loop")
	if err := g.AddExtIO("in"); err != nil {
		t.Fatal(err)
	}
	_ = g.AddComp("step")
	_ = g.AddMem("state")
	_ = g.AddExtIO("out")
	for _, e := range [][2]string{{"in", "step"}, {"state", "step"}, {"step", "state"}, {"step", "out"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	a := arch.New("a")
	for _, p := range []string{"P1", "P2", "P3"} {
		_ = a.AddProcessor(p)
	}
	if err := a.AddBus("bus", "P1", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	for _, op := range []string{"in", "step", "state", "out"} {
		for _, p := range []string{"P1", "P2", "P3"} {
			_ = sp.SetExec(op, p, 1)
		}
	}
	for _, e := range g.Edges() {
		_ = sp.SetCommUniform(a, e.Key(), 0.5)
	}
	return g, a, sp
}

func TestMemFeedbackLoopSchedules(t *testing.T) {
	g, a, sp := memFixture(t)
	for _, h := range []Heuristic{Basic, FT1, FT2} {
		r, err := Schedule(h, g, a, sp, 1, Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := r.Schedule.Validate(g, a, sp); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		// The delayed edge step->state must produce a state-update transfer
		// to every mem replica not colocated with a replica of step.
		for _, mrep := range r.Schedule.Replicas("state") {
			if r.Schedule.ReplicaOn("step", mrep.Proc) != nil {
				continue // intra-processor update
			}
			found := false
			for _, hops := range r.Schedule.Transfers() {
				last := hops[len(hops)-1]
				if last.Edge.Src != "step" || last.Edge.Dst != "state" || last.Passive {
					continue
				}
				if last.DstProc == mrep.Proc || last.Broadcast {
					found = true
				}
			}
			if !found {
				t.Errorf("%v: no state-update transfer to mem replica on %q", h, mrep.Proc)
			}
		}
	}
}

func TestSelectCandidatePicksMaxUrgency(t *testing.T) {
	b := &builder{}
	evals := []evaluation{
		{op: 0, urgency: -2},
		{op: 1, urgency: -1},
		{op: 2, urgency: -3},
	}
	if got := b.selectCandidate(evals); got != 1 {
		t.Errorf("selectCandidate = %d, want 1 (op 1)", got)
	}
}

func TestSelectCandidateTieDeterministic(t *testing.T) {
	b := &builder{}
	evals := []evaluation{
		{op: 0, urgency: -1},
		{op: 1, urgency: -1},
	}
	if got := b.selectCandidate(evals); got != 0 {
		t.Errorf("deterministic tie-break = %d, want 0 (first declared)", got)
	}
}

func TestSelectCandidateTieRandomized(t *testing.T) {
	evals := []evaluation{
		{op: 0, urgency: -1},
		{op: 1, urgency: -1},
		{op: 2, urgency: -1},
	}
	seen := map[int]bool{}
	for seed := int64(1); seed <= 30; seed++ {
		b := &builder{rng: rand.New(rand.NewSource(seed))}
		seen[b.selectCandidate(evals)] = true
	}
	if len(seen) < 2 {
		t.Errorf("randomized tie-break never varied: %v", seen)
	}
}

// randomInstance generates a random layered problem for property tests.
func randomInstance(r *rand.Rand, nOps, nProcs int, bus bool) (*graph.Graph, *arch.Architecture, *spec.Spec) {
	g := graph.New("rand")
	for i := 0; i < nOps; i++ {
		_ = g.AddComp(fmt.Sprintf("op%d", i))
	}
	for i := 0; i < nOps; i++ {
		for j := i + 1; j < nOps; j++ {
			if r.Intn(3) == 0 {
				_ = g.Connect(fmt.Sprintf("op%d", i), fmt.Sprintf("op%d", j))
			}
		}
	}
	a := arch.New("rand")
	procs := make([]string, nProcs)
	for i := range procs {
		procs[i] = fmt.Sprintf("P%d", i)
		_ = a.AddProcessor(procs[i])
	}
	if bus {
		_ = a.AddBus("bus", procs...)
	} else {
		for i := 0; i < nProcs; i++ {
			for j := i + 1; j < nProcs; j++ {
				_ = a.AddLink(fmt.Sprintf("L%d_%d", i, j), procs[i], procs[j])
			}
		}
	}
	sp := spec.New()
	for _, op := range g.OpNames() {
		for _, p := range procs {
			_ = sp.SetExec(op, p, 0.5+r.Float64()*3)
		}
	}
	for _, e := range g.Edges() {
		_ = sp.SetCommUniform(a, e.Key(), 0.1+r.Float64())
	}
	return g, a, sp
}

func TestQuickAllHeuristicsProduceValidSchedules(t *testing.T) {
	f := func(seed int64, szOps, szProcs uint8, bus bool, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nOps := int(szOps%10) + 2
		nProcs := int(szProcs%3) + 2
		k := int(kRaw) % nProcs // K+1 <= nProcs so always feasible
		g, a, sp := randomInstance(r, nOps, nProcs, bus)
		for _, h := range []Heuristic{Basic, FT1, FT2} {
			res, err := Schedule(h, g, a, sp, k, Options{})
			if err != nil {
				t.Logf("seed=%d h=%v: %v", seed, h, err)
				return false
			}
			if err := res.Schedule.Validate(g, a, sp); err != nil {
				t.Logf("seed=%d h=%v invalid: %v", seed, h, err)
				return false
			}
			if res.Schedule.Makespan() <= 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFTReplicationDegree(t *testing.T) {
	f := func(seed int64, szOps uint8, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nOps := int(szOps%8) + 2
		nProcs := 4
		k := int(kRaw % 3)
		g, a, sp := randomInstance(r, nOps, nProcs, true)
		for _, h := range []Heuristic{FT1, FT2} {
			res, err := Schedule(h, g, a, sp, k, Options{})
			if err != nil {
				return false
			}
			for _, op := range g.OpNames() {
				if got := len(res.Schedule.Replicas(op)); got != k+1 {
					t.Logf("seed=%d h=%v op=%s replicas=%d want=%d", seed, h, op, got, k+1)
					return false
				}
			}
			if res.MinReplication != k+1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFT1ActiveSendersAreMains(t *testing.T) {
	f := func(seed int64, szOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g, a, sp := randomInstance(r, int(szOps%8)+2, 3, true)
		res, err := ScheduleFT1(g, a, sp, 1, Options{})
		if err != nil {
			return false
		}
		for _, l := range res.Schedule.Links() {
			for _, c := range res.Schedule.LinkSlots(l) {
				if !c.Passive && c.SenderRank != 0 {
					return false
				}
				if c.Passive && c.SenderRank == 0 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
