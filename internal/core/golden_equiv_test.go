package core

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ftsched/internal/sched"
	"ftsched/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden schedule dumps")

// goldenCase is one cell of the equivalence matrix: the incremental (and
// parallel) scheduler must reproduce, byte for byte, the schedule the
// pre-optimization serial builder emitted for it.
type goldenCase struct {
	name string
	h    Heuristic
	k    int
	bus  bool
	ring bool // point-to-point ring: multi-hop routes instead of a full mesh
	ops  int
	prc  int
	seed int64 // tie-breaking seed (0 = deterministic)
	inst int64 // instance-generator seed
}

func goldenMatrix() []goldenCase {
	var cases []goldenCase
	add := func(h Heuristic, k int, bus bool, ops, prc int, seed int64) {
		arch := "p2p"
		if bus {
			arch = "bus"
		}
		cases = append(cases, goldenCase{
			name: fmt.Sprintf("%s_k%d_%s_%dx%d_s%d", h, k, arch, ops, prc, seed),
			h:    h, k: k, bus: bus, ops: ops, prc: prc, seed: seed,
			inst: int64(1000 + len(cases)),
		})
	}
	for _, bus := range []bool{true, false} {
		add(Basic, 0, bus, 12, 3, 0)
		add(Basic, 0, bus, 24, 4, 7)
		add(FT1, 1, bus, 12, 3, 0)
		add(FT1, 1, bus, 24, 4, 7)
		add(FT1, 2, bus, 24, 4, 0)
		add(FT2, 1, bus, 12, 3, 0)
		add(FT2, 1, bus, 24, 4, 7)
		add(FT2, 2, bus, 24, 4, 0)
	}
	// Point-to-point multi-hop cases: a 6-processor ring (diameter 3), so
	// FT2's replicated transfers exercise the route tables on paths of up to
	// three hops — the full-mesh p2p cases above are all single-hop.
	addRing := func(h Heuristic, k int, ops, prc int, seed int64) {
		cases = append(cases, goldenCase{
			name: fmt.Sprintf("%s_k%d_ring_%dx%d_s%d", h, k, ops, prc, seed),
			h:    h, k: k, ring: true, ops: ops, prc: prc, seed: seed,
			inst: int64(1000 + len(cases)),
		})
	}
	addRing(FT2, 1, 24, 6, 0)
	addRing(FT2, 2, 24, 6, 3)
	return cases
}

func (c goldenCase) instance(t testing.TB) *workload.Instance {
	t.Helper()
	if c.ring {
		r := rand.New(rand.NewSource(c.inst))
		g, err := workload.LayeredDAG(r, workload.GraphParams{Ops: c.ops, Width: c.ops / 4, EdgeProb: 0.4, WithIO: true})
		if err != nil {
			t.Fatal(err)
		}
		a, err := workload.Ring(c.prc)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := workload.Costs(r, g, a, workload.CostParams{MeanExec: 2, Spread: 0.5, CCR: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		return &workload.Instance{Graph: g, Arch: a, Spec: sp}
	}
	in, err := workload.RandomInstance(rand.New(rand.NewSource(c.inst)), c.ops, c.prc, c.bus, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// dumpSchedule renders a schedule canonically and losslessly: every op slot
// and comm slot with full float64 precision, in deterministic order.
func dumpSchedule(s *sched.Schedule) string {
	var b strings.Builder
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, "mode=%s k=%d makespan=%s\n", s.Mode, s.K, f(s.Makespan()))
	for _, p := range s.Procs() {
		for _, sl := range s.ProcSlots(p) {
			fmt.Fprintf(&b, "op %s proc=%s rep=%d [%s %s]\n", sl.Op, sl.Proc, sl.Replica, f(sl.Start), f(sl.End))
		}
	}
	for _, l := range s.Links() {
		for _, c := range s.LinkSlots(l) {
			fmt.Fprintf(&b, "comm %s link=%s from=%s to=%s src=%s dst=%s rank=%d id=%d hop=%d [%s %s] passive=%v timeout=%s bcast=%v\n",
				c.Edge, c.Link, c.From, c.To, c.SrcProc, c.DstProc,
				c.SenderRank, c.TransferID, c.Hop, f(c.Start), f(c.End),
				c.Passive, f(c.Timeout), c.Broadcast)
		}
	}
	return b.String()
}

// TestGoldenEquivalence checks the scheduler against the committed dumps of
// the pre-incremental serial builder: same op slots, same comm slots, same
// makespan, to the last bit. Run with -update to regenerate the dumps (only
// legitimate when the heuristic itself intentionally changes).
func TestGoldenEquivalence(t *testing.T) {
	for _, c := range goldenMatrix() {
		t.Run(c.name, func(t *testing.T) {
			in := c.instance(t)
			res, err := Schedule(c.h, in.Graph, in.Arch, in.Spec, c.k, Options{Seed: c.seed})
			if err != nil {
				t.Fatal(err)
			}
			got := dumpSchedule(res.Schedule)
			path := filepath.Join("testdata", "golden", c.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden dump (run with -update on the serial baseline): %v", err)
			}
			if got != string(want) {
				t.Errorf("schedule diverged from the serial baseline\n%s", diffLines(string(want), got))
			}
			// The worker pool must be invisible in the output: serial
			// (Workers 1) and parallel (Workers 4 and 8) evaluation all have
			// to reproduce the same bytes.
			for _, w := range []int{1, 4, 8} {
				res, err := Schedule(c.h, in.Graph, in.Arch, in.Spec, c.k, Options{Seed: c.seed, Workers: w})
				if err != nil {
					t.Fatalf("Workers=%d: %v", w, err)
				}
				if g := dumpSchedule(res.Schedule); g != string(want) {
					t.Errorf("Workers=%d diverged from the serial baseline\n%s", w, diffLines(string(want), g))
				}
			}
		})
	}
}

// diffLines reports the first few differing lines between two dumps.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
			if shown++; shown >= 5 {
				b.WriteString("  ...\n")
				break
			}
		}
	}
	return b.String()
}
