package core

import (
	"fmt"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/pressure"
	"ftsched/internal/spec"
)

// model is the dense compilation of one scheduling problem: every operation,
// processor, link, and data-dependency is interned into a contiguous integer
// ID, and every table the hot loop consults (execution durations, per-hop
// communication durations, routes, shared buses, allowed processors,
// predecessor edges, pressure tails) is a flat array indexed by those IDs.
//
// Compilation runs once per schedule, after validation; from then on the
// greedy loop performs no map lookup and no string hash. The ID spaces are:
//
//	op:   index into g.OpNames()          (declaration order)
//	proc: index into a.ProcessorNames()   (declaration order)
//	link: index into a.LinkNames()        (declaration order)
//	edge: index into g.Edges()            (source-then-destination order)
//
// Declaration order is load-bearing: tie-breaking in candidate evaluation
// and selection follows it, so the dense engine inherits the exact
// deterministic behavior of the name-keyed one. Names reappear only at the
// boundary, when the finished arena state is materialized into a
// *sched.Schedule.
//
// The tables are total by construction: spec.Validate guarantees a
// communication duration for every (edge, link) pair and arch.Validate
// guarantees a connected network, so route and comm lookups cannot fail
// after compile returns. compile still checks and reports any hole as a hard
// error — a missing entry silently read as zero would corrupt schedules, not
// crash them.
type model struct {
	g *graph.Graph
	a *arch.Architecture

	opNames   []string
	procNames []string
	linkNames []string
	edgeKeys  []graph.EdgeKey

	nOps, nProcs, nLinks, nEdges int32

	// exec[op*nProcs+proc] is the WCET, +Inf where the placement is
	// forbidden (spec.Exec's convention).
	exec []float64
	// comm[edge*nLinks+link] is the per-hop transfer duration; total.
	comm []float64

	// routes[src*nProcs+dst] is the static route between two processors
	// (empty for src == dst). bus[src*nProcs+dst] is the earliest-declared
	// bus attaching both, or -1.
	routes [][]denseHop
	bus    []int32

	// allowed[op] lists the processors able to run op, declaration order.
	allowed [][]int32
	// predEdges[op] lists op's strict predecessors (with the connecting edge)
	// in graph insertion order; succs[op] the strict successors likewise.
	predEdges [][]predEdge
	succs     [][]int32
	// delayedEdges lists the delayed (mem state-update) edges in g.Edges()
	// order, for the post-loop commit pass.
	delayedEdges []int32
	// edgeSrc/edgeDst are the endpoints of every edge as op IDs.
	edgeSrc []int32
	edgeDst []int32

	// sigma is the compiled pressure table (branchless σ).
	sigma pressure.Dense
}

// denseHop is one routed hop: traverse link to reach processor to.
type denseHop struct {
	link int32
	to   int32
}

// predEdge is one strict predecessor of an operation together with the edge
// ID connecting the two, so arrival computations need no edge lookup.
type predEdge struct {
	pred int32
	edge int32
}

// compile interns the problem into a model. g, a, and sp must already be
// validated (newBuilder does); pt is the string-keyed pressure table the
// model densifies. Architecture route and bus tables are warmed through
// arch.Precompute, so the returned model is safe for concurrent read-only
// use by the evaluation worker pool.
func compile(g *graph.Graph, a *arch.Architecture, sp *spec.Spec, pt *pressure.Table) (*model, error) {
	a.Precompute()
	m := &model{
		g:         g,
		a:         a,
		opNames:   g.OpNames(),
		procNames: a.ProcessorNames(),
		linkNames: a.LinkNames(),
	}
	m.nOps = int32(len(m.opNames))
	m.nProcs = int32(len(m.procNames))
	m.nLinks = int32(len(m.linkNames))

	opID := make(map[string]int32, m.nOps)
	for i, op := range m.opNames {
		opID[op] = int32(i)
	}
	linkID := make(map[string]int32, m.nLinks)
	for i, l := range m.linkNames {
		linkID[l] = int32(i)
	}
	procID := make(map[string]int32, m.nProcs)
	for i, p := range m.procNames {
		procID[p] = int32(i)
	}

	// Execution table and allowed processors, declaration order.
	m.exec = make([]float64, int(m.nOps)*int(m.nProcs))
	m.allowed = make([][]int32, m.nOps)
	allowedArena := make([]int32, 0, int(m.nOps)*int(m.nProcs))
	for o := int32(0); o < m.nOps; o++ {
		start := len(allowedArena)
		for p := int32(0); p < m.nProcs; p++ {
			d := sp.Exec(m.opNames[o], m.procNames[p])
			m.exec[o*m.nProcs+p] = d
			if sp.CanRun(m.opNames[o], m.procNames[p]) {
				allowedArena = append(allowedArena, p)
			}
		}
		m.allowed[o] = allowedArena[start:len(allowedArena):len(allowedArena)]
	}

	// Edge interning and the total communication table.
	edges := g.Edges()
	m.nEdges = int32(len(edges))
	m.edgeKeys = make([]graph.EdgeKey, m.nEdges)
	m.edgeSrc = make([]int32, m.nEdges)
	m.edgeDst = make([]int32, m.nEdges)
	m.comm = make([]float64, int(m.nEdges)*int(m.nLinks))
	for e, edge := range edges {
		key := edge.Key()
		m.edgeKeys[e] = key
		m.edgeSrc[e] = opID[key.Src]
		m.edgeDst[e] = opID[key.Dst]
		for l := int32(0); l < m.nLinks; l++ {
			d, err := sp.Comm(key, m.linkNames[l])
			if err != nil {
				return nil, fmt.Errorf("core: compile: %w", err)
			}
			m.comm[int32(e)*m.nLinks+l] = d
		}
		if edge.Delayed() {
			m.delayedEdges = append(m.delayedEdges, int32(e))
		}
	}

	// Predecessor edges and strict successors, graph insertion order.
	m.predEdges = make([][]predEdge, m.nOps)
	m.succs = make([][]int32, m.nOps)
	edgeID := make(map[graph.EdgeKey]int32, m.nEdges)
	for e, key := range m.edgeKeys {
		edgeID[key] = int32(e)
	}
	for o := int32(0); o < m.nOps; o++ {
		name := m.opNames[o]
		for _, pred := range g.StrictPreds(name) {
			m.predEdges[o] = append(m.predEdges[o], predEdge{
				pred: opID[pred],
				edge: edgeID[graph.EdgeKey{Src: pred, Dst: name}],
			})
		}
		for _, succ := range g.StrictSuccs(name) {
			m.succs[o] = append(m.succs[o], opID[succ])
		}
	}

	// All-pairs routes and shared buses. Both come from the architecture's
	// precomputed tables; a missing route means a disconnected network that
	// validation should have rejected, so it is a hard error here.
	m.routes = make([][]denseHop, int(m.nProcs)*int(m.nProcs))
	m.bus = make([]int32, int(m.nProcs)*int(m.nProcs))
	for s := int32(0); s < m.nProcs; s++ {
		for d := int32(0); d < m.nProcs; d++ {
			idx := s*m.nProcs + d
			m.bus[idx] = -1
			if b := a.BusBetween(m.procNames[s], m.procNames[d]); b != "" {
				m.bus[idx] = linkID[b]
			}
			if s == d {
				continue
			}
			route, err := a.Route(m.procNames[s], m.procNames[d])
			if err != nil {
				return nil, fmt.Errorf("core: compile: %w", err)
			}
			hops := make([]denseHop, len(route))
			for i, h := range route {
				hops[i] = denseHop{link: linkID[h.Link], to: procID[h.To]}
			}
			m.routes[idx] = hops
		}
	}

	sigma, err := pt.Dense(m.opNames)
	if err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	m.sigma = sigma
	return m, nil
}
