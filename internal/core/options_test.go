package core

import (
	"errors"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/spec"
)

func TestDeadlineMet(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{Deadline: 10})
	if err != nil {
		t.Fatalf("deadline 10 should be met (makespan 9.4): %v", err)
	}
	if r.Schedule.Makespan() > 10 {
		t.Error("makespan exceeds deadline")
	}
}

func TestDeadlineMissed(t *testing.T) {
	in := paperex.BusInstance()
	_, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{Deadline: 9})
	if !errors.Is(err, ErrDeadlineMissed) {
		t.Fatalf("want ErrDeadlineMissed, got %v", err)
	}
}

func TestDeadlineTunedSearchesSeeds(t *testing.T) {
	in := paperex.BusInstance()
	// The deterministic basic run gives 9.9; a deadline of 8.5 is only met
	// by seeded runs (best 8.0), so the tuned search must succeed where the
	// single run fails.
	if _, err := ScheduleBasic(in.Graph, in.Arch, in.Spec, Options{Deadline: 8.5}); !errors.Is(err, ErrDeadlineMissed) {
		t.Fatalf("deterministic run should miss 8.5: %v", err)
	}
	r, err := ScheduleTuned(Basic, in.Graph, in.Arch, in.Spec, 0, 50, Options{Deadline: 8.5})
	if err != nil {
		t.Fatalf("tuned search should meet 8.5: %v", err)
	}
	if r.Schedule.Makespan() > 8.5 {
		t.Error("tuned schedule misses the deadline")
	}
	if _, err := ScheduleTuned(Basic, in.Graph, in.Arch, in.Spec, 0, 50, Options{Deadline: 1}); !errors.Is(err, ErrDeadlineMissed) {
		t.Fatalf("impossible deadline must fail: %v", err)
	}
}

// fanOutFixture pins a producer to P1/P2 and makes four consumers cheap
// only on P3/P4, so each dependency has two remote consumer processors: a
// bus broadcast serves both with one transfer, the ablated mode needs two.
func fanOutFixture(t *testing.T) (*graph.Graph, *arch.Architecture, *spec.Spec) {
	t.Helper()
	g := graph.New("fan")
	if err := g.AddComp("src"); err != nil {
		t.Fatal(err)
	}
	consumers := []string{"y1", "y2", "y3", "y4"}
	for _, c := range consumers {
		if err := g.AddComp(c); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect("src", c); err != nil {
			t.Fatal(err)
		}
	}
	a := arch.New("bus4")
	procs := []string{"P1", "P2", "P3", "P4"}
	for _, p := range procs {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddBus("bus", procs...); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	for i, p := range procs {
		srcD, consD := 1.0, 50.0
		if i >= 2 { // P3, P4
			srcD, consD = 50.0, 1.0
		}
		if err := sp.SetExec("src", p, srcD); err != nil {
			t.Fatal(err)
		}
		for _, c := range consumers {
			if err := sp.SetExec(c, p, consD); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range g.Edges() {
		if err := sp.SetCommUniform(a, e.Key(), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return g, a, sp
}

func TestNoBroadcastAblation(t *testing.T) {
	g, a, sp := fanOutFixture(t)
	with, err := ScheduleFT1(g, a, sp, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := ScheduleFT1(g, a, sp, 1, Options{NoBroadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"with": with, "without": without} {
		if err := r.Schedule.Validate(g, a, sp); err != nil {
			t.Fatalf("%s-broadcast schedule invalid: %v", name, err)
		}
	}
	// One broadcast per dependency vs. one transfer per remote consumer
	// processor: the ablated schedule must carry strictly more traffic.
	if without.Schedule.NumActiveComms() <= with.Schedule.NumActiveComms() {
		t.Errorf("no-broadcast comms (%d) should exceed broadcast comms (%d)",
			without.Schedule.NumActiveComms(), with.Schedule.NumActiveComms())
	}
	if without.Schedule.TotalActiveCommTime() <= with.Schedule.TotalActiveCommTime() {
		t.Errorf("no-broadcast comm time (%v) should exceed broadcast comm time (%v)",
			without.Schedule.TotalActiveCommTime(), with.Schedule.TotalActiveCommTime())
	}
	// No broadcast slots at all in the ablated schedule.
	for _, l := range without.Schedule.Links() {
		for _, c := range without.Schedule.LinkSlots(l) {
			if c.Broadcast {
				t.Fatal("ablated schedule still contains broadcast transfers")
			}
		}
	}
	// The paper instance still schedules and validates under the ablation.
	in := paperex.BusInstance()
	abl, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{NoBroadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := abl.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatal(err)
	}
}

func TestNoPressureAblation(t *testing.T) {
	in := paperex.BusInstance()
	r, err := ScheduleBasic(in.Graph, in.Arch, in.Spec, Options{NoPressure: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatalf("no-pressure schedule invalid: %v", err)
	}
	for _, h := range []Heuristic{FT1, FT2} {
		r, err := Schedule(h, in.Graph, in.Arch, in.Spec, 1, Options{NoPressure: true})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}
