// Package core implements the paper's scheduling heuristics: the
// non-fault-tolerant SynDEx baseline (Section 4) and the two fault-tolerant
// greedy list-scheduling heuristics (Sections 6 and 7).
//
// All three share the same skeleton (Figs. 11 and 20):
//
//	S0: candidates = operations whose strict predecessors are all scheduled
//	Sn: while candidates remain:
//	  mSn.1: for each candidate, evaluate the schedule pressure σ on every
//	         allowed processor and keep the best one (basic) or the best
//	         K+1 (fault-tolerant);
//	  mSn.2: select the candidate whose kept pressure is greatest (the most
//	         urgent operation);
//	  mSn.3: commit the operation to its processor(s), together with the
//	         communications implied by the placement;
//	  mSn.4: update the candidate list.
//
// They differ in the replication degree and in the communications committed
// at mSn.3:
//
//   - ScheduleBasic places one replica and one active transfer per
//     inter-processor dependency.
//   - ScheduleFT1 places K+1 replicas; only the main replica of a producer
//     sends (one broadcast per bus), and each backup sender gets a passive,
//     timeout-guarded reservation that activates only after every
//     earlier-ranked sender has been detected faulty (time redundancy).
//   - ScheduleFT2 places K+1 replicas and replicates the transfers too:
//     every replica sends to every processor hosting a replica of the
//     consumer, except processors that already host a replica of the
//     producer (software redundancy of comms; first arrival wins).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// Options tune the heuristics. The zero value is ready to use.
type Options struct {
	// AllowDegraded makes the fault-tolerant heuristics replicate an
	// operation on every allowed processor when fewer than K+1 exist,
	// instead of failing. The schedule then tolerates fewer failures for
	// that operation; the Result records the effective degree.
	AllowDegraded bool
	// Seed randomizes tie-breaking between equal schedule pressures, as the
	// paper's "randomly chosen" selection. Zero keeps fully deterministic
	// declaration-order tie-breaking.
	Seed int64
	// Trace records one StepTrace per scheduling step in Result.Trace.
	Trace bool
	// Deadline is the real-time constraint: when positive, scheduling fails
	// with ErrDeadlineMissed if the failure-free makespan exceeds it (the
	// paper's "both solutions can fail ... if the real-time constraints
	// can't be satisfied", Section 8).
	Deadline float64
	// NoBroadcast is an ablation switch: FT1 treats every bus as a set of
	// point-to-point channels (one transfer per consumer processor) instead
	// of exploiting the hardware broadcast. Quantifies the benefit the
	// paper attributes to multi-point links (Section 2.1).
	NoBroadcast bool
	// NoPressure is an ablation switch: the cost function drops the
	// remaining-path term E(o) − R, degenerating into earliest-finish-time
	// list scheduling. Quantifies the benefit of the schedule pressure.
	NoPressure bool
	// Workers bounds the worker pool used for the read-only candidate
	// evaluations of micro-step mSn.1. 0 uses GOMAXPROCS; 1 evaluates
	// serially. The schedule is identical for every value: workers only
	// evaluate, and results are merged in deterministic candidate order.
	// Seeded runs always evaluate serially (see builder.evaluateStep).
	Workers int
	// Obs, when non-nil, collects the engine's counters (candidate
	// evaluations, cache hits and invalidations, gap-memo hits, worker-pool
	// utilization) and per-phase spans. Instrumentation never influences the
	// produced schedule; a nil sink costs one nil check per counter hit.
	Obs *obs.Sink
	// Cancel, when non-nil, is a cooperative cancellation flag: the greedy
	// loop polls it once per scheduling step and aborts with ErrCanceled
	// when it is raised. Cancellation never changes a completed run's
	// schedule — a run either finishes bit-identically or fails. Callers
	// with a context should prefer the ftsched.ScheduleContext entry point,
	// which raises the flag when the context is done.
	Cancel *atomic.Bool
}

// canceled reports whether the cooperative cancellation flag is raised.
func (o Options) canceled() bool {
	return o.Cancel != nil && o.Cancel.Load()
}

// Result is the outcome of a scheduling heuristic.
type Result struct {
	// Schedule is the static distributed schedule.
	Schedule *sched.Schedule
	// MinReplication is the smallest replication degree actually achieved
	// across operations. Equal to K+1 unless AllowDegraded relaxed it.
	MinReplication int
	// Trace holds the per-step decisions when Options.Trace is set.
	Trace []StepTrace
}

// StepTrace records one step of the greedy loop, for the paper's
// Figs. 14-16 style step-by-step inspection.
type StepTrace struct {
	// Step is the 1-based step number.
	Step int
	// Candidates lists the candidate operations at this step.
	Candidates []string
	// Pressures holds, for each candidate, the kept (operation, processor,
	// sigma) tuples of micro-step mSn.1.
	Pressures []PressureEntry
	// Selected is the operation committed at this step.
	Selected string
	// Procs are the processors the operation was committed to, main first.
	Procs []string
	// Start and End are the dates of the main replica.
	Start, End float64
}

// PressureEntry is one kept (operation, processor, sigma) evaluation.
type PressureEntry struct {
	Op    string
	Proc  string
	Sigma float64
}

// ErrInfeasible reports that no valid schedule exists under the constraints
// (an operation has no allowed processor, or fewer than K+1 when fault
// tolerance without degradation is requested).
var ErrInfeasible = errors.New("core: infeasible scheduling problem")

// ErrDeadlineMissed reports that the produced schedule's failure-free
// makespan exceeds Options.Deadline.
var ErrDeadlineMissed = errors.New("core: schedule misses the real-time deadline")

// ErrCanceled reports that a run was aborted by Options.Cancel before a
// schedule was produced.
var ErrCanceled = errors.New("core: scheduling canceled")

// ScheduleBasic runs the non-fault-tolerant SynDEx heuristic.
func ScheduleBasic(g *graph.Graph, a *arch.Architecture, sp *spec.Spec, opts Options) (*Result, error) {
	b, err := newBuilder(g, a, sp, sched.ModeBasic, 0, opts)
	if err != nil {
		return nil, err
	}
	return b.run()
}

// ScheduleFT1 runs the first fault-tolerant heuristic (Section 6): active
// replication of operations on K+1 processors and time redundancy of
// communications. Best suited to bus architectures, where the hardware
// broadcast lets every processor observe the main replica's sends.
func ScheduleFT1(g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int, opts Options) (*Result, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative K (%d)", k)
	}
	b, err := newBuilder(g, a, sp, sched.ModeFT1, k, opts)
	if err != nil {
		return nil, err
	}
	return b.run()
}

// ScheduleFT2 runs the second fault-tolerant heuristic (Section 7): active
// replication of both operations and communications. Best suited to
// point-to-point architectures, where replicated transfers proceed in
// parallel; no timeouts are needed and several failures in one iteration are
// supported.
func ScheduleFT2(g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int, opts Options) (*Result, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative K (%d)", k)
	}
	b, err := newBuilder(g, a, sp, sched.ModeFT2, k, opts)
	if err != nil {
		return nil, err
	}
	return b.run()
}

// rng returns the tie-breaking source, or nil for deterministic behavior.
func (o Options) rng() *rand.Rand {
	if o.Seed == 0 {
		return nil
	}
	return rand.New(rand.NewSource(o.Seed))
}

// Heuristic selects one of the three schedulers for the generic entry
// points Schedule and ScheduleTuned.
type Heuristic int

// Available heuristics.
const (
	// Basic is the non-fault-tolerant SynDEx baseline.
	Basic Heuristic = iota + 1
	// FT1 is the first fault-tolerant solution (Section 6).
	FT1
	// FT2 is the second fault-tolerant solution (Section 7).
	FT2
)

// String returns the heuristic's short name.
func (h Heuristic) String() string {
	switch h {
	case Basic:
		return "basic"
	case FT1:
		return "ft1"
	case FT2:
		return "ft2"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Schedule dispatches to the heuristic h. K is ignored by Basic.
func Schedule(h Heuristic, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int, opts Options) (*Result, error) {
	switch h {
	case Basic:
		return ScheduleBasic(g, a, sp, opts)
	case FT1:
		return ScheduleFT1(g, a, sp, k, opts)
	case FT2:
		return ScheduleFT2(g, a, sp, k, opts)
	default:
		return nil, fmt.Errorf("core: unknown heuristic %v", h)
	}
}

// ScheduleTuned runs heuristic h once with deterministic tie-breaking and
// `seeds` more times with randomized tie-breaking (the paper's "randomly
// chosen" selection between equal schedule pressures), returning the result
// with the shortest makespan. Deterministic for fixed seeds count. A
// deadline in opts only fails the search if no run meets it.
func ScheduleTuned(h Heuristic, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k, seeds int, opts Options) (*Result, error) {
	deadline := opts.Deadline
	opts.Deadline = 0
	var best *Result
	for seed := int64(0); seed <= int64(seeds); seed++ {
		opts.Seed = seed
		r, err := Schedule(h, g, a, sp, k, opts)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Schedule.Makespan() < best.Schedule.Makespan() {
			best = r
		}
	}
	if deadline > 0 && best.Schedule.Makespan() > deadline+1e-9 {
		return nil, fmt.Errorf("%w: best makespan over %d runs is %g, deadline %g",
			ErrDeadlineMissed, seeds+1, best.Schedule.Makespan(), deadline)
	}
	return best, nil
}
