package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ftsched/internal/obs"
	"ftsched/internal/workload"
)

// benchInstance draws the deterministic instance used by the scheduler
// benchmarks: a layered DAG of nOps on nProcs processors.
func benchInstance(b *testing.B, nOps, nProcs int, bus bool) *workload.Instance {
	b.Helper()
	in, err := workload.RandomInstance(rand.New(rand.NewSource(int64(nOps*100+nProcs))), nOps, nProcs, bus, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkScheduleFT1_400x8 is the headline hot-path benchmark: FT1, K=1,
// 400 operations on an 8-processor bus.
func BenchmarkScheduleFT1_400x8(b *testing.B) {
	in := benchInstance(b, 400, 8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleFT1_400x8_Obs is the same workload with an enabled
// observability sink; the delta against BenchmarkScheduleFT1_400x8 is the
// full cost of instrumentation (counters, spans, timers).
func BenchmarkScheduleFT1_400x8_Obs(b *testing.B) {
	in := benchInstance(b, 400, 8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{Obs: obs.NewSink()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleModes sweeps the three heuristics over sizes and both
// architecture families.
func BenchmarkScheduleModes(b *testing.B) {
	for _, bus := range []bool{true, false} {
		arch := "p2p"
		if bus {
			arch = "bus"
		}
		for _, n := range []int{100, 400} {
			in := benchInstance(b, n, 8, bus)
			for _, h := range []Heuristic{Basic, FT1, FT2} {
				b.Run(fmt.Sprintf("%s/%s/ops%d", h, arch, n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := Schedule(h, in.Graph, in.Arch, in.Spec, 1, Options{}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
