package core

import (
	"errors"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// TestSingleProcessor covers the degenerate architecture: everything runs
// sequentially on one processor, with no communications at all.
func TestSingleProcessor(t *testing.T) {
	g := graph.New("g")
	for _, n := range []string{"A", "B", "C"} {
		if err := g.AddComp(n); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.Connect("A", "B")
	_ = g.Connect("A", "C")
	a := arch.New("solo")
	if err := a.AddProcessor("P1"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	for _, n := range []string{"A", "B", "C"} {
		_ = sp.SetExec(n, "P1", 1)
	}

	r, err := ScheduleBasic(g, a, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(g, a, sp); err != nil {
		t.Fatal(err)
	}
	if got := r.Schedule.Makespan(); got != 3 {
		t.Errorf("makespan = %v, want 3 (pure sequence)", got)
	}
	if r.Schedule.NumActiveComms() != 0 {
		t.Error("single processor must not communicate")
	}

	// Fault tolerance is impossible: one processor cannot host 2 replicas.
	if _, err := ScheduleFT1(g, a, sp, 1, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("FT1 on one processor: want ErrInfeasible, got %v", err)
	}
	// Degraded mode degenerates to a single replica.
	dr, err := ScheduleFT1(g, a, sp, 1, Options{AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if dr.MinReplication != 1 {
		t.Errorf("degraded MinReplication = %d", dr.MinReplication)
	}
}
