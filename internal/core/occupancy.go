package core

import (
	"math"
	"sort"
)

// occBlock is the block width of the occupancy gap index. 64 keeps the
// per-block metadata a single cache line's worth of float64s per ~6 cache
// lines of intervals and makes the boundary test a cheap mask.
const occBlock = 64

// occupancy is one link's busy list plus the acceleration metadata for gap
// searches. The busy list is identical to the plain []interval the reference
// earliestGap scans; on top of it the index keeps, per block of occBlock
// consecutive intervals, the largest internal gap (busy[j].start −
// busy[j−1].end for j inside the block), so a search can skip whole blocks
// that provably contain no window of the requested size.
//
// The fast path is only sound while the list is clean: pairwise
// non-overlapping with non-decreasing end dates. Every insert preserves
// cleanliness in the normal case, but the eps-tolerant gap fit can commit a
// transfer overlapping its successor by up to eps; the first such insert
// clears clean and the link permanently falls back to the reference scan,
// keeping results bit-identical instead of almost-right.
type occupancy struct {
	busy     []interval
	blockMax []float64
	clean    bool
	inited   bool
}

// ensure lazily marks a zero-value occupancy clean (an empty list is).
func (o *occupancy) ensure() {
	if !o.inited {
		o.inited = true
		o.clean = true
	}
}

// insert adds [start,end) keeping the list sorted by start, and maintains
// the block index. Position choice matches insertInterval exactly.
func (o *occupancy) insert(start, end float64) {
	o.ensure()
	o.busy = insertInterval(o.busy, start, end)
	if o.clean {
		p := sort.Search(len(o.busy), func(i int) bool { return o.busy[i].start >= start }) //ftlint:hotalloc-ok non-escaping: sort.Search invokes the predicate without retaining it
		// insertInterval put the new interval at the first index whose start
		// is >= start; re-deriving p this way lands on the same slot.
		if (p > 0 && o.busy[p-1].end > start) || (p+1 < len(o.busy) && end > o.busy[p+1].start) {
			o.clean = false
			o.blockMax = nil
			return
		}
		o.rebuildBlocksFrom(p)
	}
}

// rebuildBlocksFrom recomputes the per-block max internal gap for every
// block at or after the one containing gap index p (all gap indices >= p
// shifted when the interval was inserted there).
func (o *occupancy) rebuildBlocksFrom(p int) {
	n := len(o.busy)
	nb := (n + occBlock - 1) / occBlock
	for len(o.blockMax) < nb {
		o.blockMax = append(o.blockMax, 0)
	}
	o.blockMax = o.blockMax[:nb]
	for b := p / occBlock; b < nb; b++ {
		m := math.Inf(-1)
		lo := b * occBlock
		if lo == 0 {
			lo = 1 // gap j is between intervals j-1 and j, so indices start at 1
		}
		hi := (b + 1) * occBlock
		if hi > n {
			hi = n
		}
		for j := lo; j < hi; j++ {
			if g := o.busy[j].start - o.busy[j-1].end; g > m {
				m = g
			}
		}
		o.blockMax[b] = m
	}
}

// search returns the earliest date >= ready at which a transfer of duration
// dur fits, with results bit-identical to earliestGap(o.busy, ready, dur).
//
// On a clean list the reference scan simplifies exactly: the first interval
// to consider is the first whose end exceeds ready (binary search is valid,
// ends are sorted, and the reference's inversion backup loop provably does
// nothing); from there the running frontier t is always the previous
// interval's end (every end past that point exceeds ready), so the window
// test between consecutive intervals j-1, j is busy[j].start − busy[j-1].end
// >= dur − eps — precisely the quantity the block index bounds. Blocks whose
// max internal gap is below the threshold are skipped whole, turning the
// packed-link worst case (hundreds of too-small gaps before the tail) from a
// full walk into a handful of block probes.
func (o *occupancy) search(ready, dur float64) float64 {
	if !o.clean {
		return earliestGap(o.busy, ready, dur)
	}
	busy := o.busy
	n := len(busy)
	i := sort.Search(n, func(i int) bool { return busy[i].end > ready }) //ftlint:hotalloc-ok non-escaping: sort.Search invokes the predicate without retaining it
	if i == n {
		return ready
	}
	need := dur - eps
	if busy[i].start-ready >= need {
		return ready
	}
	for j := i + 1; j < n; {
		if j%occBlock == 0 && o.blockMax[j/occBlock] < need {
			j += occBlock
			continue
		}
		if busy[j].start-busy[j-1].end >= need {
			return busy[j-1].end
		}
		j++
	}
	return busy[n-1].end
}
