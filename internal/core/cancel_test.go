package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"ftsched/internal/paperex"
)

// A pre-raised cancel flag aborts before any step commits.
func TestCancelPreRaisedAborts(t *testing.T) {
	in := paperex.BusInstance()
	var flag atomic.Bool
	flag.Store(true)
	_, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{Cancel: &flag})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-raised cancel: got err %v, want ErrCanceled", err)
	}
}

// An attached-but-never-raised flag must not change the schedule: the
// determinism contract extends to runs with cancellation armed.
func TestCancelUnraisedIsBitIdentical(t *testing.T) {
	in := paperex.BusInstance()
	plain, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var flag atomic.Bool
	flagged, err := ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, Options{Cancel: &flag})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := flagged.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("schedule changed when a cancel flag was attached:\n%s\nvs\n%s", a, b)
	}
}

// ScheduleTuned inherits the per-run check: a pre-raised flag aborts the
// first seed already.
func TestCancelTunedAborts(t *testing.T) {
	in := paperex.BusInstance()
	var flag atomic.Bool
	flag.Store(true)
	_, err := ScheduleTuned(FT1, in.Graph, in.Arch, in.Spec, 1, 2, Options{Cancel: &flag})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("tuned pre-raised cancel: got err %v, want ErrCanceled", err)
	}
}
