package core

import (
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// chainFixture builds the Fig. 8 architecture (P1 - L12 - P2 - L23 - P3),
// where P1<->P3 traffic is routed over P2, plus a 3-op pipeline allowed
// everywhere. Exercises multi-hop transfer scheduling in every heuristic.
func chainFixture(t *testing.T) (*graph.Graph, *arch.Architecture, *spec.Spec) {
	t.Helper()
	g := graph.New("pipe")
	for _, n := range []string{"A", "B", "C"} {
		if err := g.AddComp(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("B", "C"); err != nil {
		t.Fatal(err)
	}
	a := arch.New("chain3")
	for _, p := range []string{"P1", "P2", "P3"} {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddLink("L12", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddLink("L23", "P2", "P3"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	// Force A onto P1's end and C onto P3's end so data must cross P2.
	exec := map[string][3]float64{
		"A": {1, 8, 8},
		"B": {4, 4, 4},
		"C": {8, 8, 1},
	}
	for op, durs := range exec {
		for i, p := range []string{"P1", "P2", "P3"} {
			if err := sp.SetExec(op, p, durs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range g.Edges() {
		if err := sp.SetCommUniform(a, e.Key(), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return g, a, sp
}

func TestMultiHopSchedulesValidate(t *testing.T) {
	g, a, sp := chainFixture(t)
	for _, h := range []Heuristic{Basic, FT1, FT2} {
		r, err := Schedule(h, g, a, sp, 1, Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := r.Schedule.Validate(g, a, sp); err != nil {
			t.Fatalf("%v invalid:\n%v", h, err)
		}
	}
}

func TestMultiHopTransfersExist(t *testing.T) {
	g, a, sp := chainFixture(t)
	// Pin every op to a single processor so A@P1 -> C@P3-ish routing is
	// forced: make B only runnable on P1 so B->C must cross both links.
	_ = sp.SetExec("B", "P2", spec.Inf)
	_ = sp.SetExec("B", "P3", spec.Inf)
	_ = sp.SetExec("C", "P1", spec.Inf)
	_ = sp.SetExec("C", "P2", spec.Inf)
	r, err := ScheduleBasic(g, a, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(g, a, sp); err != nil {
		t.Fatal(err)
	}
	// B@P1 -> C@P3 must produce a two-hop transfer over L12 then L23.
	found := false
	for _, hops := range r.Schedule.Transfers() {
		if hops[0].Edge.Src == "B" && hops[0].Edge.Dst == "C" {
			if len(hops) != 2 {
				t.Fatalf("B->C transfer has %d hops, want 2", len(hops))
			}
			if hops[0].Link != "L12" || hops[1].Link != "L23" {
				t.Errorf("route = %s then %s", hops[0].Link, hops[1].Link)
			}
			if hops[1].Start < hops[0].End-1e-9 {
				t.Error("second hop starts before the first ends")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no B->C transfer found")
	}
}
