package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"ftsched/internal/core"
	"ftsched/internal/workload"
)

// LoadConfig tunes RunLoad, the in-repo load generator behind the nightly
// load-smoke CI leg.
type LoadConfig struct {
	// BaseURL is the root of a running ftschedd, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Requests is the total request count (default 64).
	Requests int
	// Concurrency is the number of concurrent client workers (default 8).
	Concurrency int
	// Problems is the number of distinct generated problems; requests cycle
	// through them, so Requests > Problems guarantees repeated traffic and
	// therefore cache hits (default 4).
	Problems int
	// Seed drives the deterministic problem generator.
	Seed int64
	// Ops and Procs size each generated problem (defaults 12 and 3).
	Ops, Procs int
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// LoadReport is RunLoad's result: the latency distribution and the
// correctness gates the load-smoke CI leg asserts on.
type LoadReport struct {
	Requests    int            `json:"requests"`
	Concurrency int            `json:"concurrency"`
	Problems    int            `json:"problems"`
	Non200      int            `json:"non_200"`
	CacheHits   int            `json:"cache_hits"` // responses with X-Ftsched-Cache: hit or shared
	ByKind      map[string]int `json:"by_kind"`
	ByStatus    map[string]int `json:"by_status"`
	// Latency percentiles in milliseconds over all requests.
	LatencyMS LatencySummary `json:"latency_ms"`
	// Errors holds the first few transport/protocol error strings.
	Errors []string `json:"errors,omitempty"`
}

// LatencySummary is a latency distribution in milliseconds.
type LatencySummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// loadJob is one request to fire.
type loadJob struct {
	kind string
	body []byte
}

// loadProblems generates n distinct schedulable problems. Each candidate is
// vetted by actually scheduling it in-process, so an unlucky draw (e.g. an
// infeasible replication constraint) is skipped instead of polluting the
// load run with expected 422s — the smoke gate asserts zero non-200s.
func loadProblems(cfg LoadConfig) ([]*workload.Instance, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	var out []*workload.Instance
	for attempts := 0; len(out) < cfg.Problems; attempts++ {
		if attempts > 20*cfg.Problems {
			return nil, fmt.Errorf("loadgen: could not draw %d schedulable problems in %d attempts", cfg.Problems, attempts)
		}
		inst, err := workload.RandomInstance(r, cfg.Ops, cfg.Procs, false, 0.5)
		if err != nil {
			continue
		}
		if _, err := core.Schedule(core.FT2, inst.Graph, inst.Arch, inst.Spec, 1, core.Options{}); err != nil {
			continue
		}
		out = append(out, inst)
	}
	return out, nil
}

// buildJobs renders the request cycle: for each problem a schedule, a
// certify, and a simulate request, repeated round-robin until cfg.Requests
// jobs exist. The cycle repeats identical bodies, so any run with
// Requests > 3*Problems must produce cache hits.
func buildJobs(cfg LoadConfig, problems []*workload.Instance) ([]loadJob, error) {
	type encoded struct {
		g, a, sp json.RawMessage
	}
	encs := make([]encoded, len(problems))
	for i, inst := range problems {
		g, err := inst.Graph.MarshalJSON()
		if err != nil {
			return nil, err
		}
		a, err := inst.Arch.MarshalJSON()
		if err != nil {
			return nil, err
		}
		sp, err := inst.Spec.MarshalJSON()
		if err != nil {
			return nil, err
		}
		encs[i] = encoded{g: g, a: a, sp: sp}
	}
	jobs := make([]loadJob, 0, cfg.Requests)
	for len(jobs) < cfg.Requests {
		i := len(jobs) / 3 % len(problems)
		e := encs[i]
		base := ScheduleRequest{Graph: e.g, Arch: e.a, Spec: e.sp, Heuristic: "ft2", K: 1}
		var (
			kind string
			body any
		)
		switch len(jobs) % 3 {
		case 0:
			kind, body = "schedule", base
		case 1:
			kind, body = "certify", CertifyRequest{ScheduleRequest: base}
		default:
			proc := problems[i].Arch.ProcessorNames()[0]
			kind, body = "simulate", SimulateRequest{
				ScheduleRequest: base,
				Scenario:        []FailureSpec{{Proc: proc}},
			}
		}
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, loadJob{kind: kind, body: data})
	}
	return jobs, nil
}

// RunLoad fires cfg.Requests mixed schedule/certify/simulate requests at a
// running ftschedd with cfg.Concurrency workers and reports the latency
// distribution, status breakdown, and cache hit count.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Problems <= 0 {
		cfg.Problems = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 12
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 3
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	problems, err := loadProblems(cfg)
	if err != nil {
		return nil, err
	}
	jobs, err := buildJobs(cfg, problems)
	if err != nil {
		return nil, err
	}

	rep := &LoadReport{
		Requests:    len(jobs),
		Concurrency: cfg.Concurrency,
		Problems:    cfg.Problems,
		ByKind:      map[string]int{},
		ByStatus:    map[string]int{},
	}
	latencies := make([]time.Duration, len(jobs))
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next int
	)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(jobs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				job := jobs[i]
				start := time.Now() //ftlint:allow-nondet the load generator measures request latency by design; timings never feed a schedule
				status, cached, errStr := fireJob(ctx, client, cfg.BaseURL, job)
				elapsed := time.Since(start) //ftlint:allow-nondet wall-clock measurement of the request above, reported not scheduled
				mu.Lock()
				latencies[i] = elapsed
				rep.ByKind[job.kind]++
				rep.ByStatus[fmt.Sprintf("%d", status)]++
				if status != http.StatusOK {
					rep.Non200++
				}
				if cached {
					rep.CacheHits++
				}
				if errStr != "" && len(rep.Errors) < 8 {
					rep.Errors = append(rep.Errors, errStr)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.LatencyMS = summarize(latencies)
	return rep, nil
}

// fireJob issues one request and classifies the response.
func fireJob(ctx context.Context, client *http.Client, base string, job loadJob) (status int, cached bool, errStr string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/"+job.kind, bytes.NewReader(job.body))
	if err != nil {
		return 0, false, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err.Error()
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, false, err.Error()
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(body)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return resp.StatusCode, false, fmt.Sprintf("%s: %d: %s", job.kind, resp.StatusCode, msg)
	}
	switch resp.Header.Get("X-Ftsched-Cache") {
	case "hit", "shared":
		cached = true
	}
	return resp.StatusCode, cached, ""
}

// summarize computes latency percentiles (nearest-rank) in milliseconds.
func summarize(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pick := func(p float64) float64 {
		idx := int(p*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return float64(sorted[idx]) / float64(time.Millisecond)
	}
	return LatencySummary{
		P50: pick(0.50),
		P90: pick(0.90),
		P99: pick(0.99),
		Max: float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}
