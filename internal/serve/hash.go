package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// canonicalEnvelope is the hashed canonical form of a request. Its graph,
// arch, and spec members are the model types' own deterministic encodings
// (insertion order where order is semantic, sorted where it is not), so two
// requests that differ only in JSON key order, whitespace, number spelling,
// or defaulted-vs-explicit zero fields canonicalize to the same bytes,
// while any semantic difference — including operation declaration order,
// which the schedulers' tie-breaking is sensitive to — changes them.
//
// Resource knobs (Workers, TimeoutMS, Full) are deliberately absent: the
// engines are bit-identical across them, so requests differing only there
// share one cache entry.
type canonicalEnvelope struct {
	V         int             `json:"v"` // canonical-form version, bump on layout change
	Kind      string          `json:"kind"`
	Heuristic string          `json:"heuristic"`
	K         int             `json:"k"`
	Seeds     int             `json:"seeds"`
	Degraded  bool            `json:"degraded"`
	NoBcast   bool            `json:"nobcast"`
	NoPress   bool            `json:"nopress"`
	Deadline  float64         `json:"deadline"`
	Graph     json.RawMessage `json:"graph"`
	Arch      json.RawMessage `json:"arch"`
	Spec      json.RawMessage `json:"spec"`
	Extra     json.RawMessage `json:"extra,omitempty"` // kind-specific tail
}

// certifyExtra is the certify-specific canonical tail.
type certifyExtra struct {
	CertifyK int `json:"certify_k"`
}

// simulateExtra is the simulate-specific canonical tail.
type simulateExtra struct {
	Scenario    []FailureSpec `json:"scenario"`
	Iterations  int           `json:"iterations"`
	SimDeadline float64       `json:"sim_deadline"`
	Trace       bool          `json:"trace"`
}

// canonicalHash builds the canonical bytes of (kind, request, problem) and
// returns their sha256 as lowercase hex. The problem must be the decoded
// form of the request's graph/arch/spec members.
func canonicalHash(kind string, r *ScheduleRequest, p *problem, extra any) (string, error) {
	env := canonicalEnvelope{
		V:         1,
		Kind:      kind,
		Heuristic: r.Heuristic,
		K:         r.K,
		Seeds:     r.Seeds,
		Degraded:  r.AllowDegraded,
		NoBcast:   r.NoBroadcast,
		NoPress:   r.NoPressure,
		Deadline:  r.Deadline,
	}
	var err error
	if env.Graph, err = p.g.MarshalJSON(); err != nil {
		return "", fmt.Errorf("canonicalize graph: %w", err)
	}
	if env.Arch, err = p.a.MarshalJSON(); err != nil {
		return "", fmt.Errorf("canonicalize arch: %w", err)
	}
	if env.Spec, err = p.sp.MarshalJSON(); err != nil {
		return "", fmt.Errorf("canonicalize spec: %w", err)
	}
	if extra != nil {
		if env.Extra, err = json.Marshal(extra); err != nil {
			return "", fmt.Errorf("canonicalize extra: %w", err)
		}
	}
	data, err := json.Marshal(env)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
