package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	a, b, d := &outcome{}, &outcome{}, &outcome{}
	if c.Put("a", a) {
		t.Error("unexpected eviction on first insert")
	}
	c.Put("b", b)
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if !c.Put("d", d) {
		t.Error("third insert into cap-2 cache should evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if got, ok := c.Get("a"); !ok || got != a {
		t.Error("a should have survived")
	}
	if got, ok := c.Get("d"); !ok || got != d {
		t.Error("d should be cached")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUCacheKeepsFirstPublisher(t *testing.T) {
	c := newLRUCache(4)
	first, second := &outcome{}, &outcome{}
	c.Put("k", first)
	c.Put("k", second)
	if got, _ := c.Get("k"); got != first {
		t.Error("duplicate Put replaced the first outcome")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.Put("k", &outcome{})
	if _, ok := c.Get("k"); ok {
		t.Error("disabled cache should never hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

// TestFlightGroupSingleFlight: concurrent callers for one key share exactly
// one computation. The leader blocks inside fn until every follower has
// joined, so the single-run assertion is deterministic, not timing-lucky.
func TestFlightGroupSingleFlight(t *testing.T) {
	const followers = 8
	g := newFlightGroup()
	var runs atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	want := &outcome{envelope: []byte("x")}

	var wg sync.WaitGroup
	results := make([]*outcome, followers)
	sharedCount := atomic.Int64{}

	// Leader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, shared, err := g.Do("k", func() (*outcome, error) {
			runs.Add(1)
			close(leaderIn)
			<-release
			return want, nil
		})
		if err != nil || shared || out != want {
			t.Errorf("leader: out=%v shared=%v err=%v", out, shared, err)
		}
	}()
	<-leaderIn

	// Followers join while the leader is mid-flight.
	joined := make(chan struct{}, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joined <- struct{}{}
			out, shared, err := g.Do("k", func() (*outcome, error) {
				runs.Add(1)
				return &outcome{}, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = out
		}(i)
	}
	for i := 0; i < followers; i++ {
		<-joined
	}
	close(release)
	wg.Wait()

	// Followers that entered Do before the leader landed share its run; any
	// that arrived after the key was forgotten lead their own. Either way
	// the outcome bytes agree, and at least the pre-joined bulk shared.
	if runs.Load() > 2 {
		t.Errorf("runs = %d, want <= 2 (leader plus at most one straggler)", runs.Load())
	}
	for i, out := range results {
		if out == nil {
			t.Errorf("follower %d got nil outcome", i)
		}
	}
	if sharedCount.Load() == 0 {
		t.Error("no follower shared the leader's flight")
	}
}

// TestFlightGroupErrorNotPinned: a failed flight is forgotten, so the next
// caller retries instead of replaying the stale error forever.
func TestFlightGroupErrorNotPinned(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	_, _, err := g.Do("k", func() (*outcome, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	want := &outcome{}
	out, shared, err := g.Do("k", func() (*outcome, error) { return want, nil })
	if err != nil || shared || out != want {
		t.Errorf("retry: out=%v shared=%v err=%v", out, shared, err)
	}
}

// TestFlightGroupDistinctKeys: different keys never share a flight.
func TestFlightGroupDistinctKeys(t *testing.T) {
	g := newFlightGroup()
	var runs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, shared, err := g.Do(fmt.Sprintf("k%d", i), func() (*outcome, error) {
				runs.Add(1)
				return &outcome{}, nil
			})
			if err != nil || shared {
				t.Errorf("key k%d: shared=%v err=%v", i, shared, err)
			}
		}(i)
	}
	wg.Wait()
	if runs.Load() != 4 {
		t.Errorf("runs = %d, want 4", runs.Load())
	}
}
