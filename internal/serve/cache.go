package serve

import (
	"container/list"
	"sync"
)

// outcome is one computed response, cached and replayed byte-for-byte: the
// default JSON envelope, the CLI-identical rendering (schedule kind only),
// and the compact schedule document the certify and simulate endpoints
// rebuild their Schedule from. Outcomes are immutable once published.
type outcome struct {
	// envelope is the default response body (indented JSON + newline).
	envelope []byte
	// cli is the ?format=cli body: for the schedule kind, the exact bytes
	// the ftsched CLI prints with -format json. Nil for other kinds.
	cli []byte
	// schedJSON is the compact sched.Schedule encoding (schedule kind
	// only), the substrate for certify/simulate reuse.
	schedJSON []byte
}

// lruCache is a mutex-guarded LRU of response outcomes keyed by canonical
// content hash. Only successful outcomes enter the cache; deterministic
// failures (infeasible problems, missed deadlines) are cheap to recompute
// and keeping them out makes cache poisoning through transient conditions
// impossible.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

// lruEntry is one cache slot.
type lruEntry struct {
	key string
	out *outcome
}

// newLRUCache returns an empty cache holding at most cap outcomes; cap <= 0
// disables caching (every Get misses, Put discards).
func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, order: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached outcome for key, refreshing its recency.
func (c *lruCache) Get(key string) (*outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).out, true
}

// Put inserts key -> out, evicting the least recently used entry beyond
// capacity. It reports whether an eviction happened.
func (c *lruCache) Put(key string, out *outcome) (evicted bool) {
	if c.cap <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent leader may have published first; keep the existing
		// outcome (both are byte-identical by the determinism contract).
		c.order.MoveToFront(el)
		return false
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, out: out})
	if c.order.Len() <= c.cap {
		return false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.entries, oldest.Value.(*lruEntry).key)
	return true
}

// Len returns the number of cached outcomes.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight is one in-progress computation shared by concurrent identical
// requests: the leader computes, followers wait on done and read the
// published result.
type flight struct {
	done chan struct{}
	out  *outcome
	err  error
}

// flightGroup deduplicates concurrent computations by key (the canonical
// content hash): the first caller becomes the leader, later callers for the
// same key block until the leader publishes, then share its outcome. Keys
// are forgotten once the flight lands, so a failed computation is retried
// by the next request rather than pinned.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// Do runs fn once per key among concurrent callers. It reports the shared
// outcome and whether this caller was a follower (shared someone else's
// run).
func (g *flightGroup) Do(key string, fn func() (*outcome, error)) (out *outcome, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.out, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.out, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.out, false, f.err
}
