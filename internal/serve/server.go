package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
)

// Config tunes a Server. The zero value is production-ready: a
// GOMAXPROCS-sized worker budget, a 4096-outcome cache, a 60s request
// timeout, and a 16 MiB body cap.
type Config struct {
	// Workers is the global engine-worker budget shared by every in-flight
	// request; per-request budgets clamp to it. 0 uses GOMAXPROCS.
	Workers int
	// CacheEntries bounds the response LRU; < 0 disables caching, 0 uses
	// 4096.
	CacheEntries int
	// DefaultTimeout caps each request's wall-clock time, queue wait
	// included; per-request timeout_ms clamps to it. 0 uses 60s; < 0
	// disables the cap.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request bodies. 0 uses 16 MiB.
	MaxBodyBytes int64
	// Sink receives the server's counters and the engines' instrumentation,
	// re-exported at /metrics. Nil allocates a fresh sink.
	Sink *obs.Sink
}

// batchLimit bounds the element count of one batch request.
const batchLimit = 256

// Server is the scheduling service: an http.Handler exposing the engines
// behind the content-hash cache, single-flight deduplication, and the
// bounded admission pool.
type Server struct {
	cfg      Config
	sink     *obs.Sink
	sem      *semaphore
	cache    *lruCache
	flights  *flightGroup
	mux      *http.ServeMux
	draining atomic.Bool
	ins      serverInstruments
}

// serverInstruments are the server's pre-resolved obs counters.
type serverInstruments struct {
	requests    *obs.Counter // HTTP requests accepted (batch elements count once each)
	ok          *obs.Counter // 2xx responses
	failed      *obs.Counter // non-2xx responses
	cacheHits   *obs.Counter // responses served from the LRU
	cacheMisses *obs.Counter // requests that had to compute (or join a flight)
	evictions   *obs.Counter // LRU entries displaced
	sfShared    *obs.Counter // followers that shared a leader's engine run
	runSched    *obs.Counter // scheduling engine runs
	runCertify  *obs.Counter // certification engine runs
	runSimulate *obs.Counter // simulation engine runs
}

func (in *serverInstruments) resolve(s *obs.Sink) {
	in.requests = s.Counter("serve.requests")
	in.ok = s.Counter("serve.responses.ok")
	in.failed = s.Counter("serve.responses.error")
	in.cacheHits = s.Counter("serve.cache.hits")
	in.cacheMisses = s.Counter("serve.cache.misses")
	in.evictions = s.Counter("serve.cache.evictions")
	in.sfShared = s.Counter("serve.singleflight.shared")
	in.runSched = s.Counter("serve.engine.schedule")
	in.runCertify = s.Counter("serve.engine.certify")
	in.runSimulate = s.Counter("serve.engine.simulate")
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.CacheEntries == 0:
		cfg.CacheEntries = 4096
	case cfg.CacheEntries < 0:
		cfg.CacheEntries = 0 // newLRUCache(0) disables caching
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 60 * time.Second
	} else if cfg.DefaultTimeout < 0 {
		cfg.DefaultTimeout = 0
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Sink == nil {
		cfg.Sink = obs.NewSink()
	}
	s := &Server{
		cfg:     cfg,
		sink:    cfg.Sink,
		sem:     newSemaphore(int64(cfg.Workers)),
		cache:   newLRUCache(cfg.CacheEntries),
		flights: newFlightGroup(),
		mux:     http.NewServeMux(),
	}
	s.ins.resolve(s.sink)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/schedule", s.single(s.handleSchedule, true))
	s.mux.HandleFunc("/v1/certify", s.single(s.handleCertify, false))
	s.mux.HandleFunc("/v1/simulate", s.single(s.handleSimulate, false))
	s.mux.HandleFunc("/v1/schedule/batch", s.batch(s.handleSchedule))
	s.mux.HandleFunc("/v1/certify/batch", s.batch(s.handleCertify))
	s.mux.HandleFunc("/v1/simulate/batch", s.batch(s.handleSimulate))
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Sink returns the observability sink backing /metrics.
func (s *Server) Sink() *obs.Sink { return s.sink }

// SetDraining flips the health endpoint to 503 so load balancers stop
// routing new traffic while in-flight requests finish (graceful drain).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, s.sink); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// httpError is a handler failure carrying the HTTP status it maps to.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// badRequest wraps a client-side failure.
func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// engineError maps an engine failure onto an HTTP status: deterministic
// problem rejections are 422 (the request is well-formed but unsatisfiable),
// timeouts and cancellations are 504, anything else is a 500.
func engineError(err error) *httpError {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he
	case errors.Is(err, core.ErrInfeasible), errors.Is(err, core.ErrDeadlineMissed):
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled),
		errors.Is(err, core.ErrCanceled), errors.Is(err, certify.ErrCanceled), errors.Is(err, sim.ErrCanceled):
		return &httpError{status: http.StatusGatewayTimeout, msg: "request timed out or was canceled"}
	default:
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

// kindHandler computes one request kind from a decoded body. The format
// argument is "" (JSON envelope) or "cli".
type kindHandler func(ctx context.Context, body []byte, format string) (*outcome, string, *httpError)

// single adapts a kindHandler to a direct endpoint. allowCLI gates the
// ?format=cli rendering (schedule only: the other kinds have no CLI
// byte-contract to mirror).
func (s *Server) single(h kindHandler, allowCLI bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.ins.requests.Inc()
		if r.Method != http.MethodPost {
			s.writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
			return
		}
		format := r.URL.Query().Get("format")
		switch {
		case format == "" || (format == "cli" && allowCLI):
		case format == "cli":
			s.writeError(w, badRequest("format=cli applies to /v1/schedule only"))
			return
		default:
			s.writeError(w, badRequest("unknown format %q (want cli or default)", format))
			return
		}
		body, herr := s.readBody(w, r)
		if herr != nil {
			s.writeError(w, herr)
			return
		}
		out, cacheState, herr := h(r.Context(), body, format)
		if herr != nil {
			s.writeError(w, herr)
			return
		}
		resp := out.envelope
		if format == "cli" {
			resp = out.cli
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Ftsched-Cache", cacheState)
		s.ins.ok.Inc()
		w.Write(resp)
	}
}

// batch adapts a kindHandler to its /batch endpoint: elements are handled
// concurrently (the global admission pool still bounds total engine
// workers) and the responses are returned in request order, so batch output
// is deterministic regardless of completion order.
func (s *Server) batch(h kindHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.ins.requests.Inc()
			s.writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
			return
		}
		body, herr := s.readBody(w, r)
		if herr != nil {
			s.ins.requests.Inc()
			s.writeError(w, herr)
			return
		}
		var breq BatchRequest
		if err := strictUnmarshal(body, &breq); err != nil {
			s.ins.requests.Inc()
			s.writeError(w, badRequest("batch: %v", err))
			return
		}
		if len(breq.Requests) == 0 {
			s.ins.requests.Inc()
			s.writeError(w, badRequest("batch: empty requests"))
			return
		}
		if len(breq.Requests) > batchLimit {
			s.ins.requests.Inc()
			s.writeError(w, badRequest("batch: %d requests exceed the limit of %d", len(breq.Requests), batchLimit))
			return
		}
		items := make([]BatchItem, len(breq.Requests))
		var wg sync.WaitGroup
		for i, raw := range breq.Requests {
			s.ins.requests.Inc()
			wg.Add(1)
			go func(i int, raw json.RawMessage) {
				defer wg.Done()
				out, _, herr := h(r.Context(), raw, "")
				if herr != nil {
					s.ins.failed.Inc()
					items[i] = BatchItem{Status: herr.status, Body: errorBody(herr)}
					return
				}
				s.ins.ok.Inc()
				items[i] = BatchItem{Status: http.StatusOK, Body: out.envelope}
			}(i, raw)
		}
		wg.Wait()
		resp, err := json.MarshalIndent(BatchResponse{Responses: items}, "", "  ")
		if err != nil {
			s.writeError(w, engineError(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(resp, '\n'))
	}
}

// readBody drains the capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *httpError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit)}
		}
		return nil, badRequest("read body: %v", err)
	}
	return body, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data:
// a typo'd option must fail loudly rather than silently fall out of the
// content hash.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// errorBody renders the JSON error document.
func errorBody(he *httpError) []byte {
	data, err := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: he.msg})
	if err != nil { // a string field cannot fail to marshal
		data = []byte(`{"error":"internal error"}`)
	}
	return append(data, '\n')
}

func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	s.ins.failed.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.status)
	w.Write(errorBody(he))
}

// requestContext derives the request's execution context: the per-request
// timeout_ms clamped to the server default (queue wait counts against it).
func (s *Server) requestContext(ctx context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		req := time.Duration(timeoutMS) * time.Millisecond
		if timeout == 0 || req < timeout {
			timeout = req
		}
	}
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// clampWorkers resolves a per-request worker budget against the global one:
// unset (0) runs sequentially — on a shared server, parallelism is opt-in —
// and any request is capped by the server's total budget.
func (s *Server) clampWorkers(requested int) int {
	if requested <= 1 {
		return 1
	}
	if int64(requested) > s.sem.Cap() {
		return int(s.sem.Cap())
	}
	return requested
}

// cancelFlag arms a cooperative cancel flag from ctx; the returned stop
// function must be deferred.
func cancelFlag(ctx context.Context) (*atomic.Bool, func()) {
	flag := new(atomic.Bool)
	if ctx.Err() != nil {
		flag.Store(true)
		return flag, func() {}
	}
	if ctx.Done() == nil {
		return flag, func() {}
	}
	done := make(chan struct{})
	go func() {
		select { //ftlint:allow-nondet watcher teardown race only decides whether a finished run sees the flag; a completed run is bit-identical either way
		case <-ctx.Done():
			flag.Store(true)
		case <-done:
		}
	}()
	return flag, func() { close(done) }
}

// cachedOutcome is the shared serve pipeline: LRU lookup, then single-flight
// computation, with a bounded retry when a follower inherited the leader's
// cancellation but its own context is still live. It returns the outcome
// and the cache state ("hit", "shared", or "miss") for the response header.
func (s *Server) cachedOutcome(ctx context.Context, key string, compute func() (*outcome, error)) (*outcome, string, *httpError) {
	if out, ok := s.cache.Get(key); ok {
		s.ins.cacheHits.Inc()
		return out, "hit", nil
	}
	s.ins.cacheMisses.Inc()
	for attempt := 0; ; attempt++ {
		out, shared, err := s.flights.Do(key, func() (*outcome, error) {
			// The leader that just landed may have cached this key between
			// our miss and our flight: serve its bytes instead of recomputing.
			if out, ok := s.cache.Get(key); ok {
				return out, nil
			}
			out, err := compute()
			if err != nil {
				return nil, err
			}
			if s.cache.Put(key, out) {
				s.ins.evictions.Inc()
			}
			return out, nil
		})
		if err != nil {
			// A follower that inherited the leader's timeout while its own
			// deadline is still live deserves its own run.
			if shared && ctx.Err() == nil && attempt < 2 && engineError(err).status == http.StatusGatewayTimeout {
				continue
			}
			return nil, "", engineError(err)
		}
		if shared {
			s.ins.sfShared.Inc()
			return out, "shared", nil
		}
		return out, "miss", nil
	}
}

// handleSchedule computes /v1/schedule.
func (s *Server) handleSchedule(ctx context.Context, body []byte, _ string) (*outcome, string, *httpError) {
	var req ScheduleRequest
	if err := strictUnmarshal(body, &req); err != nil {
		return nil, "", badRequest("schedule: %v", err)
	}
	p, err := req.decodeProblem()
	if err != nil {
		return nil, "", badRequest("schedule: %v", err)
	}
	key, err := canonicalHash("schedule", &req, p, nil)
	if err != nil {
		return nil, "", engineError(err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMS)
	defer cancel()
	return s.cachedOutcome(ctx, key, func() (*outcome, error) {
		return s.computeSchedule(ctx, &req, p, key)
	})
}

// computeSchedule runs the scheduling engine under the admission pool and
// renders both response forms.
func (s *Server) computeSchedule(ctx context.Context, req *ScheduleRequest, p *problem, key string) (*outcome, error) {
	// A dead context must fail deterministically even when the engine would
	// outrun the cancellation watcher on a small problem.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := s.clampWorkers(req.Workers)
	if err := s.sem.Acquire(ctx, int64(workers)); err != nil {
		return nil, err
	}
	defer s.sem.Release(int64(workers))
	flag, stop := cancelFlag(ctx)
	defer stop()
	span := s.sink.StartSpan("serve", "serve.schedule")
	defer span.End()
	s.ins.runSched.Inc()
	opts := core.Options{
		AllowDegraded: req.AllowDegraded,
		NoBroadcast:   req.NoBroadcast,
		NoPressure:    req.NoPressure,
		Deadline:      req.Deadline,
		Workers:       workers,
		Obs:           s.sink,
		Cancel:        flag,
	}
	res, err := core.ScheduleTuned(p.h, p.g, p.a, p.sp, req.K, req.Seeds, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Schedule.Validate(p.g, p.a, p.sp); err != nil {
		return nil, fmt.Errorf("internal error, schedule failed validation: %w", err)
	}
	return renderSchedule(key, req, res)
}

// scheduleResponse is the default /v1/schedule envelope.
type scheduleResponse struct {
	Hash           string          `json:"hash"`
	Heuristic      string          `json:"heuristic"`
	K              int             `json:"k"`
	Makespan       float64         `json:"makespan"`
	OpSlots        int             `json:"op_slots"`
	ActiveComms    int             `json:"active_comms"`
	PassiveComms   int             `json:"passive_comms"`
	MinReplication int             `json:"min_replication"`
	Schedule       json.RawMessage `json:"schedule"`
}

// renderSchedule builds the cached outcome: the JSON envelope, the
// CLI-identical bytes, and the compact schedule document the certify and
// simulate pipelines rebuild from. Rendering is pure formatting of a
// deterministic engine result, so both forms are byte-deterministic.
func renderSchedule(key string, req *ScheduleRequest, res *core.Result) (*outcome, error) {
	compact, err := res.Schedule.MarshalJSON()
	if err != nil {
		return nil, err
	}
	// The CLI contract: `ftsched -format json` prints the schedule document
	// indented by two spaces plus a trailing newline. Keep in lockstep with
	// cmd/ftsched.
	var cli bytes.Buffer
	if err := json.Indent(&cli, compact, "", "  "); err != nil {
		return nil, err
	}
	cli.WriteByte('\n')
	env, err := json.MarshalIndent(scheduleResponse{
		Hash:           key,
		Heuristic:      req.Heuristic,
		K:              req.K,
		Makespan:       res.Schedule.Makespan(),
		OpSlots:        res.Schedule.NumOpSlots(),
		ActiveComms:    res.Schedule.NumActiveComms(),
		PassiveComms:   res.Schedule.NumPassiveComms(),
		MinReplication: res.MinReplication,
		Schedule:       compact,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return &outcome{
		envelope:  append(env, '\n'),
		cli:       cli.Bytes(),
		schedJSON: compact,
	}, nil
}

// scheduleFor reuses the schedule pipeline (cache, single-flight, pool) to
// obtain the problem's schedule, rebuilt from its cached compact encoding.
func (s *Server) scheduleFor(ctx context.Context, req *ScheduleRequest, p *problem) (*sched.Schedule, *httpError) {
	key, err := canonicalHash("schedule", req, p, nil)
	if err != nil {
		return nil, engineError(err)
	}
	out, _, herr := s.cachedOutcome(ctx, key, func() (*outcome, error) {
		return s.computeSchedule(ctx, req, p, key)
	})
	if herr != nil {
		return nil, herr
	}
	sch := new(sched.Schedule)
	if err := sch.UnmarshalJSON(out.schedJSON); err != nil {
		return nil, engineError(fmt.Errorf("internal error, cached schedule failed to decode: %w", err))
	}
	return sch, nil
}

// certifyResponse is the /v1/certify envelope.
type certifyResponse struct {
	Hash    string           `json:"hash"`
	Verdict *certify.Verdict `json:"verdict"`
}

// handleCertify computes /v1/certify: schedule (through the schedule
// cache), then certify the result.
func (s *Server) handleCertify(ctx context.Context, body []byte, _ string) (*outcome, string, *httpError) {
	var req CertifyRequest
	if err := strictUnmarshal(body, &req); err != nil {
		return nil, "", badRequest("certify: %v", err)
	}
	p, err := req.decodeProblem()
	if err != nil {
		return nil, "", badRequest("certify: %v", err)
	}
	certK := req.K
	if req.CertifyK != nil {
		certK = *req.CertifyK
	}
	if certK < 0 {
		return nil, "", badRequest("certify: negative certify_k (%d)", certK)
	}
	key, err := canonicalHash("certify", &req.ScheduleRequest, p, certifyExtra{CertifyK: certK})
	if err != nil {
		return nil, "", engineError(err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMS)
	defer cancel()
	return s.cachedOutcome(ctx, key, func() (*outcome, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sch, herr := s.scheduleFor(ctx, &req.ScheduleRequest, p)
		if herr != nil {
			return nil, herr
		}
		workers := s.clampWorkers(req.Workers)
		if err := s.sem.Acquire(ctx, int64(workers)); err != nil {
			return nil, err
		}
		defer s.sem.Release(int64(workers))
		flag, stop := cancelFlag(ctx)
		defer stop()
		span := s.sink.StartSpan("serve", "serve.certify")
		defer span.End()
		s.ins.runCertify.Inc()
		v, err := certify.CertifyWith(sch, p.g, p.a, p.sp, certK, certify.Options{
			Workers: workers,
			Full:    req.Full,
			Obs:     s.sink,
			Cancel:  flag,
		})
		if err != nil {
			return nil, err
		}
		env, err := json.MarshalIndent(certifyResponse{Hash: key, Verdict: v}, "", "  ")
		if err != nil {
			return nil, err
		}
		return &outcome{envelope: append(env, '\n')}, nil
	})
}

// simulateResponse is the /v1/simulate envelope.
type simulateResponse struct {
	Hash   string      `json:"hash"`
	Result *sim.Result `json:"result"`
}

// handleSimulate computes /v1/simulate: schedule (through the schedule
// cache), then execute the distributed executive under the scenario.
func (s *Server) handleSimulate(ctx context.Context, body []byte, _ string) (*outcome, string, *httpError) {
	var req SimulateRequest
	if err := strictUnmarshal(body, &req); err != nil {
		return nil, "", badRequest("simulate: %v", err)
	}
	p, err := req.decodeProblem()
	if err != nil {
		return nil, "", badRequest("simulate: %v", err)
	}
	if req.Iterations < 0 {
		return nil, "", badRequest("simulate: negative iterations (%d)", req.Iterations)
	}
	scenario := req.Scenario
	if len(scenario) == 0 {
		scenario = []FailureSpec{} // canonical: absent and [] hash identically
	}
	key, err := canonicalHash("simulate", &req.ScheduleRequest, p, simulateExtra{
		Scenario:    scenario,
		Iterations:  req.Iterations,
		SimDeadline: req.SimDeadline,
		Trace:       req.Trace,
	})
	if err != nil {
		return nil, "", engineError(err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMS)
	defer cancel()
	return s.cachedOutcome(ctx, key, func() (*outcome, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sch, herr := s.scheduleFor(ctx, &req.ScheduleRequest, p)
		if herr != nil {
			return nil, herr
		}
		// The simulator is single-threaded: one admission token.
		if err := s.sem.Acquire(ctx, 1); err != nil {
			return nil, err
		}
		defer s.sem.Release(1)
		flag, stop := cancelFlag(ctx)
		defer stop()
		span := s.sink.StartSpan("serve", "serve.simulate")
		defer span.End()
		s.ins.runSimulate.Inc()
		res, err := sim.Simulate(sch, p.g, p.a, p.sp, req.scenario(), sim.Config{
			Iterations: req.Iterations,
			Deadline:   req.SimDeadline,
			Trace:      req.Trace,
			Obs:        s.sink,
			Cancel:     flag,
		})
		if err != nil {
			return nil, err
		}
		env, err := json.MarshalIndent(simulateResponse{Hash: key, Result: res}, "", "  ")
		if err != nil {
			return nil, err
		}
		return &outcome{envelope: append(env, '\n')}, nil
	})
}
