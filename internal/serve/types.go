// Package serve is the scheduling-as-a-service layer: an HTTP/JSON server
// exposing the deterministic scheduling, certification, and simulation
// engines behind an admission path built for repeated traffic — a canonical
// content-hash of every request fronting an LRU response cache with
// single-flight deduplication, a bounded global worker budget, cooperative
// per-request cancellation, and Prometheus metrics re-exporting the
// internal/obs counters.
//
// The determinism contract extends from the engines to the wire: for
// identical inputs the response body is byte-identical to the ftsched CLI's
// -format json output (via ?format=cli), at any server concurrency, and on
// cache hit and miss alike.
package serve

import (
	"encoding/json"
	"fmt"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/graph"
	"ftsched/internal/sim"
	"ftsched/internal/spec"
)

// ScheduleRequest is the body of POST /v1/schedule: the scheduling problem
// plus engine options. Graph, arch, and spec use the same JSON documents the
// CLI's -graph/-arch/-spec flags load.
type ScheduleRequest struct {
	Graph json.RawMessage `json:"graph"`
	Arch  json.RawMessage `json:"arch"`
	Spec  json.RawMessage `json:"spec"`
	// Heuristic is basic, ft1, or ft2.
	Heuristic string `json:"heuristic"`
	// K is the number of fail-stop processor failures to tolerate.
	K int `json:"k"`
	// Seeds adds randomized tie-breaking runs; the best schedule wins
	// (deterministic for a fixed value, like the CLI's -seeds).
	Seeds int `json:"seeds,omitempty"`
	// AllowDegraded, NoBroadcast, NoPressure, and Deadline mirror the
	// engine options of the same names.
	AllowDegraded bool    `json:"allow_degraded,omitempty"`
	NoBroadcast   bool    `json:"no_broadcast,omitempty"`
	NoPressure    bool    `json:"no_pressure,omitempty"`
	Deadline      float64 `json:"deadline,omitempty"`
	// Workers is the per-request evaluation-pool budget. It is clamped to
	// the server's global budget and excluded from the content hash: the
	// engines produce bit-identical results at any worker count, so worker
	// budgets only trade latency for resources.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds this request's wall-clock time (queue wait
	// included); it is clamped to the server's default timeout and excluded
	// from the content hash.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// CertifyRequest is the body of POST /v1/certify: schedule the problem,
// then statically certify the result.
type CertifyRequest struct {
	ScheduleRequest
	// CertifyK is the tolerance level to certify against; defaults to K.
	CertifyK *int `json:"certify_k,omitempty"`
	// Full forces the reference full-fixpoint evaluation path. The verdict
	// is identical either way, so the flag is excluded from the content
	// hash.
	Full bool `json:"full,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: schedule the problem,
// then execute the schedule's distributed executive under a failure
// scenario.
type SimulateRequest struct {
	ScheduleRequest
	// Scenario lists the fail-stop failures to inject.
	Scenario []FailureSpec `json:"scenario,omitempty"`
	// Iterations is the number of reactive-loop iterations (default 1).
	Iterations int `json:"iterations,omitempty"`
	// SimDeadline is the per-iteration real-time constraint to check.
	SimDeadline float64 `json:"sim_deadline,omitempty"`
	// Trace records the executed activities of each iteration.
	Trace bool `json:"trace,omitempty"`
}

// FailureSpec is one injected processor failure (sim.Failure on the wire).
type FailureSpec struct {
	Proc             string  `json:"proc"`
	Iteration        int     `json:"iteration,omitempty"`
	At               float64 `json:"at,omitempty"`
	RecoverIteration int     `json:"recover_iteration,omitempty"`
	RecoverAt        float64 `json:"recover_at,omitempty"`
}

// BatchRequest is the body of the /batch endpoints: the element requests
// are processed concurrently under the server's global worker budget, and
// the responses come back in request order.
type BatchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// BatchItem is one element of a batch response: the HTTP status the request
// would have received standalone, plus its response body.
type BatchItem struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the body of a /batch response.
type BatchResponse struct {
	Responses []BatchItem `json:"responses"`
}

// problem is a decoded, validated scheduling problem.
type problem struct {
	g  *graph.Graph
	a  *arch.Architecture
	sp *spec.Spec
	h  core.Heuristic
}

// decodeProblem validates and decodes the request's problem half.
func (r *ScheduleRequest) decodeProblem() (*problem, error) {
	var h core.Heuristic
	switch r.Heuristic {
	case "basic":
		h = core.Basic
	case "ft1":
		h = core.FT1
	case "ft2":
		h = core.FT2
	default:
		return nil, fmt.Errorf("unknown heuristic %q (want basic, ft1, or ft2)", r.Heuristic)
	}
	if r.K < 0 {
		return nil, fmt.Errorf("negative k (%d)", r.K)
	}
	if r.Seeds < 0 {
		return nil, fmt.Errorf("negative seeds (%d)", r.Seeds)
	}
	if len(r.Graph) == 0 || len(r.Arch) == 0 || len(r.Spec) == 0 {
		return nil, fmt.Errorf("graph, arch, and spec are all required")
	}
	p := &problem{g: new(graph.Graph), a: new(arch.Architecture), sp: spec.New(), h: h}
	if err := p.g.UnmarshalJSON(r.Graph); err != nil {
		return nil, err
	}
	if err := p.a.UnmarshalJSON(r.Arch); err != nil {
		return nil, err
	}
	if err := p.sp.UnmarshalJSON(r.Spec); err != nil {
		return nil, err
	}
	return p, nil
}

// scenario converts the wire failure list into the simulator's model.
func (r *SimulateRequest) scenario() sim.Scenario {
	var sc sim.Scenario
	for _, f := range r.Scenario {
		sc.Failures = append(sc.Failures, sim.Failure{
			Proc:             f.Proc,
			Iteration:        f.Iteration,
			At:               f.At,
			RecoverIteration: f.RecoverIteration,
			RecoverAt:        f.RecoverAt,
		})
	}
	return sc
}
