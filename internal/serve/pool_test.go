package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBudget(t *testing.T) {
	s := newSemaphore(4)
	ctx := context.Background()
	if s.Cap() != 4 {
		t.Fatalf("Cap = %d", s.Cap())
	}
	if err := s.Acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Budget exhausted: the next acquire must block until a release.
	acquired := make(chan struct{})
	go func() {
		if err := s.Acquire(ctx, 2); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("acquire succeeded beyond the budget")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release(3)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("release did not unblock the waiter")
	}
	s.Release(2)
	s.Release(1)
}

// TestSemaphoreClampsOversizedRequest: a request for more tokens than exist
// clamps to the budget instead of dead-waiting forever.
func TestSemaphoreClampsOversizedRequest(t *testing.T) {
	s := newSemaphore(2)
	done := make(chan struct{})
	go func() {
		if err := s.Acquire(context.Background(), 100); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("oversized acquire dead-waited")
	}
	s.Release(100) // symmetric clamp
}

// TestSemaphoreFIFO: a large waiter at the queue head is not starved by
// later small requests.
func TestSemaphoreFIFO(t *testing.T) {
	s := newSemaphore(4)
	ctx := context.Background()
	if err := s.Acquire(ctx, 4); err != nil {
		t.Fatal(err)
	}
	bigDone := make(chan struct{})
	go func() {
		if err := s.Acquire(ctx, 4); err != nil {
			t.Error(err)
		}
		close(bigDone)
	}()
	// Let the big waiter enqueue first.
	for i := 0; i < 100 && func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.waiters.Len() == 0 }(); i++ {
		time.Sleep(time.Millisecond)
	}
	smallDone := make(chan struct{})
	go func() {
		if err := s.Acquire(ctx, 1); err != nil {
			t.Error(err)
		}
		close(smallDone)
	}()
	// Free one token: the small request would fit, but the big one is ahead
	// in line, so nobody may proceed yet.
	s.Release(1)
	select {
	case <-smallDone:
		t.Fatal("small acquire jumped the FIFO queue")
	case <-bigDone:
		t.Fatal("big acquire proceeded without enough tokens")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release(3)
	select {
	case <-bigDone:
	case <-time.After(time.Second):
		t.Fatal("big waiter never proceeded")
	}
	s.Release(4)
	select {
	case <-smallDone:
	case <-time.After(time.Second):
		t.Fatal("small waiter never proceeded")
	}
	s.Release(1)
}

// TestSemaphoreCancelWhileQueued: a canceled waiter leaves the queue and
// unblocks those behind it.
func TestSemaphoreCancelWhileQueued(t *testing.T) {
	s := newSemaphore(2)
	if err := s.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx, 2) }()
	for i := 0; i < 100 && func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.waiters.Len() == 0 }(); i++ {
		time.Sleep(time.Millisecond)
	}
	behindDone := make(chan struct{})
	go func() {
		if err := s.Acquire(context.Background(), 1); err != nil {
			t.Error(err)
		}
		close(behindDone)
	}()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled acquire returned %v", err)
	}
	// The canceled waiter was the queue head; releasing one token must now
	// reach the waiter behind it.
	s.Release(1)
	select {
	case <-behindDone:
	case <-time.After(time.Second):
		t.Fatal("waiter behind a canceled head never proceeded")
	}
	s.Release(1)
	s.Release(1)
}

// TestSemaphoreStress hammers the semaphore from many goroutines under the
// race detector and checks the budget invariant is never violated.
func TestSemaphoreStress(t *testing.T) {
	const budget = 3
	s := newSemaphore(budget)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := int64(g%budget + 1)
			for i := 0; i < 50; i++ {
				if err := s.Acquire(context.Background(), n); err != nil {
					t.Error(err)
					return
				}
				cur := inUse.Add(n)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inUse.Add(-n)
				s.Release(n)
			}
		}(g)
	}
	wg.Wait()
	if peak.Load() > budget {
		t.Errorf("budget violated: peak concurrent tokens = %d > %d", peak.Load(), budget)
	}
}
