package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRunLoadAgainstServer drives the load generator at an in-process
// server and checks the load-smoke gates: every response 200, cache hits
// present (the job cycle repeats identical bodies), all three kinds mixed,
// and a coherent latency summary.
func TestRunLoadAgainstServer(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 4}).Handler())
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Requests:    18,
		Concurrency: 6,
		Problems:    2,
		Seed:        3,
		Ops:         8,
		Procs:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 18 {
		t.Errorf("Requests = %d, want 18", rep.Requests)
	}
	if rep.Non200 != 0 {
		t.Errorf("Non200 = %d (errors: %v)", rep.Non200, rep.Errors)
	}
	if rep.CacheHits == 0 {
		t.Error("no cache hits despite repeated identical requests")
	}
	for _, kind := range []string{"schedule", "certify", "simulate"} {
		if rep.ByKind[kind] == 0 {
			t.Errorf("kind %s absent from the mix: %v", kind, rep.ByKind)
		}
	}
	if rep.ByStatus["200"] != 18 {
		t.Errorf("ByStatus = %v, want 18x 200", rep.ByStatus)
	}
	if rep.LatencyMS.Max <= 0 || rep.LatencyMS.P50 > rep.LatencyMS.P99 || rep.LatencyMS.P99 > rep.LatencyMS.Max {
		t.Errorf("incoherent latency summary: %+v", rep.LatencyMS)
	}
}

// TestRunLoadDeterministicProblems: the same seed draws the same problems,
// so two runs against one server share cache entries across runs.
func TestRunLoadDeterministicProblems(t *testing.T) {
	cfg := LoadConfig{Problems: 2, Ops: 8, Procs: 3, Seed: 11, Requests: 6}
	a, err := loadProblems(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadProblems(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("drew %d and %d problems, want 2 each", len(a), len(b))
	}
	for i := range a {
		ga, err := a[i].Graph.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b[i].Graph.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(ga) != string(gb) {
			t.Errorf("problem %d differs across same-seed draws", i)
		}
	}
}

func TestRunLoadConfigErrors(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Error("missing BaseURL did not fail")
	}
}

func TestSummarize(t *testing.T) {
	if got := summarize(nil); got != (LatencySummary{}) {
		t.Errorf("empty summarize = %+v", got)
	}
	ds := []time.Duration{4 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	got := summarize(ds)
	if got.Max != 4 {
		t.Errorf("Max = %v, want 4", got.Max)
	}
	if got.P50 != 2 {
		t.Errorf("P50 = %v, want 2", got.P50)
	}
	if got.P99 != 4 {
		t.Errorf("P99 = %v, want 4", got.P99)
	}
}
