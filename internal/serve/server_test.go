package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// cliBytesFor renders what the ftsched CLI prints with -format json for the
// same problem: the byte-identity oracle.
func cliBytesFor(t *testing.T, heuristic core.Heuristic, k int) []byte {
	t.Helper()
	inst := paperex.BusInstance()
	res, err := core.ScheduleTuned(heuristic, inst.Graph, inst.Arch, inst.Spec, k, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compact, err := res.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, compact, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// TestScheduleCLIByteIdentity: ?format=cli returns exactly the bytes the
// ftsched CLI prints, and a cache hit replays them unchanged.
func TestScheduleCLIByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := busRequestJSON(t, nil)
	want := cliBytesFor(t, core.FT1, 1)

	resp, got := post(t, ts.URL+"/v1/schedule?format=cli", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Ftsched-Cache") != "miss" {
		t.Errorf("first request cache state = %q, want miss", resp.Header.Get("X-Ftsched-Cache"))
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from CLI bytes:\n got: %s\nwant: %s", got, want)
	}

	// Hit path: identical bytes, hit header.
	resp2, got2 := post(t, ts.URL+"/v1/schedule?format=cli", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if resp2.Header.Get("X-Ftsched-Cache") != "hit" {
		t.Errorf("second request cache state = %q, want hit", resp2.Header.Get("X-Ftsched-Cache"))
	}
	if !bytes.Equal(got2, got) {
		t.Error("cache hit returned different bytes than the miss")
	}

	// Re-encoded request (different JSON spelling, same semantics): same
	// cache entry, same bytes.
	resp3, got3 := post(t, ts.URL+"/v1/schedule?format=cli", busRequestReordered(t))
	if resp3.Header.Get("X-Ftsched-Cache") != "hit" {
		t.Errorf("re-encoded request cache state = %q, want hit", resp3.Header.Get("X-Ftsched-Cache"))
	}
	if !bytes.Equal(got3, got) {
		t.Error("re-encoded request returned different bytes")
	}
}

// TestScheduleEnvelope: the default envelope carries the hash and the
// schedule document, and is itself byte-deterministic across hit and miss.
func TestScheduleEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := busRequestJSON(t, nil)
	resp, miss := post(t, ts.URL+"/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, miss)
	}
	var env struct {
		Hash     string          `json:"hash"`
		Makespan float64         `json:"makespan"`
		Schedule json.RawMessage `json:"schedule"`
	}
	if err := json.Unmarshal(miss, &env); err != nil {
		t.Fatalf("envelope does not parse: %v", err)
	}
	if env.Hash != hashOf(t, body) {
		t.Errorf("envelope hash %q != canonical hash", env.Hash)
	}
	if env.Makespan <= 0 || len(env.Schedule) == 0 {
		t.Errorf("implausible envelope: makespan=%v schedule=%d bytes", env.Makespan, len(env.Schedule))
	}
	_, hit := post(t, ts.URL+"/v1/schedule", body)
	if !bytes.Equal(miss, hit) {
		t.Error("envelope bytes differ between miss and hit")
	}
}

// TestConcurrentIdenticalRequests: N concurrent identical requests produce
// identical bytes, and the engine-run counter shows the cache plus
// single-flight collapsed the work (run under -race in CI).
func TestConcurrentIdenticalRequests(t *testing.T) {
	const clients = 12
	s, ts := newTestServer(t, Config{Workers: 4})
	body := busRequestJSON(t, nil)

	// Warm once so the concurrent wave is deterministic: all hits.
	if resp, out := post(t, ts.URL+"/v1/schedule", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up failed: %d %s", resp.StatusCode, out)
	}
	runsAfterWarm := s.ins.runSched.Value()
	if runsAfterWarm != 1 {
		t.Fatalf("warm-up ran the engine %d times, want 1", runsAfterWarm)
	}

	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := post(t, ts.URL+"/v1/schedule", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = out
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes than client 0", i)
		}
	}
	if got := s.ins.runSched.Value(); got != 1 {
		t.Errorf("engine ran %d times for %d identical requests, want 1", got, clients+1)
	}
}

// TestCertifyReusesScheduleCache: certify goes through the schedule cache,
// so scheduling runs once even when certify comes second.
func TestCertifyReusesScheduleCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := busRequestJSON(t, nil)
	if resp, out := post(t, ts.URL+"/v1/schedule", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, out)
	}
	resp, out := post(t, ts.URL+"/v1/certify", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("certify: %d %s", resp.StatusCode, out)
	}
	var env struct {
		Hash    string `json:"hash"`
		Verdict struct {
			Tolerated int  `json:"Tolerated"`
			Certified bool `json:"Certified"`
		} `json:"verdict"`
	}
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatalf("certify envelope does not parse: %v", err)
	}
	if !env.Verdict.Certified {
		t.Errorf("paper example FT1/k=1 schedule should certify: %s", out)
	}
	if got := s.ins.runSched.Value(); got != 1 {
		t.Errorf("schedule engine ran %d times, want 1 (certify should reuse the cache)", got)
	}
	if got := s.ins.runCertify.Value(); got != 1 {
		t.Errorf("certify engine ran %d times, want 1", got)
	}
	// Identical certify request: cached outright.
	resp2, out2 := post(t, ts.URL+"/v1/certify", body)
	if resp2.Header.Get("X-Ftsched-Cache") != "hit" {
		t.Errorf("second certify cache state = %q, want hit", resp2.Header.Get("X-Ftsched-Cache"))
	}
	if !bytes.Equal(out2, out) {
		t.Error("certify hit returned different bytes")
	}
}

// TestSimulateEndpoint: simulate with a failure scenario returns a parsed
// result and deadline-met iterations.
func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := busRequestJSON(t, func(m map[string]any) {
		m["scenario"] = []map[string]any{{"proc": "P1"}}
	})
	resp, out := post(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, out)
	}
	var env struct {
		Hash   string          `json:"hash"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(out, &env); err != nil || len(env.Result) == 0 {
		t.Fatalf("simulate envelope does not parse: %v", err)
	}
	// Absent scenario and explicit empty scenario share one cache entry.
	noScenario := busRequestJSON(t, nil)
	emptyScenario := busRequestJSON(t, func(m map[string]any) {
		m["scenario"] = []any{}
	})
	_, _ = post(t, ts.URL+"/v1/simulate", noScenario)
	resp2, _ := post(t, ts.URL+"/v1/simulate", emptyScenario)
	if resp2.Header.Get("X-Ftsched-Cache") != "hit" {
		t.Errorf("empty-vs-absent scenario missed the cache: %q", resp2.Header.Get("X-Ftsched-Cache"))
	}
}

// TestBatchOrderAndPartialFailure: batch responses come back in request
// order with per-element statuses.
func TestBatchOrderAndPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	good := busRequestJSON(t, nil)
	bad := busRequestJSON(t, func(m map[string]any) { m["heuristic"] = "nope" })
	breq, err := json.Marshal(BatchRequest{Requests: []json.RawMessage{good, bad, good}})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := post(t, ts.URL+"/v1/schedule/batch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, out)
	}
	var bresp BatchResponse
	if err := json.Unmarshal(out, &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Responses) != 3 {
		t.Fatalf("got %d responses, want 3", len(bresp.Responses))
	}
	wantStatus := []int{200, 400, 200}
	for i, item := range bresp.Responses {
		if item.Status != wantStatus[i] {
			t.Errorf("response %d status = %d, want %d", i, item.Status, wantStatus[i])
		}
	}
	if !bytes.Equal(bresp.Responses[0].Body, bresp.Responses[2].Body) {
		t.Error("identical batch elements returned different bodies")
	}
}

// TestErrorStatuses drives the failure paths.
func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 20})
	cases := []struct {
		name string
		url  string
		body []byte
		want int
	}{
		{"bad heuristic", "/v1/schedule", busRequestJSON(t, func(m map[string]any) { m["heuristic"] = "nope" }), 400},
		{"unknown field", "/v1/schedule", busRequestJSON(t, func(m map[string]any) { m["typo_field"] = 1 }), 400},
		{"negative k", "/v1/schedule", busRequestJSON(t, func(m map[string]any) { m["k"] = -1 }), 400},
		{"not json", "/v1/schedule", []byte("not json"), 400},
		{"missing deadline", "/v1/schedule", busRequestJSON(t, func(m map[string]any) { m["deadline"] = 0.001 }), 422},
		{"cli on certify", "/v1/certify?format=cli", busRequestJSON(t, nil), 400},
		{"unknown format", "/v1/schedule?format=yaml", busRequestJSON(t, nil), 400},
		{"empty batch", "/v1/schedule/batch", []byte(`{"requests":[]}`), 400},
	}
	for _, tc := range cases {
		resp, out := post(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, out)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body does not parse: %s", tc.name, out)
		}
	}

	// Method check.
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/schedule = %d, want 405", resp.StatusCode)
	}
}

// TestCanceledRequestIs504: a request whose context is already dead maps to
// 504 without caching anything.
func TestCanceledRequestIs504(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, herr := s.handleSchedule(ctx, busRequestJSON(t, nil), "")
	if herr == nil || herr.status != http.StatusGatewayTimeout {
		t.Fatalf("herr = %v, want 504", herr)
	}
	if s.cache.Len() != 0 {
		t.Error("canceled request left a cache entry")
	}
}

// TestHealthzAndDrain: the health endpoint flips to 503 on drain.
func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// TestMetricsEndpoint: /metrics re-exports the serve counters in Prometheus
// text format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, out := post(t, ts.URL+"/v1/schedule", busRequestJSON(t, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, out)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE ftsched_serve_requests counter",
		"ftsched_serve_requests 1",
		"ftsched_serve_engine_schedule 1",
		"ftsched_serve_cache_misses 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, text)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
}

// TestBodyTooLarge: oversized bodies are rejected with 413.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	resp, _ := post(t, ts.URL+"/v1/schedule", bytes.Repeat([]byte("x"), 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}
