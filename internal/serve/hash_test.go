package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ftsched/internal/paperex"
)

// busRequestJSON renders the paper's bus example as a schedule request body,
// with the graph/arch/spec documents embedded verbatim.
func busRequestJSON(t *testing.T, mutate func(m map[string]any)) []byte {
	t.Helper()
	inst := paperex.BusInstance()
	g, err := inst.Graph.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	a, err := inst.Arch.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := inst.Spec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]any{
		"graph":     json.RawMessage(g),
		"arch":      json.RawMessage(a),
		"spec":      json.RawMessage(sp),
		"heuristic": "ft1",
		"k":         1,
	}
	if mutate != nil {
		mutate(m)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// busRequestReordered renders the same request as busRequestJSON(t, nil)
// with the top-level keys in a different order and extra whitespace, leaving
// the nested documents byte-identical (the spec encodes infinities as 1e999,
// which no float64 roundtrip may touch).
func busRequestReordered(t *testing.T) []byte {
	t.Helper()
	inst := paperex.BusInstance()
	g, err := inst.Graph.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	a, err := inst.Arch.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := inst.Spec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf("{\n  \"k\": 1,\n  \"heuristic\": \"ft1\",\n  \"spec\": %s,\n  \"arch\": %s,\n  \"graph\": %s\n}\n", sp, a, g))
}

// hashOf decodes a request body and returns its canonical schedule hash.
func hashOf(t *testing.T, body []byte) string {
	t.Helper()
	var req ScheduleRequest
	if err := strictUnmarshal(body, &req); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	p, err := req.decodeProblem()
	if err != nil {
		t.Fatalf("decodeProblem: %v", err)
	}
	key, err := canonicalHash("schedule", &req, p, nil)
	if err != nil {
		t.Fatalf("canonicalHash: %v", err)
	}
	return key
}

// TestHashInsensitiveToEncoding: JSON key order, whitespace, and number
// spelling must not change the canonical hash.
func TestHashInsensitiveToEncoding(t *testing.T) {
	base := busRequestJSON(t, nil)
	want := hashOf(t, base)

	// Whitespace: re-indent the whole document.
	var pretty json.RawMessage = base
	indented, err := json.MarshalIndent(pretty, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	if got := hashOf(t, indented); got != want {
		t.Errorf("whitespace changed the hash: %s != %s", got, want)
	}

	// Key order: same request, different top-level key order.
	reordered := busRequestReordered(t)
	if string(reordered) == string(base) {
		t.Fatal("test vacuous: reordering produced identical bytes")
	}
	if got := hashOf(t, reordered); got != want {
		t.Errorf("key reordering changed the hash: %s != %s", got, want)
	}

	// Defaulted-vs-explicit zero options.
	explicit := busRequestJSON(t, func(m map[string]any) {
		m["seeds"] = 0
		m["allow_degraded"] = false
		m["deadline"] = 0.0
	})
	if got := hashOf(t, explicit); got != want {
		t.Errorf("explicit zero options changed the hash: %s != %s", got, want)
	}
}

// TestHashIgnoresResourceKnobs: workers and timeout_ms trade latency for
// resources without changing results, so they share one cache entry.
func TestHashIgnoresResourceKnobs(t *testing.T) {
	want := hashOf(t, busRequestJSON(t, nil))
	knobs := busRequestJSON(t, func(m map[string]any) {
		m["workers"] = 8
		m["timeout_ms"] = 1234
	})
	if got := hashOf(t, knobs); got != want {
		t.Errorf("resource knobs changed the hash: %s != %s", got, want)
	}
}

// TestHashSensitiveToSemantics: every semantic field change must change the
// hash — including operation declaration order, which the schedulers'
// deterministic tie-breaking is sensitive to.
func TestHashSensitiveToSemantics(t *testing.T) {
	base := hashOf(t, busRequestJSON(t, nil))
	mutations := map[string]func(m map[string]any){
		"heuristic": func(m map[string]any) { m["heuristic"] = "ft2" },
		"k":         func(m map[string]any) { m["k"] = 2 },
		"seeds":     func(m map[string]any) { m["seeds"] = 3 },
		"degraded":  func(m map[string]any) { m["allow_degraded"] = true },
		"nobcast":   func(m map[string]any) { m["no_broadcast"] = true },
		"nopress":   func(m map[string]any) { m["no_pressure"] = true },
		"deadline":  func(m map[string]any) { m["deadline"] = 99.5 },
	}
	for name, mutate := range mutations {
		got := hashOf(t, busRequestJSON(t, mutate))
		if got == base {
			t.Errorf("%s: semantic change did not change the hash", name)
		}
	}

	// Operation declaration order is semantic: swap two op declarations in
	// the graph document and the hash must move.
	swapped := busRequestJSON(t, func(m map[string]any) {
		raw := string(m["graph"].(json.RawMessage))
		// The paper graph declares ops I, A, B, ... — swapping the A and B
		// declarations preserves the op set but changes tie-break order.
		if !strings.Contains(raw, `"A"`) || !strings.Contains(raw, `"B"`) {
			t.Fatal("graph document lacks expected ops A and B")
		}
		raw = strings.NewReplacer(`"A"`, `"__tmp__"`, `"B"`, `"A"`).Replace(raw)
		raw = strings.ReplaceAll(raw, `"__tmp__"`, `"B"`)
		m["graph"] = json.RawMessage(raw)
	})
	if got := hashOf(t, swapped); got == base {
		t.Error("renaming/swapping ops did not change the hash")
	}
}

// TestHashKindsDisjoint: the same problem hashed for schedule, certify, and
// simulate must occupy distinct cache keys.
func TestHashKindsDisjoint(t *testing.T) {
	body := busRequestJSON(t, nil)
	var req ScheduleRequest
	if err := strictUnmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	p, err := req.decodeProblem()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := canonicalHash("schedule", &req, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := canonicalHash("certify", &req, p, certifyExtra{CertifyK: 1})
	if err != nil {
		t.Fatal(err)
	}
	simu, err := canonicalHash("simulate", &req, p, simulateExtra{Scenario: []FailureSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	if sched == cert || sched == simu || cert == simu {
		t.Errorf("kind hashes collide: schedule=%s certify=%s simulate=%s", sched, cert, simu)
	}

	// certify_k participates in the certify hash.
	cert2, err := canonicalHash("certify", &req, p, certifyExtra{CertifyK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cert2 == cert {
		t.Error("certify_k change did not change the certify hash")
	}

	// An absent scenario and an explicit empty one are the same request.
	simuNil, err := canonicalHash("simulate", &req, p, simulateExtra{Scenario: []FailureSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	if simuNil != simu {
		t.Error("empty scenario is not canonical")
	}
	// A non-empty scenario is a different request.
	simu2, err := canonicalHash("simulate", &req, p, simulateExtra{Scenario: []FailureSpec{{Proc: "P1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if simu2 == simu {
		t.Error("scenario change did not change the simulate hash")
	}
}
