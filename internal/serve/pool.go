package serve

import (
	"container/list"
	"context"
	"sync"
)

// semaphore is a weighted, FIFO-fair counting semaphore: the admission
// gate enforcing the server's global engine-worker budget. Requests acquire
// as many tokens as the engine workers they will run, wait in arrival order
// when the budget is exhausted, and honor context cancellation while
// queued. FIFO hand-off prevents small requests from starving a large one
// that is already waiting.
//
// This is a trimmed reimplementation of the golang.org/x/sync/semaphore
// design on the standard library alone (the build environment is hermetic;
// see internal/analysis for the same constraint).
type semaphore struct {
	size int64

	mu      sync.Mutex
	cur     int64
	waiters list.List // of *waiter, FIFO
}

type waiter struct {
	n     int64
	ready chan struct{} // closed when the tokens are granted
}

// newSemaphore returns a semaphore with n tokens (n >= 1).
func newSemaphore(n int64) *semaphore {
	if n < 1 {
		n = 1
	}
	return &semaphore{size: n}
}

// Cap returns the total token budget.
func (s *semaphore) Cap() int64 { return s.size }

// Acquire blocks until n tokens are available (or ctx is done) and takes
// them. n is clamped to the semaphore's size so a request can never dead-
// wait on more tokens than exist.
func (s *semaphore) Acquire(ctx context.Context, n int64) error {
	if n < 1 {
		n = 1
	}
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	if s.size-s.cur >= n && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select { //ftlint:allow-nondet grant-vs-cancel race is resolved below either way; admission order never affects response bytes
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: release the grant so
			// the tokens are not leaked, then report the cancellation.
			s.mu.Unlock()
			s.Release(n)
		default:
			isFront := s.waiters.Front() == elem
			s.waiters.Remove(elem)
			// Removing the queue head may unblock the next waiters.
			if isFront {
				s.notifyWaiters()
			}
			s.mu.Unlock()
		}
		return ctx.Err()
	case <-w.ready:
		return nil
	}
}

// Release returns n tokens (clamped like Acquire) and hands them to queued
// waiters in FIFO order.
func (s *semaphore) Release(n int64) {
	if n < 1 {
		n = 1
	}
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.mu.Unlock()
		panic("serve: semaphore released more than held")
	}
	s.notifyWaiters()
	s.mu.Unlock()
}

// notifyWaiters grants tokens to queued waiters in FIFO order, stopping at
// the first waiter that does not fit (FIFO fairness). Callers hold s.mu.
func (s *semaphore) notifyWaiters() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if s.size-s.cur < w.n {
			return
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}
