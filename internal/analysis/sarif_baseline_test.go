package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func testDiags() []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: "a/x.go", Line: 3, Column: 2}, Analyzer: "mapiter", Message: "escapes in map order"},
		{Pos: token.Position{Filename: "b/y.go", Line: 7, Column: 1}, Analyzer: "nondet", Message: "wall clock read"},
	}
}

func TestWriteSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	analyzers := []*Analyzer{{Name: "mapiter", Doc: "map doc"}, {Name: "nondet", Doc: "nondet doc"}}
	if err := WriteSARIF(&buf, testDiags(), analyzers); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version/runs = %q/%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ftlint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	if run.Results[0].RuleID != "mapiter" || run.Results[0].Locations[0].PhysicalLocation.Region.StartLine != 3 {
		t.Fatalf("first result = %+v", run.Results[0])
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "b/y.go" {
		t.Fatalf("second result uri = %q", uri)
	}
	// Rules contain both analyzers, sorted.
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[0].ID != "mapiter" || run.Tool.Driver.Rules[1].ID != "nondet" {
		t.Fatalf("rules = %+v", run.Tool.Driver.Rules)
	}
	// Determinism: a second marshal is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteSARIF(&buf2, testDiags(), analyzers); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("SARIF output is not deterministic")
	}
}

func TestBaselineRoundTripAndFilter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	diags := testDiags()
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 || b.Version != BaselineVersion {
		t.Fatalf("baseline = %+v", b)
	}

	// Same findings (lines drifted): fully filtered, nothing stale.
	drifted := testDiags()
	drifted[0].Pos.Line = 99
	fresh, stale := b.Filter(drifted)
	if len(fresh) != 0 || stale != 0 {
		t.Fatalf("fresh=%d stale=%d, want 0/0", len(fresh), stale)
	}

	// A new finding surfaces; a fixed finding leaves a stale entry.
	next := []Diagnostic{
		drifted[0],
		{Pos: token.Position{Filename: "c/z.go", Line: 1}, Analyzer: "mapiter", Message: "brand new"},
	}
	fresh, stale = b.Filter(next)
	if len(fresh) != 1 || fresh[0].Message != "brand new" {
		t.Fatalf("fresh = %+v", fresh)
	}
	if stale != 1 {
		t.Fatalf("stale = %d, want 1", stale)
	}

	// Duplicate findings: one baseline entry absorbs only one diagnostic.
	dup := []Diagnostic{drifted[0], drifted[0]}
	fresh, _ = b.Filter(dup)
	if len(fresh) != 1 {
		t.Fatalf("duplicated finding not surfaced: fresh = %d", len(fresh))
	}
}

func TestLoadBaselineRejectsBadVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("expected version error")
	}
}
