package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseDirs(t *testing.T, src string) ([]Directive, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return ParseDirectives(fset, []*ast.File{f})
}

func TestParseDirectivesWellFormed(t *testing.T) {
	dirs, bad := parseDirs(t, `package p

//ftlint:order-insensitive writes commute across distinct keys
func a() {}

func b() {} //ftlint:infwcet-checked operands proven finite by the caller

//ftlint:allow-nondet   leading spaces around the reason are trimmed
func c() {}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3", len(dirs))
	}
	if dirs[0].Name != "order-insensitive" || dirs[0].Analyzer() != "mapiter" ||
		dirs[0].Reason != "writes commute across distinct keys" || dirs[0].Line != 3 {
		t.Errorf("dirs[0] = %+v", dirs[0])
	}
	if dirs[1].Name != "infwcet-checked" || dirs[1].Analyzer() != "infwcet" || dirs[1].Line != 6 {
		t.Errorf("dirs[1] = %+v", dirs[1])
	}
	if dirs[2].Name != "allow-nondet" || dirs[2].Analyzer() != "nondet" ||
		dirs[2].Reason != "leading spaces around the reason are trimmed" {
		t.Errorf("dirs[2] = %+v", dirs[2])
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	dirs, bad := parseDirs(t, `package p

//ftlint:not-a-directive some reason
//ftlint:allow-discard
//ftlint:order-insensitive
func a() {}
`)
	if len(dirs) != 0 {
		t.Fatalf("malformed directives parsed as valid: %+v", dirs)
	}
	if len(bad) != 3 {
		t.Fatalf("got %d diagnostics %v, want 3", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "unknown directive //ftlint:not-a-directive") ||
		!strings.Contains(bad[0].Message, "valid names:") {
		t.Errorf("bad[0] = %v", bad[0])
	}
	for _, d := range bad[1:] {
		if !strings.Contains(d.Message, "needs a reason") {
			t.Errorf("missing-reason diagnostic = %v", d)
		}
		if d.Analyzer != DirectiveAnalyzerName {
			t.Errorf("analyzer = %q, want %q", d.Analyzer, DirectiveAnalyzerName)
		}
	}
}

func TestParseDirectivesIgnoresBlockComments(t *testing.T) {
	dirs, bad := parseDirs(t, `package p

/*ftlint:allow-discard block comments are not directives*/
func a() {}
`)
	if len(dirs) != 0 || len(bad) != 0 {
		t.Fatalf("block comment parsed as directive: dirs=%v bad=%v", dirs, bad)
	}
}
