package goroutinecapture_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/goroutinecapture"
)

func TestCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "core", goroutinecapture.Analyzer)
}

func TestNonCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "util", goroutinecapture.Analyzer)
}
