// Package util is not determinism-critical: the pass stays silent even on
// a textbook race.
package util

func race(xs []int) int {
	total := 0
	go func() {
		for _, x := range xs {
			total += x
		}
	}()
	return total
}
