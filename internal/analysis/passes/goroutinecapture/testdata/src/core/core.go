package core

import "sync"

// Assigned-form range: i is one shared variable across iterations, and the
// range header rewrites it after every spawn.
func assignedRange(xs []int) {
	var i int
	var wg sync.WaitGroup
	for i = range xs {
		wg.Add(1)
		go func() { // want `goroutine reads captured variable "i" which is rewritten after the spawn`
			defer wg.Done()
			_ = xs[i]
		}()
	}
	wg.Wait()
	_ = i
}

// Define-form range: go1.22 gives each iteration a fresh x, so the header
// rebinding is not a shared write.
func definedRange(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = x
		}()
	}
	wg.Wait()
}

// Define-form three-clause for: the i++ in the header is per-iteration.
func definedFor(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i
		}()
	}
	wg.Wait()
}

// The goroutine writes total; the spawner reads it with no barrier between.
func writeThenRead(xs []int) int {
	total := 0
	go func() { // want `goroutine writes captured variable "total" which the spawner reads after the spawn`
		for _, x := range xs {
			total += x
		}
	}()
	return total
}

// Same shape, but wg.Wait() is a happens-before barrier: accepted.
func writeThenWait(xs []int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			total += x
		}
	}()
	wg.Wait()
	return total
}

// Both sides write: the final value depends on interleaving.
func bothWrite() int {
	counter := 0
	done := make(chan struct{})
	go func() { // want `goroutine writes captured variable "counter" which the spawner also writes`
		counter++
		close(done)
	}()
	counter++
	<-done
	return counter
}

// A body write after the spawn races even with a define-form loop variable.
func bodyWriteAfterSpawn(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() { // want `goroutine reads captured variable "x" which is rewritten after the spawn`
			defer wg.Done()
			_ = x
		}()
		x = 0
		_ = x
	}
	wg.Wait()
}

// Reads on both sides are not a race.
func readOnly(cfgVal int) {
	done := make(chan struct{})
	go func() {
		_ = cfgVal
		close(done)
	}()
	_ = cfgVal
	<-done
}

// Accesses on paths the spawner cannot reach after the spawn do not count:
// the write happens before the go statement.
func writeBeforeSpawn(xs []int) {
	total := 0
	total = len(xs)
	done := make(chan struct{})
	go func() {
		_ = total
		close(done)
	}()
	<-done
}

// A reasoned annotation silences the finding.
func annotated(xs []int) int {
	total := 0
	//ftlint:allow-capture demo of a deliberately racy probe, result unused
	go func() {
		for _, x := range xs {
			total += x
		}
	}()
	return total
}
