// Package goroutinecapture flags variables captured by reference into
// goroutine closures and then accessed concurrently: the spawner keeps
// reading or writing the variable after the go statement (or the closure
// writes a variable the spawner still uses), with no intervening
// WaitGroup-style barrier. In the determinism-critical packages such races
// do not just corrupt memory — they make the schedule depend on goroutine
// interleaving, which breaks the bit-identical-output contract.
//
// The pass is flow-sensitive: after the spawn it follows the enclosing
// function's CFG, so accesses on paths that cannot execute after the go
// statement are not counted, and a call to a method named Wait acts as a
// happens-before barrier that stops the scan (the canonical
// wg.Add/go/wg.Wait pool shape is accepted natively).
//
// Per-iteration loop variable semantics (go1.22) are honored: the rebinding
// performed by a `for x := range` or three-clause `for x := ...` header is
// not a shared write, because each iteration owns a fresh x. A range whose
// variables are assigned (`for x = range`, declared outside) still shares
// one variable across iterations; for a read-only capture of such a
// variable the pass suggests the classic `x := x` rebind fix.
package goroutinecapture

import (
	"go/ast"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/cfg"
	"ftsched/internal/analysis/dataflow"
)

// Analyzer is the goroutinecapture pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinecapture",
	Doc:  "flag by-reference closure captures raced between a goroutine and its spawner",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsCriticalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// spawn is one `go func(){...}()` statement found in a function body.
type spawn struct {
	stmt *ast.GoStmt
	lit  *ast.FuncLit
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var spawns []spawn
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawns = append(spawns, spawn{g, lit})
			}
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	g := cfg.New(fd.Body)
	perIter := perIterationVars(fd.Body, pass.TypesInfo)
	for _, sp := range spawns {
		checkSpawn(pass, g, fd, sp, perIter)
	}
}

// perIterationVars collects loop variables declared by a `:=` loop header
// (range or three-clause for). Under go1.22 semantics each iteration binds a
// fresh copy, so the header's own rebinding is not a shared write. The map
// records, per variable, the loop-header nodes whose writes are exempt.
func perIterationVars(body *ast.BlockStmt, info *types.Info) map[*types.Var][]ast.Node {
	exempt := map[*types.Var][]ast.Node{}
	addIdent := func(e ast.Expr, nodes ...ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok && v != nil {
			exempt[v] = append(exempt[v], nodes...)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				// The RangeStmt node itself carries the rebinding.
				addIdent(n.Key, n)
				addIdent(n.Value, n)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					nodes := []ast.Node{}
					if n.Cond != nil {
						nodes = append(nodes, n.Cond)
					}
					if n.Post != nil {
						nodes = append(nodes, n.Post)
					}
					addIdent(lhs, nodes...)
				}
			}
		}
		return true
	})
	return exempt
}

// access is one read or write of a watched variable after the spawn.
type access struct {
	pos   token.Pos
	write bool
	node  ast.Node
}

func checkSpawn(pass *analysis.Pass, g *cfg.Graph, fd *ast.FuncDecl, sp spawn, perIter map[*types.Var][]ast.Node) {
	caps := dataflow.Captures(sp.lit, pass.TypesInfo)
	if len(caps) == 0 {
		return
	}
	blk, idx, ok := g.BlockOf(sp.stmt.Pos())
	if !ok {
		return
	}
	watched := map[*types.Var]dataflow.Capture{}
	for _, c := range caps {
		watched[c.Var] = c
	}
	post := postSpawnAccesses(g, blk, idx, sp, watched, pass.TypesInfo, perIter)
	for _, c := range caps {
		accs := post[c.Var]
		if len(accs) == 0 {
			continue
		}
		closureWrites := len(c.Writes) > 0
		var conflict *access
		for i := range accs {
			if accs[i].write || closureWrites {
				conflict = &accs[i]
				break
			}
		}
		if conflict == nil {
			continue
		}
		name := c.Var.Name()
		pos := pass.Fset.Position(conflict.pos)
		switch {
		case closureWrites && conflict.write:
			pass.Reportf(sp.stmt.Go, "goroutine writes captured variable %q which the spawner also writes after the spawn (at %s) with no Wait barrier between; the result depends on interleaving — hand the goroutine its own copy, or annotate with //ftlint:allow-capture <why>", name, posString(pos))
		case closureWrites:
			pass.Reportf(sp.stmt.Go, "goroutine writes captured variable %q which the spawner reads after the spawn (at %s) with no Wait barrier between; communicate the value over a channel or wait first, or annotate with //ftlint:allow-capture <why>", name, posString(pos))
		default:
			// Closure only reads; the spawner (often the next loop
			// iteration) writes. A rebind pins the value.
			fix := rebindFix(pass, sp.stmt, conflict.node, name)
			if fix != nil {
				pass.ReportFix(sp.stmt.Go, fix, "goroutine reads captured variable %q which is rewritten after the spawn (at %s); the goroutine may observe a later value — rebind it (%s := %s) before the go statement, or annotate with //ftlint:allow-capture <why>", name, posString(pos), name, name)
			} else {
				pass.Reportf(sp.stmt.Go, "goroutine reads captured variable %q which is rewritten after the spawn (at %s); the goroutine may observe a later value — rebind it (%s := %s) before the go statement, or annotate with //ftlint:allow-capture <why>", name, posString(pos), name, name)
			}
		}
	}
}

func posString(p token.Position) string {
	return p.String()
}

// rebindFix builds the `x := x` rebind when it is safe: the hazard write is
// a loop-header rebinding (not an arbitrary body write, where pinning the
// old value could mask a logic bug rather than fix a race).
func rebindFix(pass *analysis.Pass, goStmt *ast.GoStmt, hazardNode ast.Node, name string) *analysis.SuggestedFix {
	switch hazardNode.(type) {
	case *ast.RangeStmt:
	default:
		return nil
	}
	return &analysis.SuggestedFix{
		Message: "rebind the loop variable before the go statement",
		Edits:   []analysis.TextEdit{pass.InsertBefore(goStmt.Pos(), name+" := "+name+"\n")},
	}
}

// postSpawnAccesses walks the CFG from the spawn point and records every
// access to a watched variable that can execute after the go statement,
// stopping each path at a Wait-method call (happens-before barrier).
// Accesses inside the spawned literal itself are skipped; per-iteration
// loop-header rebinds of `:=` loop variables are skipped per go1.22.
func postSpawnAccesses(g *cfg.Graph, spawnBlk *cfg.Block, spawnIdx int, sp spawn, watched map[*types.Var]dataflow.Capture, info *types.Info, perIter map[*types.Var][]ast.Node) map[*types.Var][]access {
	out := map[*types.Var][]access{}
	record := func(v *types.Var, a access) {
		for _, ex := range perIter[v] {
			if ex == a.node {
				return
			}
		}
		out[v] = append(out[v], a)
	}
	scanBlock := func(blk *cfg.Block, from int) (barrier bool) {
		for i := from; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if isWaitCall(n, info) {
				return true
			}
			accessesIn(n, sp.lit, watched, info, func(v *types.Var, a access) {
				a.node = n
				record(v, a)
			})
		}
		return false
	}
	seen := map[int]bool{spawnBlk.Index: true}
	var frontier []*cfg.Block
	if !scanBlock(spawnBlk, spawnIdx+1) {
		frontier = append(frontier, spawnBlk.Succs...)
	}
	for len(frontier) > 0 {
		blk := frontier[0]
		frontier = frontier[1:]
		if seen[blk.Index] {
			continue
		}
		seen[blk.Index] = true
		if !scanBlock(blk, 0) {
			frontier = append(frontier, blk.Succs...)
		}
	}
	return out
}

// isWaitCall reports whether the node contains a call to a method named
// Wait (sync.WaitGroup.Wait and look-alikes). Treated as a barrier: the
// spawner joins its goroutines before proceeding.
func isWaitCall(n ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn != nil && fn.Name() == "Wait" && analysis.Signature(fn) != nil && analysis.Signature(fn).Recv() != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// accessesIn reports reads and writes of watched variables inside node,
// skipping the spawned literal's own subtree (its accesses are the other
// side of the race, already known from Captures).
func accessesIn(node ast.Node, skip *ast.FuncLit, watched map[*types.Var]dataflow.Capture, info *types.Info, report func(*types.Var, access)) {
	varOf := func(e ast.Expr) *types.Var {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				id, ok := e.(*ast.Ident)
				if !ok {
					return nil
				}
				if v, ok := info.Uses[id].(*types.Var); ok {
					return v
				}
				if v, ok := info.Defs[id].(*types.Var); ok {
					return v
				}
				return nil
			}
		}
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if x == skip {
					return false
				}
				return true
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					walk(rhs)
				}
				for _, lhs := range x.Lhs {
					if v := varOf(lhs); v != nil {
						if _, ok := watched[v]; ok {
							report(v, access{pos: lhs.Pos(), write: true})
						}
					}
					// Index/selector sub-expressions are reads.
					if ix, ok := lhs.(*ast.IndexExpr); ok {
						walk(ix.Index)
					}
				}
				return false
			case *ast.IncDecStmt:
				if v := varOf(x.X); v != nil {
					if _, ok := watched[v]; ok {
						report(v, access{pos: x.X.Pos(), write: true})
					}
				}
				return false
			case *ast.RangeStmt:
				// An assigned-form range rewrites outer variables each
				// iteration; define-form headers are handled by the
				// per-iteration exemption upstream.
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e == nil {
						continue
					}
					if v := varOf(e); v != nil {
						if _, ok := watched[v]; ok {
							report(v, access{pos: e.Pos(), write: true})
						}
					}
				}
				walk(x.X)
				// Body statements live in their own CFG blocks.
				return false
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if v := varOf(x.X); v != nil {
						if _, ok := watched[v]; ok {
							report(v, access{pos: x.X.Pos(), write: true})
						}
					}
					return false
				}
			case *ast.Ident:
				if v, ok := info.Uses[x].(*types.Var); ok && v != nil {
					if _, okW := watched[v]; okW {
						report(v, access{pos: x.Pos(), write: false})
					}
				}
			}
			return true
		})
	}
	walk(node)
}
