// Package passes registers the ftlint analyzer suite.
package passes

import (
	"ftsched/internal/analysis"
	"ftsched/internal/analysis/passes/determorder"
	"ftsched/internal/analysis/passes/errprop"
	"ftsched/internal/analysis/passes/goroutinecapture"
	"ftsched/internal/analysis/passes/indexbound"
	"ftsched/internal/analysis/passes/infwcet"
	"ftsched/internal/analysis/passes/mapiter"
	"ftsched/internal/analysis/passes/nondet"
	"ftsched/internal/analysis/passes/obssafe"
	"ftsched/internal/analysis/passes/sharedmut"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determorder.Analyzer,
		errprop.Analyzer,
		goroutinecapture.Analyzer,
		indexbound.Analyzer,
		infwcet.Analyzer,
		mapiter.Analyzer,
		nondet.Analyzer,
		obssafe.Analyzer,
		sharedmut.Analyzer,
	}
}
