// Package passes registers the ftlint analyzer suite.
package passes

import (
	"fmt"
	"strings"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/passes/cancelpoll"
	"ftsched/internal/analysis/passes/determorder"
	"ftsched/internal/analysis/passes/epochpurity"
	"ftsched/internal/analysis/passes/errprop"
	"ftsched/internal/analysis/passes/goroutinecapture"
	"ftsched/internal/analysis/passes/hotalloc"
	"ftsched/internal/analysis/passes/indexbound"
	"ftsched/internal/analysis/passes/infwcet"
	"ftsched/internal/analysis/passes/mapiter"
	"ftsched/internal/analysis/passes/nondet"
	"ftsched/internal/analysis/passes/obssafe"
	"ftsched/internal/analysis/passes/sharedmut"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cancelpoll.Analyzer,
		determorder.Analyzer,
		epochpurity.Analyzer,
		errprop.Analyzer,
		goroutinecapture.Analyzer,
		hotalloc.Analyzer,
		indexbound.Analyzer,
		infwcet.Analyzer,
		mapiter.Analyzer,
		nondet.Analyzer,
		obssafe.Analyzer,
		sharedmut.Analyzer,
	}
}

// Select resolves a comma-separated analyzer-name list against the suite,
// preserving suite order and rejecting unknown names with the valid set in
// the error. An empty spec selects everything.
func Select(spec string) ([]*analysis.Analyzer, error) {
	all := All()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("unknown analyzer %q; valid names: %s", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-analyzers selected nothing; valid names: %s", strings.Join(names, ", "))
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}
