// Package errprop is the errprop fixture: discarded error returns from
// same-module APIs are flagged; stdlib calls and handled errors are not.
package errprop

import (
	"fmt"

	"errprop/helper"
)

func mayFail() error {
	return nil
}

func value() (int, error) {
	return 0, nil
}

// Closer has a method returning an error.
type Closer struct{}

// Close pretends to release a resource.
func (Closer) Close() error {
	return nil
}

func discards(c Closer) {
	mayFail()       // want "errprop.mayFail returns an error that is discarded"
	helper.Do()     // want "helper.Do returns an error that is discarded"
	value()         // want "errprop.value returns an error that is discarded"
	c.Close()       // want "Closer.Close returns an error that is discarded"
	go mayFail()    // want "go errprop.mayFail returns an error that is discarded"
	defer mayFail() // want "defer errprop.mayFail returns an error that is discarded"
}

func handles(c Closer) error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := value()
	_ = n
	fmt.Println("stdlib calls are out of scope")
	return err
}

func suppressed(c Closer) {
	c.Close() //ftlint:allow-discard fixture: best-effort cleanup on the exit path
}

func staleDirective() error {
	//ftlint:allow-discard nothing is discarded here // want "stale //ftlint:allow-discard directive"
	return mayFail()
}

// Method values and closures are dynamic calls — CalleeFunc cannot resolve
// them, but the binding is traceable.
func dynamicDiscards(c Closer) {
	f := c.Close
	f() // want "method value Closer.Close \\(called through \"f\"\\) returns an error that is discarded"

	g := mayFail
	g() // want "function value errprop.mayFail \\(called through \"g\"\\) returns an error that is discarded"

	h := helper.Do
	h() // want "function value helper.Do \\(called through \"h\"\\) returns an error that is discarded"

	worker := func() error {
		return mayFail()
	}
	worker()       // want "closure \\(called through \"worker\"\\) returns an error that is discarded"
	go worker()    // want "go closure \\(called through \"worker\"\\) returns an error that is discarded"
	defer worker() // want "defer closure \\(called through \"worker\"\\) returns an error that is discarded"
}

func dynamicHandled(c Closer) error {
	f := c.Close
	if err := f(); err != nil {
		return err
	}
	worker := func() error { return mayFail() }
	return worker()
}

// A closure that returns nothing (or no error) is not tracked, and neither
// is a function value taken from outside the module.
func dynamicOutOfScope() {
	tick := func() {}
	tick()
	render := fmt.Sprint
	_ = render
	var decl = func() error { return nil }
	decl() // want "closure \\(called through \"decl\"\\) returns an error that is discarded"
}

// A function value built by a same-module factory is tracked through the
// factory's interprocedural summary (ErrorValued), one call level deep.
func factoryDiscards() {
	f := helper.NewCloser()
	f() // want "error-returning function built by helper.NewCloser \\(called through \"f\"\\) returns an error that is discarded"
}

func factoryHandled() error {
	f := helper.NewCloser()
	return f()
}
