// Package errprop is the errprop fixture: discarded error returns from
// same-module APIs are flagged; stdlib calls and handled errors are not.
package errprop

import (
	"fmt"

	"errprop/helper"
)

func mayFail() error {
	return nil
}

func value() (int, error) {
	return 0, nil
}

// Closer has a method returning an error.
type Closer struct{}

// Close pretends to release a resource.
func (Closer) Close() error {
	return nil
}

func discards(c Closer) {
	mayFail()       // want "errprop.mayFail returns an error that is discarded"
	helper.Do()     // want "helper.Do returns an error that is discarded"
	value()         // want "errprop.value returns an error that is discarded"
	c.Close()       // want "Closer.Close returns an error that is discarded"
	go mayFail()    // want "go errprop.mayFail returns an error that is discarded"
	defer mayFail() // want "defer errprop.mayFail returns an error that is discarded"
}

func handles(c Closer) error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := value()
	_ = n
	fmt.Println("stdlib calls are out of scope")
	return err
}

func suppressed(c Closer) {
	c.Close() //ftlint:allow-discard fixture: best-effort cleanup on the exit path
}

func staleDirective() error {
	//ftlint:allow-discard nothing is discarded here // want "stale //ftlint:allow-discard directive"
	return mayFail()
}
