// Package helper is a sibling package of the errprop fixture module: its
// import path shares the fixture's first element, so the analyzer treats it
// as same-module.
package helper

// Do pretends to perform fallible work.
func Do() error {
	return nil
}
