// Package helper is a sibling package of the errprop fixture module: its
// import path shares the fixture's first element, so the analyzer treats it
// as same-module.
package helper

// Do pretends to perform fallible work.
func Do() error {
	return nil
}

// NewCloser builds a fallible cleanup function; the caller must check the
// error its result returns. The factory shape (one func-typed result whose
// signature returns an error) is what the summary engine marks ErrorValued.
func NewCloser() func() error {
	return func() error { return nil }
}
