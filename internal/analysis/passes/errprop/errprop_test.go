package errprop_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/errprop"
)

func TestDiscards(t *testing.T) {
	analysistest.Run(t, "testdata", "errprop", errprop.Analyzer)
}
