// Package errprop flags discarded error returns from this module's own
// APIs: a call statement (or go/defer) whose callee lives in the module and
// returns an error that nobody reads. This is exactly the bug class behind
// the ft1PassiveChain regression fixed in PR 2, where a dropped routing
// error silently produced a schedule unable to fail over.
//
// Dynamic calls are covered when the function value is traceable: a local
// variable bound to a method value (f := c.Close), to a module function, or
// to an error-returning closure (the errgroup-style `func() error` worker
// idiom) is tracked, and calling it as a bare statement is flagged like the
// direct call would be. Rebinding such a variable to an out-of-module
// function later is not modeled; //ftlint:allow-discard covers that corner.
//
// Since v3 the tracking is one call level deeper through the summary facts
// engine: `f := pkg.Factory()` where the factory's summary says it returns
// an error-valued function (ErrorValued) taints f, so discarding the result
// of f() is flagged even though the closure's body lives in another package.
//
// Standard-library and third-party callees are out of scope (fmt.Println
// noise); an intentional discard is annotated //ftlint:allow-discard <why>.
package errprop

import (
	"go/ast"
	"go/types"
	"strings"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/summary"
)

// Analyzer is the errprop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errprop",
	Doc:  "flag discarded error returns from the module's own APIs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sums := summary.For(pass)
	for _, f := range pass.Files {
		vals := trackFuncValues(pass, sums, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				check(pass, vals, s.X, "")
			case *ast.GoStmt:
				check(pass, vals, s.Call, "go ")
			case *ast.DeferStmt:
				check(pass, vals, s.Call, "defer ")
			}
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, vals map[*types.Var]string, e ast.Expr, prefix string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		checkDynamic(pass, vals, call, prefix)
		return
	}
	if fn.Pkg() == nil || !sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
		return
	}
	if returnsError(analysis.Signature(fn)) {
		pass.Reportf(call.Pos(), "%s%s returns an error that is discarded; handle it, return it, or annotate with //ftlint:allow-discard <why>",
			prefix, qualifiedName(fn))
	}
}

// checkDynamic flags bare calls of tracked function values: method values,
// module function values, and error-returning closures.
func checkDynamic(pass *analysis.Pass, vals map[*types.Var]string, call *ast.CallExpr, prefix string) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	desc, ok := vals[v]
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "%s%s (called through %q) returns an error that is discarded; handle it, return it, or annotate with //ftlint:allow-discard <why>",
		prefix, desc, id.Name)
}

// trackFuncValues maps local variables to the error-returning function
// values they are bound to: f := c.Close (method value), f := helper.Do
// (module function value), f := func() error {...} (closure), or
// f := pkg.Factory() where the factory's summary marks its result as an
// error-returning function.
func trackFuncValues(pass *analysis.Pass, sums *summary.Info, f *ast.File) map[*types.Var]string {
	info := pass.TypesInfo
	vals := map[*types.Var]string{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v, _ := info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		if desc := describeFuncValue(pass, rhs); desc != "" {
			vals[v] = desc
			return
		}
		if desc := describeFactoryValue(pass, sums, rhs); desc != "" {
			vals[v] = desc
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return vals
}

// describeFuncValue classifies an expression as a trackable error-returning
// function value, returning a human-readable description or "".
func describeFuncValue(pass *analysis.Pass, e ast.Expr) string {
	info := pass.TypesInfo
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// Method value: c.Close with no call. The selection must be a
		// method of a module type whose signature returns an error.
		if sel, ok := info.Selections[x]; ok {
			if sel.Kind() != types.MethodVal {
				return ""
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok || fn.Pkg() == nil || !sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
				return ""
			}
			if !returnsError(analysis.Signature(fn)) {
				return ""
			}
			return "method value " + qualifiedName(fn)
		}
		// Not a selection: a package-qualified function, pkg.Fn.
		fn, ok := info.Uses[x.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
			return ""
		}
		if !returnsError(analysis.Signature(fn)) {
			return ""
		}
		return "function value " + qualifiedName(fn)
	case *ast.Ident:
		fn, ok := info.Uses[x].(*types.Func)
		if !ok || fn.Pkg() == nil || !sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
			return ""
		}
		if !returnsError(analysis.Signature(fn)) {
			return ""
		}
		return "function value " + qualifiedName(fn)
	case *ast.FuncLit:
		sig, ok := info.TypeOf(x).(*types.Signature)
		if !ok || !returnsError(sig) {
			return ""
		}
		return "closure"
	}
	return ""
}

// describeFactoryValue classifies `pkg.Factory()` results: when the called
// module function's interprocedural summary says it returns an error-valued
// function, the bound variable is tracked like a closure would be. This is
// the one-level taint propagation the facts engine enables: in vettool mode
// the factory may live in an already-analyzed dependency.
func describeFactoryValue(pass *analysis.Pass, sums *summary.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
		return ""
	}
	s := sums.ForFunc(fn)
	if s == nil || !s.ErrorValued {
		return ""
	}
	return "error-returning function built by " + qualifiedName(fn)
}

// returnsError reports whether any result of the signature is an error.
func returnsError(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if analysis.IsErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// sameModule reports whether two import paths share their first element —
// "ftsched/internal/core" and "ftsched/internal/graph" do, "fmt" does not.
// Fixture packages ("errprop" calling "errprop/helper") match the same way.
func sameModule(a, b string) bool {
	return firstElem(a) == firstElem(b)
}

func firstElem(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func qualifiedName(fn *types.Func) string {
	if named := analysis.NamedRecv(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return analysis.PkgBase(fn.Pkg().Path()) + "." + fn.Name()
}
