// Package errprop flags discarded error returns from this module's own
// APIs: a call statement (or go/defer) whose callee lives in the module and
// returns an error that nobody reads. This is exactly the bug class behind
// the ft1PassiveChain regression fixed in PR 2, where a dropped routing
// error silently produced a schedule unable to fail over.
//
// Standard-library and third-party callees are out of scope (fmt.Println
// noise); an intentional discard is annotated //ftlint:allow-discard <why>.
package errprop

import (
	"go/ast"
	"go/types"
	"strings"

	"ftsched/internal/analysis"
)

// Analyzer is the errprop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errprop",
	Doc:  "flag discarded error returns from the module's own APIs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				check(pass, s.X, "")
			case *ast.GoStmt:
				check(pass, s.Call, "go ")
			case *ast.DeferStmt:
				check(pass, s.Call, "defer ")
			}
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, e ast.Expr, prefix string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
		return
	}
	res := analysis.Signature(fn).Results()
	for i := 0; i < res.Len(); i++ {
		if analysis.IsErrorType(res.At(i).Type()) {
			pass.Reportf(call.Pos(), "%s%s returns an error that is discarded; handle it, return it, or annotate with //ftlint:allow-discard <why>",
				prefix, qualifiedName(fn))
			return
		}
	}
}

// sameModule reports whether two import paths share their first element —
// "ftsched/internal/core" and "ftsched/internal/graph" do, "fmt" does not.
// Fixture packages ("errprop" calling "errprop/helper") match the same way.
func sameModule(a, b string) bool {
	return firstElem(a) == firstElem(b)
}

func firstElem(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func qualifiedName(fn *types.Func) string {
	if named := analysis.NamedRecv(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return analysis.PkgBase(fn.Pkg().Path()) + "." + fn.Name()
}
