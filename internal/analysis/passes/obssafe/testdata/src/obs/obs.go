// Package obs is an obssafe fixture mirroring the observability layer's
// nil-receiver contract: a nil *Sink is the documented disabled state, so
// every exported pointer-receiver method must guard or delegate.
package obs

// Counter is a fixture counter.
type Counter struct {
	n int64
}

// Add is nil-guarded: the canonical compliant shape.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc delegates to a nil-safe method on the same receiver.
func (c *Counter) Inc() {
	c.Add(1)
}

// Get returns through a delegation.
func (c *Counter) Get() int64 {
	return c.value()
}

func (c *Counter) value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Sink is a fixture sink.
type Sink struct {
	counters map[string]*Counter
}

// Counter is nil-guarded and lazily allocates.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Bad dereferences a possibly-nil receiver with no guard.
func (s *Sink) Bad() int { // want "exported method Bad must start with"
	return len(s.counters)
}

// BadStore writes through the receiver with no guard.
func (s *Sink) BadStore(name string) { // want "exported method BadStore must start with"
	s.counters[name] = &Counter{}
}

// reset is unexported: out of the contract's scope.
func (s *Sink) reset() {
	s.counters = nil
}

// View has a value receiver, which can never be nil.
type View struct {
	names []string
}

// Len needs no guard on a value receiver.
func (v View) Len() int {
	return len(v.names)
}

// Known is exempted by a reviewed directive.
func (s *Sink) Known(name string) bool { //ftlint:allow-obs fixture: every constructor returns a non-nil sink
	_, ok := s.counters[name]
	return ok
}
