// Package app is the obssafe call-site fixture: Sink.Counter takes the sink
// lock, so it must be resolved once outside any loop.
package app

import "obs"

func resolveOutside(s *obs.Sink, items []string) {
	c := s.Counter("evals")
	for range items {
		c.Inc()
	}
}

func resolveInside(s *obs.Sink, items []string) {
	for _, it := range items {
		_ = it
		s.Counter("evals").Inc() // want "Sink.Counter resolved inside a loop"
	}
}

func resolveInForLoop(s *obs.Sink, n int) {
	for i := 0; i < n; i++ {
		s.Counter("evals").Add(int64(i)) // want "Sink.Counter resolved inside a loop"
	}
}

func resolveInClosure(s *obs.Sink, items []string) {
	for range items {
		// A closure body is a fresh function boundary: one resolution per
		// invocation, not per loop iteration.
		f := func() { s.Counter("evals").Inc() }
		f()
	}
}

func suppressed(s *obs.Sink, items []string) {
	for range items {
		s.Counter("evals").Inc() //ftlint:allow-obs fixture: cold path, one iteration in practice
	}
}
