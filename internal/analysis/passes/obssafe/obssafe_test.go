package obssafe_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/obssafe"
)

func TestGuards(t *testing.T) {
	analysistest.Run(t, "testdata", "obs", obssafe.Analyzer)
}

func TestCallSites(t *testing.T) {
	analysistest.Run(t, "testdata", "app", obssafe.Analyzer)
}
