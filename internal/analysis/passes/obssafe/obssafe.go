// Package obssafe enforces the observability layer's nil-receiver contract
// (DESIGN.md §9): a nil *Sink must be a valid, permanently disabled sink, so
// every exported pointer-receiver method in the obs package must either
// begin with the nil guard
//
//	if s == nil { return ... }
//
// or consist of a single delegation to another method of the same receiver
// (which is itself checked). At call sites, counters must be resolved
// outside loop bodies: Sink.Counter takes the sink lock, so calling it per
// iteration turns a zero-cost increment into a mutex acquisition in the
// scheduler's hottest loops.
package obssafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
)

// Analyzer is the obssafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "obssafe",
	Doc:  "enforce nil-receiver guards on obs methods and counter resolution outside loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.PkgBase(pass.Pkg.Path()) == "obs" {
		checkGuards(pass)
	}
	checkCallSites(pass)
	return nil
}

// checkGuards verifies the exported pointer-receiver methods of the obs
// package itself.
func checkGuards(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverIdent(fd)
			if recv == nil {
				// Unnamed or non-pointer receiver: a value receiver cannot
				// be nil, nothing to guard.
				continue
			}
			if len(fd.Body.List) == 0 {
				continue
			}
			if hasNilGuard(pass, fd.Body.List[0], recv) || delegates(pass, fd.Body.List, recv) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported method %s must start with `if %s == nil { return ... }` (or delegate to a nil-safe method on %s): a nil sink is the documented disabled state; annotate with //ftlint:allow-obs <why> if the receiver is provably non-nil",
				fd.Name.Name, recv.Name, recv.Name)
		}
	}
}

// receiverIdent returns the named pointer receiver of fd, or nil.
func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); !ok {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	return name
}

// hasNilGuard matches `if recv == nil { return ... }` as the statement.
func hasNilGuard(pass *analysis.Pass, s ast.Stmt, recv *ast.Ident) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op != token.EQL {
		return false
	}
	if !isReceiver(pass, cmp.X, recv) && !isReceiver(pass, cmp.Y, recv) {
		return false
	}
	if !isNil(pass, cmp.X) && !isNil(pass, cmp.Y) {
		return false
	}
	for _, t := range ifs.Body.List {
		if _, ok := t.(*ast.ReturnStmt); !ok {
			return false
		}
	}
	return len(ifs.Body.List) > 0
}

// delegates matches a body that is exactly one call (statement or return) to
// a method of the same receiver, e.g. func (c *Counter) Inc() { c.Add(1) }.
func delegates(pass *analysis.Pass, body []ast.Stmt, recv *ast.Ident) bool {
	if len(body) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := body[0].(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = ast.Unparen(s.Results[0]).(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isReceiver(pass, sel.X, recv)
}

func isReceiver(pass *analysis.Pass, e ast.Expr, recv *ast.Ident) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] != nil && pass.TypesInfo.Uses[id] == pass.TypesInfo.Defs[recv]
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilConst
}

// checkCallSites flags Sink.Counter resolutions inside loop bodies in every
// package: the contract is resolve once, increment unconditionally.
func checkCallSites(pass *analysis.Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok && inLoop(stack) &&
				analysis.IsMethodOn(pass.TypesInfo, call, "obs", "Sink", "Counter") {
				pass.Reportf(call.Pos(), "Sink.Counter resolved inside a loop acquires the sink lock per iteration; resolve the counter once before the loop and call Add/Inc on it, or annotate with //ftlint:allow-obs <why>")
			}
			stack = append(stack, n)
			return true
		})
	}
}

// inLoop reports whether the innermost enclosing function boundary is
// crossed after a loop: a resolution inside a closure defined in a loop is
// one call per closure invocation, which the closure's own loops would
// catch.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
