// Package a is the infwcet consumer fixture: every flagged shape, its
// guarded counterpart, and directive suppression.
package a

import (
	"math"

	"spec"
)

func rawSentinelArith(x float64) float64 {
	return spec.Inf + x // want "raw arithmetic on the ∞ WCET sentinel"
}

func rawSentinelCompare(x float64) bool {
	return x < spec.Inf // want "raw ordering comparison on the ∞ WCET sentinel"
}

func rawMathInf(x float64) float64 {
	return math.Inf(1) * x // want "raw arithmetic on the ∞ WCET sentinel"
}

func directAccessorArith(s *spec.Spec, start float64) float64 {
	return start + s.Exec("op", "p") // want "result of Exec may be the ∞ sentinel"
}

func directAdapterArith(c spec.AvgCost) float64 {
	return c.OpCost("op") - 1 // want "result of OpCost may be the ∞ sentinel"
}

func taintedUnguarded(s *spec.Spec, base float64) float64 {
	d := s.Exec("op", "p")
	return base + d // want "d holds the result of a possibly-∞ spec accessor"
}

func taintedGuardedByIsInf(s *spec.Spec, base float64) float64 {
	d := s.Exec("op", "p")
	if math.IsInf(d, 1) {
		return base
	}
	return base + d
}

func taintedGuardedByCanRun(s *spec.Spec, base float64) float64 {
	if !s.CanRun("op", "p") {
		return base
	}
	d := s.Exec("op", "p")
	return base + d
}

// The check runs only after the arithmetic already happened — the coarse
// any-guard-in-function test used to miss this; dominator analysis does not.
func checkedTooLate(s *spec.Spec, base float64) float64 {
	d := s.Exec("op", "p")
	r := base + d // want "d holds the result of a possibly-∞ spec accessor with no dominating finiteness check"
	if math.IsInf(r, 1) {
		return base
	}
	return r
}

// A guard on the slow path does not sanction the fast path that skips it.
func checkedWrongBranch(s *spec.Spec, base float64, fast bool) float64 {
	d := s.Exec("op", "p")
	if fast {
		return base + d // want "d holds the result of a possibly-∞ spec accessor with no dominating finiteness check"
	}
	if math.IsInf(d, 1) {
		return base
	}
	return base + d
}

// Guard and use both inside the same branch: the IsInf head dominates.
func checkedInsideBranch(s *spec.Spec, base float64, slow bool) float64 {
	d := s.Exec("op", "p")
	if slow {
		if math.IsInf(d, 1) {
			return base
		}
		return base + d
	}
	return base
}

// An early-out guard dominates everything after it, loops included.
func checkedBeforeLoop(s *spec.Spec, base float64, n int) float64 {
	d := s.Exec("op", "p")
	if math.IsInf(d, 1) {
		return base
	}
	for i := 0; i < n; i++ {
		base += d
	}
	return base
}

func sentinelEquality(s *spec.Spec) bool {
	// Equality against the sentinel is exact and allowed; only arithmetic
	// and ordering comparisons are flagged.
	return s.Exec("op", "p") == spec.Inf
}

func suppressed(s *spec.Spec, base float64) float64 {
	d := s.Exec("op", "p")
	return base + d //ftlint:infwcet-checked fixture: the caller filtered p through CanRun
}

func staleDirective(base float64) float64 {
	return base + 1 //ftlint:infwcet-checked nothing here is infinite // want "stale //ftlint:infwcet-checked directive"
}
