// Package spec is an infwcet fixture mirroring the WCET-table surface of the
// real ftsched/internal/spec package: the ∞ sentinel, the possibly-∞
// accessors Exec and AvgExec, the CanRun guard, and the AvgCost adapter. The
// analyzer matches by package base name and type name, so this stand-in
// exercises the same recognizers.
package spec

import "math"

// Inf is the sentinel returned for forbidden placements.
var Inf = math.Inf(1)

// Spec is a minimal Δ(op, proc) table.
type Spec struct {
	D map[string]float64
}

// Exec returns the duration of op on proc, or Inf if forbidden.
func (s *Spec) Exec(op, proc string) float64 {
	if d, ok := s.D[op+"|"+proc]; ok {
		return d
	}
	return Inf
}

// AvgExec returns the average duration of op, or Inf if unplaceable.
func (s *Spec) AvgExec(op string) float64 {
	sum, n := 0.0, 0
	for k, d := range s.D {
		if len(k) >= len(op) && k[:len(op)] == op {
			sum += d
			n++
		}
	}
	if n == 0 {
		return Inf
	}
	return sum / float64(n)
}

// CanRun reports whether op may be placed on proc.
func (s *Spec) CanRun(op, proc string) bool {
	return !math.IsInf(s.Exec(op, proc), 1)
}

// AvgCost adapts a Spec to a cost function over operations.
type AvgCost struct {
	S *Spec
}

// OpCost returns the average duration of op, or Inf.
func (c AvgCost) OpCost(op string) float64 {
	return c.S.AvgExec(op)
}
