package infwcet_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/infwcet"
)

func TestConsumer(t *testing.T) {
	analysistest.Run(t, "testdata", "a", infwcet.Analyzer)
}
