// Package infwcet guards the ∞ sentinel of the Δ(op, proc) execution-time
// table. spec.Exec returns spec.Inf (IEEE +Inf) for a forbidden placement,
// and spec.AvgExec returns it for an unplaceable operation; raw arithmetic
// on such a value silently produces ±Inf or NaN (Inf − Inf), which then
// mis-ranks every schedule-pressure candidate instead of failing loudly.
//
// The pass flags three shapes:
//
//   - the sentinel itself (spec.Inf or a direct math.Inf call) used as an
//     operand of +, -, *, / or an ordering comparison;
//   - a possibly-∞ accessor call (Exec, AvgExec, OpCost) used directly as
//     such an operand;
//   - a variable assigned from a possibly-∞ accessor and later used in
//     arithmetic at a point not dominated by a finiteness check (math.IsInf,
//     math.IsNaN, or the CanRun helper). Dominance is computed on the
//     function's CFG, so a check on one branch does not sanction the other,
//     and a check placed after the arithmetic does not sanction it at all.
//
// Use the spec helpers (CanRun, math.IsInf) before computing, or annotate a
// proven-guarded site with //ftlint:infwcet-checked <why>.
package infwcet

import (
	"go/ast"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/cfg"
)

// Analyzer is the infwcet pass.
var Analyzer = &analysis.Analyzer{
	Name: "infwcet",
	Doc:  "flag raw arithmetic and ordering comparisons on the ∞ WCET sentinel",
	Run:  run,
}

// possiblyInf reports whether the call's static callee may return the ∞
// sentinel: the spec table accessors and their cost-function adapter.
func possiblyInf(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsMethodOn(pass.TypesInfo, call, "spec", "Spec", "Exec") ||
		analysis.IsMethodOn(pass.TypesInfo, call, "spec", "Spec", "AvgExec") ||
		analysis.IsMethodOn(pass.TypesInfo, call, "spec", "AvgCost", "OpCost")
}

// isSentinel reports whether e denotes the ∞ sentinel: the Inf package
// variable of a spec package, or a direct math.Inf(...) call.
func isSentinel(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return isInfVar(pass.TypesInfo.Uses[e])
	case *ast.SelectorExpr:
		return isInfVar(pass.TypesInfo.Uses[e.Sel])
	case *ast.CallExpr:
		return analysis.IsStdCall(pass.TypesInfo, e, "math", "Inf")
	}
	return false
}

func isInfVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Name() == "Inf" && v.Pkg() != nil && analysis.PkgBase(v.Pkg().Path()) == "spec"
}

func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

func orderingOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd)
			return true
		})
	}
	return nil
}

// isGuardCall reports whether the call consults a finiteness helper.
func isGuardCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsStdCall(pass.TypesInfo, call, "math", "IsInf") ||
		analysis.IsStdCall(pass.TypesInfo, call, "math", "IsNaN") ||
		analysis.IsMethodOn(pass.TypesInfo, call, "spec", "Spec", "CanRun")
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// tainted maps variables assigned from a possibly-∞ accessor to the
	// position of that assignment.
	tainted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !possiblyInf(pass, call) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						tainted[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						tainted[obj] = true
					}
				}
			}
		}
		return true
	})

	// A tainted variable's arithmetic use is sanctioned only by a finiteness
	// check that dominates it on the CFG: same block, earlier node — or any
	// node of a strictly dominating block. A check on a sibling branch, or
	// one placed after the use, no longer silences the whole function.
	g := cfg.New(fd.Body)
	dom := g.Dominators()
	guardNode := map[int]int{} // block index → earliest node index holding a guard call
	for _, blk := range g.Blocks {
		for ni, node := range blk.Nodes {
			found := false
			ast.Inspect(node, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && isGuardCall(pass, call) {
					found = true
					return false
				}
				return !found
			})
			if found {
				guardNode[blk.Index] = ni
				break
			}
		}
	}
	guardDominates := func(pos token.Pos) bool {
		blk, idx, ok := g.BlockOf(pos)
		if !ok {
			// Outside the CFG (e.g. inside a nested FuncLit the builder
			// treats as opaque): fall back to the coarse any-guard test.
			return len(guardNode) > 0
		}
		for bi, ni := range guardNode {
			if bi == blk.Index {
				if ni <= idx {
					return true
				}
				continue
			}
			if dom[blk.Index][bi] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		arith, ordering := arithmeticOp(be.Op), orderingOp(be.Op)
		if !arith && !ordering {
			return true
		}
		for _, operand := range []ast.Expr{be.X, be.Y} {
			operand = ast.Unparen(operand)
			if isSentinel(pass, operand) {
				pass.Reportf(be.OpPos, "raw %s on the ∞ WCET sentinel yields Inf/NaN and mis-ranks candidates; compare with math.IsInf or use the spec helpers, or annotate with //ftlint:infwcet-checked <why>", opKind(arith))
				return true
			}
			if call, ok := operand.(*ast.CallExpr); ok && possiblyInf(pass, call) {
				pass.Reportf(be.OpPos, "result of %s may be the ∞ sentinel; guard with CanRun/math.IsInf before %s, or annotate with //ftlint:infwcet-checked <why>",
					calleeName(pass, call), opKind(arith))
				return true
			}
			if arith {
				if id, ok := operand.(*ast.Ident); ok && tainted[pass.TypesInfo.Uses[id]] && !guardDominates(be.OpPos) {
					pass.Reportf(be.OpPos, "%s holds the result of a possibly-∞ spec accessor with no dominating finiteness check; guard with CanRun/math.IsInf, or annotate with //ftlint:infwcet-checked <why>", id.Name)
					return true
				}
			}
		}
		return true
	})
}

func opKind(arith bool) string {
	if arith {
		return "arithmetic"
	}
	return "ordering comparison"
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return "the call"
}
