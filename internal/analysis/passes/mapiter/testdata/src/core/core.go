// Package core is a mapiter fixture standing in for a determinism-critical
// package (its path base is in analysis.CriticalPackages).
package core

import (
	"fmt"
	"slices"
	"sort"
)

func earlyReturn(m map[string]int) string {
	for k := range m { // want "early return publishes whichever element"
		return k
	}
	return ""
}

func floatAccumulation(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want "non-integer accumulation depends on iteration order"
		s += v
	}
	return s
}

func lastWriterWins(m map[string]int, out map[int]string) {
	for k, v := range m { // want "assignment to out\\[v\\] outside the loop is last-writer-wins"
		out[v] = k
	}
}

func sideEffects(m map[string]int) {
	for k := range m { // want "statement with side effects runs per iteration"
		fmt.Println(k)
	}
}

func unsortedEscape(m map[string]int) []string {
	var keys []string
	for k := range m { // want "accumulated slice keys is not sorted before its next use"
		keys = append(keys, k)
	}
	return keys
}

func breakOut(m map[string]int, n int) int {
	for _, v := range m { // want "break/goto makes the visited key set order-dependent"
		n += v
		break
	}
	return n
}

func integerAccumulation(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
		n++
	}
	return n
}

func guardedMax(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func guardedMinConjunct(m map[string]float64, limit float64) float64 {
	low := limit
	for _, v := range m {
		if v < limit && low > v {
			low = v
		}
	}
	return low
}

func pruneRanged(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func loopLocalWrites(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		sum := 0
		for _, v := range vs {
			sum += v
		}
		if sum > total {
			total = sum
		}
	}
	return total
}

func sortedEscape(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func suppressedTrailing(m map[string]int, out map[int]string) {
	for k, v := range m { //ftlint:order-insensitive fixture proof: keys map to distinct slots
		out[v] = k
	}
}

func suppressedAbove(m map[string]int) string {
	//ftlint:order-insensitive fixture proof: any key is acceptable here
	for k := range m {
		return k
	}
	return ""
}

func staleDirective(m map[string]int) int {
	n := 0
	for _, v := range m { //ftlint:order-insensitive this loop needs no proof // want "stale //ftlint:order-insensitive directive"
		n += v
	}
	return n
}

func badDirective(m map[string]int) string {
	//ftlint:order-insensistive typo in the keyword // want "unknown directive //ftlint:order-insensistive"
	for k := range m { // want "early return publishes whichever element"
		return k
	}
	return ""
}

func mulAccumulation(m map[string]int) int {
	n := 1
	for _, v := range m {
		n *= v
	}
	return n
}

func divAccumulation(m map[string]int) int {
	n := 1 << 30
	for _, v := range m { // want "assignment operator not recognized as order-insensitive"
		n /= v
	}
	return n
}

func guardedMaxGeq(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if best <= v {
			best = v
		}
	}
	return best
}

func guardedMinSwapped(m map[string]float64) float64 {
	low := 1e18
	for _, v := range m {
		if v < low {
			low = v
		}
	}
	return low
}

func continueOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v < 0 {
			continue
		}
		n += v
	}
	return n
}

func innerForLoop(m map[string]int) int {
	n := 0
	for _, v := range m {
		for i := 0; i < v; i++ {
			n++
		}
	}
	return n
}

func switchInLoop(m map[string]int) (odd, even int) {
	for _, v := range m {
		switch v % 2 {
		case 0:
			even++
		default:
			odd++
		}
	}
	return
}

func nestedChannelRange(m map[string]chan int) int {
	n := 0
	for _, ch := range m { // want "nested range over a channel or pointer"
		for v := range ch {
			n += v
		}
	}
	return n
}

func incDecOfKeyedElem(m map[string]int, counts map[string]int) {
	for k := range m {
		counts[k]++
	}
}

func declStmtPure(m map[string]int) int {
	n := 0
	for _, v := range m {
		var double = v * 2
		if double > n {
			n = double
		}
	}
	return n
}

func declCallsFunction(m map[string]int) {
	for k := range m { // want "declaration calls a function"
		var s = fmt.Sprintf("%q", k)
		_ = s
	}
}

func receiveInCondition(m map[string]int, ready chan bool) int {
	n := 0
	for range m { // want "condition has side effects"
		if <-ready {
			n++
		}
	}
	return n
}

func funcLitInInit(m map[string]int) {
	for k := range m { // want "initializer calls a function"
		f := func() string { return k }
		_ = f
	}
}

func builtinMaxInAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += max(v, 0)
	}
	return n
}

func sortedWithSlices(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func accumulatorNeverUsed(m map[string]int) {
	var keys []string
	for k := range m { // want "accumulated slice keys is not sorted before its next use"
		keys = append(keys, k)
	}
}

func ifElseOK(m map[string]int) (pos, neg int) {
	for _, v := range m {
		if v > 0 {
			pos += v
		} else {
			neg += v
		}
	}
	return
}

func ifInitOK(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		if l := len(vs); l > 1 {
			n += l
		}
	}
	return n
}

func ifInitImpure(m map[string]int) int {
	n := 0
	for k := range m { // want "if-init calls a function"
		if s := fmt.Sprint(k); s != "" {
			n++
		}
	}
	return n
}

// Deleting a key other than the one the iteration is standing on changes
// which keys are still visited — Go leaves that unspecified.
func deleteForeignKey(m map[string]int) {
	for k := range m { // want "delete of a key other than the current iteration key"
		delete(m, k+"!")
	}
}

// The same hazard buried one loop down (a transitive-closure prune): the
// deleted keys come from the entry's dependency list, not the iteration.
func deleteNested(m map[string][]string) {
	for _, deps := range m { // want "delete of a key other than the current iteration key"
		for _, d := range deps {
			delete(m, d)
		}
	}
}

// Stores keyed by the current iteration key hit a distinct slot every
// iteration, so no write can shadow another.
func keyedStores(m map[string]int, seen map[string]bool, delta map[string]int) {
	for k, v := range m {
		seen[k] = true
		delta[k] = v * 2
	}
}

// A value-keyed store can collide (two keys, one value): still flagged.
func valueKeyedStore(m map[string]int, out map[int]string) {
	for k, v := range m { // want "assignment to out\\[v\\] outside the loop is last-writer-wins"
		out[v] = k
	}
}

// break of a loop nested inside the body ends that loop only; each entry's
// contribution stays deterministic.
func nestedBreak(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				break
			}
			n += v
		}
	}
	return n
}

// Same for a switch's implicit break position used explicitly.
func switchBreak(m map[string]int) int {
	n := 0
	for _, v := range m {
		switch {
		case v > 10:
			break
		default:
			n += v
		}
	}
	return n
}

// A labeled break that rips through the map range is still an escape.
func labeledBreak(m map[string][]int) int {
	n := 0
outer:
	for _, vs := range m { // want "break/goto makes the visited key set order-dependent"
		for _, v := range vs {
			if v < 0 {
				break outer
			}
			n += v
		}
	}
	return n
}
