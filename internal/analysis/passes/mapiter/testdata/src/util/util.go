// Package util is a mapiter fixture for a package that is NOT
// determinism-critical: the same escaping loops draw no diagnostics.
package util

func earlyReturn(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

func floatAccumulation(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
