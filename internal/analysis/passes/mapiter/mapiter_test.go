package mapiter_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/mapiter"
)

func TestCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "core", mapiter.Analyzer)
}

func TestNonCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "util", mapiter.Analyzer)
}
