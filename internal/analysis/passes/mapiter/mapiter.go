// Package mapiter flags range statements over maps in determinism-critical
// packages whose iteration effects can escape in map order. Go randomizes
// map iteration per run, so any such escape makes the emitted schedule — and
// with it the K-fault certificate and the golden-equivalence matrix — differ
// between runs of the same input.
//
// A loop is accepted without annotation only when every effect is provably
// order-insensitive:
//
//   - integer accumulation (n++, n--, n += e, n *= e) and numeric inc/dec;
//   - guarded max/min updates (if v > m { m = v });
//   - delete of the current iteration key from the ranged map (deleting any
//     other key changes which keys the iteration still visits, which Go
//     leaves unspecified — so arbitrary-key deletes are flagged);
//   - writes to variables declared inside the loop;
//   - stores keyed by the current iteration key (tbl[k] = v): every
//     iteration writes a distinct slot, so no write can shadow another;
//   - appends to an outer slice that is sorted before its next use (when
//     the sort is missing and the element type is ordered, the diagnostic
//     carries a fix inserting the sort call);
//   - break out of a loop or switch nested inside the body (it ends the
//     inner statement only; an unlabeled break of the map range itself, or
//     a labeled break past it, still escapes in map order).
//
// Anything else needs an explicit //ftlint:order-insensitive <proof>
// directive on the range statement, turning the assumption into an audited
// one.
package mapiter

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
)

// Analyzer is the mapiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag map iterations whose effects escape in nondeterministic order",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsCriticalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// follow maps every statement to the statements after it in its
		// innermost block, so accumulator escapes can be checked.
		follow := make(map[ast.Stmt][]ast.Stmt)
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, s := range list {
				follow[s] = list[i+1:]
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := types.Unalias(pass.TypesInfo.TypeOf(rng.X)).Underlying().(*types.Map); !isMap {
				return true
			}
			c := &checker{pass: pass, rng: rng}
			c.check(follow[rng])
			if c.bad != nil {
				msg := "iteration over map %s escapes in map order: %s; make the loop order-insensitive, sort before use, or annotate it with //ftlint:order-insensitive <proof>"
				if c.fix != nil {
					pass.ReportFix(rng.For, c.fix, msg, render(pass.Fset, rng.X), c.why)
				} else {
					pass.Reportf(rng.For, msg, render(pass.Fset, rng.X), c.why)
				}
			}
			return true
		})
	}
	return nil
}

// checker decides whether one map-range loop is provably order-insensitive.
type checker struct {
	pass *analysis.Pass
	rng  *ast.RangeStmt
	accs []types.Object // outer slices accumulated via x = append(x, ...)
	bad  ast.Node
	why  string
	// breakable counts enclosing breakable statements (for, range, switch)
	// nested inside the map-range body; an unlabeled break inside one ends
	// that statement, not the map iteration.
	breakable int
	// fix, when non-nil, repairs the finding mechanically (the missing-sort
	// case inserts the sort call after the loop).
	fix *analysis.SuggestedFix
}

// check validates the loop body, then verifies every accumulator is sorted
// before its next use in the trailing statements of the enclosing block.
func (c *checker) check(trailing []ast.Stmt) {
	for _, s := range c.rng.Body.List {
		if !c.stmtOK(s) {
			return
		}
	}
	for _, obj := range c.accs {
		if !sortedBeforeUse(c.pass, obj, trailing) {
			c.flag(c.rng, "accumulated slice "+obj.Name()+" is not sorted before its next use")
			c.fix = c.sortFix(obj)
			return
		}
	}
}

func (c *checker) flag(n ast.Node, why string) bool {
	if c.bad == nil {
		c.bad, c.why = n, why
	}
	return false
}

// inLoop reports whether obj is declared within the range statement (loop
// variables included), making writes to it invisible outside one iteration.
func (c *checker) inLoop(obj types.Object) bool {
	return obj != nil && c.rng.Pos() <= obj.Pos() && obj.Pos() < c.rng.End()
}

func (c *checker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.DeclStmt:
		return c.pureNode(s, "declaration calls a function")
	case *ast.IncDecStmt:
		if bt, ok := types.Unalias(c.pass.TypesInfo.TypeOf(s.X)).Underlying().(*types.Basic); ok && bt.Info()&types.IsNumeric != 0 {
			if obj := rootObj(c.pass, s.X); obj != nil && (c.inLoop(obj) || isVarLike(obj)) {
				return true
			}
		}
		return c.flag(s, "inc/dec of a non-numeric or unresolvable target")
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && c.isDeleteCall(call) &&
			render(c.pass.Fset, call.Args[0]) == render(c.pass.Fset, c.rng.X) {
			if c.isRangeKey(call.Args[1]) {
				return true
			}
			return c.flag(s, "delete of a key other than the current iteration key: whether that entry is still visited depends on map order")
		}
		return c.flag(s, "statement with side effects runs per iteration")
	case *ast.IfStmt:
		return c.ifOK(s)
	case *ast.BlockStmt:
		for _, t := range s.List {
			if !c.stmtOK(t) {
				return false
			}
		}
		return true
	case *ast.RangeStmt:
		switch types.Unalias(c.pass.TypesInfo.TypeOf(s.X)).Underlying().(type) {
		case *types.Map:
			// The nested map range is audited on its own; for the outer
			// loop's verdict its body is held to the same rules.
		case *types.Slice, *types.Array, *types.Basic:
		default:
			return c.flag(s, "nested range over a channel or pointer")
		}
		if !c.pure(s.X, "nested range expression has side effects") {
			return false
		}
		c.breakable++
		for _, t := range s.Body.List {
			if !c.stmtOK(t) {
				c.breakable--
				return false
			}
		}
		c.breakable--
		return true
	case *ast.ForStmt:
		if !c.stmtOK(s.Init) || !c.stmtOK(s.Post) {
			return false
		}
		if s.Cond != nil && !c.pure(s.Cond, "loop condition has side effects") {
			return false
		}
		c.breakable++
		for _, t := range s.Body.List {
			if !c.stmtOK(t) {
				c.breakable--
				return false
			}
		}
		c.breakable--
		return true
	case *ast.SwitchStmt:
		if !c.stmtOK(s.Init) {
			return false
		}
		if s.Tag != nil && !c.pure(s.Tag, "switch tag has side effects") {
			return false
		}
		c.breakable++
		for _, cc := range s.Body.List {
			for _, t := range cc.(*ast.CaseClause).Body {
				if !c.stmtOK(t) {
					c.breakable--
					return false
				}
			}
		}
		c.breakable--
		return true
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE && s.Label == nil {
			return true
		}
		if s.Tok == token.BREAK && s.Label == nil && c.breakable > 0 {
			// Ends a nested loop or switch; the map iteration itself runs on.
			return true
		}
		return c.flag(s, "break/goto makes the visited key set order-dependent")
	case *ast.ReturnStmt:
		return c.flag(s, "early return publishes whichever element the iteration visits first")
	default:
		return c.flag(s, "statement kind not recognized as order-insensitive")
	}
}

func (c *checker) assignOK(a *ast.AssignStmt) bool {
	info := c.pass.TypesInfo
	switch a.Tok {
	case token.DEFINE:
		// New variables live inside the loop; only their initializers can
		// leak effects.
		for _, rhs := range a.Rhs {
			if !c.pure(rhs, "initializer calls a function") {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if len(a.Lhs) != 1 {
			return c.flag(a, "compound assignment with multiple targets")
		}
		if !c.pure(a.Rhs[0], "assigned value calls a function") {
			return false
		}
		if obj := rootObj(c.pass, a.Lhs[0]); obj != nil && c.inLoop(obj) {
			return true
		}
		if bt, ok := types.Unalias(info.TypeOf(a.Lhs[0])).Underlying().(*types.Basic); ok && bt.Info()&types.IsInteger != 0 {
			return true // integer accumulation is exact and commutative
		}
		return c.flag(a, "non-integer accumulation depends on iteration order (float rounding, string order)")
	case token.ASSIGN:
		if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			if obj, ok := c.appendToOuter(a.Lhs[0], a.Rhs[0]); ok {
				c.accs = append(c.accs, obj)
				return true
			}
		}
		for _, lhs := range a.Lhs {
			// A store keyed by the current iteration key writes a distinct
			// slot every iteration: no write shadows another, so the final
			// table is order-insensitive (delta[k] = ..., seen[k] = true).
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && c.isRangeKey(ix.Index) {
				continue
			}
			obj := rootObj(c.pass, lhs)
			if obj == nil || !c.inLoop(obj) {
				return c.flag(a, "assignment to "+render(c.pass.Fset, lhs)+" outside the loop is last-writer-wins")
			}
		}
		for _, rhs := range a.Rhs {
			if !c.pure(rhs, "assigned value calls a function") {
				return false
			}
		}
		return true
	default:
		return c.flag(a, "assignment operator not recognized as order-insensitive")
	}
}

// appendToOuter matches x = append(x, ...) where x is a slice variable from
// the enclosing function; the caller records it for the sorted-escape check.
func (c *checker) appendToOuter(lhs, rhs ast.Expr) (types.Object, bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil || c.inLoop(obj) {
		return nil, false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if b, ok := c.pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || c.pass.TypesInfo.Uses[first] != obj {
		return nil, false
	}
	for _, arg := range call.Args[1:] {
		if !c.pure(arg, "appended value calls a function") {
			return nil, false
		}
	}
	return obj, true
}

// ifOK accepts pure-condition branching, including the guarded max/min
// update pattern on outer variables.
func (c *checker) ifOK(s *ast.IfStmt) bool {
	if s.Init != nil {
		init, ok := s.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE {
			return c.flag(s, "if-init is not a pure declaration")
		}
		for _, rhs := range init.Rhs {
			if !c.pure(rhs, "if-init calls a function") {
				return false
			}
		}
	}
	if !c.pure(s.Cond, "condition has side effects") {
		return false
	}
	if c.maxMin(s) {
		return true
	}
	for _, t := range s.Body.List {
		if !c.stmtOK(t) {
			return false
		}
	}
	if s.Else != nil {
		return c.stmtOK(s.Else)
	}
	return true
}

// maxMin recognizes running-extremum updates — `if v > m { m = v }` and its
// <, >=, <=, and swapped-operand variants — where the comparison is a
// conjunct of the condition. Whatever the direction, the final value is the
// extremum of the initial value and every visited element, which is
// order-insensitive because comparison involves no rounding.
func (c *checker) maxMin(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	m := render(c.pass.Fset, asg.Lhs[0])
	v := render(c.pass.Fset, asg.Rhs[0])
	for _, conj := range conjuncts(s.Cond) {
		cmp, ok := conj.(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch cmp.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ:
		default:
			continue
		}
		x, y := render(c.pass.Fset, cmp.X), render(c.pass.Fset, cmp.Y)
		if (x == v && y == m) || (x == m && y == v) {
			return true
		}
	}
	return false
}

// conjuncts splits e on &&.
func conjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(conjuncts(b.X), conjuncts(b.Y)...)
	}
	if p, ok := e.(*ast.ParenExpr); ok {
		return conjuncts(p.X)
	}
	return []ast.Expr{e}
}

// isDeleteCall matches the builtin delete(m, k). Only a delete of the
// current iteration key from the ranged map is order-insensitive: the spec
// sanctions removing the entry the iteration is standing on, while deleting
// any other key changes which keys the iteration still visits — Go leaves
// that unspecified, so `for k := range m { delete(m, deps[k]) }` is flagged.
func (c *checker) isDeleteCall(call *ast.CallExpr) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" || len(call.Args) != 2 {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[fn].(*types.Builtin)
	return ok && b.Name() == "delete"
}

// isRangeKey reports whether the expression denotes the range statement's
// own key variable.
func (c *checker) isRangeKey(e ast.Expr) bool {
	keyID, ok := c.rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := c.pass.TypesInfo.Defs[keyID]
	if keyObj == nil {
		keyObj = c.pass.TypesInfo.Uses[keyID] // assigned-form range
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || keyObj == nil {
		return false
	}
	return c.pass.TypesInfo.Uses[id] == keyObj
}

// sortFix builds the insert-a-sort repair for an unsorted accumulator:
// `sort.Strings(x)` (or Ints/Float64s by element type) placed right after
// the range loop. Offered only when the file already imports "sort", so the
// fix never has to edit the import block.
func (c *checker) sortFix(obj types.Object) *analysis.SuggestedFix {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	sl, ok := types.Unalias(v.Type()).Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	bt, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var fn string
	switch {
	case bt.Kind() == types.String:
		fn = "sort.Strings"
	case bt.Kind() == types.Int:
		fn = "sort.Ints"
	case bt.Kind() == types.Float64:
		fn = "sort.Float64s"
	default:
		return nil
	}
	if !importsSort(c.pass, c.rng.Pos()) {
		return nil
	}
	return &analysis.SuggestedFix{
		Message: "sort the accumulated slice after the loop",
		Edits:   []analysis.TextEdit{c.pass.Edit(c.rng.End(), c.rng.End(), "\n"+fn+"("+obj.Name()+")")},
	}
}

// importsSort reports whether the file containing pos imports "sort".
func importsSort(pass *analysis.Pass, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"sort"` {
					return true
				}
			}
			return false
		}
	}
	return false
}

// pure reports whether e is free of calls (conversions and len/cap/min/max
// excepted), channel operations, and function literals.
func (c *checker) pure(e ast.Expr, why string) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if c.pass.TypesInfo.Types[n.Fun].IsType() {
				return true // conversion
			}
			if id, isIdent := n.Fun.(*ast.Ident); isIdent {
				if b, isB := c.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			ok = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = false
				return false
			}
		case *ast.FuncLit:
			ok = false
			return false
		}
		return true
	})
	if !ok {
		c.flag(e, why)
	}
	return ok
}

// pureNode applies pure to every expression under n.
func (c *checker) pureNode(n ast.Node, why string) bool {
	ok := true
	ast.Inspect(n, func(x ast.Node) bool {
		if !ok {
			return false
		}
		if e, isExpr := x.(ast.Expr); isExpr {
			if !c.pure(e, why) {
				ok = false
			}
			return false
		}
		return true
	})
	return ok
}

// sortedBeforeUse reports whether the first trailing statement mentioning
// obj is a recognized sort call on it.
func sortedBeforeUse(pass *analysis.Pass, obj types.Object, trailing []ast.Stmt) bool {
	for _, s := range trailing {
		if !mentions(pass, s, obj) {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if !isSortFunc(fn.Pkg().Path(), fn.Name()) {
			return false
		}
		id, ok := call.Args[0].(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	// Never used again in this block: the accumulator's order cannot be
	// proven to stay local, so stay conservative.
	return false
}

func isSortFunc(pkg, name string) bool {
	switch pkg {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

func mentions(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// rootObj resolves the base object of an lvalue-ish expression: the x in x,
// x.f, x[i], x.f[i].g.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// isVarLike reports whether obj is a variable (fields and locals included).
func isVarLike(obj types.Object) bool {
	_, ok := obj.(*types.Var)
	return ok
}

// render formats a node compactly for diagnostics and syntactic comparison.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "?"
	}
	return buf.String()
}
