package hotalloc_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/hotalloc"
)

func TestHotRoots(t *testing.T) {
	analysistest.Run(t, "testdata", "core", hotalloc.Analyzer)
}

func TestSupportPackageUnflagged(t *testing.T) {
	// hotdep has no hot roots of its own: its allocations are facts, not
	// findings, until a hot path calls them.
	analysistest.Run(t, "testdata", "hotdep", hotalloc.Analyzer)
}
