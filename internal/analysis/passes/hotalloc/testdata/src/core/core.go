// Package core is the hotalloc fixture: evaluateOne is the per-candidate
// hot root, and every allocation class reachable from it is flagged — own
// sites at their lines, imported callees at the call site. Functions off the
// hot path allocate freely.
package core

import (
	"fmt"

	"hotdep"
)

type cand struct {
	id   int
	deps []int
}

func evaluateOne(c cand, all []cand) string {
	tags := map[string]int{} // want "allocation on a hot path \\(reachable from the per-step entry points\\): map literal"
	tags["self"] = c.id
	_ = grow(all)
	_ = capture(c)
	_ = sanctioned(c)
	_ = hotdep.Cheap(c.id)
	return describe(c) + hotdep.Format(c.id) // want "hot-path call to hotdep.Format, which allocates"
}

func describe(c cand) string {
	return fmt.Sprintf("cand-%d", c.id) // want "allocation on a hot path \\(reachable from the per-step entry points\\): fmt.Sprintf call"
}

func grow(items []cand) []int {
	var out []int
	for _, it := range items {
		out = append(out, it.id) // want "allocation on a hot path \\(reachable from the per-step entry points\\): append growth to out \\(declared without capacity hint\\)"
	}
	return out
}

func capture(c cand) func() int {
	return func() int { return c.id } // want "allocation on a hot path \\(reachable from the per-step entry points\\): escaping closure \\(captures variables\\)"
}

func sanctioned(c cand) string {
	return fmt.Sprintf("cold-%d", c.id) //ftlint:hotalloc-ok fixture: runs once per schedule, not per candidate
}

// coldReport is never reached from evaluateOne: allocation is fine.
func coldReport(cs []cand) string {
	lines := map[int]string{}
	for _, c := range cs {
		lines[c.id] = fmt.Sprintf("%d", c.id)
	}
	return fmt.Sprint(len(lines))
}
