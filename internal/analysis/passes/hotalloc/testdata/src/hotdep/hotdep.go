// Package hotdep is a support-package fixture for hotalloc: its exported
// Format allocates, and the fact rides the summary engine into importing
// packages, so a hot-path call site in core is flagged even though the
// Sprintf lives here.
package hotdep

import "fmt"

// Format renders a candidate id; each call allocates.
func Format(id int) string {
	return fmt.Sprintf("dep-%d", id)
}

// Cheap does not allocate.
func Cheap(id int) int {
	return id * 2
}
