// Package hotalloc polices allocation on the hot paths the profiles of
// PR 5 and PR 7 each rediscovered the hard way: functions reachable from the
// per-candidate, per-pattern, and per-event entry points must not allocate
// per call. Flagged site classes are fmt.Sprint*/Errorf calls, map and slice
// literals, escaping closures (capturing literals that outlive the call),
// and append growth into slices declared without a capacity hint — all
// recorded by the summary engine, which also carries allocation facts across
// package boundaries so a helper in a support package cannot hide a Sprintf
// from the scheduler's inner loop.
//
// A site that allocates by design (a sized per-candidate buffer, a
// cold-start path) is sanctioned with //ftlint:hotalloc-ok <why>, which also
// keeps it out of exported facts.
package hotalloc

import (
	"ftsched/internal/analysis"
	"ftsched/internal/analysis/callgraph"
	"ftsched/internal/analysis/summary"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid per-call allocation in functions reachable from the hot entry points",
	Run:  run,
}

// rootSpec names one hot entry point.
type rootSpec struct {
	Recv string // receiver type name, "" for any
	Name string
}

// Roots lists the hot entry points per package base: the innermost
// per-candidate evaluation in the scheduler, the per-pattern check in the
// certifier, the per-event step in the simulator, and the dense σ lookup.
var Roots = map[string][]rootSpec{
	"core":    {{Name: "evaluateOne"}},
	"certify": {{Name: "checkPattern"}},
	"sim": {
		{Recv: "engine", Name: "nextAction"}, {Recv: "engine", Name: "execOp"},
		{Recv: "Runner", Name: "runCompiled"}, {Recv: "Runner", Name: "Reset"},
	},
	"pressure": {{Recv: "Dense", Name: "Sigma"}},
}

func run(pass *analysis.Pass) error {
	base := analysis.PkgBase(pass.Pkg.Path())
	specs := Roots[base]
	if len(specs) == 0 {
		return nil
	}
	info := summary.For(pass)
	roots := rootNodes(info.Graph, specs)
	if len(roots) == 0 {
		return nil
	}
	reach := info.Graph.ReachableFrom(roots)
	seen := map[string]bool{}
	for _, n := range info.Graph.Nodes { // node order keeps reports deterministic
		if !reach[n] {
			continue
		}
		s := info.Local[n]
		if s == nil {
			continue
		}
		// The node's own sites (propagated entries carry a call path and are
		// reported where they originate, or below for imported callees).
		for _, a := range s.Allocs {
			if len(a.Path) > 0 || seen[a.Site] {
				continue
			}
			seen[a.Site] = true
			pass.Reportf(a.Pos,
				"allocation on a hot path (reachable from the per-step entry points): %s; hoist it out of the loop, reuse a buffer, or annotate //ftlint:hotalloc-ok <why>",
				a.Desc())
		}
		// Cross-package callees whose facts carry allocation sites.
		for _, e := range n.Out {
			if e.Ext == nil {
				continue
			}
			imp := info.Imported[e.Ext.FullName()]
			if imp == nil || len(imp.Allocs) == 0 {
				continue
			}
			a := imp.Allocs[0]
			key := "ext:" + e.Ext.FullName() + "@" + pass.Fset.Position(e.Site.Pos()).String()
			if seen[key] {
				continue
			}
			seen[key] = true
			pass.Reportf(e.Site.Pos(),
				"hot-path call to %s, which allocates (%s%s); inline a non-allocating variant or annotate //ftlint:hotalloc-ok <why>",
				e.Ext.FullName(), a.Site, summary.ChainString(a.Path))
		}
	}
	return nil
}

func rootNodes(g *callgraph.Graph, specs []rootSpec) []*callgraph.Node {
	var out []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		for _, spec := range specs {
			if n.Decl.Name.Name != spec.Name {
				continue
			}
			if spec.Recv != "" {
				if n.Fn == nil {
					continue
				}
				named := analysis.NamedRecv(n.Fn)
				if named == nil || named.Obj().Name() != spec.Recv {
					continue
				}
			}
			out = append(out, n)
		}
	}
	return out
}
