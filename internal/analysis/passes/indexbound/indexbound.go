// Package indexbound flags raw slice/array indexing whose index flows from
// external input — a parameter of an exported function or method, or a field
// read off such a parameter — without a dominating bounds check. In the
// scheduler core these indices arrive from problem specifications (task IDs,
// processor numbers, dependency edges) decoded from JSON; an out-of-range ID
// must produce a validation error, not a runtime panic mid-schedule.
//
// The pass is flow-sensitive: it builds the function's CFG, computes
// dominators, and accepts an index that is compared (against anything) in a
// block dominating the use, or earlier in the use's own block. This is a
// coarse guard detector by design — any comparison mentioning the variable
// counts, including `idx >= len(tbl)` with an early return and a
// switch-style dispatch — and its soundness caveats are documented in
// DESIGN.md §12. A range-derived index (`for i := range xs`) is never
// external. Each finding carries a suggested fix inserting an explicit
// bounds guard before the statement.
package indexbound

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/cfg"
)

// Analyzer is the indexbound pass.
var Analyzer = &analysis.Analyzer{
	Name: "indexbound",
	Doc:  "flag unchecked slice indexing by externally-supplied values in exported entry points",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsCriticalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Tainted sources: the function's own integer-typed parameters, plus
	// locals assigned directly from a parameter or a field chain off one.
	params := map[*types.Var]bool{}
	for _, fl := range fieldLists(fd) {
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && v != nil {
					params[v] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	tainted := map[*types.Var]bool{}
	for v := range params {
		if isInteger(v.Type()) {
			tainted[v] = true
		}
	}
	// One propagation sweep: x := p.Field, x := p, x := p.Tasks[i].Dst.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := varAt(info, id)
			if v == nil || !isInteger(v.Type()) {
				continue
			}
			if derivesFromParam(info, asg.Rhs[i], params) {
				tainted[v] = true
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	g := cfg.New(fd.Body)
	dom := g.Dominators()
	// checkedIn[v] lists blocks whose nodes compare v to something.
	checked := map[*types.Var][]int{}
	// checkedPos[v] lists positions of those comparisons, for the
	// same-block-earlier test.
	checkedPos := map[*types.Var][]token.Pos{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				be, ok := x.(*ast.BinaryExpr)
				if !ok || !isComparison(be.Op) {
					return true
				}
				for _, side := range []ast.Expr{be.X, be.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok {
						if v := varAt(info, id); v != nil && tainted[v] {
							checked[v] = append(checked[v], blk.Index)
							checkedPos[v] = append(checkedPos[v], be.Pos())
						}
					}
				}
				return true
			})
		}
	}
	// Loop headers with a condition mentioning the variable also bound it
	// (for i := 0; i < n; ... — but such an i is not tainted anyway).

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if !isSliceOrArray(info.TypeOf(ix.X)) {
			return true
		}
		id, ok := ast.Unparen(ix.Index).(*ast.Ident)
		if !ok {
			return true
		}
		v := varAt(info, id)
		if v == nil || !tainted[v] {
			return true
		}
		if isGuarded(g, dom, checked[v], checkedPos[v], ix.Pos()) {
			return true
		}
		report(pass, fd, ix, id, v)
		// One report per index expression is enough; keep walking siblings.
		return true
	})
}

// isGuarded reports whether some recorded comparison of the variable
// dominates the use at pos (or precedes it in the same block).
func isGuarded(g *cfg.Graph, dom [][]bool, blocks []int, positions []token.Pos, pos token.Pos) bool {
	useBlk, _, ok := g.BlockOf(pos)
	if !ok {
		return false
	}
	for i, cb := range blocks {
		if cb == useBlk.Index {
			if positions[i] < pos {
				return true
			}
			continue
		}
		if dom[useBlk.Index][cb] {
			return true
		}
	}
	return false
}

func report(pass *analysis.Pass, fd *ast.FuncDecl, ix *ast.IndexExpr, id *ast.Ident, v *types.Var) {
	tblText := render(pass.Fset, ix.X)
	guard := fmt.Sprintf("if %s < 0 || %s >= len(%s) {\npanic(%q)\n}\n", id.Name, id.Name, tblText, fmt.Sprintf("%s: %s out of range", fd.Name.Name, id.Name))
	var fix *analysis.SuggestedFix
	if stmt := enclosingStmtInBlock(fd.Body, ix.Pos()); stmt != nil {
		fix = &analysis.SuggestedFix{
			Message: "guard the index before use",
			Edits:   []analysis.TextEdit{pass.InsertBefore(stmt.Pos(), guard)},
		}
	}
	msg := "index %q flows from external input (via exported %s) into %s[%s] with no dominating bounds check: an out-of-range value panics at schedule time instead of failing validation; guard it against len(%s), or annotate with //ftlint:indexbound-checked <why>"
	if fix != nil {
		pass.ReportFix(ix.Pos(), fix, msg, id.Name, fd.Name.Name, tblText, id.Name, tblText)
	} else {
		pass.Reportf(ix.Pos(), msg, id.Name, fd.Name.Name, tblText, id.Name, tblText)
	}
}

// enclosingStmtInBlock returns the outermost statement containing pos whose
// parent is a block statement, so a guard can be inserted before it.
func enclosingStmtInBlock(body *ast.BlockStmt, pos token.Pos) ast.Stmt {
	var found ast.Stmt
	var visit func(b *ast.BlockStmt)
	visit = func(b *ast.BlockStmt) {
		for _, s := range b.List {
			if s.Pos() <= pos && pos < s.End() {
				found = s
				ast.Inspect(s, func(n ast.Node) bool {
					if nb, ok := n.(*ast.BlockStmt); ok && nb.Pos() <= pos && pos < nb.End() {
						visit(nb)
						return false
					}
					return true
				})
				return
			}
		}
	}
	visit(body)
	return found
}

func fieldLists(fd *ast.FuncDecl) []*ast.FieldList {
	fls := []*ast.FieldList{}
	if fd.Recv != nil {
		fls = append(fls, fd.Recv)
	}
	if fd.Type.Params != nil {
		fls = append(fls, fd.Type.Params)
	}
	return fls
}

// derivesFromParam reports whether the expression is a parameter, a
// selector/index chain rooted at one, or a call of len on one.
func derivesFromParam(info *types.Info, e ast.Expr, params map[*types.Var]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return params[v]
			}
			return false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

func varAt(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isSliceOrArray(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "?"
	}
	return buf.String()
}
