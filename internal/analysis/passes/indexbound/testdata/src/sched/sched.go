package sched

// Req stands in for a request decoded from external input.
type Req struct {
	Task int
	Proc int
}

// Unchecked parameter index: panics at schedule time on a bad ID.
func Lookup(tbl []string, idx int) string {
	return tbl[idx] // want `index "idx" flows from external input`
}

// A dominating guard with an early return is the canonical shape.
func LookupChecked(tbl []string, idx int) string {
	if idx < 0 || idx >= len(tbl) {
		return ""
	}
	return tbl[idx]
}

// The taint follows one assignment hop through a request field.
func LookupField(tbl []string, r Req) string {
	t := r.Task
	return tbl[t] // want `index "t" flows from external input`
}

// A guarded field copy is accepted.
func LookupFieldChecked(tbl []string, r Req) string {
	t := r.Task
	if t >= len(tbl) {
		return ""
	}
	return tbl[t]
}

// A check after the use does not dominate it.
func CheckedTooLate(tbl []string, idx int) string {
	s := tbl[idx] // want `index "idx" flows from external input`
	if idx >= len(tbl) {
		return ""
	}
	return s
}

// The guard dominates one branch only; the other stays flagged.
func HalfGuarded(tbl []string, idx int, fast bool) string {
	if fast {
		if idx < len(tbl) {
			return tbl[idx]
		}
		return ""
	}
	return tbl[idx] // want `index "idx" flows from external input`
}

// Unexported functions are internal plumbing, not entry points.
func lookupInternal(tbl []string, idx int) string {
	return tbl[idx]
}

// Range-derived indices are bounded by construction.
func Render(tbl []string) string {
	s := ""
	for i := range tbl {
		s += tbl[i]
	}
	return s
}

// Methods on exported receivers are entry points too.
type Table struct {
	rows []string
}

func (t *Table) Row(idx int) string {
	return t.rows[idx] // want `index "idx" flows from external input`
}

func (t *Table) RowChecked(idx int) string {
	if idx < 0 || idx >= len(t.rows) {
		return ""
	}
	return t.rows[idx]
}

// Any dominating comparison counts, even an equality dispatch: the pass is
// a coarse guard detector (see DESIGN.md §12 for the soundness caveat).
func Dispatch(tbl []string, idx int) string {
	if idx == 0 {
		return tbl[idx]
	}
	return ""
}

// A reasoned annotation silences the finding.
func Raw(tbl []string, idx int) string {
	//ftlint:indexbound-checked caller validates ids in spec.Validate before dispatch
	return tbl[idx]
}
