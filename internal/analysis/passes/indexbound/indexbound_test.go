package indexbound_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/indexbound"
)

func TestEntryPoints(t *testing.T) {
	analysistest.Run(t, "testdata", "sched", indexbound.Analyzer)
}
