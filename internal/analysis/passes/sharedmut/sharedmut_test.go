package sharedmut_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/sharedmut"
)

func TestFanOutShapes(t *testing.T) {
	analysistest.Run(t, "testdata", "certify", sharedmut.Analyzer)
}
