// Package sharedmut flags writes to non-atomic shared state from inside
// fan-out worker closures: goroutines spawned in a loop, where more than one
// instance of the closure body runs concurrently. A plain `x++`, `sum += v`,
// or `m[k] = v` from such a body is a data race, and — worse for this
// codebase — a racy float reduction accumulates in nondeterministic order,
// so two runs of the same schedule produce different certificates.
//
// Three shapes are accepted natively, because the production pools use them:
//
//   - disjoint-slot writes: `out[j] = v` where the index expression involves
//     a closure-local variable (a parameter or a local), so each worker owns
//     its slots;
//   - mutex-guarded writes: a call to a method named Lock appears in the
//     closure before the write;
//   - channel sends, which serialize through the receiver.
//
// Anything else needs restructuring (per-worker accumulators merged after
// Wait, an indexed result table, or a channel) or an explicit
// //ftlint:sharedmut-safe <why> annotation.
package sharedmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/dataflow"
)

// Analyzer is the sharedmut pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedmut",
	Doc:  "flag non-atomic writes to shared state from fan-out worker goroutines",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsCriticalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, body := loopBody(n)
			if loop == nil {
				return true
			}
			// Find goroutines spawned (possibly nested) inside the loop body.
			ast.Inspect(body, func(m ast.Node) bool {
				if g, ok := m.(*ast.GoStmt); ok {
					if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
						checkWorker(pass, lit)
						return false // worker bodies checked once, not per nested loop
					}
				}
				return true
			})
			return true
		})
	}
	return nil
}

// loopBody returns the loop node and its body when n is a for or range
// statement.
func loopBody(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n, n.Body
	case *ast.RangeStmt:
		return n, n.Body
	}
	return nil, nil
}

// checkWorker inspects one fan-out closure for shared writes.
func checkWorker(pass *analysis.Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	caps := dataflow.Captures(lit, info)
	captured := map[*types.Var]bool{}
	for _, c := range caps {
		captured[c.Var] = true
	}
	isShared := func(v *types.Var) bool {
		if v == nil {
			return false
		}
		if captured[v] {
			return true
		}
		// Package-level state is shared across all workers too.
		return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	}
	localToClosure := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			var v *types.Var
			if u, ok := info.Uses[id].(*types.Var); ok {
				v = u
			} else if d, ok := info.Defs[id].(*types.Var); ok {
				v = d
			}
			if v != nil && lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
				found = true
				return false
			}
			return true
		})
		return found
	}
	var lockPositions []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Name() == "Lock" && analysis.Signature(fn) != nil && analysis.Signature(fn).Recv() != nil {
				lockPositions = append(lockPositions, call.Pos())
			}
		}
		return true
	})
	lockedBefore := func(pos token.Pos) bool {
		for _, lp := range lockPositions {
			if lp < pos {
				return true
			}
		}
		return false
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, lhs, n.Tok, isShared, localToClosure, lockedBefore, info)
			}
		case *ast.IncDecStmt:
			// x++ is a read-modify-write.
			checkWrite(pass, n.X, token.ADD_ASSIGN, isShared, localToClosure, lockedBefore, info)
		}
		return true
	})
}

// checkWrite classifies one lvalue written inside a worker closure.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, tok token.Token, isShared func(*types.Var) bool, localToClosure func(ast.Expr) bool, lockedBefore func(token.Pos) bool, info *types.Info) {
	base, index := baseAndIndex(lhs)
	if base == nil {
		return
	}
	var v *types.Var
	if u, ok := info.Uses[base].(*types.Var); ok {
		v = u
	} else if d, ok := info.Defs[base].(*types.Var); ok {
		v = d
	}
	if !isShared(v) {
		return
	}
	// Disjoint-slot write: the index involves a closure-local value, so
	// each worker addresses its own slots.
	if index != nil && localToClosure(index) {
		return
	}
	if lockedBefore(lhs.Pos()) {
		return
	}
	name := v.Name()
	if isCompound(tok) && isFloat(info, lhs) {
		pass.Reportf(lhs.Pos(), "racy float reduction into shared %q from a fan-out worker: addition order varies across runs, so results are nondeterministic even if the race is benign; accumulate per-worker and merge after Wait, or annotate with //ftlint:sharedmut-safe <why>", name)
		return
	}
	what := "write to"
	if isCompound(tok) {
		what = "read-modify-write of"
	}
	pass.Reportf(lhs.Pos(), "%s shared %q from a fan-out worker without a lock, atomic, or per-worker slot: more than one instance of this closure runs concurrently; use an index keyed by a worker-local value, a mutex, or a channel, or annotate with //ftlint:sharedmut-safe <why>", what, name)
}

// baseAndIndex peels an lvalue to its base identifier and, when the
// outermost operation is an index, that index expression.
func baseAndIndex(e ast.Expr) (*ast.Ident, ast.Expr) {
	var index ast.Expr
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			if index == nil {
				index = x.Index
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			id, _ := e.(*ast.Ident)
			return id, index
		}
	}
}

func isCompound(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
