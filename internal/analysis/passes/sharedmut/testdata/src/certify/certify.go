package certify

import "sync"

var hits int

// Racy float reduction: addition order varies across runs.
func fanOutSum(items []float64) float64 {
	var wg sync.WaitGroup
	sum := 0.0
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum += it // want `racy float reduction into shared "sum"`
		}()
	}
	wg.Wait()
	return sum
}

// Racy counter.
func fanOutCount(items []int) int {
	var wg sync.WaitGroup
	n := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n++ // want `read-modify-write of shared "n"`
		}()
	}
	wg.Wait()
	return n
}

// Last-writer-wins plain store.
func fanOutLast(items []int) int {
	var wg sync.WaitGroup
	last := 0
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last = it // want `write to shared "last"`
		}()
	}
	wg.Wait()
	return last
}

// Package-level state is shared across workers too.
func fanOutGlobal(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits++ // want `read-modify-write of shared "hits"`
		}()
	}
	wg.Wait()
}

// Disjoint slots: each worker owns out[j] because j is its parameter.
func fanOutSlots(items []float64) []float64 {
	var wg sync.WaitGroup
	out := make([]float64, len(items))
	for j := range items {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			out[j] = items[j] * 2
		}(j)
	}
	wg.Wait()
	return out
}

// Disjoint slots via a closure-local index computed from a local.
func fanOutLocalIndex(items []float64, stride int) []float64 {
	var wg sync.WaitGroup
	out := make([]float64, len(items)*stride)
	for j := range items {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := j * stride
			out[base] = items[j]
		}()
	}
	wg.Wait()
	return out
}

// Mutex-guarded accumulation is accepted.
func fanOutMutex(items []int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// Channel sends serialize through the receiver: accepted.
func fanOutChannel(items []float64) chan float64 {
	ch := make(chan float64, len(items))
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- it * 2
		}()
	}
	wg.Wait()
	close(ch)
	return ch
}

// A single goroutine outside any loop is one instance, not a fan-out; the
// goroutinecapture pass owns that shape.
func singleGoroutine(items []int) int {
	total := 0
	done := make(chan struct{})
	go func() {
		for _, it := range items {
			total += it
		}
		close(done)
	}()
	<-done
	return total
}

// Closure-local accumulators are each worker's own.
func localAccum(items []float64) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := 0.0
			for i := 0; i < 10; i++ {
				acc += float64(i)
			}
			_ = acc
		}()
	}
	wg.Wait()
}

// A reasoned annotation silences the finding.
func annotated(items []int) int {
	var wg sync.WaitGroup
	n := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//ftlint:sharedmut-safe benign counter, value only logged for debugging
			n++
		}()
	}
	wg.Wait()
	return n
}
