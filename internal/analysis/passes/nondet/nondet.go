// Package nondet forbids runtime nondeterminism sources inside the
// determinism-critical packages: wall-clock reads, the global math/rand
// source, environment reads, and multi-case selects (which choose a ready
// case pseudo-randomly). The paper's static guarantee assumes the schedule
// builder is a pure function of its inputs; any of these would let two runs
// of the same problem emit different schedules.
//
// Seeded randomness threaded explicitly through Options stays legal: the
// rand.New/rand.NewSource constructors are exempt, and methods on a
// *rand.Rand value are never package-level calls.
//
// Since v3 the pass is also interprocedural through the summary facts
// engine: a critical-package call into a non-critical module package whose
// summary is nondet-tainted (it reaches time.Now, os.Getenv, or the global
// rand source) is flagged at the call site, so hiding the clock read one
// helper away no longer works. Callees in critical packages are skipped
// (their own analysis flags the source directly), as is internal/obs, whose
// deliberate clock use the obssafe pass polices instead.
package nondet

import (
	"go/ast"
	"strings"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/summary"
)

// Analyzer is the nondet pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc:  "forbid wall-clock, global rand, env reads, and racy selects in the scheduler core",
	Run:  run,
}

// bannedCalls maps package path → function → what the diagnostic says.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
}

// randConstructors are the math/rand package-level functions that build
// explicit sources instead of consulting the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsCriticalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	checkSummaries(pass)
	return nil
}

// checkSummaries flags calls that reach a nondeterminism source through a
// module callee outside the critical set — one level of taint propagation
// via the interprocedural facts.
func checkSummaries(pass *analysis.Pass) {
	info := summary.For(pass)
	for _, n := range info.Graph.Nodes {
		for _, e := range n.Out {
			fn := e.Ext
			if fn == nil || fn.Pkg() == nil {
				continue // local callees are flagged at their source lines
			}
			path := fn.Pkg().Path()
			if !sameModule(pass.Pkg.Path(), path) {
				continue // stdlib sources are the direct checks' job
			}
			if analysis.IsCriticalPackage(path) {
				continue // the callee's own analysis flags the source
			}
			if analysis.PkgBase(path) == "obs" {
				continue // deliberate clock use, policed by obssafe
			}
			s := info.Imported[fn.FullName()]
			if s == nil || len(s.Nondet) == 0 {
				continue
			}
			src := s.Nondet[0]
			pass.Reportf(e.Site.Pos(),
				"call to %s reaches a nondeterminism source (%s%s) from a determinism-critical package; thread explicit state through Options or annotate with //ftlint:allow-nondet <why>",
				fn.FullName(), src.Site, summary.ChainString(src.Path))
		}
	}
}

// sameModule reports whether two import paths share their first element.
func sameModule(a, b string) bool {
	return firstElem(a) == firstElem(b)
}

func firstElem(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || analysis.Signature(fn).Recv() != nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if kinds, ok := bannedCalls[pkg]; ok {
		if kind, ok := kinds[name]; ok {
			pass.Reportf(call.Pos(), "%s %s.%s in a determinism-critical package: the schedule must be a pure function of its inputs; thread explicit state through Options or annotate with //ftlint:allow-nondet <why>",
				kind, pkg, name)
		}
		return
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name] {
		pass.Reportf(call.Pos(), "global %s.%s consults the process-wide random source; use a seeded *rand.Rand threaded through Options, or annotate with //ftlint:allow-nondet <why>",
			pkg, name)
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Select, "select with %d communication cases chooses a ready case pseudo-randomly; restructure for a deterministic receive order or annotate with //ftlint:allow-nondet <why>", comm)
	}
}
