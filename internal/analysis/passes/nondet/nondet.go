// Package nondet forbids runtime nondeterminism sources inside the
// determinism-critical packages: wall-clock reads, the global math/rand
// source, environment reads, and multi-case selects (which choose a ready
// case pseudo-randomly). The paper's static guarantee assumes the schedule
// builder is a pure function of its inputs; any of these would let two runs
// of the same problem emit different schedules.
//
// Seeded randomness threaded explicitly through Options stays legal: the
// rand.New/rand.NewSource constructors are exempt, and methods on a
// *rand.Rand value are never package-level calls.
package nondet

import (
	"go/ast"

	"ftsched/internal/analysis"
)

// Analyzer is the nondet pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc:  "forbid wall-clock, global rand, env reads, and racy selects in the scheduler core",
	Run:  run,
}

// bannedCalls maps package path → function → what the diagnostic says.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
}

// randConstructors are the math/rand package-level functions that build
// explicit sources instead of consulting the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsCriticalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || analysis.Signature(fn).Recv() != nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if kinds, ok := bannedCalls[pkg]; ok {
		if kind, ok := kinds[name]; ok {
			pass.Reportf(call.Pos(), "%s %s.%s in a determinism-critical package: the schedule must be a pure function of its inputs; thread explicit state through Options or annotate with //ftlint:allow-nondet <why>",
				kind, pkg, name)
		}
		return
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name] {
		pass.Reportf(call.Pos(), "global %s.%s consults the process-wide random source; use a seeded *rand.Rand threaded through Options, or annotate with //ftlint:allow-nondet <why>",
			pkg, name)
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Select, "select with %d communication cases chooses a ready case pseudo-randomly; restructure for a deterministic receive order or annotate with //ftlint:allow-nondet <why>", comm)
	}
}
