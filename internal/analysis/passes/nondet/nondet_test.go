package nondet_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/nondet"
)

func TestCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "sched", nondet.Analyzer)
}

func TestNonCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "util", nondet.Analyzer)
}
