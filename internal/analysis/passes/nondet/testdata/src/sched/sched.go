// Package sched is a nondet fixture standing in for a determinism-critical
// package.
package sched

import (
	"math/rand"
	"os"
	"time"

	"sched/clockutil"
)

func wallClock() time.Duration {
	start := time.Now()      // want "wall-clock read time.Now"
	return time.Since(start) // want "wall-clock read time.Since"
}

func envRead() string {
	if v, ok := os.LookupEnv("FTSCHED_SEED"); ok { // want "environment read os.LookupEnv"
		return v
	}
	return os.Getenv("HOME") // want "environment read os.Getenv"
}

func globalRand() int {
	return rand.Intn(6) // want "global math/rand.Intn consults the process-wide random source"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func racySelect(a, b chan int) int {
	select { // want "select with 2 communication cases chooses a ready case pseudo-randomly"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func deterministicSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

func suppressed() time.Time {
	return time.Now() //ftlint:allow-nondet fixture: timing is reported, never fed back into the schedule
}

// Hiding the clock read one module-package away no longer works: the callee's
// summary carries the taint to this call site.
func hiddenClock() int64 {
	return clockutil.Stamp() // want "call to sched/clockutil.Stamp reaches a nondeterminism source \\(clockutil.go:10: wall-clock read time.Now\\)"
}
