// Package clockutil is a non-critical helper in the sched module tree: the
// nondet pass itself skips it, but its summary carries the time.Now taint
// into critical-package call sites.
package clockutil

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}
