// Package util is a nondet fixture for a non-critical package: wall-clock
// reads are fine outside the scheduler core.
package util

import "time"

func stamp() time.Time {
	return time.Now()
}
