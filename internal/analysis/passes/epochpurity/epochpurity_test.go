package epochpurity_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/epochpurity"
)

func TestEvaluationRoots(t *testing.T) {
	analysistest.Run(t, "testdata", "core", epochpurity.Analyzer)
}

func TestReceiverConstrainedRoots(t *testing.T) {
	analysistest.Run(t, "testdata", "pressure", epochpurity.Analyzer)
}
