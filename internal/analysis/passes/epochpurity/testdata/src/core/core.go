// Package core is the epochpurity fixture: a miniature of the scheduler's
// evaluate/commit split. evaluateStep is the evaluation-phase root; nothing
// it reaches may write schedState, except through a commit guard discharged
// with literal false or a site sanctioned by a directive.
package core

type schedState struct {
	mutEpoch int
	deliv    int
}

type builder struct {
	state schedState
}

// arrival is shared between evaluation and commit, split by the commit flag:
// the writes are guarded effects, discharged at call sites passing false.
func (b *builder) arrival(commit bool) {
	if !commit {
		return
	}
	b.state.deliv++
	b.state.mutEpoch++
}

func (b *builder) evaluateStep() int {
	b.arrival(false) // discharged: cannot mutate with commit=false
	b.mutate()
	b.sanctioned()
	return b.read()
}

func (b *builder) mutate() {
	b.state.deliv = 0 // want "evaluation path from \\(\\*builder\\).evaluateStep reaches a mutation of epoch-guarded state: writes schedState.deliv via \\(\\*builder\\).mutate"
}

func (b *builder) read() int { return b.state.deliv }

// commitStep is not reachable from the root: its unconditional mutation via
// arrival(true) is legal.
func (b *builder) commitStep() {
	b.arrival(true)
}

func (b *builder) sanctioned() {
	b.state.deliv = 1 //ftlint:epoch-pure fixture: write is idempotent and epoch-invariant by construction
}
