// Package pressure is the epochpurity fixture for receiver-constrained
// roots: only Dense.Sigma is an evaluation-phase entry point, so the same
// mutation under a Sparse receiver stays legal.
package pressure

type table struct {
	mutEpoch int
	cells    []int
}

// Dense is the root-bearing receiver type.
type Dense struct {
	tab table
}

// Sigma is the dense read path: reachable writes are violations.
func (d *Dense) Sigma(i int) int {
	d.warm(i)
	return d.tab.cells[i]
}

func (d *Dense) warm(i int) {
	d.tab.cells[i] = 0 // want "evaluation path from \\(\\*Dense\\).Sigma reaches a mutation of epoch-guarded state: writes table.cells via \\(\\*Dense\\).warm"
}

// Sparse carries no root: its Sigma may mutate freely.
type Sparse struct {
	tab table
}

// Sigma on the sparse table is not an evaluation root.
func (s *Sparse) Sigma(i int) int {
	s.tab.cells[i]++
	return s.tab.cells[i]
}
