package epochpurity_test

import (
	"go/ast"
	"go/types"
	"testing"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/load"
	"ftsched/internal/analysis/passes/epochpurity"
	"ftsched/internal/analysis/summary"
)

// TestCoverageOverRealCore is the acceptance proof that epochpurity covers
// every function reachable from the scheduler's evaluation root: it loads
// the real ftsched/internal/core, recomputes reachability from
// (*builder).evaluateStep with an independent walker (direct static calls
// resolved straight through the type-checker's Uses/Selections maps, no
// callgraph package involved), and requires the analyzer's Coverage set to
// contain everything the reference walker reaches. A call-graph regression
// that silently dropped an edge class would shrink Coverage below the
// reference set and fail here.
func TestCoverageOverRealCore(t *testing.T) {
	units, err := load.Packages("../../../..", "./internal/core")
	if err != nil {
		t.Fatalf("loading internal/core: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("loaded %d units, want 1", len(units))
	}
	u := units[0]

	info := summary.Compute(u.Fset, analysis.NonTestFiles(u.Fset, u.Files), u.Pkg, u.Info, nil)
	cov := epochpurity.Coverage(info, "core")
	covered := make(map[string]bool, len(cov))
	for _, name := range cov {
		covered[name] = true
	}
	if !covered["(*builder).evaluateStep"] {
		t.Fatalf("Coverage does not include the root itself: %v", cov)
	}

	// Independent reference reachability: BFS from evaluateStep over direct
	// static calls only (the edge class no sound call graph may miss);
	// nested literals are the call graph's own nodes and are skipped here.
	decls := map[*types.Func]*ast.FuncDecl{}
	var root *ast.FuncDecl
	for _, f := range analysis.NonTestFiles(u.Fset, u.Files) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := u.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			decls[fn] = fd
			if refDeclName(fd) == "(*builder).evaluateStep" {
				root = fd
			}
		}
	}
	if root == nil {
		t.Fatal("internal/core has no (*builder).evaluateStep; update the epochpurity root table and this test together")
	}

	reached := map[*ast.FuncDecl]bool{root: true}
	queue := []*ast.FuncDecl{root}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			var fn *types.Func
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				fn, _ = u.Info.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				if sel, ok := u.Info.Selections[fun]; ok {
					fn, _ = sel.Obj().(*types.Func)
				} else {
					fn, _ = u.Info.Uses[fun.Sel].(*types.Func)
				}
			}
			if fn == nil {
				return true
			}
			if callee := decls[fn]; callee != nil && !reached[callee] {
				reached[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}

	var missing []string
	for fd := range reached {
		if name := refDeclName(fd); !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Errorf("functions reachable from evaluateStep escape epochpurity coverage: %v\ncovered: %v", missing, cov)
	}
	if len(reached) < 10 {
		t.Errorf("reference traversal reached only %d functions; the evaluation cone should be substantially larger — did the root move?", len(reached))
	}
}

// refDeclName mirrors the call graph's display naming just closely enough to
// compare sets; it is derived from the AST receiver, not from the callgraph
// package.
func refDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + refTypeString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func refTypeString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + refTypeString(e.X)
	case *ast.IndexExpr:
		return refTypeString(e.X)
	case *ast.IndexListExpr:
		return refTypeString(e.X)
	}
	return ""
}
