// Package epochpurity promotes the DESIGN.md §13 runtime assertion to a
// compile-time proof: no function transitively reachable from the
// evaluation-phase roots (the scheduler's evaluateStep and the pressure
// table's dense Sigma read path) may write a field of epoch-guarded state —
// any named struct carrying a mutEpoch counter — or reach a mutator that
// does.
//
// The proof is interprocedural and guard-aware. The core shares one arrival
// routine between evaluation and commit, distinguished by a `commit bool`
// parameter; a mutation the CFG proves unreachable when commit is false is a
// guarded effect, and a call site passing literal false discharges it. Only
// effects that survive discharge all the way up to a root are reported.
//
// Sound up to the call graph's blind spots (interface dispatch, escaped
// function values); //ftlint:epoch-pure <why> sanctions a site the engine
// cannot see is safe, and keeps it out of exported facts.
package epochpurity

import (
	"sort"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/callgraph"
	"ftsched/internal/analysis/summary"
)

// Analyzer is the epochpurity pass.
var Analyzer = &analysis.Analyzer{
	Name: "epochpurity",
	Doc:  "prove the evaluation phase never mutates epoch-guarded scheduler state",
	Run:  run,
}

// rootSpec names one evaluation-phase entry point.
type rootSpec struct {
	Recv string // receiver type name, "" for any
	Name string // function or method name
}

// Roots lists the evaluation-phase entry points per package base name.
// Fixture packages use the same bases, so analysistest exercises the same
// table.
var Roots = map[string][]rootSpec{
	"core":     {{Name: "evaluateStep"}},
	"pressure": {{Recv: "Dense", Name: "Sigma"}},
}

func run(pass *analysis.Pass) error {
	base := analysis.PkgBase(pass.Pkg.Path())
	specs := Roots[base]
	if len(specs) == 0 {
		return nil
	}
	info := summary.For(pass)
	roots := rootNodes(info.Graph, specs)
	seen := map[string]bool{}
	for _, root := range roots {
		s := info.Local[root]
		if s == nil {
			continue
		}
		for _, eff := range s.Protected {
			if seen[eff.Site] {
				continue
			}
			seen[eff.Site] = true
			pass.Reportf(eff.Pos,
				"evaluation path from %s reaches a mutation of epoch-guarded state: %s%s; the evaluation phase must not move mutEpoch (DESIGN.md §13) — gate the write behind the commit flag or annotate //ftlint:epoch-pure <why>",
				root.Name, eff.Desc(), summary.ChainString(eff.Path))
		}
	}
	return nil
}

// rootNodes resolves the package's root specs against the call graph.
func rootNodes(g *callgraph.Graph, specs []rootSpec) []*callgraph.Node {
	var out []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		for _, spec := range specs {
			if n.Decl.Name.Name != spec.Name {
				continue
			}
			if spec.Recv != "" {
				if n.Fn == nil {
					continue
				}
				named := analysis.NamedRecv(n.Fn)
				if named == nil || named.Obj().Name() != spec.Recv {
					continue
				}
			}
			out = append(out, n)
		}
	}
	return out
}

// Coverage returns, sorted, the display names of every function the pass's
// reachability analysis covers from the package's roots — the set the
// acceptance test diffs against an independently-computed call-graph
// traversal, proving no function reachable from evaluateStep escapes the
// purity check.
func Coverage(info *summary.Info, pkgBase string) []string {
	specs := Roots[pkgBase]
	roots := rootNodes(info.Graph, specs)
	reach := info.Graph.ReachableFrom(roots)
	names := make([]string, 0, len(reach))
	for n := range reach {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}
