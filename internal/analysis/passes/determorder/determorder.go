// Package determorder flags result merges that depend on channel arrival
// order. A worker pool that sends results over a channel completes in
// whatever order the OS schedules the workers; a receive loop that appends
// each result, accumulates it with `+=`, or keeps "the last one seen" bakes
// that arrival order into the output, so two runs of the same problem emit
// different schedules or certificates.
//
// Accepted natively is the canonical reorder-buffer merge the production
// pools use: storing each received result into a table keyed by an index
// carried with the result (`pending[r.idx] = r`, `out[r.i] = r.v`) is
// order-insensitive, because every arrival lands in its predetermined slot.
// Forwarding to another channel is also accepted (order questions transfer
// to the final consumer). Anything else needs an index-carrying result
// type, a post-Wait sort, or an explicit //ftlint:ordered-merge <why>
// annotation.
package determorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
)

// Analyzer is the determorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "determorder",
	Doc:  "flag merges of channel-delivered results that depend on arrival order",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsCriticalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isChanType(pass.TypesInfo.TypeOf(n.X)) {
					checkMergeLoop(pass, n, rangeRecvVars(pass.TypesInfo, n), n.Body)
				}
			case *ast.ForStmt:
				// for { v := <-ch; ... } and counted receive loops.
				recv := recvVarsInLoop(pass.TypesInfo, n.Body)
				if len(recv) > 0 {
					checkMergeLoop(pass, n, recv, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// rangeRecvVars returns the variables bound by `for v := range ch`.
func rangeRecvVars(info *types.Info, n *ast.RangeStmt) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	if id, ok := n.Key.(*ast.Ident); ok {
		if v := varAt(info, id); v != nil {
			vars[v] = true
		}
	}
	return vars
}

// recvVarsInLoop returns variables assigned from a channel receive directly
// in the loop body (v := <-ch, v, ok := <-ch, v = <-ch).
func recvVarsInLoop(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	for _, s := range body.List {
		asg, ok := s.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			continue
		}
		ue, ok := ast.Unparen(asg.Rhs[0]).(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		if id, ok := asg.Lhs[0].(*ast.Ident); ok {
			if v := varAt(info, id); v != nil {
				vars[v] = true
			}
		}
	}
	return vars
}

// checkMergeLoop scans a receive loop's body for order-sensitive merges of
// the received values into state that outlives the loop.
func checkMergeLoop(pass *analysis.Pass, loop ast.Node, recv map[*types.Var]bool, body *ast.BlockStmt) {
	if len(recv) == 0 {
		return
	}
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range asg.Lhs {
			var rhs ast.Expr
			if i < len(asg.Rhs) {
				rhs = asg.Rhs[i]
			} else if len(asg.Rhs) == 1 {
				rhs = asg.Rhs[0]
			}
			checkMerge(pass, loop, recv, asg, lhs, rhs, info)
		}
		return true
	})
}

func checkMerge(pass *analysis.Pass, loop ast.Node, recv map[*types.Var]bool, asg *ast.AssignStmt, lhs, rhs ast.Expr, info *types.Info) {
	if rhs == nil || !mentionsRecv(info, rhs, recv) {
		return
	}
	// The receive binding itself (v := <-ch) is not a merge.
	if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		return
	}
	target := outerTarget(info, lhs, loop, recv)
	if target == nil {
		return
	}
	// Reorder buffer: an index-keyed store puts the arrival in a slot chosen
	// by the result itself, independent of arrival order.
	if _, isIndexed := ast.Unparen(lhs).(*ast.IndexExpr); isIndexed {
		return
	}
	name := target.Name()
	switch {
	case isAppendOf(info, rhs, lhs):
		pass.Reportf(asg.Pos(), "append to %q in channel-arrival order: workers complete nondeterministically, so the slice order varies across runs; carry an index in the result and store into a slot (out[r.idx] = r), or sort after the loop, or annotate with //ftlint:ordered-merge <why>", name)
	case isCompound(asg.Tok):
		extra := ""
		if isFloat(info, lhs) {
			extra = " (float addition is not associative, so even the final total differs)"
		}
		pass.Reportf(asg.Pos(), "accumulation into %q in channel-arrival order%s: reduce per-worker and combine in a fixed order after Wait, or annotate with //ftlint:ordered-merge <why>", name, extra)
	default:
		pass.Reportf(asg.Pos(), "assignment to %q keeps the last channel arrival, which is whichever worker finished last; select the survivor by a deterministic rule (an index or key comparison), or annotate with //ftlint:ordered-merge <why>", name)
	}
}

// outerTarget resolves the merge destination: a variable declared outside
// the loop (so it accumulates across iterations). Receive variables and
// loop-locals are not merge targets.
func outerTarget(info *types.Info, lhs ast.Expr, loop ast.Node, recv map[*types.Var]bool) *types.Var {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return nil
			}
			v := varAt(info, id)
			if v == nil || recv[v] {
				return nil
			}
			if loop.Pos() <= v.Pos() && v.Pos() < loop.End() {
				return nil // loop-local scratch
			}
			return v
		}
	}
}

// mentionsRecv reports whether the expression reads a received value.
func mentionsRecv(info *types.Info, e ast.Expr, recv map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := varAt(info, id); v != nil && recv[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isAppendOf reports whether rhs is append(lhs, ...).
func isAppendOf(info *types.Info, rhs, lhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isFn := info.Uses[id].(*types.Func); isFn {
		return false // a user-defined append
	}
	return len(call.Args) > 0
}

func isCompound(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func varAt(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}
