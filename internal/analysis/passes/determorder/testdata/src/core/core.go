package core

type result struct {
	idx int
	val float64
}

// Appending in arrival order bakes worker completion order into the slice.
func mergeAppend(ch chan result) []result {
	var out []result
	for r := range ch {
		out = append(out, r) // want `append to "out" in channel-arrival order`
	}
	return out
}

// Float accumulation in arrival order differs across runs.
func mergeSum(ch chan result) float64 {
	total := 0.0
	for r := range ch {
		total += r.val // want `accumulation into "total" in channel-arrival order`
	}
	return total
}

// Last-arrival-wins keeps whichever worker finished last.
func mergeLast(ch chan result) result {
	var last result
	for r := range ch {
		last = r // want `assignment to "last" keeps the last channel arrival`
	}
	return last
}

// The reorder buffer: every arrival lands in its predetermined slot.
func reorderBuffer(ch chan result, n int) []float64 {
	out := make([]float64, n)
	for r := range ch {
		out[r.idx] = r.val
	}
	return out
}

// The pending-map drain: keyed store plus an in-order drain by counter.
func drainInOrder(ch chan result, n int) []float64 {
	pending := map[int]result{}
	out := make([]float64, 0, n)
	next := 0
	for r := range ch {
		pending[r.idx] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			out = append(out, q.val)
			delete(pending, next)
			next++
		}
	}
	return out
}

// Explicit receives in a counted loop are merge loops too.
func mergeCounted(ch chan result, n int) []result {
	var out []result
	for i := 0; i < n; i++ {
		r := <-ch
		out = append(out, r) // want `append to "out" in channel-arrival order`
	}
	return out
}

// Forwarding to another channel just moves the question to the consumer.
func forward(in, out chan result) {
	for r := range in {
		out <- r
	}
}

// Loop-local scratch does not accumulate across arrivals.
func inspectEach(ch chan result) {
	for r := range ch {
		scaled := r.val * 2
		_ = scaled
	}
}

// A reasoned annotation silences the finding.
func annotated(ch chan result) float64 {
	max := 0.0
	for r := range ch {
		//ftlint:ordered-merge max is commutative and associative over positive costs
		max += r.val
	}
	return max
}
