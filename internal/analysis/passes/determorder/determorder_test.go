package determorder_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/determorder"
)

func TestMergeShapes(t *testing.T) {
	analysistest.Run(t, "testdata", "core", determorder.Analyzer)
}
