// Package util is the cancelpoll fixture for a non-engine package: the
// timeout contract does not bind it, so even a poll-free spin loop is legal.
package util

func spin(work func()) {
	for {
		work()
	}
}
