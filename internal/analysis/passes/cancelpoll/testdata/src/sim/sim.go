// Package sim is the cancelpoll fixture: an engine package whose
// input-dependent loops must reach a Cancel poll each iteration. Counted
// scans, call-free arithmetic loops, and loops polling directly or through a
// summarized callee stay silent.
package sim

import "sync/atomic"

type engine struct {
	cancel atomic.Bool
	queue  []int
}

func (e *engine) canceled() bool { return e.cancel.Load() }

func work() {}

func changed() bool { return false }

func (e *engine) runaway() {
	for len(e.queue) > 0 { // want "input-dependent loop never reaches a cancellation poll"
		work()
		e.queue = e.queue[1:]
	}
}

func (e *engine) eventLoop() {
	for { // want "input-dependent loop never reaches a cancellation poll"
		work()
	}
}

func (e *engine) politeDirect() {
	for len(e.queue) > 0 {
		if e.cancel.Load() {
			return
		}
		work()
		e.queue = e.queue[1:]
	}
}

func (e *engine) politeViaCallee() {
	for len(e.queue) > 0 {
		if e.canceled() {
			return
		}
		work()
		e.queue = e.queue[1:]
	}
}

func (e *engine) counted(n int) {
	for i := 0; i < n; i++ {
		work()
	}
}

func (e *engine) callFree(n int) int {
	x := 1
	for x < n {
		x = x*2 + 1
	}
	return x
}

func (e *engine) fixpoint() {
	//ftlint:allow-nopoll fixture: the lattice height bounds the trip count
	for changed() {
		work()
	}
}
