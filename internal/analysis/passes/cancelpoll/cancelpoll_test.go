package cancelpoll_test

import (
	"testing"

	"ftsched/internal/analysis/analysistest"
	"ftsched/internal/analysis/passes/cancelpoll"
)

func TestEnginePackage(t *testing.T) {
	analysistest.Run(t, "testdata", "sim", cancelpoll.Analyzer)
}

func TestNonEnginePackage(t *testing.T) {
	analysistest.Run(t, "testdata", "util", cancelpoll.Analyzer)
}
