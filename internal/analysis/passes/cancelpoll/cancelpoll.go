// Package cancelpoll enforces the PR 8 cancellation contract in the engine
// packages (core, certify, sim): every loop whose trip count depends on the
// input — not a counted `for i := 0; i < n; i++` scan, not a range over a
// collection — must reach a Cancel flag poll (an atomic.Bool Load) within
// one iteration, either directly in its body or through a callee whose
// summary proves it polls. Otherwise a pathological input makes ftschedd's
// per-request timeouts advisory: the deadline fires but the engine never
// looks.
//
// The callee check is interprocedural via the summary facts engine, so
// `for { ... if b.opts.canceled() { return } ... }` passes because the
// canceled helper's summary carries PollsCancel. A loop that is genuinely
// bounded by problem structure (a fixpoint over a finite lattice) is
// sanctioned with //ftlint:allow-nopoll <proof of the bound>.
package cancelpoll

import (
	"go/ast"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/callgraph"
	"ftsched/internal/analysis/summary"
)

// Analyzer is the cancelpoll pass.
var Analyzer = &analysis.Analyzer{
	Name: "cancelpoll",
	Doc:  "require input-dependent loops in the engine packages to poll the Cancel flag each iteration",
	Run:  run,
}

// enginePackages are the packages the PR 8 timeout contract binds: the ones
// ftschedd drives with a per-request cancel flag.
var enginePackages = map[string]bool{
	"core":     true,
	"certify":  true,
	"sim":      true,
	"campaign": true,
}

func run(pass *analysis.Pass) error {
	if !enginePackages[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	info := summary.For(pass)
	for _, n := range info.Graph.Nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		checkBody(pass, info, n, body)
	}
	return nil
}

// checkBody inspects the loops belonging to one call-graph node (nested
// literals are their own nodes and are skipped here).
func checkBody(pass *analysis.Pass, info *summary.Info, n *callgraph.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return x.Body == body // descend only into the node's own body
		case *ast.ForStmt:
			checkLoop(pass, info, n, x)
		}
		return true
	})
}

func checkLoop(pass *analysis.Pass, info *summary.Info, n *callgraph.Node, loop *ast.ForStmt) {
	if isCounted(loop) {
		return
	}
	if !hasCall(pass.TypesInfo, loop.Body) {
		// No calls at all: the loop is pure local arithmetic (slice growth,
		// memo warm-up) and cannot poll anyway; memory exhaustion, not
		// wall-clock runaway, is its failure mode.
		return
	}
	if polls(pass.TypesInfo, info, n, loop) {
		return
	}
	pass.Reportf(loop.For,
		"input-dependent loop never reaches a cancellation poll: a request timeout cannot interrupt it (DESIGN.md §14); load the Cancel flag each iteration (directly or via a polling callee) or annotate //ftlint:allow-nopoll <why the trip count is bounded>")
}

// isCounted recognizes the classic counted scan: the post statement advances
// a variable the condition compares, so the trip count is fixed by the
// bounds, not the input stream.
func isCounted(loop *ast.ForStmt) bool {
	if loop.Cond == nil || loop.Post == nil {
		return false
	}
	v := postVar(loop.Post)
	if v == "" {
		return false
	}
	cmp, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return false
	}
	return mentions(cmp, v)
}

func postVar(post ast.Stmt) string {
	switch p := post.(type) {
	case *ast.IncDecStmt:
		if id, ok := p.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.AssignStmt:
		if len(p.Lhs) == 1 {
			if id, ok := p.Lhs[0].(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

func mentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// hasCall reports whether the loop body contains at least one real function
// call (not a builtin, not a type conversion), looking through nested blocks
// but not into function literals.
func hasCall(typesInfo *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isRealCall(typesInfo, x) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isRealCall(typesInfo *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := typesInfo.Uses[id].(*types.Builtin); builtin {
			return false
		}
	}
	if tv, ok := typesInfo.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion
	}
	return true
}

// polls reports whether one iteration of the loop reaches a Cancel load:
// a direct atomic.Bool Load in the body, or a call (resolved through the
// call graph, so closures and method values count) to a function whose
// summary carries PollsCancel.
func polls(typesInfo *types.Info, info *summary.Info, n *callgraph.Node, loop *ast.ForStmt) bool {
	direct := false
	ast.Inspect(loop.Body, func(x ast.Node) bool {
		if direct {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && summary.IsCancelPoll(typesInfo, call) {
			direct = true
			return false
		}
		return true
	})
	if direct {
		return true
	}
	for _, e := range n.Out {
		if e.Site.Pos() < loop.Body.Pos() || e.Site.Pos() >= loop.Body.End() {
			continue
		}
		var s *summary.Summary
		if e.Callee != nil {
			s = info.Local[e.Callee]
		} else if e.Ext != nil {
			s = info.Imported[e.Ext.FullName()]
		}
		if s != nil && s.PollsCancel {
			return true
		}
	}
	return false
}
