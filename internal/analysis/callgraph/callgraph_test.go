package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// build parses and type-checks src as one package and builds its call graph.
func build(t *testing.T, src string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build(fset, []*ast.File{f}, info, pkg), info
}

// node finds a graph node by display name.
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %q not found; have %v", name, names(g.Nodes))
	return nil
}

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// callees renders a node's resolved out-edges, local targets by display name
// and external targets by full name.
func callees(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		if e.Callee != nil {
			out = append(out, e.Callee.Name)
		} else if e.Ext != nil {
			out = append(out, "ext:"+e.Ext.FullName())
		}
	}
	return out
}

func TestStaticAndMethodEdges(t *testing.T) {
	g, _ := build(t, `package p
import "strings"
type recv struct{}
func (r *recv) m() {}
func helper() {}
func caller(r *recv) {
	helper()
	r.m()
	strings.TrimSpace("x")
}
`)
	got := callees(node(t, g, "caller"))
	want := []string{"helper", "(*recv).m", "ext:strings.TrimSpace"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("caller edges = %v, want %v", got, want)
	}
}

func TestLiteralNodesAndBindings(t *testing.T) {
	g, _ := build(t, `package p
func target() {}
type recv struct{}
func (r recv) m() {}
func caller(r recv) {
	func() { target() }()       // immediately-invoked literal
	f := func() { target() }    // closure through a local
	f()
	mv := r.m                   // method value through a local
	mv()
	pf := target                // package function through a local
	pf()
	alias := f                  // alias copy
	alias()
}
`)
	caller := node(t, g, "caller")
	got := callees(caller)
	// Edge order follows source order: the IIFE, then f(), mv(), pf(), alias().
	want := []string{"caller·func1", "caller·func2", "(recv).m", "target", "caller·func2"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("caller edges = %v, want %v", got, want)
	}
	// The literals' own edges belong to the literal nodes, not the caller.
	lit := node(t, g, "caller·func1")
	if lit.Enclosing != caller {
		t.Errorf("literal's Enclosing = %v, want caller", lit.Enclosing)
	}
	if got := callees(lit); strings.Join(got, "|") != "target" {
		t.Errorf("literal edges = %v, want [target]", got)
	}
}

func TestSCCsBottomUp(t *testing.T) {
	g, _ := build(t, `package p
func c() {}
func b() { c() }
func a() { b() }
func d() { e() }
func e() { d() }
`)
	comps := g.SCCs()
	order := map[string]int{}
	for i, comp := range comps {
		var ns []string
		for _, n := range comp {
			ns = append(ns, n.Name)
		}
		sort.Strings(ns)
		order[strings.Join(ns, "+")] = i
	}
	// Bottom-up: every callee component precedes its callers'.
	if !(order["c"] < order["b"] && order["b"] < order["a"]) {
		t.Errorf("SCC order %v does not place callees first", order)
	}
	if _, ok := order["d+e"]; !ok {
		t.Errorf("mutual recursion d<->e not grouped into one SCC: %v", order)
	}
}

func TestReachableFrom(t *testing.T) {
	g, _ := build(t, `package p
func leaf() {}
func mid() { leaf() }
func root() { mid() }
func island() {}
`)
	reach := g.ReachableFrom([]*Node{node(t, g, "root")})
	var got []string
	for n := range reach {
		got = append(got, n.Name)
	}
	sort.Strings(got)
	want := "leaf|mid|root"
	if strings.Join(got, "|") != want {
		t.Errorf("reachable = %v, want %s", got, want)
	}
	if reach[node(t, g, "island")] {
		t.Error("island reachable from root")
	}
}

func TestDeterministicIDs(t *testing.T) {
	src := `package p
func a() { b() }
func b() {}
var v = func() {}
`
	g1, _ := build(t, src)
	g2, _ := build(t, src)
	if strings.Join(names(g1.Nodes), "|") != strings.Join(names(g2.Nodes), "|") {
		t.Errorf("node order differs across builds: %v vs %v", names(g1.Nodes), names(g2.Nodes))
	}
	for i, n := range g1.Nodes {
		if n.ID != i {
			t.Errorf("node %s has ID %d at index %d", n.Name, n.ID, i)
		}
	}
}
