// Package callgraph builds a package-local call graph for the ftlint
// interprocedural passes: one node per declared function or method and per
// function literal, with edges for every call the PR 6 resolution machinery
// can see statically — direct calls of package functions and methods,
// immediately-invoked literals (including `go func(){}()` / `defer`), and
// closures or method values called through local variables (the errprop v2
// tracking, generalized).
//
// The graph is deliberately may-call and package-local. Cross-package
// callees appear on edges as their *types.Func with no local node; the
// summary engine resolves them against imported facts. Dynamic dispatch
// through interfaces and function values that escape the tracked-local
// patterns produce no edge at all — the soundness caveat every client
// documents (DESIGN.md §15).
//
// Determinism: node IDs follow declaration order (file order, then position)
// and edge order follows source order, so SCC numbering and any report
// derived from a traversal are stable across runs.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"ftsched/internal/analysis"
)

// Node is one function in the package: a declaration (Decl != nil, Fn is its
// types object) or a function literal (Lit != nil; Fn is nil).
type Node struct {
	ID   int
	Name string // display name: "Build", "(*builder).evaluateOne", "(*builder).run·func1"
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit

	// Enclosing is the node lexically containing a literal, nil for
	// declarations. Literals inherit their enclosing function's parameters
	// for guard analysis in the summary engine.
	Enclosing *Node

	Out []Edge
}

// Body returns the function body (nil for body-less declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Type returns the function's signature type.
func (n *Node) Type(info *types.Info) *types.Signature {
	if n.Fn != nil {
		return analysis.Signature(n.Fn)
	}
	sig, _ := info.TypeOf(n.Lit).(*types.Signature)
	return sig
}

// Edge is one resolved call site. Exactly one of Callee (package-local) and
// Ext (cross-package) is set.
type Edge struct {
	Site   *ast.CallExpr
	Callee *Node       // package-local target
	Ext    *types.Func // cross-package target (module or stdlib)
}

// Graph is the package-local call graph.
type Graph struct {
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
}

// NodeOf returns the node of a declared function or method, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// NodeOfLit returns the node of a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph of one type-checked package.
func Build(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) *Graph {
	g := &Graph{byFunc: map[*types.Func]*Node{}, byLit: map[*ast.FuncLit]*Node{}}

	// Pass 1: one node per declaration and per literal, in source order, so
	// IDs are deterministic. Literals are discovered in a second walk scoped
	// to each declaration to record the enclosing node.
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			n := &Node{ID: len(g.Nodes), Name: declName(fd), Fn: fn, Decl: fd}
			g.Nodes = append(g.Nodes, n)
			if fn != nil {
				g.byFunc[fn] = n
			}
		}
	}
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				g.addLits(d.Body, g.byDecl(d, info))
			case *ast.GenDecl:
				// Package-level `var f = func() {...}`: the literal gets a
				// node with no enclosing function.
				g.addLits(d, nil)
			}
		}
	}

	// Pass 2: edges. Local function values (closures, method values, module
	// functions bound to locals) are tracked per enclosing declaration.
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bindings := trackLocalFuncs(info, g, fd.Body)
			root := g.byDecl(fd, info)
			g.addEdges(fd.Body, root, info, bindings)
		}
	}
	return g
}

func (g *Graph) byDecl(fd *ast.FuncDecl, info *types.Info) *Node {
	if fn, _ := info.Defs[fd.Name].(*types.Func); fn != nil {
		return g.byFunc[fn]
	}
	for _, n := range g.Nodes {
		if n.Decl == fd {
			return n
		}
	}
	return nil
}

// addLits creates nodes for every function literal under root, attributing
// each to its innermost enclosing function node.
func (g *Graph) addLits(root ast.Node, encl *Node) {
	var stack []*Node
	cur := encl
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				cur, stack = stack[len(stack)-1], stack[:len(stack)-1]
			}
			return true
		}
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		name := "func·lit"
		if cur != nil {
			name = fmt.Sprintf("%s·func%d", cur.Name, countLits(g, cur)+1)
		}
		node := &Node{ID: len(g.Nodes), Name: name, Lit: lit, Enclosing: cur}
		g.Nodes = append(g.Nodes, node)
		g.byLit[lit] = node
		stack = append(stack, cur)
		cur = node
		return true
	})
}

func countLits(g *Graph, encl *Node) int {
	c := 0
	for _, n := range g.Nodes {
		if n.Lit != nil && n.Enclosing == encl {
			c++
		}
	}
	return c
}

// addEdges walks a function body (entering nested literals, whose edges
// belong to the literal's own node) and records every resolvable call.
func (g *Graph) addEdges(body ast.Node, owner *Node, info *types.Info, bindings map[*types.Var]*Node) {
	var walk func(n ast.Node, owner *Node)
	walk = func(n ast.Node, owner *Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if x == ownerLit(owner) {
					return true // the owner's own body, keep walking
				}
				if ln := g.byLit[x]; ln != nil {
					walk(x.Body, ln)
				}
				return false
			case *ast.CallExpr:
				g.addCall(owner, x, info, bindings)
			}
			return true
		})
	}
	walk(body, owner)
}

func ownerLit(n *Node) *ast.FuncLit {
	if n == nil {
		return nil
	}
	return n.Lit
}

// addCall resolves one call site into an edge, if possible.
func (g *Graph) addCall(owner *Node, call *ast.CallExpr, info *types.Info, bindings map[*types.Var]*Node) {
	if owner == nil {
		return
	}
	fun := ast.Unparen(call.Fun)
	// Immediately-invoked literal: func(){...}() — also the go/defer form.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if ln := g.byLit[lit]; ln != nil {
			owner.Out = append(owner.Out, Edge{Site: call, Callee: ln})
		}
		return
	}
	// Static callee: package function or method.
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		if local := g.byFunc[fn]; local != nil {
			owner.Out = append(owner.Out, Edge{Site: call, Callee: local})
		} else if fn.Pkg() != nil {
			owner.Out = append(owner.Out, Edge{Site: call, Ext: fn})
		}
		return
	}
	// Dynamic call through a tracked local: f() where f was bound to a
	// literal, a method value, or a package function.
	if id, ok := fun.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			if target := bindings[v]; target != nil {
				owner.Out = append(owner.Out, Edge{Site: call, Callee: target})
			}
		}
	}
}

// trackLocalFuncs maps local variables to the package-local function they
// are bound to: f := func(){...}, f := recv.Method (method value),
// f := PkgFunc, and alias copies g := f. Rebinding to a different target
// keeps both edges (may-call); rebinding to an untrackable value keeps the
// old one — the documented over-approximation.
func trackLocalFuncs(info *types.Info, g *Graph, body *ast.BlockStmt) map[*types.Var]*Node {
	bindings := map[*types.Var]*Node{}
	resolve := func(e ast.Expr) *Node {
		switch x := ast.Unparen(e).(type) {
		case *ast.FuncLit:
			return g.byLit[x]
		case *ast.Ident:
			if fn, ok := info.Uses[x].(*types.Func); ok {
				return g.byFunc[fn]
			}
			if v, ok := info.Uses[x].(*types.Var); ok {
				return bindings[v]
			}
		case *ast.SelectorExpr:
			// Method value recv.M or qualified name pkg.F.
			if sel, ok := info.Selections[x]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return g.byFunc[fn]
				}
				return nil
			}
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				return g.byFunc[fn]
			}
		}
		return nil
	}
	bind := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v, _ := info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		if target := resolve(rhs); target != nil {
			bindings[v] = target
		}
	}
	// Two sweeps so forward references through aliases (g := f before f is
	// seen textually inside nested literals) settle.
	for i := 0; i < 2; i++ {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						bind(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return bindings
}

// declName renders a declaration's display name.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func typeString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeString(e.X)
	case *ast.IndexExpr:
		return typeString(e.X)
	case *ast.IndexListExpr:
		return typeString(e.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// SCCs returns the strongly connected components in bottom-up (reverse
// topological) order: every callee's component appears before its callers'.
// Tarjan's algorithm emits components in exactly that order.
func (g *Graph) SCCs() [][]*Node {
	n := len(g.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []*Node
	var comps [][]*Node
	next := 0

	type frame struct {
		node *Node
		edge int
	}
	for _, root := range g.Nodes {
		if index[root.ID] != -1 {
			continue
		}
		work := []frame{{node: root}}
		index[root.ID] = next
		low[root.ID] = next
		next++
		stack = append(stack, root)
		onStack[root.ID] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			v := fr.node
			advanced := false
			for fr.edge < len(v.Out) {
				e := v.Out[fr.edge]
				fr.edge++
				w := e.Callee
				if w == nil {
					continue
				}
				if index[w.ID] == -1 {
					index[w.ID] = next
					low[w.ID] = next
					next++
					stack = append(stack, w)
					onStack[w.ID] = true
					work = append(work, frame{node: w})
					advanced = true
					break
				}
				if onStack[w.ID] && index[w.ID] < low[v.ID] {
					low[v.ID] = index[w.ID]
				}
			}
			if advanced {
				continue
			}
			if low[v.ID] == index[v.ID] {
				var comp []*Node
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w.ID] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].node
				if low[v.ID] < low[p.ID] {
					low[p.ID] = low[v.ID]
				}
			}
		}
	}
	return comps
}

// ReachableFrom returns the set of local nodes reachable from the roots by
// following local call edges (roots included).
func (g *Graph) ReachableFrom(roots []*Node) map[*Node]bool {
	seen := make(map[*Node]bool, len(g.Nodes))
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range v.Out {
			if e.Callee != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}
