package summary

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// compute parses and type-checks src as one package and runs the summary
// fixpoint with no imported facts.
func compute(t *testing.T, src string) (*Info, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typesInfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, typesInfo)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Compute(fset, []*ast.File{f}, pkg, typesInfo, nil), typesInfo
}

// forName returns the summary of the declared function with that name.
func forName(t *testing.T, info *Info, name string) *Summary {
	t.Helper()
	for n, s := range info.Local {
		if n.Name == name {
			return s
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

// The commit-bool sharing pattern from the scheduler core: one arrival
// routine serves both the pure evaluation path (commit=false) and the
// mutating commit path (commit=true).
const commitSrc = `package p
type schedState struct {
	mutEpoch int
	deliv    int
}
func arrival(s *schedState, commit bool) {
	if !commit {
		return
	}
	s.deliv++
	s.mutEpoch++
}
func evaluate(s *schedState) { arrival(s, false) }
func commitStep(s *schedState) { arrival(s, true) }
func relay(s *schedState, apply bool) { arrival(s, apply) }
func deepEvaluate(s *schedState) { relay(s, false) }
`

func TestGuardDischargeChain(t *testing.T) {
	info, _ := compute(t, commitSrc)

	// The arrival routine itself: both mutations guarded by param 1 (commit).
	arr := forName(t, info, "arrival")
	if len(arr.Protected) != 2 {
		t.Fatalf("arrival Protected = %+v, want 2 effects", arr.Protected)
	}
	for _, e := range arr.Protected {
		if !reflect.DeepEqual(e.Guards, []int{1}) {
			t.Errorf("arrival effect %q guards = %v, want [1]", e.Site, e.Guards)
		}
	}

	// Literal false discharges the effects entirely.
	if s := forName(t, info, "evaluate"); len(s.Protected) != 0 {
		t.Errorf("evaluate Protected = %+v, want none (discharged by literal false)", s.Protected)
	}
	// Literal true satisfies the guard: the effects become unconditional.
	cs := forName(t, info, "commitStep")
	if len(cs.Protected) != 2 {
		t.Fatalf("commitStep Protected = %+v, want 2", cs.Protected)
	}
	for _, e := range cs.Protected {
		if len(e.Guards) != 0 {
			t.Errorf("commitStep effect %q guards = %v, want unconditional", e.Site, e.Guards)
		}
	}
	// Passing the caller's own bool param renames the guard into its frame…
	rl := forName(t, info, "relay")
	for _, e := range rl.Protected {
		if !reflect.DeepEqual(e.Guards, []int{1}) {
			t.Errorf("relay effect %q guards = %v, want [1] (renamed)", e.Site, e.Guards)
		}
	}
	// …so discharge still works one more level up.
	if s := forName(t, info, "deepEvaluate"); len(s.Protected) != 0 {
		t.Errorf("deepEvaluate Protected = %+v, want none (discharged through relay)", s.Protected)
	}
}

func TestUnknownGuardArgumentIsConservative(t *testing.T) {
	info, _ := compute(t, `package p
type schedState struct{ mutEpoch int }
func arrival(s *schedState, commit bool) {
	if commit {
		s.mutEpoch++
	}
}
func maybe(s *schedState, x int) { arrival(s, x > 0) }
`)
	s := forName(t, info, "maybe")
	if len(s.Protected) != 1 {
		t.Fatalf("maybe Protected = %+v, want 1 (unknown guard keeps the effect)", s.Protected)
	}
	if len(s.Protected[0].Guards) != 0 {
		t.Errorf("guards = %v, want none (dropped, not renamed)", s.Protected[0].Guards)
	}
	if !reflect.DeepEqual(s.Protected[0].Path, []string{"arrival"}) {
		t.Errorf("path = %v, want [arrival]", s.Protected[0].Path)
	}
}

func TestPollsCancelPropagates(t *testing.T) {
	info, _ := compute(t, `package p
import "sync/atomic"
type opts struct{ cancel atomic.Bool }
func (o *opts) canceled() bool { return o.cancel.Load() }
func loopBody(o *opts) bool { return o.canceled() }
func pure(x int) int { return x + 1 }
`)
	if !forName(t, info, "(*opts).canceled").PollsCancel {
		t.Error("canceled: PollsCancel = false, want true (direct atomic.Bool Load)")
	}
	if !forName(t, info, "loopBody").PollsCancel {
		t.Error("loopBody: PollsCancel = false, want true (via callee)")
	}
	if forName(t, info, "pure").PollsCancel {
		t.Error("pure: PollsCancel = true, want false")
	}
}

func TestAllocClasses(t *testing.T) {
	info, _ := compute(t, `package p
import "fmt"
func sprintf(x int) string { return fmt.Sprintf("%d", x) }
func mapLit() map[string]int { return map[string]int{} }
func closure(x int) func() int { return func() int { return x } }
func staticClosure() func() int { return func() int { return 1 } }
func growth(items []int) []int {
	var out []int
	for _, it := range items {
		out = append(out, it)
	}
	return out
}
func hinted(items []int) []int {
	out := make([]int, 0, len(items))
	for _, it := range items {
		out = append(out, it)
	}
	return out
}
func sized(n int) []int { return make([]int, n) }
`)
	wantOne := func(name, substr string) {
		t.Helper()
		s := forName(t, info, name)
		if len(s.Allocs) != 1 || !strings.Contains(s.Allocs[0].Site, substr) {
			t.Errorf("%s Allocs = %+v, want one containing %q", name, s.Allocs, substr)
		}
	}
	wantOne("sprintf", "fmt.Sprintf call")
	wantOne("mapLit", "map literal")
	wantOne("closure", "escaping closure")
	wantOne("growth", "append growth to out")
	for _, clean := range []string{"staticClosure", "hinted", "sized"} {
		if s := forName(t, info, clean); len(s.Allocs) != 0 {
			t.Errorf("%s Allocs = %+v, want none", clean, s.Allocs)
		}
	}
}

func TestMutTargetsAndErrorValued(t *testing.T) {
	info, _ := compute(t, `package p
type box struct{ n int }
func (b *box) bump() { b.n++ }
func viaHelper(b *box) { b.bump() }
func setArg(p *int) { *p = 1 }
func viaSetArg(x *int, y int) { setArg(x) }
func factory() func() error { return func() error { return nil } }
func plain() int { return 0 }
`)
	if !forName(t, info, "(*box).bump").MutRecv {
		t.Error("bump: MutRecv = false, want true")
	}
	if got := forName(t, info, "viaHelper").MutParams; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("viaHelper MutParams = %v, want [0] (receiver mutation folded onto the argument)", got)
	}
	if got := forName(t, info, "setArg").MutParams; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("setArg MutParams = %v, want [0]", got)
	}
	if got := forName(t, info, "viaSetArg").MutParams; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("viaSetArg MutParams = %v, want [0] (propagated)", got)
	}
	if !forName(t, info, "factory").ErrorValued {
		t.Error("factory: ErrorValued = false, want true")
	}
	if forName(t, info, "plain").ErrorValued {
		t.Error("plain: ErrorValued = true, want false")
	}
}

func TestRecursionTerminatesAndKeepsEffects(t *testing.T) {
	info, _ := compute(t, `package p
type schedState struct{ mutEpoch int }
func ping(s *schedState, n int) {
	s.mutEpoch++
	if n > 0 {
		pong(s, n-1)
	}
}
func pong(s *schedState, n int) { ping(s, n) }
`)
	for _, name := range []string{"ping", "pong"} {
		if s := forName(t, info, name); len(s.Protected) == 0 {
			t.Errorf("%s Protected empty, want the mutual-recursion effect to survive the fixpoint", name)
		}
	}
}

func TestSuppressionPropagatesButExportDrops(t *testing.T) {
	info, _ := compute(t, `package p
type schedState struct{ mutEpoch int }
func sanctioned(s *schedState) {
	s.mutEpoch++ //ftlint:epoch-pure test fixture: proven safe by construction
}
func caller(s *schedState) { sanctioned(s) }
func tainted(s *schedState) { s.mutEpoch = 0 }
`)
	// Locally the suppressed effect is still visible (passes report it at the
	// sanctioned line, where the directive silences it)…
	sanc := forName(t, info, "sanctioned")
	if len(sanc.Protected) != 1 || !sanc.Protected[0].Suppressed {
		t.Fatalf("sanctioned Protected = %+v, want one suppressed effect", sanc.Protected)
	}
	call := forName(t, info, "caller")
	if len(call.Protected) != 1 || !call.Protected[0].Suppressed {
		t.Fatalf("caller Protected = %+v, want the suppressed effect propagated", call.Protected)
	}
	// …but the exported facts drop it, so importers never see the site.
	facts := info.Export()
	for _, name := range []string{"p.sanctioned", "p.caller"} {
		if s, ok := facts[name]; ok && len(s.Protected) > 0 {
			t.Errorf("Export()[%s].Protected = %+v, want suppressed entries stripped", name, s.Protected)
		}
	}
	if s := facts["p.tainted"]; s == nil || len(s.Protected) != 1 {
		t.Errorf("Export()[p.tainted] = %+v, want the unsuppressed effect kept", facts["p.tainted"])
	}
}

func TestFactsRoundTrip(t *testing.T) {
	info, _ := compute(t, commitSrc)
	facts := info.Export()
	if len(facts) == 0 {
		t.Fatal("commit fixture exported no facts")
	}
	enc, err := EncodeFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeFacts(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(facts) {
		t.Fatalf("round trip lost entries: %d -> %d", len(facts), len(dec))
	}
	for name, want := range facts {
		got := dec[name]
		if got == nil {
			t.Errorf("round trip lost %s", name)
			continue
		}
		if len(got.Protected) != len(want.Protected) || got.PollsCancel != want.PollsCancel ||
			got.MutRecv != want.MutRecv || !reflect.DeepEqual(got.MutParams, want.MutParams) {
			t.Errorf("round trip changed %s: got %+v, want %+v", name, got, want)
		}
	}
	// Determinism: encoding twice yields identical bytes.
	enc2, err := EncodeFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Error("EncodeFacts is not byte-deterministic")
	}
}

func TestDecodeFactsLenient(t *testing.T) {
	if m, err := DecodeFacts(nil); err != nil || len(m) != 0 {
		t.Errorf("DecodeFacts(empty) = %v, %v; want empty set", m, err)
	}
	stale := []byte(`{"ftlintFactsVersion":2,"funcs":{"p.f":{"polls":true}}}`)
	if m, err := DecodeFacts(stale); err != nil || len(m) != 0 {
		t.Errorf("DecodeFacts(stale version) = %v, %v; want empty set", m, err)
	}
	if _, err := DecodeFacts([]byte("{not json")); err == nil {
		t.Error("DecodeFacts(garbage) = nil error, want error")
	}
}

func TestImportedFactsFold(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
import "q"
func caller() { q.Helper() }
`
	// Hand-build a fake dependency q with one nondet-tainted, allocating
	// function, then check the caller's summary folds the imported facts at
	// the call site.
	qpkg := types.NewPackage("q", "q")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	helper := types.NewFunc(token.NoPos, qpkg, "Helper", sig)
	qpkg.Scope().Insert(helper)
	qpkg.MarkComplete()

	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	typesInfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: mapImporter{"q": qpkg}}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, typesInfo)
	if err != nil {
		t.Fatal(err)
	}
	imported := map[string]*Summary{
		"q.Helper": {
			Nondet:      []Nondet{{Site: "q.go:3: wall-clock read time.Now"}},
			Allocs:      []Alloc{{Site: "q.go:4: fmt.Sprintf call"}},
			PollsCancel: true,
		},
	}
	info := Compute(fset, []*ast.File{f}, pkg, typesInfo, imported)
	s := forName(t, info, "caller")
	if len(s.Nondet) != 1 || !reflect.DeepEqual(s.Nondet[0].Path, []string{"q.Helper"}) {
		t.Errorf("caller Nondet = %+v, want the imported taint with path [q.Helper]", s.Nondet)
	}
	if len(s.Allocs) != 1 || s.Nondet[0].Pos == token.NoPos {
		t.Errorf("caller Allocs = %+v with pos %v, want the imported alloc at the call site", s.Allocs, s.Nondet[0].Pos)
	}
	if !s.PollsCancel {
		t.Error("caller PollsCancel = false, want true via imported callee")
	}
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return importer.Default().Import(path)
}
