package summary

import "strings"

// Desc returns the human part of a site string ("builder.go:571: writes
// schedState.deliv" → "writes schedState.deliv").
func siteDesc(site string) string {
	if i := strings.Index(site, ": "); i >= 0 {
		return site[i+2:]
	}
	return site
}

// Desc returns the effect's description without the file:line prefix.
func (e Effect) Desc() string { return siteDesc(e.Site) }

// Desc returns the allocation's description without the file:line prefix.
func (a Alloc) Desc() string { return siteDesc(a.Site) }

// Desc returns the source's description without the file:line prefix.
func (n Nondet) Desc() string { return siteDesc(n.Site) }
