// Package summary computes interprocedural function summaries over the
// package-local call graph: which protected state a function may mutate (and
// under which boolean-parameter guards), whether it may allocate on a hot
// path, whether it polls a cancellation flag each call, and which
// nondeterminism sources taint it. Summaries are computed bottom-up in SCC
// order, so a caller's summary folds in its callees', with guard conditions
// discharged at call sites that pass literal booleans — the `commit bool`
// pattern the scheduler core uses to share one arrival routine between the
// pure evaluation path and the mutating commit path.
//
// Summaries serialize into the go vet facts-file protocol (EncodeFacts /
// DecodeFacts), so in `go vet -vettool` mode the facts of every dependency
// are available when a package is analyzed, and taint crosses package
// boundaries. In standalone mode AttachAll computes the same facts for every
// loaded unit in dependency order.
//
// Soundness caveats (shared with the call graph): calls through interfaces,
// stored struct fields, channels, or escaping function values are invisible,
// and a summary records may-behavior only. DESIGN.md §15 discusses both.
package summary

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/callgraph"
	"ftsched/internal/analysis/cfg"
)

// maxPath bounds call-chain provenance recorded per entry.
const maxPath = 6

// maxEntries bounds each summary list so SCC fixpoints terminate fast.
const maxEntries = 48

// Effect is one (possibly guarded) mutation of protected state — state whose
// type carries a mutEpoch field. Guards lists bool-parameter indices of the
// summarized function; the mutation can only happen when all of them hold.
// An empty Guards means unconditional.
type Effect struct {
	Site   string   `json:"site"` // "builder.go:571: writes schedState.deliv"
	Type   string   `json:"type"` // protected type name
	Guards []int    `json:"guards,omitempty"`
	Path   []string `json:"path,omitempty"` // call chain, nearest callee first

	Pos        token.Pos `json:"-"` // local reporting position
	Suppressed bool      `json:"-"` // an //ftlint:epoch-pure directive covers the site
}

// Alloc is one allocation site visible from the function.
type Alloc struct {
	Site string   `json:"site"` // "pool.go:88: fmt.Sprintf call"
	Path []string `json:"path,omitempty"`

	Pos        token.Pos `json:"-"`
	Suppressed bool      `json:"-"` // //ftlint:hotalloc-ok
}

// Nondet is one nondeterminism source visible from the function.
type Nondet struct {
	Site string   `json:"site"` // "loadgen.go:12: wall-clock read time.Now"
	Path []string `json:"path,omitempty"`

	Pos        token.Pos `json:"-"`
	Suppressed bool      `json:"-"` // //ftlint:allow-nondet
}

// Summary is the interprocedural fact set of one function.
type Summary struct {
	Protected   []Effect `json:"protected,omitempty"`
	Allocs      []Alloc  `json:"allocs,omitempty"`
	Nondet      []Nondet `json:"nondet,omitempty"`
	PollsCancel bool     `json:"polls,omitempty"`
	MutRecv     bool     `json:"mutRecv,omitempty"`
	MutParams   []int    `json:"mutParams,omitempty"`
	ErrorValued bool     `json:"errorValued,omitempty"`
}

// Info is the per-package result: the call graph, a summary per node, and
// the imported summaries (from facts files or AttachAll) keyed by
// types.Func.FullName.
type Info struct {
	Graph    *callgraph.Graph
	Local    map[*callgraph.Node]*Summary
	Imported map[string]*Summary
}

// ForFunc returns the summary of a declared function: local if the function
// belongs to this package, imported otherwise. Nil when unknown.
func (in *Info) ForFunc(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if n := in.Graph.NodeOf(fn); n != nil {
		return in.Local[n]
	}
	return in.Imported[fn.FullName()]
}

// For returns the pass's attached summary info, computing a fresh
// imports-blind one when the driver attached nothing (direct framework use
// in unit tests).
func For(pass *analysis.Pass) *Info {
	if info, ok := pass.Facts.(*Info); ok && info != nil {
		return info
	}
	return Compute(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo, nil)
}

// Compute builds the call graph and runs the bottom-up summary fixpoint.
// imported holds dependency summaries (nil is fine: cross-package calls then
// contribute nothing).
func Compute(fset *token.FileSet, files []*ast.File, pkg *types.Package, typesInfo *types.Info, imported map[string]*Summary) *Info {
	g := callgraph.Build(fset, files, typesInfo, pkg)
	info := &Info{Graph: g, Local: make(map[*callgraph.Node]*Summary, len(g.Nodes)), Imported: imported}
	dirs, _ := analysis.ParseDirectives(fset, files)
	c := &computer{fset: fset, info: typesInfo, dirs: dirs, cfgs: map[*callgraph.Node]*cfg.Graph{}}

	for _, n := range g.Nodes {
		info.Local[n] = c.base(n)
	}
	// Bottom-up over SCCs; within an SCC, iterate to a (bounded) fixpoint.
	for _, comp := range g.SCCs() {
		for round := 0; round < 8; round++ {
			changed := false
			for _, n := range comp {
				if c.fold(info, n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return info
}

// computer threads the per-package scan state.
type computer struct {
	fset *token.FileSet
	info *types.Info
	dirs []analysis.Directive
	cfgs map[*callgraph.Node]*cfg.Graph
}

func (c *computer) graphOf(n *callgraph.Node) *cfg.Graph {
	g, ok := c.cfgs[n]
	if !ok {
		g = cfg.New(n.Body())
		c.cfgs[n] = g
	}
	return g
}

// suppressedBy reports whether a //ftlint:<name> directive covers the line
// of pos (the same rule the framework uses for diagnostics: the directive's
// own line or the line above the site).
func (c *computer) suppressedBy(name string, pos token.Pos) bool {
	p := c.fset.Position(pos)
	for _, d := range c.dirs {
		if d.Name == name && d.Pos.Filename == p.Filename &&
			(p.Line == d.Line || p.Line == d.Line+1) {
			return true
		}
	}
	return false
}

func (c *computer) site(pos token.Pos, desc string) string {
	p := c.fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d: %s", name, p.Line, desc)
}

// base computes the intraprocedural summary of one node: its own mutation,
// allocation, polling, and nondeterminism sites, before any callee folding.
func (c *computer) base(n *callgraph.Node) *Summary {
	s := &Summary{}
	sig := n.Type(c.info)
	if sig != nil {
		s.ErrorValued = errorValued(sig)
	}
	body := n.Body()
	if body == nil {
		return s
	}
	bools := boolParams(n, c.info)

	// Walk the node's own statements; nested literals are separate nodes.
	walk(body, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return
			}
			for _, lhs := range x.Lhs {
				c.recordMutation(s, n, sig, bools, lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			c.recordMutation(s, n, sig, bools, x.X, x.Pos())
		case *ast.CallExpr:
			c.scanCall(s, n, sig, bools, x)
		case *ast.CompositeLit:
			c.scanComposite(s, x)
		case *ast.FuncLit:
			// Handled below via the escaping-closure scan.
		}
	})
	c.scanClosures(s, body)
	c.scanAppendGrowth(s, body)
	sortSummary(s)
	return s
}

// recordMutation classifies one write target. A write whose selector/index
// chain passes through a value of a protected type (a named struct carrying
// a mutEpoch field) becomes a Protected effect, guarded by whichever bool
// parameters the CFG proves must be true for the site to execute. Writes
// through the receiver or a pointer parameter set MutRecv/MutParams.
func (c *computer) recordMutation(s *Summary, n *callgraph.Node, sig *types.Signature, bools []boolParam, target ast.Expr, pos token.Pos) {
	tname, field, hit := protectedChain(c.info, target)
	base := baseIdent(target)
	if base != nil {
		if v, ok := c.info.Uses[base].(*types.Var); ok {
			if sig != nil && sig.Recv() != nil && v == sig.Recv() {
				if hit || isPointer(v.Type()) || !isLocalValue(v) {
					s.MutRecv = true
				}
			}
			if i := paramIndex(sig, v); i >= 0 && (hit || isPointer(v.Type())) {
				s.MutParams = addInt(s.MutParams, i)
			}
		}
	}
	if !hit {
		return
	}
	desc := "writes " + tname
	if field != "" {
		desc += "." + field
	}
	eff := Effect{
		Site:       c.site(pos, desc),
		Type:       tname,
		Guards:     c.guardsAt(n, bools, pos),
		Pos:        pos,
		Suppressed: c.suppressedBy("epoch-pure", pos),
	}
	s.Protected = addEffect(s.Protected, eff)
}

// scanCall records per-call facts: cancellation polls, banned
// nondeterminism sources, hot-path allocating stdlib calls, and builtin
// mutations of protected state (delete/copy into a protected map or slice).
func (c *computer) scanCall(s *Summary, n *callgraph.Node, sig *types.Signature, bools []boolParam, call *ast.CallExpr) {
	if isAtomicBoolLoad(c.info, call) {
		s.PollsCancel = true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
		if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "delete" || id.Name == "copy") {
			c.recordMutation(s, n, sig, bools, call.Args[0], call.Args[0].Pos())
		}
	}
	fn := analysis.CalleeFunc(c.info, call)
	if fn == nil || fn.Pkg() == nil || analysis.Signature(fn) == nil || analysis.Signature(fn).Recv() != nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if what, ok := nondetCalls[pkg+"."+name]; ok {
		s.Nondet = addNondet(s.Nondet, Nondet{
			Site:       c.site(call.Pos(), what+" "+pkg+"."+name),
			Pos:        call.Pos(),
			Suppressed: c.suppressedBy("allow-nondet", call.Pos()),
		})
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name] {
		s.Nondet = addNondet(s.Nondet, Nondet{
			Site:       c.site(call.Pos(), "global random source "+pkg+"."+name),
			Pos:        call.Pos(),
			Suppressed: c.suppressedBy("allow-nondet", call.Pos()),
		})
	}
	if pkg == "fmt" && (name == "Sprintf" || name == "Sprint" || name == "Sprintln" || name == "Errorf") {
		s.Allocs = addAlloc(s.Allocs, Alloc{
			Site:       c.site(call.Pos(), "fmt."+name+" call"),
			Pos:        call.Pos(),
			Suppressed: c.suppressedBy("hotalloc-ok", call.Pos()),
		})
	}
}

// scanComposite records map and slice literals (each evaluation allocates).
// Struct and array literals are value-shaped and stay exempt.
func (c *computer) scanComposite(s *Summary, lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch types.Unalias(t.Underlying()).(type) {
	case *types.Map:
		s.Allocs = addAlloc(s.Allocs, Alloc{
			Site:       c.site(lit.Pos(), "map literal"),
			Pos:        lit.Pos(),
			Suppressed: c.suppressedBy("hotalloc-ok", lit.Pos()),
		})
	case *types.Slice:
		s.Allocs = addAlloc(s.Allocs, Alloc{
			Site:       c.site(lit.Pos(), "slice literal"),
			Pos:        lit.Pos(),
			Suppressed: c.suppressedBy("hotalloc-ok", lit.Pos()),
		})
	}
}

// scanClosures records capturing function literals that are not immediately
// invoked: each evaluation allocates the closure (and often moves captured
// variables to the heap). Uses dataflow capture classification indirectly —
// a literal with no free variables compiles to a static function and stays
// exempt.
func (c *computer) scanClosures(s *Summary, body *ast.BlockStmt) {
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})
	// Only literals directly owned by this node: nested literal allocations
	// belong to the literal's own summary.
	walk(body, func(x ast.Node) {
		lit, ok := x.(*ast.FuncLit)
		if !ok || invoked[lit] {
			return
		}
		if len(capturedVars(lit, c.info)) == 0 {
			return
		}
		s.Allocs = addAlloc(s.Allocs, Alloc{
			Site:       c.site(lit.Pos(), "escaping closure (captures variables)"),
			Pos:        lit.Pos(),
			Suppressed: c.suppressedBy("hotalloc-ok", lit.Pos()),
		})
	})
}

// scanAppendGrowth flags x = append(x, ...) inside a loop when x is a local
// slice visibly declared without a capacity hint — the amortized-growth
// pattern PR 7 profiled out of the evaluation path.
func (c *computer) scanAppendGrowth(s *Summary, body *ast.BlockStmt) {
	hinted := map[*types.Var]bool{}   // declared via make with a length/cap hint
	declared := map[*types.Var]bool{} // any visible local declaration
	note := func(id *ast.Ident, rhs ast.Expr) {
		v, _ := c.info.Defs[id].(*types.Var)
		if v == nil {
			return
		}
		if _, ok := types.Unalias(v.Type().Underlying()).(*types.Slice); !ok {
			return
		}
		declared[v] = true
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "make" {
				if len(call.Args) >= 3 || (len(call.Args) == 2 && !isZeroLiteral(call.Args[1])) {
					hinted[v] = true
				}
			}
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if id, ok := x.Lhs[i].(*ast.Ident); ok {
						note(id, x.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range x.Names {
				var rhs ast.Expr
				if i < len(x.Values) {
					rhs = x.Values[i]
				}
				note(id, rhs)
			}
		}
		return true
	})
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				inLoop(x.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(x.Body, depth+1)
				return false
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				id, ok := x.Fun.(*ast.Ident)
				if !ok || id.Name != "append" || len(x.Args) == 0 {
					return true
				}
				dst, ok := ast.Unparen(x.Args[0]).(*ast.Ident)
				if !ok {
					return true
				}
				v, _ := c.info.Uses[dst].(*types.Var)
				if v == nil || !declared[v] || hinted[v] {
					return true
				}
				s.Allocs = addAlloc(s.Allocs, Alloc{
					Site:       c.site(x.Pos(), "append growth to "+dst.Name+" (declared without capacity hint)"),
					Pos:        x.Pos(),
					Suppressed: c.suppressedBy("hotalloc-ok", x.Pos()),
				})
				return true
			}
			return true
		})
	}
	inLoop(body, 0)
}

// fold incorporates callee summaries into n's summary, returning whether
// anything changed. Guarded callee effects are discharged or re-guarded
// according to the boolean arguments at each call site, then conjoined with
// the guards of the call site itself.
func (c *computer) fold(info *Info, n *callgraph.Node) bool {
	s := info.Local[n]
	bools := boolParams(n, c.info)
	changed := false
	for _, e := range n.Out {
		var callee *Summary
		var calleeName string
		imported := false
		if e.Callee != nil {
			callee = info.Local[e.Callee]
			calleeName = e.Callee.Name
		} else if e.Ext != nil {
			callee = info.Imported[e.Ext.FullName()]
			calleeName = e.Ext.FullName()
			imported = true
		}
		if callee == nil || callee == s {
			continue
		}
		siteGuards := c.guardsAt(n, bools, e.Site.Pos())
		params := calleeParams(c.info, e)

		for _, eff := range callee.Protected {
			guards, live := c.mapGuards(eff.Guards, e.Site, params, bools)
			if !live {
				continue // discharged: a guard received literal false
			}
			out := Effect{
				Site:       eff.Site,
				Type:       eff.Type,
				Guards:     mergeInts(guards, siteGuards),
				Path:       pushPath(eff.Path, calleeName),
				Pos:        eff.Pos,
				Suppressed: eff.Suppressed,
			}
			if imported || out.Pos == token.NoPos {
				out.Pos = e.Site.Pos()
			}
			if next := addEffect(s.Protected, out); len(next) != len(s.Protected) {
				s.Protected = next
				changed = true
			}
		}
		for _, a := range callee.Allocs {
			out := Alloc{Site: a.Site, Path: pushPath(a.Path, calleeName), Pos: a.Pos, Suppressed: a.Suppressed}
			if imported || out.Pos == token.NoPos {
				out.Pos = e.Site.Pos()
			}
			if next := addAlloc(s.Allocs, out); len(next) != len(s.Allocs) {
				s.Allocs = next
				changed = true
			}
		}
		for _, nd := range callee.Nondet {
			out := Nondet{Site: nd.Site, Path: pushPath(nd.Path, calleeName), Pos: nd.Pos, Suppressed: nd.Suppressed}
			if imported || out.Pos == token.NoPos {
				out.Pos = e.Site.Pos()
			}
			if next := addNondet(s.Nondet, out); len(next) != len(s.Nondet) {
				s.Nondet = next
				changed = true
			}
		}
		if callee.PollsCancel && !s.PollsCancel {
			s.PollsCancel = true
			changed = true
		}
		if callee.MutRecv || len(callee.MutParams) > 0 {
			if c.foldMutTargets(s, n, e, callee) {
				changed = true
			}
		}
	}
	if changed {
		sortSummary(s)
	}
	return changed
}

// foldMutTargets propagates mutates-receiver/param facts through a call:
// s.helper() where helper mutates its receiver means the caller mutates s.
func (c *computer) foldMutTargets(s *Summary, n *callgraph.Node, e callgraph.Edge, callee *Summary) bool {
	sig := n.Type(c.info)
	changed := false
	classify := func(expr ast.Expr) {
		base := baseIdent(expr)
		if base == nil || sig == nil {
			return
		}
		v, _ := c.info.Uses[base].(*types.Var)
		if v == nil {
			return
		}
		if sig.Recv() != nil && v == sig.Recv() && !s.MutRecv {
			s.MutRecv = true
			changed = true
		}
		if i := paramIndex(sig, v); i >= 0 {
			if next := addInt(s.MutParams, i); len(next) != len(s.MutParams) {
				s.MutParams = next
				changed = true
			}
		}
	}
	if callee.MutRecv {
		if sel, ok := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr); ok {
			classify(sel.X)
		}
	}
	for _, i := range callee.MutParams {
		if i < len(e.Site.Args) {
			classify(e.Site.Args[i])
		}
	}
	return changed
}

// mapGuards rewrites a callee effect's guard set into the caller's frame:
// literal false discharges the effect, literal true drops the guard, a bool
// parameter of the caller renames the guard, and anything else is
// conservatively treated as possibly-true (guard dropped, effect kept).
func (c *computer) mapGuards(guards []int, site *ast.CallExpr, params *types.Tuple, bools []boolParam) (out []int, live bool) {
	for _, g := range guards {
		arg := argAt(site, params, g)
		if arg == nil {
			continue // variadic or mismatched call: conservative
		}
		if tv, ok := c.info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
			if constant.BoolVal(tv.Value) {
				continue // literally true: guard satisfied, effect stays
			}
			return nil, false // literally false: effect cannot happen here
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, ok := c.info.Uses[id].(*types.Var); ok {
				renamed := false
				for _, bp := range bools {
					if bp.v == v {
						out = addInt(out, bp.index)
						renamed = true
						break
					}
				}
				if renamed {
					continue
				}
			}
		}
		// Unknown truth value: may be true — drop the guard, keep the effect.
	}
	return out, true
}

// argAt returns the argument expression bound to parameter index i, nil when
// the call shape does not line up (spread call, variadic overflow).
func argAt(call *ast.CallExpr, params *types.Tuple, i int) ast.Expr {
	if params == nil || i >= params.Len() || call.Ellipsis != token.NoPos {
		return nil
	}
	if len(call.Args) != params.Len() {
		return nil
	}
	if i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

func calleeParams(info *types.Info, e callgraph.Edge) *types.Tuple {
	if e.Ext != nil {
		if sig := analysis.Signature(e.Ext); sig != nil {
			return sig.Params()
		}
		return nil
	}
	if e.Callee.Fn != nil {
		if sig := analysis.Signature(e.Callee.Fn); sig != nil {
			return sig.Params()
		}
		return nil
	}
	if sig, ok := info.TypeOf(e.Callee.Lit).(*types.Signature); ok {
		return sig.Params()
	}
	return nil
}

// boolParam is one boolean parameter eligible as a guard.
type boolParam struct {
	v     *types.Var
	index int
}

func boolParams(n *callgraph.Node, info *types.Info) []boolParam {
	sig := n.Type(info)
	if sig == nil {
		return nil
	}
	var out []boolParam
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if t, ok := types.Unalias(params.At(i).Type()).(*types.Basic); ok && t.Kind() == types.Bool {
			out = append(out, boolParam{v: params.At(i), index: i})
		}
	}
	return out
}

// guardsAt returns the bool parameters that must be true for the statement
// at pos to execute: those parameters p for which the site's basic block is
// unreachable from entry once every p-false branch edge is removed. This
// covers both `if p { site }` and the early-return `if !p { return }; site`
// shape the arrival routines use.
func (c *computer) guardsAt(n *callgraph.Node, bools []boolParam, pos token.Pos) []int {
	if len(bools) == 0 {
		return nil
	}
	g := c.graphOf(n)
	blk, _, ok := g.BlockOf(pos)
	if !ok {
		return nil
	}
	var out []int
	for _, bp := range bools {
		if !reachableUnderFalse(g, c.info, bp.v, blk) {
			out = addInt(out, bp.index)
		}
	}
	return out
}

// reachableUnderFalse reports whether target can execute when param v is
// false: a DFS from entry that skips the true-successor of blocks ending in
// the condition `v` and the false-successor of blocks ending in `!v`.
func reachableUnderFalse(g *cfg.Graph, info *types.Info, v *types.Var, target *cfg.Block) bool {
	seen := make([]bool, len(g.Blocks))
	var stack []*cfg.Block
	seen[g.Entry.Index] = true
	stack = append(stack, g.Entry)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == target {
			return true
		}
		skip := -1 // successor index pruned under v == false
		if len(blk.Nodes) > 0 && len(blk.Succs) >= 2 {
			switch condOf(info, blk.Nodes[len(blk.Nodes)-1], v) {
			case condVar:
				skip = 0 // true-branch (Succs[0]) dead
			case condNotVar:
				skip = 1 // false-branch dead
			}
		}
		for i, s := range blk.Succs {
			if i == skip || seen[s.Index] {
				continue
			}
			seen[s.Index] = true
			stack = append(stack, s)
		}
	}
	return false
}

type condKind int

const (
	condOther condKind = iota
	condVar
	condNotVar
)

// condOf classifies a block-terminating node as the condition `v`, `!v`, or
// anything else.
func condOf(info *types.Info, n ast.Node, v *types.Var) condKind {
	e, ok := n.(ast.Expr)
	if !ok {
		return condOther
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if info.Uses[x] == v {
			return condVar
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == v {
				return condNotVar
			}
		}
	}
	return condOther
}

// protectedChain walks a write target's selector/index chain looking for a
// value of a protected type. Returns the protected type's name, the field
// being written (when the outermost selector names one), and whether the
// chain hit protected state.
func protectedChain(info *types.Info, e ast.Expr) (typeName, field string, hit bool) {
	outerField := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if outerField == "" {
				outerField = x.Sel.Name
			}
			if name := protectedTypeName(info.TypeOf(x.X)); name != "" {
				return name, outerField, true
			}
			e = x.X
		case *ast.IndexExpr:
			if name := protectedTypeName(info.TypeOf(x.X)); name != "" {
				return name, outerField, true
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if name := protectedTypeName(info.TypeOf(x)); name != "" {
				return name, outerField, true
			}
			return "", "", false
		default:
			return "", "", false
		}
	}
}

// protectedTypeName returns the named-struct type's name when t (pointers
// stripped) carries a mutEpoch field — the repo's marker for epoch-guarded
// scheduler state — and "" otherwise.
func protectedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := types.Unalias(named.Underlying()).(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "mutEpoch" {
			return named.Obj().Name()
		}
	}
	return ""
}

// IsCancelPoll reports whether the call is <expr>.Load() on a
// sync/atomic.Bool — the cancellation-poll idiom PR 8 threaded through the
// engines. Exported for the cancelpoll pass, which must recognize the same
// idiom the summaries record.
func IsCancelPoll(info *types.Info, call *ast.CallExpr) bool {
	return isAtomicBoolLoad(info, call)
}

func isAtomicBoolLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Bool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// nondetCalls lists banned package-level calls, mirroring the nondet pass.
var nondetCalls = map[string]string{
	"time.Now":     "wall-clock read",
	"time.Since":   "wall-clock read",
	"time.Until":   "wall-clock read",
	"os.Getenv":    "environment read",
	"os.LookupEnv": "environment read",
	"os.Environ":   "environment read",
}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// errorValued reports whether the signature returns exactly one value that
// is itself a function returning an error — the factory shape errprop v3
// tracks through one call level.
func errorValued(sig *types.Signature) bool {
	if sig.Results().Len() != 1 {
		return false
	}
	inner, ok := types.Unalias(sig.Results().At(0).Type()).(*types.Signature)
	if !ok {
		return false
	}
	res := inner.Results()
	for i := 0; i < res.Len(); i++ {
		if analysis.IsErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// walk visits the node's own statements, skipping nested function literals
// (they are separate call-graph nodes with their own summaries).
func walk(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			visit(lit)
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}

// capturedVars returns the outer local variables a literal references —
// the summary package's own minimal capture check (the dataflow package's
// Captures adds read/write classification the allocation scan doesn't need).
func capturedVars(lit *ast.FuncLit, info *types.Info) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	inside := func(pos token.Pos) bool { return lit.Pos() <= pos && pos < lit.End() }
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil || seen[v] || v.IsField() || inside(v.Pos()) {
			return true
		}
		if v.Parent() == nil || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func isPointer(t types.Type) bool {
	_, ok := types.Unalias(t).(*types.Pointer)
	return ok
}

// isLocalValue reports whether writes through v stay caller-invisible: a
// non-pointer, non-reference-typed value.
func isLocalValue(v *types.Var) bool {
	switch types.Unalias(v.Type().Underlying()).(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
		return false
	}
	return true
}

func paramIndex(sig *types.Signature, v *types.Var) int {
	if sig == nil {
		return -1
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return i
		}
	}
	return -1
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func pushPath(path []string, frame string) []string {
	if len(path) >= maxPath {
		return path
	}
	out := make([]string, 0, len(path)+1)
	out = append(out, frame)
	out = append(out, path...)
	return out
}

// ChainString renders an effect path for diagnostics: "via a → b".
func ChainString(path []string) string {
	if len(path) == 0 {
		return ""
	}
	return " via " + strings.Join(path, " → ")
}

func addInt(list []int, x int) []int {
	for _, y := range list {
		if y == x {
			return list
		}
	}
	out := append(append([]int(nil), list...), x)
	sort.Ints(out)
	return out
}

func mergeInts(a, b []int) []int {
	out := a
	for _, x := range b {
		out = addInt(out, x)
	}
	return out
}

func guardKey(g []int) string {
	var sb strings.Builder
	for _, x := range g {
		fmt.Fprintf(&sb, "%d,", x)
	}
	return sb.String()
}

func addEffect(list []Effect, e Effect) []Effect {
	if len(list) >= maxEntries {
		return list
	}
	for _, x := range list {
		if x.Site == e.Site && x.Type == e.Type && guardKey(x.Guards) == guardKey(e.Guards) {
			return list
		}
	}
	return append(list, e)
}

func addAlloc(list []Alloc, a Alloc) []Alloc {
	if len(list) >= maxEntries {
		return list
	}
	for _, x := range list {
		if x.Site == a.Site {
			return list
		}
	}
	return append(list, a)
}

func addNondet(list []Nondet, n Nondet) []Nondet {
	if len(list) >= maxEntries {
		return list
	}
	for _, x := range list {
		if x.Site == n.Site {
			return list
		}
	}
	return append(list, n)
}

func sortSummary(s *Summary) {
	sort.Slice(s.Protected, func(i, j int) bool {
		if s.Protected[i].Site != s.Protected[j].Site {
			return s.Protected[i].Site < s.Protected[j].Site
		}
		return guardKey(s.Protected[i].Guards) < guardKey(s.Protected[j].Guards)
	})
	sort.Slice(s.Allocs, func(i, j int) bool { return s.Allocs[i].Site < s.Allocs[j].Site })
	sort.Slice(s.Nondet, func(i, j int) bool { return s.Nondet[i].Site < s.Nondet[j].Site })
	sort.Ints(s.MutParams)
}
