package summary

import (
	"encoding/json"
	"fmt"

	"ftsched/internal/analysis"
)

// FactsVersion is bumped whenever the summary encoding or semantics change,
// invalidating stale .vetx content from older tool versions.
const FactsVersion = 3

// factsFile is the on-disk shape of a facts (.vetx) payload.
type factsFile struct {
	Version int                 `json:"ftlintFactsVersion"`
	Funcs   map[string]*Summary `json:"funcs"`
}

// Export returns the cumulative fact set this package publishes to its
// importers: every imported summary plus one per declared function of this
// package, keyed by types.Func.FullName. Entries a //ftlint: directive
// sanctioned in their home package are dropped — a suppressed site must not
// taint callers — and empty summaries are omitted.
func (in *Info) Export() map[string]*Summary {
	out := make(map[string]*Summary, len(in.Imported)+len(in.Local))
	for name, s := range in.Imported {
		out[name] = s
	}
	for n, s := range in.Local {
		if n.Fn == nil {
			continue // literals are not addressable across packages
		}
		clean := exportable(s)
		if clean != nil {
			out[n.Fn.FullName()] = clean
		}
	}
	return out
}

// exportable strips suppressed entries; nil when nothing remains.
func exportable(s *Summary) *Summary {
	out := &Summary{
		PollsCancel: s.PollsCancel,
		MutRecv:     s.MutRecv,
		MutParams:   s.MutParams,
		ErrorValued: s.ErrorValued,
	}
	for _, e := range s.Protected {
		if !e.Suppressed {
			out.Protected = append(out.Protected, e)
		}
	}
	for _, a := range s.Allocs {
		if !a.Suppressed {
			out.Allocs = append(out.Allocs, a)
		}
	}
	for _, n := range s.Nondet {
		if !n.Suppressed {
			out.Nondet = append(out.Nondet, n)
		}
	}
	if len(out.Protected) == 0 && len(out.Allocs) == 0 && len(out.Nondet) == 0 &&
		!out.PollsCancel && !out.MutRecv && len(out.MutParams) == 0 && !out.ErrorValued {
		return nil
	}
	return out
}

// EncodeFacts serializes a fact set deterministically (encoding/json sorts
// map keys; every list is already sorted by the fixpoint).
func EncodeFacts(funcs map[string]*Summary) ([]byte, error) {
	return json.Marshal(factsFile{Version: FactsVersion, Funcs: funcs})
}

// DecodeFacts parses a facts payload. An empty payload (the placeholder the
// driver writes for packages it computes no facts for) and a version
// mismatch both decode to an empty set: facts are an optimization, never a
// correctness dependency.
func DecodeFacts(data []byte) (map[string]*Summary, error) {
	if len(data) == 0 {
		return map[string]*Summary{}, nil
	}
	var f factsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("summary: decoding facts: %w", err)
	}
	if f.Version != FactsVersion || f.Funcs == nil {
		return map[string]*Summary{}, nil
	}
	return f.Funcs, nil
}

// AttachAll computes summaries for every unit in dependency order and
// attaches the resulting Info to Unit.Facts, so analyzers running through
// the framework see cross-package facts in standalone mode exactly as they
// would through the vet facts protocol.
func AttachAll(units []*analysis.Unit) {
	byPath := make(map[string]*analysis.Unit, len(units))
	for _, u := range units {
		byPath[u.Pkg.Path()] = u
	}
	done := make(map[string]map[string]*Summary, len(units))
	var visit func(u *analysis.Unit) map[string]*Summary
	visit = func(u *analysis.Unit) map[string]*Summary {
		path := u.Pkg.Path()
		if facts, ok := done[path]; ok {
			return facts
		}
		done[path] = map[string]*Summary{} // cycle guard; Go packages cannot cycle anyway
		imported := map[string]*Summary{}
		for _, dep := range u.Pkg.Imports() {
			du, ok := byPath[dep.Path()]
			if !ok {
				continue
			}
			for name, s := range visit(du) {
				imported[name] = s
			}
		}
		files := analysis.NonTestFiles(u.Fset, u.Files)
		info := Compute(u.Fset, files, u.Pkg, u.Info, imported)
		u.Facts = info
		facts := info.Export()
		done[path] = facts
		return facts
	}
	for _, u := range units {
		visit(u)
	}
}
