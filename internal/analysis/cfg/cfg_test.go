package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src as a file, finds the function named name, and builds
// its CFG.
func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// golden asserts the rendered graph matches want (both trimmed).
func golden(t *testing.T, g *Graph, want string) {
	t.Helper()
	got := strings.TrimSpace(g.String())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestIfElse(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	y := 0
	if x > 0 {
		y = 1
	} else {
		y = 2
	}
	return y
}`, "f")
	golden(t, g, `
b0 entry: [assign] [cond] → b2 b4
b1 exit:
b2 if.then: [assign] → b3
b3 if.done: [return] → b1
b4 if.else: [assign] → b3
`)
}

func TestForLoopBreakContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		s += i
	}
	return s
}`, "f")
	golden(t, g, `
b0 entry: [assign] [assign] → b2
b1 exit:
b2 for.head: [cond] → b3 b4
b3 for.body: [cond] → b6 b7
b4 for.done: [return] → b1
b5 for.post: [incdec] → b2
b6 if.then: [continue] → b5
b7 if.done: [cond] → b8 b9
b8 if.then: [break] → b4
b9 if.done: [assign] → b5
`)
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, "f")
	golden(t, g, `
b0 entry: [assign] → b2
b1 exit:
b2 range.head: [range] → b3 b4
b3 range.body: [assign] → b2
b4 range.done: [return] → b1
`)
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	y := 0
	switch x {
	case 1:
		y = 1
		fallthrough
	case 2:
		y = 2
	default:
		y = 9
	}
	return y
}`, "f")
	golden(t, g, `
b0 entry: [assign] [cond] [cond] [cond] → b3 b4 b5
b1 exit:
b2 switch.done: [return] → b1
b3 switch.case0: [assign] [fallthrough] → b4
b4 switch.case1: [assign] → b2
b5 switch.case2: [assign] → b2
`)
}

func TestSwitchNoDefaultFallsThrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
	}
}`, "f")
	golden(t, g, `
b0 entry: [cond] [cond] → b3 b2
b1 exit:
b2 switch.done: → b1
b3 switch.case0: → b2
`)
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, `package p
func f(a, b chan int) int {
	var y int
	select {
	case v := <-a:
		y = v
	case b <- 1:
		y = 2
	}
	return y
}`, "f")
	golden(t, g, `
b0 entry: [decl] → b3 b4
b1 exit:
b2 select.done: [return] → b1
b3 select.case0: [assign] [assign] → b2
b4 select.case1: [send] [assign] → b2
`)
}

func TestDeferAndPanic(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	defer cleanup()
	if x < 0 {
		panic("negative")
	}
	work()
}
func cleanup() {}
func work() {}`, "f")
	golden(t, g, `
b0 entry: [defer] [cond] → b2 b3
b1 exit: [deferred-call]
b2 if.then: [panic] → b1
b3 if.done: [call] → b1
`)
	if len(g.Defers) != 1 {
		t.Fatalf("defers = %d, want 1", len(g.Defers))
	}
}

func TestGotoForwardAndBack(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
top:
	x--
	if x > 0 {
		goto top
	}
	if x < -10 {
		goto out
	}
	x = 0
out:
	return
}`, "f")
	golden(t, g, `
b0 entry: → b2
b1 exit:
b2 label.top: [incdec] [cond] → b3 b4
b3 if.then: [goto] → b2
b4 if.done: [cond] → b5 b6
b5 if.then: [goto] → b7
b6 if.done: [assign] → b7
b7 label.out: [return] → b1
`)
}

func TestLabeledBreakContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(m [][]int) int {
	s := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			s += v
		}
	}
	return s
}`, "f")
	// The essential property: continue outer targets the outer range head,
	// break outer targets the outer range done.
	s := g.String()
	if !strings.Contains(s, "label.outer") {
		t.Fatalf("no label block:\n%s", s)
	}
	// Find outer range head/done indices.
	var headIdx, doneIdx = -1, -1
	for _, b := range g.Blocks {
		if b.Kind == "range.head" && headIdx == -1 {
			headIdx = b.Index
		}
		if b.Kind == "range.done" && doneIdx == -1 {
			doneIdx = b.Index
		}
	}
	var contOK, brkOK bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Label != nil {
				for _, sc := range b.Succs {
					if br.Tok == token.CONTINUE && sc.Index == headIdx {
						contOK = true
					}
					if br.Tok == token.BREAK && sc.Index == doneIdx {
						brkOK = true
					}
				}
			}
		}
	}
	if !contOK || !brkOK {
		t.Fatalf("labeled continue→head %v, labeled break→done %v:\n%s", contOK, brkOK, s)
	}
}

func TestInfiniteForWithoutCond(t *testing.T) {
	g := buildFunc(t, `package p
func f(ch chan int) int {
	for {
		v := <-ch
		if v > 0 {
			return v
		}
	}
}`, "f")
	// for.done must not be a successor of the head (no cond): the only way
	// out is the return.
	var head, done *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.head":
			head = b
		case "for.done":
			done = b
		}
	}
	for _, s := range head.Succs {
		if s == done {
			t.Fatalf("condless for head branches to done:\n%s", g.String())
		}
	}
}

func TestReachableAndUnreachable(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	return 1
	x := 2 //nolint
	_ = x
	return x
}`, "f")
	reach := g.Reachable(g.Entry)
	unreachable := 0
	for _, b := range g.Blocks {
		if !reach[b.Index] {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Fatalf("expected an unreachable block:\n%s", g.String())
	}
}

func TestDominators(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	y := 0
	if x > 0 {
		y = 1
	}
	return y
}`, "f")
	dom := g.Dominators()
	var thenB, doneB *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "if.then":
			thenB = b
		case "if.done":
			doneB = b
		}
	}
	// entry dominates everything reachable; then does not dominate done.
	if !dom[doneB.Index][g.Entry.Index] {
		t.Fatal("entry should dominate if.done")
	}
	if dom[doneB.Index][thenB.Index] {
		t.Fatal("if.then must not dominate if.done")
	}
	if !dom[thenB.Index][thenB.Index] {
		t.Fatal("blocks dominate themselves")
	}
}

func TestBlockOfFindsSmallestSpan(t *testing.T) {
	src := `package p
func f(xs []int, out []int) {
	for i, x := range xs {
		out[i] = x * 2
	}
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	g := New(fd.Body)
	// Find the assignment statement inside the loop body.
	var asg *ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			asg = a
		}
		return true
	})
	blk, idx, ok := g.BlockOf(asg.Pos())
	if !ok {
		t.Fatal("BlockOf failed to locate the assignment")
	}
	if blk.Kind != "range.body" {
		t.Fatalf("assignment resolved to %s, want range.body", blk.Kind)
	}
	if blk.Nodes[idx] != ast.Node(asg) {
		t.Fatalf("wrong node at index %d", idx)
	}
	// The range head position resolves to the head block (the RangeStmt
	// node), not the body.
	rng := fd.Body.List[0].(*ast.RangeStmt)
	headBlk, _, ok := g.BlockOf(rng.For)
	if !ok || headBlk.Kind != "range.head" {
		t.Fatalf("range pos resolved to %v", headBlk)
	}
}

func TestDeferInLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		defer done(i)
	}
	work()
}
func done(int) {}
func work() {}`, "f")
	golden(t, g, `
b0 entry: [assign] → b2
b1 exit: [deferred-call]
b2 for.head: [cond] → b3 b4
b3 for.body: [defer] → b5
b4 for.done: [call] → b1
b5 for.post: [incdec] → b2
`)
	// Each loop iteration registers a deferred call; the CFG records the site
	// once and the exit block carries the deferred-call marker.
	if len(g.Defers) != 1 {
		t.Fatalf("defers = %d, want 1", len(g.Defers))
	}
}

func TestSelectWithDefault(t *testing.T) {
	g := buildFunc(t, `package p
func f(a chan int) int {
	y := 0
	select {
	case v := <-a:
		y = v
	default:
		y = -1
	}
	return y
}`, "f")
	golden(t, g, `
b0 entry: [assign] → b3 b4
b1 exit:
b2 select.done: [return] → b1
b3 select.case0: [assign] [assign] → b2
b4 select.case1: [assign] → b2
`)
}

func TestGotoIntoLabeledBlock(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	if x > 0 {
		goto lbl
	}
	x = 1
lbl:
	{
		x = 2
	}
	return x
}`, "f")
	golden(t, g, `
b0 entry: [cond] → b2 b3
b1 exit:
b2 if.then: [goto] → b4
b3 if.done: [assign] → b4
b4 label.lbl: [assign] [return] → b1
`)
}
