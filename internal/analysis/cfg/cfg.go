// Package cfg builds intraprocedural control-flow graphs for Go function
// bodies on the standard library alone, mirroring the shape (though not the
// API) of golang.org/x/tools/go/cfg.
//
// A Graph is a list of basic blocks. Block zero is the entry; a single
// synthetic exit block collects every return, every fall-off-the-end, and
// every statically-recognized panic. Each block holds the statements and
// control expressions executed unconditionally once the block is entered,
// in execution order:
//
//   - plain statements are appended whole;
//   - an if or for condition is appended as its expression, with the block's
//     successors encoding the branch;
//   - a range statement is appended as itself in the loop-head block (it
//     re-binds the iteration variables and tests for exhaustion each trip);
//   - switch/select put each case body in its own block, with case-clause
//     expressions in the head.
//
// Deferred calls run at function exit in reverse order, whatever path
// reaches it; the builder therefore re-appends every DeferStmt's call into
// the exit block (field Defers) so dataflow over the exit sees them.
//
// The graph is deterministic: block indices and node order depend only on
// the syntax tree.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.body", ... for debugging and goldens
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists the call expressions of every defer statement in the
	// body, in source order. They are also appended to Exit.Nodes.
	Defers []*ast.CallExpr
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	cur := b.stmtList(g.Entry, body.List)
	b.jump(cur, g.Exit)
	for _, d := range g.Defers {
		g.Exit.Nodes = append(g.Exit.Nodes, d)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// labelInfo tracks one label's goto target and, when it labels a loop or
// switch, the break/continue targets.
type labelInfo struct {
	target       *Block // goto destination
	brk, cont    *Block
	pendingGotos []*Block // forward gotos waiting for the label
}

// builder threads the construction state.
type builder struct {
	g      *Graph
	brk    *Block // innermost break target
	cont   *Block // innermost continue target
	labels map[string]*labelInfo
	// curLabel is set while processing the statement a label annotates, so
	// the labeled loop/switch can register its break/continue targets.
	curLabel string
	// ftFrom is the block a just-seen fallthrough statement terminated;
	// cases() wires it to the next case body.
	ftFrom *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur→dst unless cur is nil (unreachable).
func (b *builder) jump(cur, dst *Block) {
	if cur == nil || dst == nil {
		return
	}
	for _, s := range cur.Succs {
		if s == dst {
			return
		}
	}
	cur.Succs = append(cur.Succs, dst)
}

// stmtList threads the statements through cur, returning the block that
// falls out the end (nil when control cannot fall through).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// add appends a node to cur when reachable.
func (b *builder) add(cur *Block, n ast.Node) {
	if cur != nil && n != nil {
		cur.Nodes = append(cur.Nodes, n)
	}
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	if s == nil {
		return cur
	}
	// Unreachable code still gets blocks (so every node lives somewhere),
	// rooted in a fresh predecessor-less block.
	if cur == nil {
		cur = b.newBlock("unreachable")
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.add(cur, s)
		b.jump(cur, b.g.Exit)
		return nil
	case *ast.BranchStmt:
		return b.branch(cur, s)
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)
	case *ast.IfStmt:
		return b.ifStmt(cur, s)
	case *ast.ForStmt:
		return b.forStmt(cur, s)
	case *ast.RangeStmt:
		return b.rangeStmt(cur, s)
	case *ast.SwitchStmt:
		return b.switchStmt(cur, s)
	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(cur, s)
	case *ast.SelectStmt:
		return b.selectStmt(cur, s)
	case *ast.LabeledStmt:
		return b.labeledStmt(cur, s)
	case *ast.DeferStmt:
		b.add(cur, s)
		b.g.Defers = append(b.g.Defers, s.Call)
		return cur
	case *ast.ExprStmt:
		b.add(cur, s)
		if isPanicCall(s.X) {
			b.jump(cur, b.g.Exit)
			return nil
		}
		return cur
	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		b.add(cur, s)
		return cur
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	b.add(cur, s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.brk != nil {
				b.jump(cur, li.brk)
			}
		} else {
			b.jump(cur, b.brk)
		}
		return nil
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.cont != nil {
				b.jump(cur, li.cont)
			}
		} else {
			b.jump(cur, b.cont)
		}
		return nil
	case token.GOTO:
		li := b.label(s.Label.Name)
		if li.target != nil {
			b.jump(cur, li.target)
		} else {
			li.pendingGotos = append(li.pendingGotos, cur)
		}
		return nil
	case token.FALLTHROUGH:
		// cases() wires the edge to the next case body; the statement
		// itself terminates the block.
		b.ftFrom = cur
		return nil
	}
	return cur
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) labeledStmt(cur *Block, s *ast.LabeledStmt) *Block {
	li := b.label(s.Label.Name)
	target := b.newBlock("label." + s.Label.Name)
	b.jump(cur, target)
	li.target = target
	for _, p := range li.pendingGotos {
		b.jump(p, target)
	}
	li.pendingGotos = nil
	prev := b.curLabel
	b.curLabel = s.Label.Name
	out := b.stmt(target, s.Stmt)
	b.curLabel = prev
	return out
}

func (b *builder) ifStmt(cur *Block, s *ast.IfStmt) *Block {
	b.add(cur, s.Init)
	b.add(cur, s.Cond)
	then := b.newBlock("if.then")
	b.jump(cur, then)
	done := b.newBlock("if.done")
	thenOut := b.stmtList(then, s.Body.List)
	b.jump(thenOut, done)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.jump(cur, els)
		elseOut := b.stmt(els, s.Else)
		b.jump(elseOut, done)
	} else {
		b.jump(cur, done)
	}
	if len(done.Preds) == 0 && thenOut == nil && s.Else != nil {
		// Both arms terminated: done is unreachable but kept so trailing
		// statements still get blocks.
		done.Kind = "if.done.unreachable"
	}
	return done
}

func (b *builder) forStmt(cur *Block, s *ast.ForStmt) *Block {
	b.add(cur, s.Init)
	head := b.newBlock("for.head")
	b.jump(cur, head)
	b.add(head, s.Cond)
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	b.jump(head, body)
	if s.Cond != nil {
		b.jump(head, done)
	}
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		b.add(post, s.Post)
		b.jump(post, head)
	}
	out := b.pushLoop(done, post, func() *Block {
		return b.stmtList(body, s.Body.List)
	})
	b.jump(out, post)
	return done
}

func (b *builder) rangeStmt(cur *Block, s *ast.RangeStmt) *Block {
	head := b.newBlock("range.head")
	b.jump(cur, head)
	// The range statement itself models the per-iteration variable binding
	// and exhaustion test.
	b.add(head, s)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.jump(head, body)
	b.jump(head, done)
	out := b.pushLoop(done, head, func() *Block {
		return b.stmtList(body, s.Body.List)
	})
	b.jump(out, head)
	return done
}

// pushLoop runs f with break/continue targets bound, honoring an enclosing
// label.
func (b *builder) pushLoop(brk, cont *Block, f func() *Block) *Block {
	savedBrk, savedCont := b.brk, b.cont
	b.brk, b.cont = brk, cont
	if b.curLabel != "" {
		li := b.label(b.curLabel)
		li.brk, li.cont = brk, cont
		b.curLabel = ""
	}
	out := f()
	b.brk, b.cont = savedBrk, savedCont
	return out
}

func (b *builder) switchStmt(cur *Block, s *ast.SwitchStmt) *Block {
	b.add(cur, s.Init)
	b.add(cur, s.Tag)
	return b.cases(cur, s.Body.List, "switch")
}

func (b *builder) typeSwitchStmt(cur *Block, s *ast.TypeSwitchStmt) *Block {
	b.add(cur, s.Init)
	b.add(cur, s.Assign)
	return b.cases(cur, s.Body.List, "typeswitch")
}

// cases wires case-clause bodies: head branches to every case; a missing
// default lets the head fall through to done; fallthrough edges run to the
// next case body.
func (b *builder) cases(head *Block, clauses []ast.Stmt, kind string) *Block {
	done := b.newBlock(kind + ".done")
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		for _, e := range cc.List {
			b.add(head, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		bodies[i] = b.newBlock(fmt.Sprintf("%s.case%d", kind, i))
		b.jump(head, bodies[i])
	}
	if !hasDefault {
		b.jump(head, done)
	}
	savedBrk := b.brk
	b.brk = done
	if b.curLabel != "" {
		li := b.label(b.curLabel)
		li.brk = done
		b.curLabel = ""
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.ftFrom = nil
		out := b.stmtList(bodies[i], cc.Body)
		if b.ftFrom != nil && i+1 < len(bodies) {
			// An explicit fallthrough jumps from its block to the next
			// case's body.
			b.jump(b.ftFrom, bodies[i+1])
		}
		b.ftFrom = nil
		b.jump(out, done)
	}
	b.brk = savedBrk
	return done
}

func (b *builder) selectStmt(cur *Block, s *ast.SelectStmt) *Block {
	done := b.newBlock("select.done")
	savedBrk := b.brk
	b.brk = done
	if b.curLabel != "" {
		li := b.label(b.curLabel)
		li.brk = done
		b.curLabel = ""
	}
	for i, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.newBlock(fmt.Sprintf("select.case%d", i))
		b.jump(cur, body)
		b.add(body, cc.Comm)
		out := b.stmtList(body, cc.Body)
		b.jump(out, done)
	}
	if len(s.Body.List) == 0 {
		// select {} blocks forever.
		b.jump(cur, b.g.Exit)
	}
	b.brk = savedBrk
	if len(done.Preds) == 0 && len(s.Body.List) == 0 {
		return nil
	}
	return done
}

// Reachable returns, per block index, whether the block is reachable from
// from by following successor edges (from itself included).
func (g *Graph) Reachable(from *Block) []bool {
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	seen[from.Index] = true
	stack = append(stack, from)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// BlockOf returns the block whose Nodes contain the smallest node spanning
// pos, and the index of that node within the block; ok is false when pos is
// in no recorded node (an unreachable fragment or a control sub-expression
// the builder did not record).
func (g *Graph) BlockOf(pos token.Pos) (blk *Block, idx int, ok bool) {
	bestSpan := token.Pos(-1)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				span := n.End() - n.Pos()
				if bestSpan < 0 || span < bestSpan {
					blk, idx, ok = b, i, true
					bestSpan = span
				}
			}
		}
	}
	return blk, idx, ok
}

// Dominators computes the dominator relation with the classic iterative
// bitset algorithm (fine at function scale). dom[i] has bit j set when
// block j dominates block i. Unreachable blocks dominate nothing and are
// dominated by everything (vacuous truth on no paths).
func (g *Graph) Dominators() [][]bool {
	n := len(g.Blocks)
	dom := make([][]bool, n)
	reach := g.Reachable(g.Entry)
	for i := range dom {
		dom[i] = make([]bool, n)
		if i == g.Entry.Index {
			dom[i][i] = true
			continue
		}
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.Blocks {
			if blk == g.Entry || !reach[blk.Index] {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range blk.Preds {
				if !reach[p.Index] {
					continue
				}
				if first {
					copy(next, dom[p.Index])
					first = false
				} else {
					for j := range next {
						next[j] = next[j] && dom[p.Index][j]
					}
				}
			}
			if first {
				// Reachable only via unreachable preds cannot happen; keep all.
				continue
			}
			next[blk.Index] = true
			if !boolsEqual(next, dom[blk.Index]) {
				dom[blk.Index] = next
				changed = true
			}
		}
	}
	return dom
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the graph for golden tests: one line per block with its
// kind, node summaries, and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Kind)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, " [%s]", nodeSummary(n))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" →")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeSummary names a node by syntactic kind, compactly and stably.
func nodeSummary(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeclStmt:
		return "decl"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		return strings.ToLower(n.Tok.String())
	case *ast.ExprStmt:
		if isPanicCall(n.X) {
			return "panic"
		}
		return "call"
	case *ast.SendStmt:
		return "send"
	case *ast.GoStmt:
		return "go"
	case *ast.DeferStmt:
		return "defer"
	case *ast.RangeStmt:
		return "range"
	case *ast.CallExpr:
		return "deferred-call"
	case ast.Expr:
		return "cond"
	default:
		return fmt.Sprintf("%T", n)
	}
}
