package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A baseline records the accepted findings of a reviewed sweep so CI can
// gate on *new* diagnostics only. Entries match on (file, analyzer, message)
// — deliberately not on line numbers, which drift with every unrelated edit
// — and matching is multiset-style: one baseline entry absorbs at most one
// diagnostic, so a finding that multiplies still surfaces.

// BaselineVersion is the schema version of the baseline file.
const BaselineVersion = 1

// Baseline is the machine-readable accepted-findings file.
type Baseline struct {
	Version  int               `json:"version"`
	Findings []BaselineFinding `json:"findings"`
}

// BaselineFinding identifies one accepted diagnostic. Line is recorded for
// human review but ignored when matching.
type BaselineFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// NewBaseline captures diags as a baseline. File paths are slash-normalized
// so the file is portable across hosts.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{Version: BaselineVersion, Findings: make([]BaselineFinding, 0, len(diags))}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineFinding{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the baseline of diags to path.
func WriteBaseline(path string, diags []Diagnostic) error {
	data, err := json.MarshalIndent(NewBaseline(diags), "", "  ")
	if err != nil {
		return fmt.Errorf("writing baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return fmt.Errorf("writing baseline: %w", err)
	}
	return nil
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("loading baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("loading baseline %s: unsupported version %d (want %d)", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// Filter splits diags into the findings not covered by the baseline (fresh)
// and reports how many baseline entries matched nothing (stale) — stale
// entries mean the accepted finding was fixed and the baseline should be
// regenerated.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, stale int) {
	type key struct{ file, analyzer, message string }
	budget := make(map[key]int, len(b.Findings))
	for _, f := range b.Findings {
		budget[key{f.File, f.Analyzer, f.Message}]++
	}
	for _, d := range diags {
		k := key{filepath.ToSlash(d.Pos.Filename), d.Analyzer, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, n := range budget {
		stale += n
	}
	return fresh, stale
}
