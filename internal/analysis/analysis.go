// Package analysis is ftsched's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) plus the //ftlint: suppression-directive
// machinery shared by every pass.
//
// The build environment of this repository is hermetic — no module proxy is
// reachable — so the framework is implemented on the standard library alone
// (go/ast, go/types, go/parser and the go command). The analyzer API is kept
// deliberately close to x/tools so the passes could be ported to a real
// multichecker by swapping this package for the upstream one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass: a name (also the prefix of
// its diagnostics), user-facing documentation, and the Run function applied
// to every package under analysis.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work. Analyzers report
// findings through Reportf; they must not retain the Pass after Run returns.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts carries driver-attached cross-package analysis facts (the
	// interprocedural summaries of internal/analysis/summary, attached as
	// `any` to keep this framework package dependency-free). Passes access
	// it through summary.For, which degrades gracefully when nil.
	Facts any

	diags []Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
// A diagnostic may carry suggested fixes: concrete textual edits that
// `ftlint -fix` applies mechanically.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// SuggestedFix is one self-contained repair for a diagnostic. Its edits are
// applied atomically: either all of them land or (on overlap with another
// fix) none do.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the half-open byte range [Start, End) of Filename with
// NewText. Start == End is a pure insertion.
type TextEdit struct {
	Filename   string
	Start, End int
	NewText    string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying one suggested fix. A nil fix
// degrades to Reportf, so passes can compute fixes opportunistically.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	d := Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if fix != nil && len(fix.Edits) > 0 {
		d.Fixes = []SuggestedFix{*fix}
	}
	p.diags = append(p.diags, d)
}

// Edit builds a TextEdit replacing the source between from and to (token
// positions in the pass's file set) with newText.
func (p *Pass) Edit(from, to token.Pos, newText string) TextEdit {
	start := p.Fset.Position(from)
	end := p.Fset.Position(to)
	return TextEdit{
		Filename: start.Filename,
		Start:    start.Offset,
		End:      end.Offset,
		NewText:  newText,
	}
}

// InsertBefore builds a pure-insertion TextEdit at pos.
func (p *Pass) InsertBefore(pos token.Pos, newText string) TextEdit {
	return p.Edit(pos, pos, newText)
}

// CriticalPackages lists the determinism-critical packages: the scheduler
// core and every consumer whose output feeds the K-fault certificate or the
// golden-equivalence matrix. A package is critical when the final element of
// its import path appears here (which also makes analysistest fixtures easy
// to place under a directory of the same name).
var CriticalPackages = map[string]bool{
	"core":     true,
	"sched":    true,
	"certify":  true,
	"benchrun": true,
	"sim":      true,
	"campaign": true,
	"serve":    true,
}

// IsCriticalPackage reports whether the import path names a
// determinism-critical package.
func IsCriticalPackage(path string) bool {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return CriticalPackages[path]
}

// Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts holds cross-package facts a driver attached before Check (see
	// Pass.Facts).
	Facts any
}

// Check runs the analyzers over the units and returns the surviving
// diagnostics sorted by position: findings not suppressed by a matching
// //ftlint: directive, plus one diagnostic for every malformed directive and
// every stale (unused) directive belonging to an analyzer that ran.
func Check(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, u := range units {
		// The invariants bind the package's shipped sources. Test files are
		// exempt: tests iterate maps to drive subtests, time their subjects,
		// and build ∞ fixtures deliberately — all fine outside the schedule
		// path. go vet hands the tool test files too, so filter here rather
		// than in each loader.
		files := NonTestFiles(u.Fset, u.Files)
		dirs, malformed := ParseDirectives(u.Fset, files)
		out = append(out, malformed...)
		used := make([]bool, len(dirs))
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				Facts:     u.Facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
			}
			for _, d := range pass.diags {
				if i := suppressing(dirs, a.Name, d); i >= 0 {
					used[i] = true
					continue
				}
				out = append(out, d)
			}
		}
		for i, dir := range dirs {
			if used[i] || !ran[dir.Analyzer()] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      dir.Pos,
				Analyzer: DirectiveAnalyzerName,
				Message: fmt.Sprintf("stale //ftlint:%s directive: it suppresses no %s diagnostic; delete it",
					dir.Name, dir.Analyzer()),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// NonTestFiles filters out files whose name ends in _test.go — the shipped
// sources the invariants bind. Exported so fact computation (which must see
// exactly the files the passes see) applies the same exemption.
func NonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := files[:0:0]
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// suppressing returns the index of the directive suppressing d, or -1. A
// directive suppresses a diagnostic of its analyzer reported on the
// directive's own line (trailing comment) or the line below it (comment on
// its own line above the flagged statement).
func suppressing(dirs []Directive, analyzer string, d Diagnostic) int {
	for i, dir := range dirs {
		if dir.Analyzer() != analyzer {
			continue
		}
		if dir.Pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == dir.Line || d.Pos.Line == dir.Line+1 {
			return i
		}
	}
	return -1
}
