package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	Changed []string // files rewritten, sorted
	Applied int      // fixes applied
	Skipped int      // fixes dropped because they overlapped an earlier fix
}

// ApplyFixes applies the suggested fixes carried by diags to the files on
// disk. Fixes are applied in diagnostic order (Check returns diagnostics
// sorted by position, so the outcome is deterministic); a fix whose edits
// overlap an already-accepted fix in the same file is skipped whole, keeping
// every applied fix atomic. Rewritten files are re-formatted with gofmt
// before being written back, so a clean -fix run never leaves the tree
// unformatted.
func ApplyFixes(diags []Diagnostic) (FixResult, error) {
	var res FixResult
	type fileState struct {
		src    []byte
		taken  [][2]int // accepted edit ranges, unordered
		edited bool
	}
	files := make(map[string]*fileState)
	load := func(name string) (*fileState, error) {
		if st, ok := files[name]; ok {
			return st, nil
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("applying fixes: %w", err)
		}
		st := &fileState{src: src}
		files[name] = st
		return st, nil
	}

	// Collect accepted fixes per file first: edits must be applied
	// back-to-front so earlier offsets stay valid.
	type plannedEdit struct{ edit TextEdit }
	perFile := make(map[string][]plannedEdit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			ok := true
			for _, e := range fix.Edits {
				st, err := load(e.Filename)
				if err != nil {
					return res, err
				}
				if e.Start < 0 || e.End < e.Start || e.End > len(st.src) {
					ok = false
					break
				}
				for _, t := range st.taken {
					if e.Start < t[1] && t[0] < e.End {
						ok = false
						break
					}
					// Two pure insertions at one offset would interleave
					// unpredictably; first one wins.
					if e.Start == e.End && t[0] == t[1] && e.Start == t[0] {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				res.Skipped++
				continue
			}
			for _, e := range fix.Edits {
				st := files[e.Filename]
				st.taken = append(st.taken, [2]int{e.Start, e.End})
				st.edited = true
				perFile[e.Filename] = append(perFile[e.Filename], plannedEdit{edit: e})
			}
			res.Applied++
		}
	}

	names := make([]string, 0, len(perFile))
	for name := range perFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edits := perFile[name]
		sort.SliceStable(edits, func(i, j int) bool {
			return edits[i].edit.Start > edits[j].edit.Start
		})
		src := files[name].src
		for _, pe := range edits {
			e := pe.edit
			var out []byte
			out = append(out, src[:e.Start]...)
			out = append(out, e.NewText...)
			out = append(out, src[e.End:]...)
			src = out
		}
		formatted, err := format.Source(src)
		if err != nil {
			// A fix that breaks the parse must not land: leave the file
			// untouched and surface the bug in the fix generator.
			return res, fmt.Errorf("applying fixes to %s: result does not parse: %w", name, err)
		}
		if err := os.WriteFile(name, formatted, 0o666); err != nil {
			return res, fmt.Errorf("applying fixes: %w", err)
		}
		res.Changed = append(res.Changed, name)
	}
	return res, nil
}
