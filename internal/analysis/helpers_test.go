package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const helpersSrc = `package p

import "os"

type T struct{}

func (t *T) M() error { return nil }

func (t T) V() int { return 0 }

type I interface{ M() error }

func F() error { return nil }

var fv = F

func use(i I, t *T) {
	_ = F()
	_ = t.M()
	_ = i.M()
	_ = fv()
	_ = len("x")
	_ = int64(1)
	_ = os.Getenv("X")
	_ = t.V()
}
`

// loadHelpers type-checks helpersSrc with a source importer (the fixture
// pulls in os) and returns the unit plus its calls in source order.
func loadHelpers(t *testing.T) (*Unit, []*ast.CallExpr) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", helpersSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	return &Unit{Path: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}, calls
}

// Call indices into the use function of helpersSrc.
const (
	callF = iota
	callMethodM
	callIfaceM
	callFuncValue
	callLen
	callConversion
	callGetenv
	callMethodV
)

func TestCalleeFunc(t *testing.T) {
	u, calls := loadHelpers(t)
	// Dynamic callees — a function value, a builtin, a conversion — resolve
	// to nil; everything else resolves to the named function or method.
	want := []string{"F", "M", "M", "", "", "", "Getenv", "V"}
	if len(calls) != len(want) {
		t.Fatalf("fixture has %d calls, want %d", len(calls), len(want))
	}
	for i, c := range calls {
		got := ""
		if fn := CalleeFunc(u.Info, c); fn != nil {
			got = fn.Name()
		}
		if got != want[i] {
			t.Errorf("call %d: CalleeFunc = %q, want %q", i, got, want[i])
		}
	}
}

func TestIsStdCall(t *testing.T) {
	u, calls := loadHelpers(t)
	if !IsStdCall(u.Info, calls[callGetenv], "os", "Getenv") {
		t.Error("os.Getenv call not recognized as a std call")
	}
	if IsStdCall(u.Info, calls[callGetenv], "os", "Setenv") {
		t.Error("os.Getenv matched the wrong function name")
	}
	if IsStdCall(u.Info, calls[callGetenv], "time", "Getenv") {
		t.Error("os.Getenv matched the wrong package path")
	}
	if IsStdCall(u.Info, calls[callMethodM], "p", "M") {
		t.Error("a method call must not match as a package-level std call")
	}
	if IsStdCall(u.Info, calls[callFuncValue], "p", "fv") {
		t.Error("a function-value call must not match as a std call")
	}
}

func TestNamedRecv(t *testing.T) {
	u, calls := loadHelpers(t)
	cases := []struct {
		call int
		want string // receiver type name, "" for none
	}{
		{callMethodM, "T"}, // pointer receiver, stripped to T
		{callMethodV, "T"}, // value receiver
		{callIfaceM, "I"},  // interface method: receiver is the interface
		{callF, ""},        // package-level function
	}
	for _, tc := range cases {
		fn := CalleeFunc(u.Info, calls[tc.call])
		if fn == nil {
			t.Fatalf("call %d: no static callee", tc.call)
		}
		got := ""
		if named := NamedRecv(fn); named != nil {
			got = named.Obj().Name()
		}
		if got != tc.want {
			t.Errorf("call %d: NamedRecv = %q, want %q", tc.call, got, tc.want)
		}
	}
}

func TestIsMethodOn(t *testing.T) {
	u, calls := loadHelpers(t)
	if !IsMethodOn(u.Info, calls[callMethodM], "p", "T", "M") {
		t.Error("t.M() not recognized as a method on p.T")
	}
	if IsMethodOn(u.Info, calls[callMethodM], "p", "T", "V") {
		t.Error("t.M() matched the wrong method name")
	}
	if IsMethodOn(u.Info, calls[callMethodM], "q", "T", "M") {
		t.Error("t.M() matched the wrong package base")
	}
	if IsMethodOn(u.Info, calls[callIfaceM], "p", "T", "M") {
		t.Error("an interface-method call must not match a concrete receiver type")
	}
	if IsMethodOn(u.Info, calls[callF], "p", "T", "F") {
		t.Error("a receiverless function must not match as a method")
	}
}

func TestIsErrorType(t *testing.T) {
	u, calls := loadHelpers(t)
	fn := CalleeFunc(u.Info, calls[callF])
	if res := Signature(fn).Results().At(0).Type(); !IsErrorType(res) {
		t.Errorf("F's result %v not recognized as error", res)
	}
	v := CalleeFunc(u.Info, calls[callMethodV])
	if res := Signature(v).Results().At(0).Type(); IsErrorType(res) {
		t.Errorf("V's int result %v wrongly recognized as error", res)
	}
}

func TestPkgBase(t *testing.T) {
	cases := map[string]string{
		"ftsched/internal/obs": "obs",
		"core":                 "core",
		"a/b/c":                "c",
		"":                     "",
	}
	for path, want := range cases {
		if got := PkgBase(path); got != want {
			t.Errorf("PkgBase(%q) = %q, want %q", path, got, want)
		}
	}
}
