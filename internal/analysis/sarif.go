package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output, the subset GitHub code scanning and most SARIF viewers
// consume: one run, one driver, one result per diagnostic. The writer is
// deterministic — rules sorted by id, results already sorted by Check — so
// the report can be diffed and committed.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string          `json:"id"`
	ShortDescription sarifMultilline `json:"shortDescription"`
}

type sarifMultilline struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMultilline `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits diags as a SARIF 2.1.0 log. The analyzers provide rule
// metadata; diagnostics from analyzers not in the list (the directive
// grammar, for instance) still get a bare rule entry.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	docs := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	ruleSet := make(map[string]bool)
	for _, a := range analyzers {
		ruleSet[a.Name] = true
	}
	for _, d := range diags {
		ruleSet[d.Analyzer] = true
	}
	ids := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		doc := docs[id]
		if doc == "" {
			doc = id + " diagnostics"
		}
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMultilline{Text: doc}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMultilline{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "ftlint",
				InformationURI: "https://example.invalid/ftsched/ftlint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&log); err != nil {
		return fmt.Errorf("writing sarif: %w", err)
	}
	return nil
}
