package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diagWithFix(file string, edits ...TextEdit) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: 1, Column: 1},
		Analyzer: "testpass",
		Message:  "finding",
		Fixes:    []SuggestedFix{{Message: "fix it", Edits: edits}},
	}
}

func TestApplyFixesRewritesAndFormats(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a.go")
	src := "package a\n\nfunc f() int {\nreturn 1\n}\n"
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	// Replace "1" with "2" (offset of the literal).
	off := strings.Index(src, "return 1") + len("return ")
	res, err := ApplyFixes([]Diagnostic{diagWithFix(file, TextEdit{Filename: file, Start: off, End: off + 1, NewText: "2"})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 0 || len(res.Changed) != 1 {
		t.Fatalf("res = %+v, want 1 applied, 0 skipped, 1 changed", res)
	}
	got, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	want := "package a\n\nfunc f() int {\n\treturn 2\n}\n"
	if string(got) != want {
		t.Fatalf("rewritten file = %q, want %q (gofmt-clean)", got, want)
	}
}

func TestApplyFixesSkipsOverlapping(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a.go")
	src := "package a\n\nvar x = 12345\n"
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	off := strings.Index(src, "12345")
	first := diagWithFix(file, TextEdit{Filename: file, Start: off, End: off + 5, NewText: "1"})
	overlapping := diagWithFix(file, TextEdit{Filename: file, Start: off + 2, End: off + 5, NewText: "9"})
	res, err := ApplyFixes([]Diagnostic{first, overlapping})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Fatalf("res = %+v, want exactly one applied and one skipped", res)
	}
	got, _ := os.ReadFile(file)
	if want := "package a\n\nvar x = 1\n"; string(got) != want {
		t.Fatalf("rewritten file = %q, want %q", got, want)
	}
}

func TestApplyFixesRejectsBrokenResult(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a.go")
	src := "package a\n"
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	_, err := ApplyFixes([]Diagnostic{diagWithFix(file, TextEdit{Filename: file, Start: 0, End: 7, NewText: "pack %%%"})})
	if err == nil {
		t.Fatal("expected error for a fix producing unparsable source")
	}
	got, _ := os.ReadFile(file)
	if string(got) != src {
		t.Fatalf("file was modified despite broken fix: %q", got)
	}
}

func TestApplyFixesMultipleEditsBackToFront(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a.go")
	src := "package a\n\nvar a = 1\nvar b = 2\n"
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	ai := strings.Index(src, "= 1") + 2
	bi := strings.Index(src, "= 2") + 2
	res, err := ApplyFixes([]Diagnostic{diagWithFix(file,
		TextEdit{Filename: file, Start: ai, End: ai + 1, NewText: "10"},
		TextEdit{Filename: file, Start: bi, End: bi + 1, NewText: "20"},
	)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("res = %+v", res)
	}
	got, _ := os.ReadFile(file)
	if want := "package a\n\nvar a = 10\nvar b = 20\n"; string(got) != want {
		t.Fatalf("rewritten file = %q, want %q", got, want)
	}
}
