package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc resolves the static callee of a call: a package-level function,
// a method (through a selector), or nil when the callee is dynamic (a
// function value, an interface method with no static receiver, a builtin, or
// a conversion).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier pkg.F (no selection recorded).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Signature returns the function's signature (the pre-go1.23 spelling of
// fn.Signature, kept so the module builds at its declared go version).
func Signature(fn *types.Func) *types.Signature {
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// IsStdCall reports whether the call statically targets the package-level
// function pkgPath.name of the standard library (exact path match).
func IsStdCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		(Signature(fn) == nil || Signature(fn).Recv() == nil)
}

// PkgBase returns the last element of an import path: "ftsched/internal/obs"
// and a fixture package "obs" both answer "obs", letting analyzers match
// project packages and their testdata stand-ins with one rule.
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// NamedRecv returns the receiver's named type (pointers stripped) of a
// method object, or nil.
func NamedRecv(fn *types.Func) *types.Named {
	sig := Signature(fn)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// IsMethodOn reports whether the call statically targets a method named
// methodName declared on the named type typeName of a package whose base
// name is pkgBase.
func IsMethodOn(info *types.Info, call *ast.CallExpr, pkgBase, typeName, methodName string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != methodName || fn.Pkg() == nil || PkgBase(fn.Pkg().Path()) != pkgBase {
		return false
	}
	named := NamedRecv(fn)
	return named != nil && named.Obj().Name() == typeName
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
