package dataflow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"ftsched/internal/analysis/cfg"
)

// --- solver tests on hand-built CFGs ---

// diamond builds:  b0 → b1, b0 → b2, b1 → b3, b2 → b3
func diamond() *cfg.Graph {
	g := &cfg.Graph{}
	for i := 0; i < 4; i++ {
		g.Blocks = append(g.Blocks, &cfg.Block{Index: i})
	}
	edge := func(a, b int) {
		g.Blocks[a].Succs = append(g.Blocks[a].Succs, g.Blocks[b])
		g.Blocks[b].Preds = append(g.Blocks[b].Preds, g.Blocks[a])
	}
	edge(0, 1)
	edge(0, 2)
	edge(1, 3)
	edge(2, 3)
	g.Entry, g.Exit = g.Blocks[0], g.Blocks[3]
	return g
}

// loop builds: b0 → b1, b1 → b2, b2 → b1, b1 → b3
func loopGraph() *cfg.Graph {
	g := &cfg.Graph{}
	for i := 0; i < 4; i++ {
		g.Blocks = append(g.Blocks, &cfg.Block{Index: i})
	}
	edge := func(a, b int) {
		g.Blocks[a].Succs = append(g.Blocks[a].Succs, g.Blocks[b])
		g.Blocks[b].Preds = append(g.Blocks[b].Preds, g.Blocks[a])
	}
	edge(0, 1)
	edge(1, 2)
	edge(2, 1)
	edge(1, 3)
	g.Entry, g.Exit = g.Blocks[0], g.Blocks[3]
	return g
}

func TestSolveForwardDiamond(t *testing.T) {
	g := diamond()
	// Fact 0 gen'd in b1, fact 1 gen'd in b2, fact 2 gen'd in b0 and killed in b1.
	gen := []BitSet{NewBitSet(3), NewBitSet(3), NewBitSet(3), NewBitSet(3)}
	kill := []BitSet{NewBitSet(3), NewBitSet(3), NewBitSet(3), NewBitSet(3)}
	gen[1].Set(0)
	gen[2].Set(1)
	gen[0].Set(2)
	kill[1].Set(2)
	res := Solve(Problem{Graph: g, Dir: Forward, NumFacts: 3, Gen: gen, Kill: kill})
	// b3 in: union of b1 out {0} and b2 out {1,2}.
	in3 := res.In[3]
	if !in3.Has(0) || !in3.Has(1) || !in3.Has(2) {
		t.Fatalf("b3 in = %v, want facts 0,1,2 (union over paths; kill only on one path)", in3)
	}
	// b1 in has fact 2 (from b0), b1 out does not (killed).
	if !res.In[1].Has(2) || res.Out[1].Has(2) {
		t.Fatalf("kill not applied on b1: in=%v out=%v", res.In[1], res.Out[1])
	}
}

func TestSolveBackwardLoop(t *testing.T) {
	g := loopGraph()
	// Liveness-style: fact 0 used in b2 (gen), defined in b0 (kill irrelevant
	// backward from use).
	gen := []BitSet{NewBitSet(1), NewBitSet(1), NewBitSet(1), NewBitSet(1)}
	kill := []BitSet{NewBitSet(1), NewBitSet(1), NewBitSet(1), NewBitSet(1)}
	gen[2].Set(0)
	res := Solve(Problem{Graph: g, Dir: Backward, NumFacts: 1, Gen: gen, Kill: kill})
	// The use in the loop body makes fact 0 live at b1's entry and b0's exit,
	// and — around the back edge — at b2's exit.
	if !res.In[1].Has(0) || !res.Out[0].Has(0) || !res.Out[2].Has(0) {
		t.Fatalf("loop liveness: in1=%v out0=%v out2=%v", res.In[1], res.Out[0], res.Out[2])
	}
	// Nothing is live after the final block.
	if res.Out[3].Has(0) {
		t.Fatal("fact live at exit block out")
	}
}

func TestBitSetOps(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatal("set/has broken across words")
	}
	o := NewBitSet(130)
	o.Set(1)
	if changed := s.UnionWith(o); !changed || !s.Has(1) {
		t.Fatal("union broken")
	}
	if changed := s.UnionWith(o); changed {
		t.Fatal("union reported change on no-op")
	}
	s.AndNotWith(o)
	if s.Has(1) || !s.Has(129) {
		t.Fatal("andnot broken")
	}
	c := s.Copy()
	c.Clear(129)
	if !s.Has(129) {
		t.Fatal("copy aliases")
	}
}

// --- typed analyses on parsed sources ---

// typeCheck parses and type-checks src, returning the file and info.
func typeCheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "df.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return fset, f, info
}

func funcNamed(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func lookupVar(info *types.Info, name string) *types.Var {
	for _, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && v.Name() == name {
			return v
		}
	}
	return nil
}

func TestReachingDefsBranches(t *testing.T) {
	_, f, info := typeCheck(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	fd := funcNamed(f, "f")
	g := cfg.New(fd.Body)
	rd := ComputeReachingDefs(g, info)
	x := lookupVar(info, "x")
	if x == nil {
		t.Fatal("var x not found")
	}
	ret := fd.Body.List[len(fd.Body.List)-1].(*ast.ReturnStmt)
	defs, ok := rd.DefsReaching(g, ret.Pos(), x)
	if !ok {
		t.Fatal("return not located in graph")
	}
	if len(defs) != 2 {
		t.Fatalf("defs reaching return = %d, want 2 (both x := 1 and x = 2)", len(defs))
	}
}

func TestReachingDefsKilledByRedefinition(t *testing.T) {
	_, f, info := typeCheck(t, `package p
func f() int {
	x := 1
	x = 2
	return x
}`)
	fd := funcNamed(f, "f")
	g := cfg.New(fd.Body)
	rd := ComputeReachingDefs(g, info)
	x := lookupVar(info, "x")
	ret := fd.Body.List[2].(*ast.ReturnStmt)
	defs, _ := rd.DefsReaching(g, ret.Pos(), x)
	// Straight line: only the second def reaches (same-block def before pos).
	// Note both defs are in the same block as the return; the later one is
	// the one generated by the block, and same-block earlier defs before pos
	// are included conservatively only when not killed — here the block's
	// gen keeps the last def only, so exactly one def must survive via
	// block-entry facts, plus same-block defs before pos.
	found2 := false
	for _, d := range defs {
		if asg, ok := d.Node.(*ast.AssignStmt); ok && asg.Tok == token.ASSIGN {
			found2 = true
		}
	}
	if !found2 {
		t.Fatalf("x = 2 does not reach the return: %+v", defs)
	}
}

func TestReachingDefsLoop(t *testing.T) {
	_, f, info := typeCheck(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s = s + x
	}
	return s
}`)
	fd := funcNamed(f, "f")
	g := cfg.New(fd.Body)
	rd := ComputeReachingDefs(g, info)
	s := lookupVar(info, "s")
	ret := fd.Body.List[2].(*ast.ReturnStmt)
	defs, _ := rd.DefsReaching(g, ret.Pos(), s)
	if len(defs) != 2 {
		t.Fatalf("defs of s reaching return = %d, want 2 (init and loop body)", len(defs))
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	_, f, info := typeCheck(t, `package p
func f(n int) int {
	s := 0
	t := 1
	_ = t
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	fd := funcNamed(f, "f")
	g := cfg.New(fd.Body)
	lv := ComputeLiveness(g, info)
	s := lookupVar(info, "s")
	tv := lookupVar(info, "t")
	// s is live after its initialization (read in the loop and at return).
	init := fd.Body.List[0]
	if !lv.LiveAtExit(g, init.Pos(), s) {
		t.Fatal("s should be live after s := 0")
	}
	// t is not live after the loop starts: its only read (_ = t) is before.
	forPos := fd.Body.List[3].Pos()
	blk, _, ok := g.BlockOf(forPos)
	if ok && tv != nil {
		i, have := lv.index[tv]
		if have && lv.Result.Out[blk.Index].Has(i) {
			t.Fatal("t should be dead inside the loop")
		}
	}
}

func TestCapturesReadsWritesAndAddress(t *testing.T) {
	_, f, info := typeCheck(t, `package p
func g(p *int) {}
func f() {
	a := 1
	b := 2
	c := 3
	d := 4
	fn := func(x int) {
		a = x      // write
		_ = b      // read
		g(&c)      // address: conservative write
		_ = x      // param: not a capture
		local := d // read of d
		_ = local
	}
	fn(0)
	_, _, _, _ = a, b, c, d
}`)
	fd := funcNamed(f, "f")
	var lit *ast.FuncLit
	ast.Inspect(fd, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lit = fl
			return false
		}
		return true
	})
	caps := Captures(lit, info)
	got := map[string]Capture{}
	for _, c := range caps {
		got[c.Var.Name()] = c
	}
	if len(got) != 4 {
		t.Fatalf("captures = %v, want a,b,c,d", got)
	}
	if len(got["a"].Writes) != 1 || len(got["a"].Reads) != 0 {
		t.Fatalf("a: %+v, want one write", got["a"])
	}
	if len(got["b"].Reads) != 1 || len(got["b"].Writes) != 0 {
		t.Fatalf("b: %+v, want one read", got["b"])
	}
	if len(got["c"].Writes) != 1 {
		t.Fatalf("c: %+v, want address-of counted as write", got["c"])
	}
	if len(got["d"].Reads) != 1 {
		t.Fatalf("d: %+v, want one read", got["d"])
	}
	if _, bad := got["x"]; bad {
		t.Fatal("parameter x wrongly counted as capture")
	}
	if _, bad := got["local"]; bad {
		t.Fatal("literal-local var wrongly counted as capture")
	}
}

func TestCapturesIndexedWriteMutatesBase(t *testing.T) {
	_, f, info := typeCheck(t, `package p
func f() {
	xs := make([]int, 4)
	i := 0
	fn := func() {
		xs[i] = 1 // write to xs, read of i
	}
	fn()
	_ = xs
	_ = i
}`)
	fd := funcNamed(f, "f")
	var lit *ast.FuncLit
	ast.Inspect(fd, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lit = fl
			return false
		}
		return true
	})
	caps := Captures(lit, info)
	got := map[string]Capture{}
	for _, c := range caps {
		got[c.Var.Name()] = c
	}
	if len(got["xs"].Writes) != 1 {
		t.Fatalf("xs: %+v, want indexed store recorded as write", got["xs"])
	}
	if len(got["i"].Reads) != 1 || len(got["i"].Writes) != 0 {
		t.Fatalf("i: %+v, want index read only", got["i"])
	}
}

// TestCapturesMethodValueReceiver covers the pattern the call graph's
// binding tracker leans on: a literal that binds a method value captures the
// receiver, and calling through the bound local is still only a read of it.
func TestCapturesMethodValueReceiver(t *testing.T) {
	_, f, info := typeCheck(t, `package p
type counter struct{ n int }
func (c *counter) bump() { c.n++ }
func f() {
	c := &counter{}
	fn := func() {
		m := c.bump // method value: captures c
		m()
	}
	fn()
	_ = c
}`)
	fd := funcNamed(f, "f")
	var lit *ast.FuncLit
	ast.Inspect(fd, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lit = fl
			return false
		}
		return true
	})
	caps := Captures(lit, info)
	got := map[string]Capture{}
	for _, c := range caps {
		got[c.Var.Name()] = c
	}
	cc, ok := got["c"]
	if !ok {
		t.Fatalf("captures = %v, want the method-value receiver c", got)
	}
	if len(cc.Reads) == 0 {
		t.Fatalf("c: %+v, want the method-value binding recorded as a read", cc)
	}
	if len(cc.Writes) != 0 {
		t.Fatalf("c: %+v, binding a method value must not count as a write", cc)
	}
	if _, bad := got["m"]; bad {
		t.Fatal("literal-local method value m wrongly counted as capture")
	}
}

// liveInGolden renders, per block, the sorted names of variables live at
// block entry — a stable text form for backward-flow goldens.
func liveInGolden(g *cfg.Graph, lv *Liveness) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		names := []string{}
		for i, v := range lv.Vars {
			if lv.Result.In[blk.Index].Has(i) {
				names = append(names, v.Name())
			}
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "b%d %s: live-in {%s}\n", blk.Index, blk.Kind, strings.Join(names, " "))
	}
	return sb.String()
}

// TestLivenessFallthroughChainGolden pins backward liveness over a
// fallthrough chain: the value written in case0 must stay live across the
// fallthrough edge into case1, and die everywhere the chain is not taken.
func TestLivenessFallthroughChainGolden(t *testing.T) {
	_, f, info := typeCheck(t, `package p
func f(x int) int {
	y := 0
	z := 5
	switch x {
	case 1:
		y = z
		fallthrough
	case 2:
		y += 3
		fallthrough
	case 3:
		y++
	default:
		y = 9
	}
	return y
}`)
	fd := funcNamed(f, "f")
	g := cfg.New(fd.Body)
	lv := ComputeLiveness(g, info)
	got := strings.TrimSpace(liveInGolden(g, lv))
	want := strings.TrimSpace(`
b0 entry: live-in {x}
b1 exit: live-in {}
b2 switch.done: live-in {y}
b3 switch.case0: live-in {z}
b4 switch.case1: live-in {y}
b5 switch.case2: live-in {y}
b6 switch.case3: live-in {}
`)
	if got != want {
		t.Errorf("liveness golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
