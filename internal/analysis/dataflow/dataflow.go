// Package dataflow runs iterative dataflow analyses over the CFGs built by
// internal/analysis/cfg. It provides a generic gen/kill worklist solver on
// bitsets plus three canned analyses the flow-sensitive passes share:
//
//   - reaching definitions: which assignments to a variable may reach a use;
//   - liveness: which variables may still be read after a program point;
//   - closure captures: which outer variables a FuncLit references, and
//     whether it reads or writes them.
//
// All analyses are intraprocedural, may-style (meet = union), and
// deterministic: fact numbering follows source order, and the worklist is a
// FIFO over block indices.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ftsched/internal/analysis/cfg"
)

// BitSet is a fixed-capacity bitset.
type BitSet []uint64

// NewBitSet returns a bitset able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// Copy returns an independent copy.
func (s BitSet) Copy() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// UnionWith ors o into s, reporting whether s changed.
func (s BitSet) UnionWith(o BitSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// AndNotWith removes o's bits from s.
func (s BitSet) AndNotWith(o BitSet) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// Equal reports bitwise equality.
func (s BitSet) Equal(o BitSet) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Direction orients a dataflow problem.
type Direction int

const (
	// Forward propagates facts along successor edges (reaching defs).
	Forward Direction = iota
	// Backward propagates facts along predecessor edges (liveness).
	Backward
)

// Problem is a gen/kill dataflow problem over a CFG. Facts are numbered
// [0, NumFacts); Gen and Kill are indexed by block. The transfer function is
// out = Gen ∪ (in ∖ Kill), and meet is union.
type Problem struct {
	Graph    *cfg.Graph
	Dir      Direction
	NumFacts int
	Gen      []BitSet // per block index
	Kill     []BitSet // per block index
}

// Result holds the fixed point: the fact sets at block entry and exit
// (entry/exit in execution order, regardless of direction).
type Result struct {
	In  []BitSet
	Out []BitSet
}

// Solve iterates the problem to a fixed point with a FIFO worklist.
func Solve(p Problem) Result {
	n := len(p.Graph.Blocks)
	res := Result{In: make([]BitSet, n), Out: make([]BitSet, n)}
	for i := 0; i < n; i++ {
		res.In[i] = NewBitSet(p.NumFacts)
		res.Out[i] = NewBitSet(p.NumFacts)
	}
	// before/after in propagation order.
	before, after := res.In, res.Out
	edgesIn := func(b *cfg.Block) []*cfg.Block { return b.Preds }
	if p.Dir == Backward {
		before, after = res.Out, res.In
		edgesIn = func(b *cfg.Block) []*cfg.Block { return b.Succs }
	}
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for i := 0; i < n; i++ {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		blk := p.Graph.Blocks[i]
		for _, e := range edgesIn(blk) {
			before[i].UnionWith(after[e.Index])
		}
		next := before[i].Copy()
		if p.Kill != nil && p.Kill[i] != nil {
			next.AndNotWith(p.Kill[i])
		}
		if p.Gen != nil && p.Gen[i] != nil {
			next.UnionWith(p.Gen[i])
		}
		if !next.Equal(after[i]) {
			after[i] = next
			var outs []*cfg.Block
			if p.Dir == Forward {
				outs = blk.Succs
			} else {
				outs = blk.Preds
			}
			for _, s := range outs {
				if !inWork[s.Index] {
					work = append(work, s.Index)
					inWork[s.Index] = true
				}
			}
		}
	}
	return res
}

// A Def is one definition site of a variable: a numbered fact for reaching
// definitions.
type Def struct {
	ID   int
	Var  *types.Var
	Node ast.Node  // the defining statement (assignment, decl, range, ...)
	Pos  token.Pos // position of the defined identifier
}

// ReachingDefs computes reaching definitions for the local variables of one
// function body. Defs are numbered in source order. The returned Result is
// indexed by block; use Defs to interpret the bits.
type ReachingDefs struct {
	Defs   []Def
	Result Result
	byVar  map[*types.Var][]int // def IDs per variable
}

// ComputeReachingDefs builds and solves reaching definitions over g.
// info must cover the function's file (Defs/Uses filled in).
func ComputeReachingDefs(g *cfg.Graph, info *types.Info) *ReachingDefs {
	rd := &ReachingDefs{byVar: map[*types.Var][]int{}}
	// Collect definition sites block by block, in block/node order, so fact
	// numbering is deterministic.
	type site struct {
		block int
		def   Def
	}
	var sites []site
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, d := range defsOf(n, info) {
				d.ID = len(sites)
				sites = append(sites, site{blk.Index, d})
			}
		}
	}
	nb := len(g.Blocks)
	gen := make([]BitSet, nb)
	kill := make([]BitSet, nb)
	for i := 0; i < nb; i++ {
		gen[i] = NewBitSet(len(sites))
		kill[i] = NewBitSet(len(sites))
	}
	for _, s := range sites {
		rd.Defs = append(rd.Defs, s.def)
		rd.byVar[s.def.Var] = append(rd.byVar[s.def.Var], s.def.ID)
	}
	for _, s := range sites {
		// A later def in the same block kills an earlier one; gen/kill at
		// block granularity: the last def of each var in the block survives.
		for _, other := range rd.byVar[s.def.Var] {
			if other != s.def.ID {
				kill[s.block].Set(other)
			}
		}
	}
	// Within a block, the final def of each var is the one generated.
	type bv struct {
		block int
		v     *types.Var
	}
	last := map[bv]int{}
	for _, s := range sites {
		last[bv{s.block, s.def.Var}] = s.def.ID
	}
	for k, id := range last {
		gen[k.block].Set(id)
		// gen wins over kill for the surviving def.
		kill[k.block].Clear(id)
	}
	rd.Result = Solve(Problem{Graph: g, Dir: Forward, NumFacts: len(sites), Gen: gen, Kill: kill})
	return rd
}

// DefsReaching returns the definitions of v that may reach the entry of the
// block containing pos. ok is false when pos is not in the graph.
func (rd *ReachingDefs) DefsReaching(g *cfg.Graph, pos token.Pos, v *types.Var) (defs []Def, ok bool) {
	blk, _, found := g.BlockOf(pos)
	if !found {
		return nil, false
	}
	in := rd.Result.In[blk.Index]
	for _, id := range rd.byVar[v] {
		if in.Has(id) {
			defs = append(defs, rd.Defs[id])
		}
	}
	// Defs earlier in the same block also reach, if not re-killed before pos;
	// conservative: include same-block defs positioned before pos.
	for _, id := range rd.byVar[v] {
		d := rd.Defs[id]
		if d.Pos < pos {
			if b2, _, ok2 := g.BlockOf(d.Pos); ok2 && b2 == blk && !in.Has(id) {
				defs = append(defs, d)
			}
		}
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	return defs, true
}

// defsOf extracts the variable definitions a single CFG node performs.
func defsOf(n ast.Node, info *types.Info) []Def {
	var out []Def
	addIdent := func(id *ast.Ident, node ast.Node) {
		if id == nil || id.Name == "_" {
			return
		}
		var v *types.Var
		if obj := info.Defs[id]; obj != nil {
			v, _ = obj.(*types.Var)
		} else if obj := info.Uses[id]; obj != nil {
			v, _ = obj.(*types.Var)
		}
		if v != nil {
			out = append(out, Def{Var: v, Node: node, Pos: id.Pos()})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				addIdent(id, n)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			addIdent(id, n)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						addIdent(id, n)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			addIdent(id, n)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			addIdent(id, n)
		}
	}
	return out
}

// Liveness computes, per block, the variables that may be read on some path
// from the block's entry (LiveIn) or exit (LiveOut). Variables are numbered
// in first-use order.
type Liveness struct {
	Vars   []*types.Var
	Result Result
	index  map[*types.Var]int
}

// ComputeLiveness builds and solves liveness over g.
func ComputeLiveness(g *cfg.Graph, info *types.Info) *Liveness {
	lv := &Liveness{index: map[*types.Var]int{}}
	id := func(v *types.Var) int {
		i, ok := lv.index[v]
		if !ok {
			i = len(lv.Vars)
			lv.index[v] = i
			lv.Vars = append(lv.Vars, v)
		}
		return i
	}
	// First pass: number every variable appearing in the graph.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if ident, ok := x.(*ast.Ident); ok {
					if v := varOf(ident, info); v != nil {
						id(v)
					}
				}
				return true
			})
		}
	}
	nb := len(g.Blocks)
	nf := len(lv.Vars)
	gen := make([]BitSet, nb)  // use before def in block
	kill := make([]BitSet, nb) // defined in block
	for i := 0; i < nb; i++ {
		gen[i] = NewBitSet(nf)
		kill[i] = NewBitSet(nf)
	}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			// Uses first (right-hand sides and reads), then defs, per node.
			uses, defs := usesAndDefs(n, info)
			for _, v := range uses {
				if !kill[blk.Index].Has(id(v)) {
					gen[blk.Index].Set(id(v))
				}
			}
			for _, v := range defs {
				kill[blk.Index].Set(id(v))
			}
		}
	}
	lv.Result = Solve(Problem{Graph: g, Dir: Backward, NumFacts: nf, Gen: gen, Kill: kill})
	return lv
}

// LiveAtExit reports whether v may be read after the exit of the block
// containing pos.
func (lv *Liveness) LiveAtExit(g *cfg.Graph, pos token.Pos, v *types.Var) bool {
	blk, _, ok := g.BlockOf(pos)
	if !ok {
		return true // unknown: stay conservative
	}
	i, ok := lv.index[v]
	if !ok {
		return false
	}
	return lv.Result.Out[blk.Index].Has(i)
}

// usesAndDefs splits a node's variable references into reads and writes.
// Compound assignments (x += y) and IncDec count as both.
func usesAndDefs(n ast.Node, info *types.Info) (uses, defs []*types.Var) {
	seen := func(list []*types.Var, v *types.Var) bool {
		for _, x := range list {
			if x == v {
				return true
			}
		}
		return false
	}
	addUse := func(v *types.Var) {
		if v != nil && !seen(uses, v) {
			uses = append(uses, v)
		}
	}
	addDef := func(v *types.Var) {
		if v != nil && !seen(defs, v) {
			defs = append(defs, v)
		}
	}
	collectReads := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(x ast.Node) bool {
			if ident, ok := x.(*ast.Ident); ok {
				addUse(varOf(ident, info))
			}
			return true
		})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			collectReads(rhs)
		}
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					addUse(varOf(id, info)) // compound: read-modify-write
				}
				addDef(varOf(id, info))
			} else {
				// x.f = v, a[i] = v: the base and index are read.
				collectReads(lhs)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			addUse(varOf(id, info))
			addDef(varOf(id, info))
		} else {
			collectReads(n.X)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						collectReads(val)
					}
					for _, id := range vs.Names {
						addDef(varOf(id, info))
					}
				}
			}
		}
	case *ast.RangeStmt:
		collectReads(n.X)
		if id, ok := n.Key.(*ast.Ident); ok {
			addDef(varOf(id, info))
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			addDef(varOf(id, info))
		}
	default:
		if e, ok := n.(ast.Expr); ok {
			collectReads(e)
		} else if s, ok := n.(ast.Stmt); ok {
			ast.Inspect(s, func(x ast.Node) bool {
				if ident, ok := x.(*ast.Ident); ok {
					addUse(varOf(ident, info))
				}
				return true
			})
		}
	}
	return uses, defs
}

// varOf resolves an identifier to the variable it denotes, or nil.
func varOf(id *ast.Ident, info *types.Info) *types.Var {
	if id == nil || id.Name == "_" {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		v, _ := obj.(*types.Var)
		return v
	}
	if obj := info.Defs[id]; obj != nil {
		v, _ := obj.(*types.Var)
		return v
	}
	return nil
}

// Capture describes one outer variable referenced inside a function literal.
type Capture struct {
	Var    *types.Var
	Reads  []token.Pos // reference sites inside the literal that read the var
	Writes []token.Pos // reference sites that write it (assign, incdec, &v escape counts as write)
}

// Captures lists the variables a function literal captures from enclosing
// scopes: every identifier inside fn resolving to a variable declared
// outside fn's body (and outside fn's own parameters). Taking the address of
// a captured variable is conservatively recorded as a write. The result is
// ordered by first reference position.
func Captures(fn *ast.FuncLit, info *types.Info) []Capture {
	byVar := map[*types.Var]*Capture{}
	var order []*types.Var
	record := func(v *types.Var, pos token.Pos, write bool) {
		c := byVar[v]
		if c == nil {
			c = &Capture{Var: v}
			byVar[v] = c
			order = append(order, v)
		}
		if write {
			c.Writes = append(c.Writes, pos)
		} else {
			c.Reads = append(c.Reads, pos)
		}
	}
	inside := func(pos token.Pos) bool { return fn.Pos() <= pos && pos < fn.End() }
	isCaptured := func(id *ast.Ident) *types.Var {
		v := varOf(id, info)
		// Declared inside the literal (including its params): not a capture.
		if v == nil || inside(v.Pos()) {
			return nil
		}
		// Struct fields resolve to vars too; a selector is not a capture.
		if v.IsField() {
			return nil
		}
		// Package-level state is shared, not lexically captured; callers
		// handle it separately. Only locals of an enclosing function qualify.
		if v.Parent() == nil || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return nil
		}
		return v
	}
	// Walk the body tracking write contexts.
	var walk func(n ast.Node)
	markIdent := func(e ast.Expr, write bool) {
		// Strip parens and index/selector chains down to the base ident for
		// write classification: writing a[i] or s.f mutates the base.
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				if id, ok := e.(*ast.Ident); ok {
					if v := isCaptured(id); v != nil {
						record(v, id.Pos(), write)
					}
				}
				return
			}
		}
	}
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					walk(rhs)
				}
				for _, lhs := range x.Lhs {
					markIdent(lhs, true)
					// Index and selector sub-expressions are reads.
					switch l := lhs.(type) {
					case *ast.IndexExpr:
						walk(l.Index)
					}
				}
				return false
			case *ast.IncDecStmt:
				markIdent(x.X, true)
				return false
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					markIdent(x.X, true) // address escape: treat as write
					return false
				}
			case *ast.Ident:
				if v := isCaptured(x); v != nil {
					record(v, x.Pos(), false)
				}
			}
			return true
		})
	}
	walk(fn.Body)
	out := make([]Capture, 0, len(order))
	for _, v := range order {
		out = append(out, *byVar[v])
	}
	return out
}
