// Package sub is the imported half of the load fixture.
package sub

// Word returns a fixture word.
func Word() string {
	return "world"
}
