// Package x is a load fixture importing a sibling fixture package and the
// standard library.
package x

import (
	"strings"

	"x/sub"
)

// Greet joins the fixture's words.
func Greet() string {
	return strings.Join([]string{"hello", sub.Word()}, " ")
}
