package load

import (
	"testing"
)

func TestDirResolvesTreeAndStdlib(t *testing.T) {
	u, err := Dir("testdata/src", "x")
	if err != nil {
		t.Fatal(err)
	}
	if u.Path != "x" || u.Pkg.Name() != "x" {
		t.Errorf("loaded %q (package %s), want x", u.Path, u.Pkg.Name())
	}
	if len(u.Files) != 1 {
		t.Errorf("got %d files, want 1", len(u.Files))
	}
	if len(u.Info.Uses) == 0 || len(u.Info.Defs) == 0 {
		t.Error("type info not populated")
	}
	var imports []string
	for _, p := range u.Pkg.Imports() {
		imports = append(imports, p.Path())
	}
	want := map[string]bool{"strings": false, "x/sub": false}
	for _, p := range imports {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("import %q not resolved (got %v)", p, imports)
		}
	}
}

func TestDirMissingPackage(t *testing.T) {
	if _, err := Dir("testdata/src", "nonexistent"); err == nil {
		t.Fatal("expected an error for a missing fixture package")
	}
}

func TestPackagesLoadsModulePackage(t *testing.T) {
	// The test process runs inside the module, so "." is a valid load root.
	units, err := Packages(".", "ftsched/internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	u := units[0]
	if u.Path != "ftsched/internal/obs" || u.Pkg.Name() != "obs" {
		t.Errorf("loaded %q (package %s)", u.Path, u.Pkg.Name())
	}
	if len(u.Files) == 0 || len(u.Info.Defs) == 0 {
		t.Error("files or type info not populated")
	}
}

func TestPackagesBadPattern(t *testing.T) {
	if _, err := Packages(".", "ftsched/internal/does-not-exist"); err == nil {
		t.Fatal("expected an error for an unknown package pattern")
	}
}
