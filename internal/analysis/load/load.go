// Package load turns Go source into the type-checked units the ftlint
// analyzers consume, using only the standard library and the go command.
//
// Two loaders are provided. Packages loads module packages by pattern
// ("./..."), enumerating them with `go list -json` and type-checking with
// the stdlib source importer (which resolves both GOROOT and module-local
// imports when the working directory is inside the module). Dir loads one
// directory as a package with GOPATH-style import resolution rooted at a
// testdata/src tree, which is what the analysistest harness needs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"ftsched/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Packages loads and type-checks the module packages matching the patterns,
// evaluated in dir (which must lie inside the module). Test files are not
// loaded: the determinism contract binds the shipped code only (the driver
// enforces the same exemption when go vet hands the tool test files).
func Packages(dir string, patterns ...string) ([]*analysis.Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}

	// One file set and one importer for every package: the source importer
	// caches transitively type-checked dependencies, so shared packages are
	// checked once. The importer resolves imports relative to the process
	// working directory, so pin it to the module for the go/build fallback.
	restore, err := chdir(dir)
	if err != nil {
		return nil, err
	}
	defer restore()

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	units := make([]*analysis.Unit, 0, len(listed))
	for _, p := range listed {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", p.ImportPath, err)
		}
		units = append(units, &analysis.Unit{
			Path:  p.ImportPath,
			Fset:  fset,
			Files: files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	return units, nil
}

// chdir switches the process working directory and returns a restore
// function. The source importer has no per-call directory parameter, so the
// loader briefly owns the cwd; Packages is not safe for concurrent use with
// other cwd-sensitive code.
func chdir(dir string) (func(), error) {
	if dir == "" || dir == "." {
		return func() {}, nil
	}
	old, err := os.Getwd()
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	if err := os.Chdir(dir); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	return func() { _ = os.Chdir(old) }, nil
}

// Dir loads the single package in dir, resolving its non-stdlib imports
// GOPATH-style against root (testdata/src layout): import path "a/b" is the
// package in root/a/b. Fixture packages may import each other and the
// standard library.
func Dir(root, path string) (*analysis.Unit, error) {
	u, _, err := DirDeps(root, path)
	return u, err
}

// DirDeps is Dir plus the fixture dependencies it pulled in: every other
// package of the tree the target (transitively) imports, in load order. The
// analysistest harness feeds them to the summary engine so interprocedural
// facts flow between fixture packages the same way they do between real
// ones.
func DirDeps(root, path string) (*analysis.Unit, []*analysis.Unit, error) {
	fset := token.NewFileSet()
	ld := &treeLoader{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*analysis.Unit),
	}
	u, err := ld.load(path)
	if err != nil {
		return nil, nil, err
	}
	var deps []*analysis.Unit
	for _, p := range ld.order {
		if du := ld.cache[p]; du != nil && du != u {
			deps = append(deps, du)
		}
	}
	return u, deps, nil
}

// treeLoader type-checks a testdata/src tree, memoizing packages so fixture
// cross-imports resolve to one types.Package identity.
type treeLoader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*analysis.Unit
	order []string // paths in completion order (dependencies first)
}

// Import implements types.Importer over the fixture tree, falling back to
// the standard library for anything not present under root.
func (l *treeLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		u, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *treeLoader) load(path string) (*analysis.Unit, error) {
	if u, ok := l.cache[path]; ok {
		return u, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	u := &analysis.Unit{Path: path, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.cache[path] = u
	l.order = append(l.order, path)
	return u, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// newInfo allocates the full set of type-checker fact maps the analyzers
// rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
