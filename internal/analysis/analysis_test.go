package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSrc type-checks one source string into a Unit.
func loadSrc(t *testing.T, filename, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Unit{Path: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

// callFlagger reports every call expression; named "errprop" so the
// allow-discard directive applies to it.
var callFlagger = &Analyzer{
	Name: "errprop",
	Doc:  "test analyzer flagging every call",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					p.Reportf(c.Pos(), "call flagged")
				}
				return true
			})
		}
		return nil
	},
}

const suppressionSrc = `package p

func f() {}

func g() {
	f() //ftlint:allow-discard trailing: covers this line and the next
	f()
	//ftlint:allow-discard own line: covers the line below
	f()
	f()
}
`

func TestCheckSuppression(t *testing.T) {
	u := loadSrc(t, "p.go", suppressionSrc)
	diags, err := Check([]*Unit{u}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	// Lines 6, 7 (trailing directive covers both) and 9 (directive above)
	// are suppressed; only the call on line 10 survives.
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want 1", len(diags), diags)
	}
	if diags[0].Pos.Line != 10 {
		t.Errorf("surviving diagnostic on line %d, want 10", diags[0].Pos.Line)
	}
	if diags[0].Analyzer != "errprop" {
		t.Errorf("analyzer = %q, want errprop", diags[0].Analyzer)
	}
}

const staleSrc = `package p

//ftlint:allow-discard nothing here to suppress
//ftlint:allow-nondet its analyzer did not run, so not stale-checked
func f() {}
`

func TestCheckStaleDirective(t *testing.T) {
	u := loadSrc(t, "p.go", staleSrc)
	diags, err := Check([]*Unit{u}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want 1 stale-directive report", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != DirectiveAnalyzerName || d.Pos.Line != 3 || !strings.Contains(d.Message, "stale") {
		t.Errorf("unexpected diagnostic %v", d)
	}
}

const malformedSrc = `package p

//ftlint:allow-discrad typo in the keyword
//ftlint:allow-discard
func f() {}
`

func TestCheckMalformedDirectives(t *testing.T) {
	u := loadSrc(t, "p.go", malformedSrc)
	diags, err := Check([]*Unit{u}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "unknown directive //ftlint:allow-discrad") {
		t.Errorf("diags[0] = %v, want unknown-directive report", diags[0])
	}
	if !strings.Contains(diags[1].Message, "needs a reason") {
		t.Errorf("diags[1] = %v, want missing-reason report", diags[1])
	}
}

func TestCheckSkipsTestFiles(t *testing.T) {
	u := loadSrc(t, "p_test.go", "package p\n\nfunc f() {}\n\nfunc g() { f() }\n")
	diags, err := Check([]*Unit{u}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics %v from a test file, want 0", len(diags), diags)
	}
}

func TestIsCriticalPackage(t *testing.T) {
	cases := map[string]bool{
		"ftsched/internal/core":     true,
		"ftsched/internal/sched":    true,
		"ftsched/internal/certify":  true,
		"ftsched/internal/benchrun": true,
		"core":                      true,
		"ftsched/internal/obs":      false,
		"ftsched/internal/corex":    false,
		"sched/util":                false,
	}
	for path, want := range cases {
		if got := IsCriticalPackage(path); got != want {
			t.Errorf("IsCriticalPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
