package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"ftsched/internal/analysis"
)

// badCallFlagger flags calls to functions named bad. It is registered under
// the errprop name so the fixture's //ftlint:allow-discard directive applies.
var badCallFlagger = &analysis.Analyzer{
	Name: "errprop",
	Doc:  "test analyzer flagging calls to bad",
	Run: func(p *analysis.Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "bad" {
						p.Reportf(c.Pos(), "call to bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

func TestRunSelfFixture(t *testing.T) {
	Run(t, "testdata", "self", badCallFlagger)
}

func parseComment(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseWantsUnquoted(t *testing.T) {
	fset, files := parseComment(t, "package x\n\nfunc f() {} // want unquoted\n")
	if _, err := parseWants(fset, files); err == nil || !strings.Contains(err.Error(), "malformed want comment") {
		t.Fatalf("err = %v, want malformed-want error", err)
	}
}

func TestParseWantsBadRegexp(t *testing.T) {
	fset, files := parseComment(t, "package x\n\nfunc f() {} // want \"(\"\n")
	if _, err := parseWants(fset, files); err == nil || !strings.Contains(err.Error(), "compiling want pattern") {
		t.Fatalf("err = %v, want regexp-compile error", err)
	}
}

func TestParseWantsBadEscape(t *testing.T) {
	fset, files := parseComment(t, "package x\n\nfunc f() {} // want \"\\z\"\n")
	if _, err := parseWants(fset, files); err == nil || !strings.Contains(err.Error(), "unquoting") {
		t.Fatalf("err = %v, want unquote error", err)
	}
}

func TestClaimMatchesEachWantOnce(t *testing.T) {
	fset, files := parseComment(t, "package x\n\nfunc f() {} // want \"boom\" \"boom\"\n")
	wants, err := parseWants(fset, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) != 2 {
		t.Fatalf("got %d wants, want 2", len(wants))
	}
	d := analysis.Diagnostic{Pos: token.Position{Filename: "x.go", Line: 3}, Message: "boom"}
	if !claim(wants, d) || !claim(wants, d) {
		t.Error("two identical wants should each claim one matching diagnostic")
	}
	if claim(wants, d) {
		t.Error("a third diagnostic must not match exhausted wants")
	}
	if claim(wants, analysis.Diagnostic{Pos: token.Position{Filename: "x.go", Line: 4}, Message: "boom"}) {
		t.Error("a diagnostic on another line must not match")
	}
}
