// Package analysistest runs ftlint analyzers over testdata fixture packages
// and checks their diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// A fixture line expecting a diagnostic carries a trailing comment
//
//	code() // want "regexp"
//
// with one quoted regular expression per expected diagnostic on that line.
// Diagnostics (including the framework's directive diagnostics) must be
// matched by exactly one want, and every want must match; anything else
// fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ftsched/internal/analysis"
	"ftsched/internal/analysis/load"
	"ftsched/internal/analysis/summary"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads root/src/<path> as a fixture package, applies the analyzers
// through the framework driver (so //ftlint: suppression is exercised), and
// diffs the surviving diagnostics against the fixture's want comments.
func Run(t *testing.T, root, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	unit, deps, err := load.DirDeps(root+"/src", path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	// Interprocedural facts flow between fixture packages exactly as the
	// standalone driver provides them for real ones.
	summary.AttachAll(append(deps, unit))
	diags, err := analysis.Check([]*analysis.Unit{unit}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}
	wants, err := parseWants(unit.Fset, unit.Files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", path, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unclaimed want matching d and reports success.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// wantRE extracts the quoted patterns of one want comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or follow other text, so a
				// //ftlint: directive can carry the want for its own stale or
				// malformed diagnostic.
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := fset.Position(c.Slash)
				quoted := wantRE.FindAllString(text, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: unquoting %s: %w", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: compiling want pattern %s: %w", pos, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
