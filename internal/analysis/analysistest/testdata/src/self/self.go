// Package self is the analysistest self-test fixture: the harness is pointed
// at it with a toy analyzer that flags every call to bad, proving that Run
// loads fixtures, claims want comments, and drives the suppression layer.
package self

func bad() {}

func use() {
	bad() // want "call to bad"
	bad() //ftlint:allow-discard fixture: proves Run applies directive suppression
}
