package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectiveAnalyzerName attributes the diagnostics of the directive grammar
// itself (malformed or stale //ftlint: comments).
const DirectiveAnalyzerName = "ftlint-directive"

// directiveAnalyzers maps each suppression directive to the analyzer it
// silences. The grammar is
//
//	//ftlint:<name> <reason>
//
// where <name> is one of the keys below and <reason> is a non-empty
// free-text justification (for order-insensitive, a one-line proof of
// order-insensitivity). A directive suppresses diagnostics of its analyzer
// on its own source line or the line directly beneath it.
var directiveAnalyzers = map[string]string{
	"order-insensitive":  "mapiter",
	"allow-nondet":       "nondet",
	"infwcet-checked":    "infwcet",
	"allow-obs":          "obssafe",
	"allow-discard":      "errprop",
	"allow-capture":      "goroutinecapture",
	"sharedmut-safe":     "sharedmut",
	"indexbound-checked": "indexbound",
	"ordered-merge":      "determorder",
	"epoch-pure":         "epochpurity",
	"allow-nopoll":       "cancelpoll",
	"hotalloc-ok":        "hotalloc",
}

// Directive is one parsed //ftlint: suppression comment.
type Directive struct {
	Name   string // directive keyword, e.g. "order-insensitive"
	Reason string // justification text, always non-empty
	Pos    token.Position
	Line   int
}

// Analyzer returns the name of the analyzer this directive suppresses.
func (d Directive) Analyzer() string { return directiveAnalyzers[d.Name] }

// ParseDirectives scans every comment of the files for //ftlint: directives.
// Well-formed directives are returned; a malformed one (unknown keyword or
// missing reason) becomes a diagnostic, so a typo can never silently
// suppress nothing.
func ParseDirectives(fset *token.FileSet, files []*ast.File) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//ftlint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				name, reason, _ := strings.Cut(text, " ")
				reason = strings.TrimSpace(reason)
				if _, known := directiveAnalyzers[name]; !known {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: DirectiveAnalyzerName,
						Message:  "unknown directive //ftlint:" + name + "; valid names: " + directiveNames(),
					})
					continue
				}
				if reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: DirectiveAnalyzerName,
						Message:  "//ftlint:" + name + " needs a reason: //ftlint:" + name + " <why this site is safe>",
					})
					continue
				}
				dirs = append(dirs, Directive{Name: name, Reason: reason, Pos: pos, Line: pos.Line})
			}
		}
	}
	return dirs, bad
}

// directiveNames returns the valid keywords, sorted, for error messages.
func directiveNames() string {
	names := make([]string, 0, len(directiveAnalyzers))
	for n := range directiveAnalyzers {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
