package graph

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// buildPaperGraph constructs the Fig. 7/13 algorithm graph:
// I -> A -> {B, C, D} -> E -> O.
func buildPaperGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("paper")
	mustOK := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	mustOK(g.AddExtIO("I"))
	mustOK(g.AddComp("A"))
	mustOK(g.AddComp("B"))
	mustOK(g.AddComp("C"))
	mustOK(g.AddComp("D"))
	mustOK(g.AddComp("E"))
	mustOK(g.AddExtIO("O"))
	for _, e := range [][2]string{
		{"I", "A"}, {"A", "B"}, {"A", "C"}, {"A", "D"},
		{"B", "E"}, {"C", "E"}, {"D", "E"}, {"E", "O"},
	} {
		mustOK(g.Connect(e[0], e[1]))
	}
	return g
}

func TestAddDuplicateOp(t *testing.T) {
	g := New("g")
	if err := g.AddComp("A"); err != nil {
		t.Fatalf("AddComp: %v", err)
	}
	if err := g.AddComp("A"); err == nil {
		t.Fatal("expected duplicate-op error")
	}
	if err := g.AddMem("A"); err == nil {
		t.Fatal("expected duplicate-op error across kinds")
	}
}

func TestAddEmptyName(t *testing.T) {
	g := New("g")
	if err := g.AddComp(""); err == nil {
		t.Fatal("expected empty-name error")
	}
}

func TestConnectErrors(t *testing.T) {
	g := New("g")
	if err := g.AddComp("A"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddComp("B"); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("A", "X"); err == nil {
		t.Fatal("expected unknown-dst error")
	}
	if err := g.Connect("X", "A"); err == nil {
		t.Fatal("expected unknown-src error")
	}
	if err := g.Connect("A", "A"); err == nil {
		t.Fatal("expected self-dependency error")
	}
	if err := g.Connect("A", "B"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := g.Connect("A", "B"); err == nil {
		t.Fatal("expected duplicate-edge error")
	}
}

func TestKindsAndSafety(t *testing.T) {
	g := New("g")
	_ = g.AddComp("c")
	_ = g.AddMem("m")
	_ = g.AddExtIO("x")
	cases := []struct {
		name string
		kind Kind
		safe bool
	}{
		{"c", KindComp, true},
		{"m", KindMem, true},
		{"x", KindExtIO, false},
	}
	for _, c := range cases {
		op := g.Op(c.name)
		if op == nil {
			t.Fatalf("op %q missing", c.name)
		}
		if op.Kind() != c.kind {
			t.Errorf("op %q kind = %v, want %v", c.name, op.Kind(), c.kind)
		}
		if op.Safe() != c.safe {
			t.Errorf("op %q safe = %v, want %v", c.name, op.Safe(), c.safe)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindComp.String() != "comp" || KindMem.String() != "mem" || KindExtIO.String() != "extio" {
		t.Errorf("unexpected kind strings: %v %v %v", KindComp, KindMem, KindExtIO)
	}
	if s := Kind(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown kind string = %q", s)
	}
}

func TestTopoOrderPaperGraph(t *testing.T) {
	g := buildPaperGraph(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Src()] >= pos[e.Dst()] {
			t.Errorf("edge %s violates topological order", e.Key())
		}
	}
	// Deterministic: insertion order ties give I A B C D E O exactly.
	want := []string{"I", "A", "B", "C", "D", "E", "O"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New("g")
	_ = g.AddComp("A")
	_ = g.AddComp("B")
	_ = g.Connect("A", "B")
	_ = g.Connect("B", "A")
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("expected Validate to reject cyclic graph")
	}
}

func TestMemBreaksCycle(t *testing.T) {
	// A feedback loop through a mem is legal: the edge into the mem is
	// delayed, so the non-delayed subgraph is acyclic.
	g := New("g")
	_ = g.AddMem("state")
	_ = g.AddComp("step")
	_ = g.AddExtIO("out")
	if err := g.Connect("state", "step"); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("step", "state"); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("step", "out"); err != nil {
		t.Fatal(err)
	}
	if !g.Edge(EdgeKey{Src: "step", Dst: "state"}).Delayed() {
		t.Error("edge into mem should be delayed")
	}
	if g.Edge(EdgeKey{Src: "state", Dst: "step"}).Delayed() {
		t.Error("edge out of mem should not be delayed")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestValidateExtIORules(t *testing.T) {
	g := New("g")
	_ = g.AddExtIO("io")
	_ = g.AddComp("a")
	_ = g.AddComp("b")
	_ = g.Connect("a", "io")
	_ = g.Connect("io", "b")
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for extio with both preds and succs")
	}

	g2 := New("g2")
	_ = g2.AddExtIO("lonely")
	_ = g2.AddComp("a")
	_ = g2.AddComp("b")
	_ = g2.Connect("a", "b")
	if err := g2.Validate(); err == nil {
		t.Fatal("expected error for disconnected extio")
	}
}

func TestValidateMemNeedsConsumer(t *testing.T) {
	g := New("g")
	_ = g.AddComp("a")
	_ = g.AddMem("m")
	_ = g.Connect("a", "m")
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for mem without consumer")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestSourcesSinksInputsOutputs(t *testing.T) {
	g := buildPaperGraph(t)
	if got := g.Sources(); !reflect.DeepEqual(got, []string{"I"}) {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []string{"O"}) {
		t.Errorf("Sinks = %v", got)
	}
	if got := g.Inputs(); !reflect.DeepEqual(got, []string{"I"}) {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); !reflect.DeepEqual(got, []string{"O"}) {
		t.Errorf("Outputs = %v", got)
	}
}

func TestPredsSuccs(t *testing.T) {
	g := buildPaperGraph(t)
	if got := g.Succs("A"); !reflect.DeepEqual(got, []string{"B", "C", "D"}) {
		t.Errorf("Succs(A) = %v", got)
	}
	if got := g.Preds("E"); !reflect.DeepEqual(got, []string{"B", "C", "D"}) {
		t.Errorf("Preds(E) = %v", got)
	}
	// Returned slices must be copies.
	s := g.Succs("A")
	s[0] = "mutated"
	if got := g.Succs("A"); got[0] != "B" {
		t.Error("Succs returned an aliased slice")
	}
}

func TestStrictPredsSkipsDelayed(t *testing.T) {
	g := New("g")
	_ = g.AddComp("a")
	_ = g.AddMem("m")
	_ = g.AddComp("b")
	_ = g.Connect("a", "m") // delayed
	_ = g.Connect("m", "b")
	_ = g.Connect("a", "b")
	if got := g.StrictPreds("m"); got != nil {
		t.Errorf("StrictPreds(m) = %v, want none", got)
	}
	if got := g.StrictSuccs("a"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("StrictSuccs(a) = %v", got)
	}
}

func TestClone(t *testing.T) {
	g := buildPaperGraph(t)
	c := g.Clone()
	if c.NumOps() != g.NumOps() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone shape mismatch: %d/%d vs %d/%d",
			c.NumOps(), c.NumEdges(), g.NumOps(), g.NumEdges())
	}
	// Mutating the clone must not affect the original.
	if err := c.AddComp("Z"); err != nil {
		t.Fatal(err)
	}
	if g.HasOp("Z") {
		t.Error("clone mutation leaked into original")
	}
	o1, _ := g.TopoOrder()
	c2 := g.Clone()
	o2, _ := c2.TopoOrder()
	if !reflect.DeepEqual(o1, o2) {
		t.Errorf("clone order %v != original %v", o2, o1)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New("rt")
	_ = g.AddExtIO("in")
	_ = g.AddComp("f")
	_ = g.AddMem("m")
	_ = g.AddExtIO("out")
	_ = g.Connect("in", "f")
	_ = g.Connect("f", "m")
	_ = g.Connect("m", "f")
	_ = g.Connect("f", "out")

	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name() != "rt" || back.NumOps() != 4 || back.NumEdges() != 4 {
		t.Fatalf("round-trip shape: %s", back.Summary())
	}
	if back.Op("m").Kind() != KindMem {
		t.Error("mem kind lost in round trip")
	}
	if !back.Edge(EdgeKey{Src: "f", Dst: "m"}).Delayed() {
		t.Error("delayed flag lost in round trip")
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	var g Graph
	if err := g.UnmarshalJSON([]byte(`{"ops":[{"name":"a","kind":"nope"}]}`)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
	if err := g.UnmarshalJSON([]byte(`not json`)); err == nil {
		t.Fatal("expected syntax error")
	}
	if err := g.UnmarshalJSON([]byte(`{"ops":[{"name":"a","kind":"comp"}],"edges":[{"src":"a","dst":"zz"}]}`)); err == nil {
		t.Fatal("expected bad-edge error")
	}
}

func TestDOT(t *testing.T) {
	g := buildPaperGraph(t)
	dot := g.DOT()
	for _, frag := range []string{`digraph "paper"`, `"I" [shape=diamond]`, `"A" [shape=ellipse]`, `"I" -> "A"`} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	g2 := New("g2")
	_ = g2.AddComp("a")
	_ = g2.AddMem("m")
	_ = g2.Connect("a", "m")
	if !strings.Contains(g2.DOT(), "style=dashed") {
		t.Error("DOT should dash delayed edges")
	}
}

func TestSummary(t *testing.T) {
	g := buildPaperGraph(t)
	s := g.Summary()
	for _, frag := range []string{"7 ops", "8 dependencies", "5 comp", "2 extio"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Summary missing %q: %s", frag, s)
		}
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(r *rand.Rand, n int) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		_ = g.AddComp("op" + strconv.Itoa(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(4) == 0 {
				_ = g.Connect("op"+strconv.Itoa(i), "op"+strconv.Itoa(j))
			}
		}
	}
	return g
}

func TestQuickTopoOrderIsValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		pos := map[string]int{}
		for i, name := range order {
			pos[name] = i
		}
		for _, e := range g.Edges() {
			if pos[e.Src()] >= pos[e.Dst()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEquivalent(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		c := g.Clone()
		if c.NumOps() != g.NumOps() || c.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if c.Edge(e.Key()) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%15) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		data, err := g.MarshalJSON()
		if err != nil {
			return false
		}
		var back Graph
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		if back.NumOps() != g.NumOps() || back.NumEdges() != g.NumEdges() {
			return false
		}
		o1, _ := g.TopoOrder()
		o2, _ := back.TopoOrder()
		return reflect.DeepEqual(o1, o2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
