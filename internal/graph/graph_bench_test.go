package graph

import (
	"math/rand"
	"strconv"
	"testing"
)

func benchDAG(b *testing.B, n int) *Graph {
	b.Helper()
	r := rand.New(rand.NewSource(int64(n)))
	g := New("bench")
	for i := 0; i < n; i++ {
		if err := g.AddComp("op" + strconv.Itoa(i)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+8 && j < n; j++ {
			if r.Intn(3) == 0 {
				_ = g.Connect("op"+strconv.Itoa(i), "op"+strconv.Itoa(j))
			}
		}
	}
	return g
}

func BenchmarkTopoOrder(b *testing.B) {
	g := benchDAG(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongestPaths(b *testing.B) {
	g := benchDAG(b, 500)
	c := ConstCost{Op: 1, Edge: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LongestPaths(g, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	g := benchDAG(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Clone()
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	g := benchDAG(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := g.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		var back Graph
		if err := back.UnmarshalJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}
