package graph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Ops   []jsonOp   `json:"ops"`
	Edges []jsonEdge `json:"edges"`
}

type jsonOp struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type jsonEdge struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// MarshalJSON encodes the graph with deterministic ordering.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name}
	for _, op := range g.Ops() {
		jg.Ops = append(jg.Ops, jsonOp{Name: op.Name(), Kind: op.Kind().String()})
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{Src: e.Src(), Dst: e.Dst()})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	ng := New(jg.Name)
	for _, op := range jg.Ops {
		var err error
		switch op.Kind {
		case "comp":
			err = ng.AddComp(op.Name)
		case "mem":
			err = ng.AddMem(op.Name)
		case "extio":
			err = ng.AddExtIO(op.Name)
		default:
			err = fmt.Errorf("graph: decode: unknown kind %q for op %q", op.Kind, op.Name)
		}
		if err != nil {
			return err
		}
	}
	for _, e := range jg.Edges {
		if err := ng.Connect(e.Src, e.Dst); err != nil {
			return err
		}
	}
	*g = *ng
	return nil
}

// DOT renders the graph in Graphviz dot syntax. Comps are ellipses, mems are
// boxes, extios are diamonds; delayed edges are dashed.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=TB;\n")
	for _, op := range g.Ops() {
		shape := "ellipse"
		switch op.Kind() {
		case KindMem:
			shape = "box"
		case KindExtIO:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", op.Name(), shape)
	}
	for _, e := range g.Edges() {
		if e.Delayed() {
			fmt.Fprintf(&b, "  %q -> %q [style=dashed];\n", e.Src(), e.Dst())
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", e.Src(), e.Dst())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line human-readable description of the graph.
func (g *Graph) Summary() string {
	kinds := map[Kind]int{}
	for _, op := range g.Ops() {
		kinds[op.Kind()]++
	}
	parts := make([]string, 0, 3)
	for _, k := range []Kind{KindComp, KindMem, KindExtIO} {
		if kinds[k] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", kinds[k], k))
		}
	}
	sort.Strings(parts)
	return fmt.Sprintf("graph %q: %d ops (%s), %d dependencies",
		g.name, g.NumOps(), strings.Join(parts, ", "), g.NumEdges())
}
