package graph

import "testing"

// FuzzGraphJSON checks that arbitrary input never panics the decoder and
// that accepted graphs survive a round trip.
func FuzzGraphJSON(f *testing.F) {
	f.Add([]byte(`{"name":"g","ops":[{"name":"a","kind":"comp"},{"name":"b","kind":"mem"}],"edges":[{"src":"a","dst":"b"}]}`))
	f.Add([]byte(`{"ops":[{"name":"x","kind":"extio"}]}`))
	f.Add([]byte(`{"ops":[{"name":"a","kind":"comp"},{"name":"a","kind":"comp"}]}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := g.UnmarshalJSON(data); err != nil {
			return
		}
		out, err := g.MarshalJSON()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var back Graph
		if err := back.UnmarshalJSON(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if back.NumOps() != g.NumOps() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %s vs %s", back.Summary(), g.Summary())
		}
	})
}
