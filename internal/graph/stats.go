package graph

// Stats summarizes the structure of a graph, the quantities workload sweeps
// report alongside scheduling results.
type Stats struct {
	// Ops and Edges are the vertex and dependency counts.
	Ops, Edges int
	// Depth is the number of levels of the level-by-longest-path layering
	// (the length in operations of the longest chain).
	Depth int
	// Width is the largest number of operations sharing a level: an upper
	// bound estimate of the exploitable parallelism.
	Width int
	// MeanDegree is the average number of predecessors per operation.
	MeanDegree float64
}

// ComputeStats analyzes the graph's structure (non-delayed edges only). It
// returns the zero Stats for a cyclic graph.
func ComputeStats(g *Graph) Stats {
	order, err := g.TopoOrder()
	if err != nil {
		return Stats{}
	}
	level := make(map[string]int, len(order))
	widths := map[int]int{}
	depth := 0
	for _, op := range order {
		l := 1
		for _, p := range g.StrictPreds(op) {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[op] = l
		widths[l]++
		if l > depth {
			depth = l
		}
	}
	width := 0
	for _, w := range widths {
		if w > width {
			width = w
		}
	}
	st := Stats{Ops: g.NumOps(), Edges: g.NumEdges(), Depth: depth, Width: width}
	if st.Ops > 0 {
		st.MeanDegree = float64(st.Edges) / float64(st.Ops)
	}
	return st
}
