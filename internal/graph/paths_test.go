package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLongestPathsChain(t *testing.T) {
	g := New("chain")
	_ = g.AddComp("a")
	_ = g.AddComp("b")
	_ = g.AddComp("c")
	_ = g.Connect("a", "b")
	_ = g.Connect("b", "c")
	info, err := LongestPaths(g, ConstCost{Op: 2, Edge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(info.R, 2+1+2+1+2) {
		t.Errorf("R = %v, want 8", info.R)
	}
	if !almostEq(info.Head["a"], 0) || !almostEq(info.Head["b"], 3) || !almostEq(info.Head["c"], 6) {
		t.Errorf("heads = %v", info.Head)
	}
	if !almostEq(info.Tail["a"], 6) || !almostEq(info.Tail["b"], 3) || !almostEq(info.Tail["c"], 0) {
		t.Errorf("tails = %v", info.Tail)
	}
}

func TestLongestPathsDiamond(t *testing.T) {
	// a -> {b (cost 5), c (cost 1)} -> d; edges cost 0.
	g := New("diamond")
	for _, n := range []string{"a", "b", "c", "d"} {
		_ = g.AddComp(n)
	}
	_ = g.Connect("a", "b")
	_ = g.Connect("a", "c")
	_ = g.Connect("b", "d")
	_ = g.Connect("c", "d")
	costs := map[string]float64{"a": 1, "b": 5, "c": 1, "d": 1}
	cf := funcCost{op: func(o string) float64 { return costs[o] }, edge: func(EdgeKey) float64 { return 0 }}
	info, err := LongestPaths(g, cf)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(info.R, 7) { // a(1) + b(5) + d(1)
		t.Errorf("R = %v, want 7", info.R)
	}
	if !almostEq(info.Tail["a"], 6) {
		t.Errorf("Tail[a] = %v, want 6", info.Tail["a"])
	}
	if !almostEq(info.Head["d"], 6) {
		t.Errorf("Head[d] = %v, want 6", info.Head["d"])
	}
	crit := info.CriticalOps(g, cf, 1e-9)
	if !reflect.DeepEqual(crit, []string{"a", "b", "d"}) {
		t.Errorf("critical ops = %v", crit)
	}
}

// funcCost adapts closures to CostFunc for tests.
type funcCost struct {
	op   func(string) float64
	edge func(EdgeKey) float64
}

func (f funcCost) OpCost(o string) float64    { return f.op(o) }
func (f funcCost) EdgeCost(e EdgeKey) float64 { return f.edge(e) }

func TestLongestPathsIgnoresDelayed(t *testing.T) {
	g := New("fb")
	_ = g.AddMem("m")
	_ = g.AddComp("f")
	_ = g.Connect("m", "f")
	_ = g.Connect("f", "m") // delayed, must not create a cycle or extend paths
	info, err := LongestPaths(g, ConstCost{Op: 1, Edge: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(info.R, 1+10+1) {
		t.Errorf("R = %v, want 12", info.R)
	}
}

func TestLongestPathsCycleError(t *testing.T) {
	g := New("cyc")
	_ = g.AddComp("a")
	_ = g.AddComp("b")
	_ = g.Connect("a", "b")
	_ = g.Connect("b", "a")
	if _, err := LongestPaths(g, ConstCost{Op: 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestQuickLongestPathInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		info, err := LongestPaths(g, ConstCost{Op: 1, Edge: 0.5})
		if err != nil {
			return false
		}
		for _, op := range g.OpNames() {
			// Every op's full path fits inside R.
			if info.Head[op]+1+info.Tail[op] > info.R+1e-9 {
				return false
			}
			if info.Head[op] < 0 || info.Tail[op] < 0 {
				return false
			}
		}
		// R is realized by at least one op.
		found := false
		for _, op := range g.OpNames() {
			if almostEq(info.Head[op]+1+info.Tail[op], info.R) {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
