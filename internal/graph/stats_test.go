package graph

import "testing"

func TestComputeStatsChain(t *testing.T) {
	g := New("chain")
	_ = g.AddComp("a")
	_ = g.AddComp("b")
	_ = g.AddComp("c")
	_ = g.Connect("a", "b")
	_ = g.Connect("b", "c")
	st := ComputeStats(g)
	if st.Ops != 3 || st.Edges != 2 || st.Depth != 3 || st.Width != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanDegree != 2.0/3.0 {
		t.Errorf("mean degree = %v", st.MeanDegree)
	}
}

func TestComputeStatsDiamond(t *testing.T) {
	g := New("diamond")
	for _, n := range []string{"a", "b", "c", "d"} {
		_ = g.AddComp(n)
	}
	_ = g.Connect("a", "b")
	_ = g.Connect("a", "c")
	_ = g.Connect("b", "d")
	_ = g.Connect("c", "d")
	st := ComputeStats(g)
	if st.Depth != 3 || st.Width != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestComputeStatsIgnoresDelayed(t *testing.T) {
	g := New("fb")
	_ = g.AddMem("m")
	_ = g.AddComp("f")
	_ = g.Connect("m", "f")
	_ = g.Connect("f", "m") // delayed
	st := ComputeStats(g)
	if st.Depth != 2 {
		t.Errorf("depth = %d, want 2", st.Depth)
	}
}

func TestComputeStatsCyclic(t *testing.T) {
	g := New("cyc")
	_ = g.AddComp("a")
	_ = g.AddComp("b")
	_ = g.Connect("a", "b")
	_ = g.Connect("b", "a")
	if st := ComputeStats(g); st != (Stats{}) {
		t.Errorf("cyclic graph stats = %+v, want zero", st)
	}
}
