package graph

import "fmt"

// CostFunc supplies per-operation and per-dependency weights for path
// computations. Implementations typically come from a distribution-
// constraints table (averaged over processors and links for the static
// pre-pass of the schedule-pressure computation).
type CostFunc interface {
	// OpCost returns the weight of executing op.
	OpCost(op string) float64
	// EdgeCost returns the weight of transferring the dependency e.
	EdgeCost(e EdgeKey) float64
}

// ConstCost is a CostFunc assigning fixed weights to every operation and
// dependency. Useful for tests and pure-structure analyses.
type ConstCost struct {
	Op   float64
	Edge float64
}

// OpCost implements CostFunc.
func (c ConstCost) OpCost(string) float64 { return c.Op }

// EdgeCost implements CostFunc.
func (c ConstCost) EdgeCost(EdgeKey) float64 { return c.Edge }

// PathInfo holds the longest-path ("critical path") analysis of a graph under
// a given cost function, considering non-delayed edges only.
type PathInfo struct {
	// R is the total critical-path length of the graph.
	R float64
	// Head maps each operation to the length of the longest path ending
	// just before the operation starts (sum of op and edge weights of the
	// heaviest chain of strict predecessors).
	Head map[string]float64
	// Tail maps each operation to the length of the longest path starting
	// just after the operation ends (the paper's E(o) measured from the end
	// of the critical path).
	Tail map[string]float64
}

// LongestPaths computes the critical path R and, for every operation, the
// heaviest head (before start) and tail (after end) path lengths under cost
// c. Delayed edges are ignored, matching their iteration-crossing semantics.
func LongestPaths(g *Graph, c CostFunc) (*PathInfo, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("longest paths: %w", err)
	}
	info := &PathInfo{
		Head: make(map[string]float64, len(order)),
		Tail: make(map[string]float64, len(order)),
	}
	for _, n := range order {
		head := 0.0
		for _, p := range g.StrictPreds(n) {
			v := info.Head[p] + c.OpCost(p) + c.EdgeCost(EdgeKey{Src: p, Dst: n})
			if v > head {
				head = v
			}
		}
		info.Head[n] = head
	}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		tail := 0.0
		for _, s := range g.StrictSuccs(n) {
			v := info.Tail[s] + c.OpCost(s) + c.EdgeCost(EdgeKey{Src: n, Dst: s})
			if v > tail {
				tail = v
			}
		}
		info.Tail[n] = tail
	}
	for _, n := range order {
		total := info.Head[n] + c.OpCost(n) + info.Tail[n]
		if total > info.R {
			info.R = total
		}
	}
	return info, nil
}

// CriticalOps returns, in topological order, the operations lying on a
// critical path (head + cost + tail == R up to eps).
func (p *PathInfo) CriticalOps(g *Graph, c CostFunc, eps float64) []string {
	order, err := g.TopoOrder()
	if err != nil {
		return nil
	}
	var out []string
	for _, n := range order {
		if p.Head[n]+c.OpCost(n)+p.Tail[n] >= p.R-eps {
			out = append(out, n)
		}
	}
	return out
}
